//! `stitch` — command-line front end for the stitching workspace.
//!
//! ```text
//! stitch generate --out dataset/ --rows 8 --cols 12
//! stitch stitch --dataset dataset/ --impl pipelined-gpu --gpus 2 --out mosaic.tif
//! stitch info --dataset dataset/
//! stitch simulate --machine testbed
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match stitching::cli::parse(&args) {
        Ok(cmd) => stitching::cli::run(cmd),
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{}", stitching::cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
