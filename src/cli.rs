//! Command-line interface plumbing for the `stitch` binary.
//!
//! A small hand-rolled parser (no external dependency) covering the
//! subcommands: `generate`, `stitch`, `shard`, `serve`, `serve-batch`,
//! `info`, and `simulate`. Parsing is pure so it is unit-testable; execution
//! lives in [`run`], and the daemon's line-protocol session loop in the
//! testable [`serve_session`].

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stitch_core::pciam_real::TransformKind;
use stitch_core::prelude::*;
use stitch_fft::BackendChoice;
use stitch_gpu::{Device, DeviceConfig, GpuFaultConfig};
use stitch_image::{pgm, tiff, MultiChannelPlate, MultiScanConfig, ScanConfig, SyntheticPlate};
use stitch_sched::{DrainPolicy, JobVariant};
use stitch_serve::{BreakerConfig, RateLimit, ServeConfig, ServeDaemon, TenantPolicy};
use stitch_shard::{stitch_sharded, stitch_sharded_into_canvas, ShardConfig as ShardRunConfig};

/// Parsed command line.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// Write a synthetic dataset to a directory.
    Generate {
        /// Output directory.
        out: PathBuf,
        /// Scan geometry.
        config: ScanConfig,
        /// Fluorescence channels (> 1 writes a multi-channel manifest).
        channels: usize,
        /// Focal planes per tile position (> 1 writes a z-stack).
        z_planes: usize,
    },
    /// Stitch a dataset directory end-to-end.
    Stitch {
        /// Dataset directory (with `manifest.tsv`).
        dataset: PathBuf,
        /// Implementation name.
        implementation: Implementation,
        /// Worker threads (CPU variants) or CCF threads (GPU variants).
        threads: usize,
        /// Simulated GPU count (GPU variants).
        gpus: usize,
        /// Transform path.
        transform: TransformKind,
        /// Blend mode for composition.
        blend: Blend,
        /// Mosaic output path (`.pgm` or `.tif`); `None` skips composing.
        out: Option<PathBuf>,
        /// Where to write absolute positions as TSV.
        positions_out: Option<PathBuf>,
        /// Draw tile borders (Fig 14 style).
        highlight: bool,
        /// Max retries per failed tile read.
        retries: u32,
        /// Initial retry backoff in milliseconds (doubles per retry).
        retry_backoff_ms: u64,
        /// Fault-injection spec (`key=value,...`); `None` injects nothing.
        fault_spec: Option<String>,
        /// Degrade to a partial mosaic instead of aborting on tile loss.
        allow_partial: bool,
        /// Where to write the machine-readable health report as JSON.
        health_out: Option<PathBuf>,
        /// Where to write the merged CPU+GPU timeline as Chrome
        /// trace-event JSON (open in `chrome://tracing` / Perfetto).
        trace_out: Option<PathBuf>,
        /// Where to write the run report (per-stage busy/wait, queue
        /// stats, kernel density, copy/compute overlap) as JSON.
        report_out: Option<PathBuf>,
        /// Compute backend for the phase-1 hot loops. `None` defers to
        /// the `STITCH_BACKEND` environment variable, then auto-detect.
        backend: Option<BackendChoice>,
        /// Channel whose images drive registration (multi-channel datasets).
        ref_channel: usize,
        /// Estimate per-channel flat fields and correct every image before
        /// registration and composition.
        correct_illumination: bool,
        /// Compose one max-z projection per channel instead of one mosaic
        /// per (channel, plane).
        maxz: bool,
    },
    /// Stitch shard-by-shard under a fixed memory budget (out-of-core).
    Shard {
        /// Dataset directory; `None` stitches a synthetic plate instead.
        dataset: Option<PathBuf>,
        /// Synthetic scan geometry (used when `dataset` is `None`).
        config: ScanConfig,
        /// Max tile rows per shard.
        shard_rows: usize,
        /// Max tile columns per shard.
        shard_cols: usize,
        /// Memory budget in MB shared by all in-flight shards.
        budget_mb: usize,
        /// Concurrent shard jobs.
        workers: usize,
        /// Per-shard stitcher (CPU variants only).
        implementation: Implementation,
        /// Compute threads per shard job.
        threads: usize,
        /// Blend mode for composition.
        blend: Blend,
        /// Mosaic output path (`.pgm` or `.tif`); `None` skips composing.
        out: Option<PathBuf>,
        /// Where to write absolute positions as TSV.
        positions_out: Option<PathBuf>,
        /// Pixel rows per composition band.
        band_rows: usize,
        /// Where to write a downsampled overview image (`.pgm` or
        /// `.tif`). Routes the banded composition through the chunked
        /// pyramid canvas, so the overview comes from `--preview-scale`
        /// without ever materializing the full mosaic.
        preview_out: Option<PathBuf>,
        /// Pyramid scale for `--preview` (0 = full resolution).
        preview_scale: usize,
        /// Where to write the merged per-shard timeline as Chrome
        /// trace-event JSON.
        trace_out: Option<PathBuf>,
    },
    /// Run the long-lived job daemon on stdin/stdout (and optionally a
    /// Unix socket), speaking the line protocol of [`stitch_serve`].
    Serve {
        /// Worker slots (concurrently running jobs).
        workers: usize,
        /// Host-memory admission budget in MB.
        budget_mb: usize,
        /// Bound on the pending queue; submissions past it shed.
        max_pending: usize,
        /// Default watchdog deadline for jobs that don't set one.
        watchdog_ms: Option<u64>,
        /// Per-tenant cap on jobs in flight (queued + running).
        tenant_jobs: usize,
        /// Per-tenant token-bucket burst; `None` disables rate limiting.
        rate_burst: Option<u32>,
        /// Token-bucket refill rate (tokens/second).
        rate_per_sec: f64,
        /// Per-tenant memory cap in MB (arbiter scope cap).
        tenant_cap_mb: Option<usize>,
        /// Queue-full overloads within the window that open the breaker
        /// (0 disables it).
        breaker_threshold: usize,
        /// What happens to in-flight jobs when stdin reaches EOF.
        drain: DrainPolicy,
        /// Also listen on this Unix socket (one session per client).
        socket: Option<PathBuf>,
        /// Where to write the merged multi-job Chrome trace on exit.
        trace_out: Option<PathBuf>,
        /// Directory for per-job run reports (`<tenant>__<job>.report.json`).
        reports_dir: Option<PathBuf>,
    },
    /// Run a batch of stitching jobs on the shared scheduler.
    ServeBatch {
        /// Job file (one `key=value ...` job per line; see
        /// [`stitch_sched::parse_job_file`]).
        jobs: PathBuf,
        /// Concurrent job slots.
        workers: usize,
        /// Host-memory admission budget in MB.
        budget_mb: usize,
        /// Stream-lease bound on the shared device (GPU jobs).
        stream_slots: Option<usize>,
        /// Where to write the merged multi-job Chrome trace.
        trace_out: Option<PathBuf>,
        /// Directory for per-job run reports (`report-<name>.json`).
        reports_dir: Option<PathBuf>,
    },
    /// Print dataset information.
    Info {
        /// Dataset directory.
        dataset: PathBuf,
    },
    /// Print the virtual-time Table II for a machine spec.
    Simulate {
        /// `testbed` or `laptop`.
        machine: String,
        /// Grid rows.
        rows: usize,
        /// Grid cols.
        cols: usize,
    },
    /// Print usage.
    Help,
}

/// Stitcher implementation selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Implementation {
    /// Sequential reference.
    SimpleCpu,
    /// SPMD row bands.
    MtCpu,
    /// 3-stage CPU pipeline (default).
    PipelinedCpu,
    /// Synchronous single-stream GPU port.
    SimpleGpu,
    /// Six-stage multi-GPU pipeline.
    PipelinedGpu,
    /// Per-pair-recompute baseline.
    Fiji,
}

impl Implementation {
    fn parse(s: &str) -> Result<Implementation, String> {
        match s {
            "simple-cpu" => Ok(Implementation::SimpleCpu),
            "mt-cpu" => Ok(Implementation::MtCpu),
            "pipelined-cpu" => Ok(Implementation::PipelinedCpu),
            "simple-gpu" => Ok(Implementation::SimpleGpu),
            "pipelined-gpu" => Ok(Implementation::PipelinedGpu),
            "fiji" => Ok(Implementation::Fiji),
            other => Err(format!(
                "unknown implementation {other:?} (expected simple-cpu, mt-cpu, \
                 pipelined-cpu, simple-gpu, pipelined-gpu, or fiji)"
            )),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
stitch — hybrid CPU-GPU microscopy image stitching (ICPP 2014 reproduction)

USAGE:
  stitch generate --out DIR [--rows N] [--cols N] [--tile-width N]
                  [--tile-height N] [--overlap F] [--seed N]
                  [--channels N] [--z-planes N]
  stitch stitch --dataset DIR [--impl NAME] [--threads N] [--gpus N]
                [--transform complex|real|padded] [--blend overlay|first|average|linear]
                [--out mosaic.pgm|.tif] [--positions out.tsv] [--highlight]
                [--retries N] [--retry-backoff-ms N] [--allow-partial]
                [--fault-spec SPEC] [--health-json out.json]
                [--trace-json trace.json] [--run-report report.json]
                [--backend auto|scalar|portable|simd]
                [--ref-channel N] [--correct-illumination] [--maxz]
  stitch shard [--dataset DIR | --rows N --cols N [--tile-width N]
               [--tile-height N] [--overlap F] [--seed N]]
               [--shard-rows N] [--shard-cols N] [--mem-budget-mb N]
               [--workers N] [--impl NAME] [--threads N]
               [--blend overlay|first|average|linear] [--band-rows N]
               [--out mosaic.pgm|.tif] [--positions out.tsv]
               [--preview overview.pgm|.tif] [--preview-scale N]
               [--trace-json trace.json]
  stitch serve [--workers N] [--budget-mb N] [--max-pending N]
               [--watchdog-ms N] [--tenant-jobs N] [--rate-burst N]
               [--rate-per-sec F] [--tenant-cap-mb N]
               [--breaker-threshold N] [--drain finish|cancel-pending|cancel-all]
               [--socket PATH] [--trace-json trace.json] [--reports-dir DIR]
  stitch serve-batch --jobs FILE [--workers N] [--budget-mb N]
                     [--stream-slots N] [--trace-json trace.json]
                     [--reports-dir DIR]
  stitch info --dataset DIR
  stitch simulate [--machine testbed|laptop] [--rows N] [--cols N]
  stitch help

JOB FILE (serve-batch; one job per line, `#` comments):
  name=a variant=pipelined-cpu grid=6x8 tile=64x48 overlap=0.1 seed=5
         threads=2 priority=2 deadline-ms=5000 compose=false
  (malformed lines are reported per line; the rest of the batch runs)

SERVE PROTOCOL (one request per line on stdin or the socket; responses
and job lifecycle stream back as `event=... key=value` lines):
  submit name=a tenant=acme grid=6x8 tile=64x48 [preview=true] ...
  cancel name=a [tenant=acme]
  region name=a [tenant=acme] [scale=N] [x=N] [y=N] [w=N] [h=N]
  stats | ping | drain [policy=finish|cancel-pending|cancel-all]
  EOF on stdin drains the daemon (--drain policy) and exits.

IMPLEMENTATIONS: simple-cpu, mt-cpu, pipelined-cpu (default), simple-gpu,
                 pipelined-gpu, fiji

BACKENDS (phase-1 compute kernels; all bit-identical on displacements):
  auto     pick the fastest the host supports (default)
  scalar   sequential reference loops
  portable lane-unrolled loops the compiler auto-vectorizes
  simd     explicit AVX2 intrinsics (x86_64; falls back to portable)
  The STITCH_BACKEND environment variable applies when --backend is
  absent; --backend wins when both are given.

MULTI-CHANNEL / Z-STACK (generate --channels/--z-planes writes an
extended manifest; stitch detects it and registers ONCE on the
reference channel, replaying the solved frame across every channel and
plane — outputs are suffixed `_cCC_zZZ` / `_cCC_maxz`):
  --ref-channel N          channel whose images drive registration
  --correct-illumination   estimate per-channel flat fields from the
                           tile stack and correct before registering
  --maxz                   compose one max-z projection per channel

FAULT SPEC (comma-separated key=value):
  seed=N transient=RATE corrupt=R.C+R.C latency-ms=N     (tile reads)
  gpu-seed=N gpu-h2d=RATE gpu-d2h=RATE gpu-kernel=RATE
  gpu-oom=RATE gpu-retries=N                             (device ops)
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            // boolean flags take no value
            if name == "highlight"
                || name == "allow-partial"
                || name == "correct-illumination"
                || name == "maxz"
            {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        } else {
            return Err(format!("unexpected argument {a:?}"));
        }
    }
    Ok(flags)
}

fn get_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for --{key}: {v:?}")),
    }
}

/// Parses the command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let out = flags
                .get("out")
                .ok_or("generate requires --out DIR")?
                .into();
            let config = ScanConfig {
                grid_rows: get_num(&flags, "rows", 8)?,
                grid_cols: get_num(&flags, "cols", 12)?,
                tile_width: get_num(&flags, "tile-width", 128)?,
                tile_height: get_num(&flags, "tile-height", 96)?,
                overlap: get_num(&flags, "overlap", 0.25)?,
                stage_jitter: get_num(&flags, "jitter", 3.0)?,
                backlash_x: 1.5,
                noise_sigma: get_num(&flags, "noise", 50.0)?,
                vignette: 0.03,
                seed: get_num(&flags, "seed", 2014)?,
            };
            Ok(Command::Generate {
                out,
                config,
                channels: get_num(&flags, "channels", 1)?,
                z_planes: get_num(&flags, "z-planes", 1)?,
            })
        }
        "stitch" => Ok(Command::Stitch {
            dataset: flags
                .get("dataset")
                .ok_or("stitch requires --dataset DIR")?
                .into(),
            implementation: Implementation::parse(
                flags
                    .get("impl")
                    .map(String::as_str)
                    .unwrap_or("pipelined-cpu"),
            )?,
            threads: get_num(&flags, "threads", 4)?,
            gpus: get_num(&flags, "gpus", 1)?,
            transform: match flags.get("transform").map(String::as_str) {
                None | Some("complex") => TransformKind::Complex,
                Some("real") => TransformKind::Real,
                Some("padded") => TransformKind::PaddedComplex,
                Some(other) => return Err(format!("bad --transform {other:?}")),
            },
            blend: match flags.get("blend").map(String::as_str) {
                None | Some("overlay") => Blend::Overlay,
                Some("first") => Blend::First,
                Some("average") => Blend::Average,
                Some("linear") => Blend::Linear,
                Some(other) => return Err(format!("bad --blend {other:?}")),
            },
            out: flags.get("out").map(PathBuf::from),
            positions_out: flags.get("positions").map(PathBuf::from),
            highlight: flags.contains_key("highlight"),
            retries: get_num(&flags, "retries", 3)?,
            retry_backoff_ms: get_num(&flags, "retry-backoff-ms", 1)?,
            fault_spec: flags.get("fault-spec").cloned(),
            allow_partial: flags.contains_key("allow-partial"),
            health_out: flags.get("health-json").map(PathBuf::from),
            trace_out: flags.get("trace-json").map(PathBuf::from),
            report_out: flags.get("run-report").map(PathBuf::from),
            backend: flags
                .get("backend")
                .map(|v| BackendChoice::parse(v).map_err(|e| format!("bad --backend: {e}")))
                .transpose()?,
            ref_channel: get_num(&flags, "ref-channel", 0)?,
            correct_illumination: flags.contains_key("correct-illumination"),
            maxz: flags.contains_key("maxz"),
        }),
        "shard" => Ok(Command::Shard {
            dataset: flags.get("dataset").map(PathBuf::from),
            config: ScanConfig {
                grid_rows: get_num(&flags, "rows", 8)?,
                grid_cols: get_num(&flags, "cols", 12)?,
                tile_width: get_num(&flags, "tile-width", 128)?,
                tile_height: get_num(&flags, "tile-height", 96)?,
                overlap: get_num(&flags, "overlap", 0.25)?,
                stage_jitter: 3.0,
                backlash_x: 1.5,
                noise_sigma: 50.0,
                vignette: 0.03,
                seed: get_num(&flags, "seed", 2014)?,
            },
            shard_rows: get_num(&flags, "shard-rows", 4)?,
            shard_cols: get_num(&flags, "shard-cols", 4)?,
            budget_mb: get_num(&flags, "mem-budget-mb", 256)?,
            workers: get_num(&flags, "workers", 2)?,
            implementation: Implementation::parse(
                flags
                    .get("impl")
                    .map(String::as_str)
                    .unwrap_or("simple-cpu"),
            )?,
            threads: get_num(&flags, "threads", 2)?,
            blend: match flags.get("blend").map(String::as_str) {
                None | Some("overlay") => Blend::Overlay,
                Some("first") => Blend::First,
                Some("average") => Blend::Average,
                Some("linear") => Blend::Linear,
                Some(other) => return Err(format!("bad --blend {other:?}")),
            },
            out: flags.get("out").map(PathBuf::from),
            positions_out: flags.get("positions").map(PathBuf::from),
            band_rows: get_num(&flags, "band-rows", 64)?,
            preview_out: flags.get("preview").map(PathBuf::from),
            preview_scale: get_num(&flags, "preview-scale", 2)?,
            trace_out: flags.get("trace-json").map(PathBuf::from),
        }),
        "serve" => Ok(Command::Serve {
            workers: get_num(&flags, "workers", 2)?,
            budget_mb: get_num(&flags, "budget-mb", 256)?,
            max_pending: get_num(&flags, "max-pending", 64)?,
            watchdog_ms: flags
                .get("watchdog-ms")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("bad value for --watchdog-ms: {v:?}"))
                })
                .transpose()?,
            tenant_jobs: get_num(&flags, "tenant-jobs", 8)?,
            rate_burst: flags
                .get("rate-burst")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("bad value for --rate-burst: {v:?}"))
                })
                .transpose()?,
            rate_per_sec: get_num(&flags, "rate-per-sec", 100.0)?,
            tenant_cap_mb: flags
                .get("tenant-cap-mb")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("bad value for --tenant-cap-mb: {v:?}"))
                })
                .transpose()?,
            breaker_threshold: get_num(&flags, "breaker-threshold", 8)?,
            drain: match flags.get("drain").map(String::as_str) {
                None | Some("finish") => DrainPolicy::Finish,
                Some("cancel-pending") => DrainPolicy::CancelPending,
                Some("cancel-all") => DrainPolicy::CancelAll,
                Some(other) => return Err(format!("bad --drain {other:?}")),
            },
            socket: flags.get("socket").map(PathBuf::from),
            trace_out: flags.get("trace-json").map(PathBuf::from),
            reports_dir: flags.get("reports-dir").map(PathBuf::from),
        }),
        "serve-batch" => Ok(Command::ServeBatch {
            jobs: flags
                .get("jobs")
                .ok_or("serve-batch requires --jobs FILE")?
                .into(),
            workers: get_num(&flags, "workers", 2)?,
            budget_mb: get_num(&flags, "budget-mb", 256)?,
            stream_slots: flags
                .get("stream-slots")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("bad value for --stream-slots: {v:?}"))
                })
                .transpose()?,
            trace_out: flags.get("trace-json").map(PathBuf::from),
            reports_dir: flags.get("reports-dir").map(PathBuf::from),
        }),
        "info" => Ok(Command::Info {
            dataset: flags
                .get("dataset")
                .ok_or("info requires --dataset DIR")?
                .into(),
        }),
        "simulate" => Ok(Command::Simulate {
            machine: flags
                .get("machine")
                .cloned()
                .unwrap_or_else(|| "testbed".to_string()),
            rows: get_num(&flags, "rows", 42)?,
            cols: get_num(&flags, "cols", 59)?,
        }),
        other => Err(format!("unknown command {other:?}; try `stitch help`")),
    }
}

/// Drives one daemon session: requests are read line-by-line from
/// `input` and handed to the daemon; every broadcast event (this
/// session's responses *and* all job lifecycle events) streams to
/// `out` as `event=... key=value` lines. On EOF, `drain_on_eof`
/// (set for the primary stdin session, `None` for socket clients)
/// gracefully drains the daemon before returning.
///
/// Pure in its endpoints, so tests drive it with in-memory buffers.
pub fn serve_session<R, W>(
    daemon: &ServeDaemon,
    input: R,
    out: W,
    drain_on_eof: Option<DrainPolicy>,
) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let rx = daemon.subscribe();
    let done = AtomicBool::new(false);
    let done = &done;
    std::thread::scope(|s| {
        let pump = s.spawn(move || -> std::io::Result<()> {
            let mut out = out;
            loop {
                match rx.recv_timeout(Duration::from_millis(25)) {
                    Ok(e) => {
                        writeln!(out, "{}", e.to_line())?;
                        out.flush()?;
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        if done.load(Ordering::Acquire) {
                            // the input side has finished (and drained);
                            // everything left is already in the channel
                            for e in rx.try_iter() {
                                writeln!(out, "{}", e.to_line())?;
                            }
                            out.flush()?;
                            return Ok(());
                        }
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
                }
            }
        });
        for line in input.lines() {
            let Ok(line) = line else { break };
            daemon.handle_line(&line);
        }
        if let Some(policy) = drain_on_eof {
            daemon.drain(policy);
        }
        done.store(true, Ordering::Release);
        pump.join().unwrap_or(Ok(()))
    })
}

/// Executes a parsed command. Returns a process exit code.
pub fn run(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            0
        }
        Command::Generate {
            out,
            config,
            channels,
            z_planes,
        } => {
            if channels > 1 || z_planes > 1 {
                let cfg = MultiScanConfig::for_channels(config.clone(), channels, z_planes);
                let plate = MultiChannelPlate::generate(cfg);
                match plate.write_to_dir(&out) {
                    Ok(n) => {
                        println!(
                            "wrote {n} images ({}x{} grid of {}x{}, {} channel(s) x {} plane(s)) to {}",
                            config.grid_rows,
                            config.grid_cols,
                            config.tile_width,
                            config.tile_height,
                            channels.max(1),
                            z_planes.max(1),
                            out.display()
                        );
                        return 0;
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                }
            }
            let plate = SyntheticPlate::generate(config.clone());
            match plate.write_to_dir(&out) {
                Ok(n) => {
                    println!(
                        "wrote {n} tiles ({}x{} grid of {}x{}) to {}",
                        config.grid_rows,
                        config.grid_cols,
                        config.tile_width,
                        config.tile_height,
                        out.display()
                    );
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        Command::Info { dataset } => match stitch_image::GridManifest::load(&dataset) {
            Ok(m) => {
                println!(
                    "dataset {}: {}x{} grid, {}x{} px tiles, {:.0}% nominal overlap, {} files",
                    dataset.display(),
                    m.rows,
                    m.cols,
                    m.tile_width,
                    m.tile_height,
                    m.overlap * 100.0,
                    m.tiles()
                );
                println!(
                    "tile bytes {} ({:.1} MB dataset)",
                    m.tile_width * m.tile_height * 2,
                    (m.tiles() * m.tile_width * m.tile_height * 2) as f64 / 1e6
                );
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Command::Simulate {
            machine,
            rows,
            cols,
        } => {
            use stitch_sim::*;
            let m = match machine.as_str() {
                "laptop" => MachineSpec::paper_laptop(),
                _ => MachineSpec::paper_testbed(),
            };
            let shape = GridShape::new(rows, cols);
            let cost = CostModel::paper_c2070();
            println!("virtual {machine} machine, {rows}x{cols} grid of 1392x1040 tiles:");
            let simple = simple_cpu_ns(shape, &cost);
            let rows_out = [
                ("Simple-CPU", simple),
                ("MT-CPU (16t)", mt_cpu_ns(shape, &cost, &m, 16)),
                (
                    "Pipelined-CPU (16t)",
                    pipelined_cpu_ns(shape, &cost, &m, 16),
                ),
                ("Simple-GPU", simple_gpu_ns(shape, &cost)),
                ("Pipelined-GPU x1", pipelined_gpu_ns(shape, &cost, &m, 1, 4)),
                (
                    "Pipelined-GPU x2",
                    pipelined_gpu_ns(shape, &cost, &m, 2.min(m.gpus), 4),
                ),
            ];
            for (name, ns) in rows_out {
                println!(
                    "  {name:<22} {:>10.1}s  ({:.1}x vs Simple-CPU)",
                    secs(ns),
                    simple as f64 / ns as f64
                );
            }
            0
        }
        Command::Serve {
            workers,
            budget_mb,
            max_pending,
            watchdog_ms,
            tenant_jobs,
            rate_burst,
            rate_per_sec,
            tenant_cap_mb,
            breaker_threshold,
            drain,
            socket,
            trace_out,
            reports_dir,
        } => {
            let trace = if trace_out.is_some() || reports_dir.is_some() {
                stitch_trace::TraceHandle::new()
            } else {
                stitch_trace::TraceHandle::disabled()
            };
            let daemon = Arc::new(ServeDaemon::new(ServeConfig {
                workers,
                memory_budget: budget_mb << 20,
                max_pending,
                device: None,
                trace: trace.clone(),
                default_watchdog: watchdog_ms.map(Duration::from_millis),
                tenant_policy: TenantPolicy {
                    max_in_flight: tenant_jobs,
                    rate: rate_burst.map(|burst| RateLimit {
                        burst,
                        per_sec: rate_per_sec,
                    }),
                    mem_cap: tenant_cap_mb.map(|mb| mb << 20),
                },
                breaker: BreakerConfig {
                    threshold: breaker_threshold,
                    ..BreakerConfig::default()
                },
                reports_dir: reports_dir.clone(),
            }));
            if let Some(path) = &socket {
                let _ = std::fs::remove_file(path);
                let listener = match std::os::unix::net::UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("error: cannot bind {}: {e}", path.display());
                        return 1;
                    }
                };
                eprintln!("serve: listening on {}", path.display());
                let d = Arc::clone(&daemon);
                std::thread::spawn(move || {
                    for stream in listener.incoming() {
                        let Ok(stream) = stream else { continue };
                        let d = Arc::clone(&d);
                        std::thread::spawn(move || {
                            let Ok(reader) = stream.try_clone() else {
                                return;
                            };
                            // socket clients never drain the daemon;
                            // only stdin EOF shuts it down
                            let _ = serve_session(&d, BufReader::new(reader), stream, None);
                        });
                    }
                });
            }
            eprintln!(
                "serve: {workers} worker(s), {budget_mb} MB budget, {max_pending} pending max; \
                 EOF drains ({drain:?})"
            );
            let stdin = std::io::stdin();
            let code = match serve_session(
                &daemon,
                BufReader::new(stdin),
                std::io::stdout(),
                Some(drain),
            ) {
                Ok(()) => 0,
                Err(e) => {
                    eprintln!("error: serve session: {e}");
                    1
                }
            };
            if let Some(path) = trace_out {
                if let Err(e) = std::fs::write(&path, trace.to_chrome_json()) {
                    eprintln!("error writing trace: {e}");
                    return 1;
                }
                eprintln!("merged trace -> {}", path.display());
            }
            if let Some(path) = socket {
                let _ = std::fs::remove_file(&path);
            }
            code
        }
        Command::ServeBatch {
            jobs,
            workers,
            budget_mb,
            stream_slots,
            trace_out,
            reports_dir,
        } => {
            let text = match std::fs::read_to_string(&jobs) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read job file {}: {e}", jobs.display());
                    return 1;
                }
            };
            let want_observability = trace_out.is_some() || reports_dir.is_some();
            let trace = if want_observability {
                stitch_trace::TraceHandle::new()
            } else {
                stitch_trace::TraceHandle::disabled()
            };
            println!("serve-batch: {workers} worker(s), {budget_mb} MB budget");
            // lenient parse (shared with the serve daemon's wire parser):
            // a malformed line becomes a per-line error in the report and
            // the rest of the batch still runs
            let report = match stitch_sched::run_batch_text(
                &text,
                &stitch_sched::BatchOptions {
                    workers,
                    memory_budget: budget_mb << 20,
                    stream_slots,
                    device: None,
                    trace: trace.clone(),
                },
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {}: {e}", jobs.display());
                    return 1;
                }
            };
            for err in &report.parse_errors {
                println!("  {}: {err}", jobs.display());
            }
            for (name, why) in &report.rejected {
                println!("  {name:<16} rejected: {why}");
            }
            let mut all_ok = report.rejected.is_empty() && report.parse_errors.is_empty();
            for out in &report.outcomes {
                let status = match &out.status {
                    stitch_sched::JobStatus::Completed => "completed".to_string(),
                    other => {
                        all_ok = false;
                        format!("{other:?}")
                    }
                };
                println!("  {:<16} {status:<12} {:>8.2?}", out.name, out.elapsed);
            }
            println!(
                "batch done in {:.2?}; memory high water {:.1} MB of {budget_mb} MB",
                report.elapsed,
                report.high_water as f64 / (1 << 20) as f64
            );
            if let Some(dir) = reports_dir {
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("error creating {}: {e}", dir.display());
                    return 1;
                }
                for out in &report.outcomes {
                    if let Some(r) = &out.report {
                        let path = dir.join(format!("report-{}.json", out.name));
                        if let Err(e) = std::fs::write(&path, r.to_json()) {
                            eprintln!("error writing {}: {e}", path.display());
                            return 1;
                        }
                    }
                }
                println!("per-job run reports -> {}", dir.display());
            }
            if let Some(path) = trace_out {
                if let Err(e) = std::fs::write(&path, trace.to_chrome_json()) {
                    eprintln!("error writing trace: {e}");
                    return 1;
                }
                println!("merged trace -> {}", path.display());
            }
            if all_ok {
                0
            } else {
                2
            }
        }
        Command::Shard {
            dataset,
            config,
            shard_rows,
            shard_cols,
            budget_mb,
            workers,
            implementation,
            threads,
            blend,
            out,
            positions_out,
            band_rows,
            preview_out,
            preview_scale,
            trace_out,
        } => {
            let variant = match implementation {
                Implementation::SimpleCpu => JobVariant::SimpleCpu,
                Implementation::MtCpu => JobVariant::MtCpu,
                Implementation::PipelinedCpu => JobVariant::PipelinedCpu,
                Implementation::Fiji => JobVariant::FijiStyle,
                Implementation::SimpleGpu | Implementation::PipelinedGpu => {
                    eprintln!(
                        "error: shard runs CPU variants only (the shard scheduler shares no GPU)"
                    );
                    return 1;
                }
            };
            let source: Arc<dyn TileSource> = match &dataset {
                Some(dir) => match DirSource::open(dir) {
                    Ok(s) => Arc::new(s),
                    Err(e) => {
                        eprintln!("error: cannot open dataset: {e}");
                        return 1;
                    }
                },
                None => Arc::new(SyntheticSource::new(SyntheticPlate::generate(config))),
            };
            let trace = if trace_out.is_some() {
                stitch_trace::TraceHandle::new()
            } else {
                stitch_trace::TraceHandle::disabled()
            };
            let shard_config = ShardRunConfig {
                shard_rows,
                shard_cols,
                workers,
                memory_budget: budget_mb << 20,
                variant,
                threads,
                compose: (out.is_some() || preview_out.is_some()).then_some(blend),
                band_rows,
                trace: trace.clone(),
                ..ShardRunConfig::default()
            };
            let shape = source.shape();
            let (tile_w, tile_h) = source.tile_dims();
            println!(
                "sharded stitch: {}x{} grid in {}x{}-tile shards, {} worker(s), {budget_mb} MB budget",
                shape.rows, shape.cols, shard_rows, shard_cols, workers
            );
            // --preview routes the banded composition through the
            // chunked pyramid canvas (still out-of-core: bands are baked
            // and dropped, only live chunks stay resident).
            let canvas = preview_out
                .as_ref()
                .map(|_| stitch_canvas::SharedCanvas::new(stitch_canvas::CanvasConfig::default()));
            let run = match &canvas {
                Some(canvas) => stitch_sharded_into_canvas(source, &shard_config, canvas),
                None => stitch_sharded(source, &shard_config),
            };
            let outcome = match run {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            println!(
                "{} shard(s), {} seam pair(s) in {:.2?}; peak arbiter memory {:.1} MB of {budget_mb} MB",
                outcome.shard_count,
                outcome.seam_pairs,
                outcome.elapsed,
                outcome.high_water as f64 / (1 << 20) as f64,
            );
            println!(
                "hierarchical frame agrees with committed solve to ({}, {}) px",
                outcome.hierarchical_deviation.0, outcome.hierarchical_deviation.1
            );
            if let Some(path) = positions_out {
                let mut tsv = String::from("row\tcol\tx\ty\n");
                for id in outcome.result.shape.ids() {
                    let (x, y) = outcome.positions.get(id);
                    tsv.push_str(&format!("{}\t{}\t{x}\t{y}\n", id.row, id.col));
                }
                if let Err(e) = std::fs::write(&path, tsv) {
                    eprintln!("error writing positions: {e}");
                    return 1;
                }
                println!("positions -> {}", path.display());
            }
            // In canvas mode the driver never collects the mosaic; a
            // requested --out is materialized from the canvas's scale-0
            // plane instead (bit-identical to the collected path).
            let canvas_mosaic = match (&canvas, &out) {
                (Some(canvas), Some(_)) => {
                    let (mw, mh) = outcome.positions.mosaic_dims(tile_w, tile_h);
                    Some(canvas.get_region(0, 0, 0, mw, mh))
                }
                _ => None,
            };
            if let (Some(path), Some(mosaic)) =
                (&out, canvas_mosaic.as_ref().or(outcome.mosaic.as_ref()))
            {
                let res = match path.extension().and_then(|e| e.to_str()) {
                    Some("tif") | Some("tiff") => tiff::write_tiff(path, mosaic),
                    _ => pgm::write_pgm(path, mosaic),
                };
                match res {
                    Ok(()) => println!(
                        "{}x{} mosaic (banded, {} rows/band) -> {}",
                        mosaic.width(),
                        mosaic.height(),
                        band_rows,
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("error writing mosaic: {e}");
                        return 1;
                    }
                }
            }
            if let (Some(path), Some(canvas)) = (&preview_out, &canvas) {
                let (mw, mh) = outcome.positions.mosaic_dims(tile_w, tile_h);
                let scale = preview_scale.min(canvas.max_scale());
                let (pw, ph) = ((mw >> scale).max(1), (mh >> scale).max(1));
                let overview = canvas.get_region(scale, 0, 0, pw, ph);
                let res = match path.extension().and_then(|e| e.to_str()) {
                    Some("tif") | Some("tiff") => tiff::write_tiff(path, &overview),
                    _ => pgm::write_pgm(path, &overview),
                };
                match res {
                    Ok(()) => println!(
                        "scale-{scale} overview {pw}x{ph} ({} live canvas chunks) -> {}",
                        canvas.stats().live_chunks,
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("error writing preview: {e}");
                        return 1;
                    }
                }
            }
            if let Some(path) = trace_out {
                if let Err(e) = std::fs::write(&path, trace.to_chrome_json()) {
                    eprintln!("error writing trace: {e}");
                    return 1;
                }
                println!("trace -> {}", path.display());
            }
            0
        }
        Command::Stitch {
            dataset,
            implementation,
            threads,
            gpus,
            transform,
            blend,
            out,
            positions_out,
            highlight,
            retries,
            retry_backoff_ms,
            fault_spec,
            allow_partial,
            health_out,
            trace_out,
            report_out,
            backend,
            ref_channel,
            correct_illumination,
            maxz,
        } => {
            // Pin the compute backend before any pipeline work; when the
            // flag is absent, the first kernel dispatch resolves it from
            // STITCH_BACKEND / auto-detection instead.
            if let Some(choice) = backend {
                stitch_fft::backend::select(choice);
            }
            // one shared recorder feeds both outputs; stays disabled (and
            // free) unless an observability flag asked for it
            let trace = if trace_out.is_some() || report_out.is_some() {
                stitch_trace::TraceHandle::new()
            } else {
                stitch_trace::TraceHandle::disabled()
            };
            let policy = FailurePolicy {
                retry: RetryPolicy {
                    max_retries: retries,
                    backoff: Duration::from_millis(retry_backoff_ms),
                    ..RetryPolicy::default()
                },
                allow_partial,
            };
            // One spec string configures both injection layers: the core
            // parser reads the tile-level keys, the gpu parser the gpu- ones.
            let tile_faults = match fault_spec.as_deref().map(FaultSpec::parse).transpose() {
                Ok(spec) => spec.filter(|s| !s.is_noop()),
                Err(e) => {
                    eprintln!("error: bad --fault-spec: {e}");
                    return 1;
                }
            };
            let gpu_faults = match fault_spec.as_deref().map(GpuFaultConfig::parse).transpose() {
                Ok(cfg) => cfg.flatten(),
                Err(e) => {
                    eprintln!("error: bad --fault-spec: {e}");
                    return 1;
                }
            };
            let device_config = DeviceConfig {
                fault: gpu_faults,
                ..DeviceConfig::default()
            };
            let stitcher: Box<dyn Stitcher> = match implementation {
                Implementation::SimpleCpu => Box::new(
                    SimpleCpuStitcher::default()
                        .with_transform(transform)
                        .with_trace(trace.clone()),
                ),
                Implementation::MtCpu => {
                    Box::new(MtCpuStitcher::new(threads).with_trace(trace.clone()))
                }
                Implementation::PipelinedCpu => Box::new(
                    PipelinedCpuStitcher::with_config(stitch_core::PipelinedCpuConfig {
                        transform,
                        ..stitch_core::PipelinedCpuConfig::with_threads(threads)
                    })
                    .with_trace(trace.clone()),
                ),
                Implementation::SimpleGpu => Box::new(
                    SimpleGpuStitcher::new(Device::new(0, device_config.clone()))
                        .with_trace(trace.clone()),
                ),
                Implementation::PipelinedGpu => {
                    let devices: Vec<Device> = (0..gpus.max(1))
                        .map(|i| Device::new(i, device_config.clone()))
                        .collect();
                    Box::new(
                        PipelinedGpuStitcher::new(
                            devices,
                            stitch_core::PipelinedGpuConfig {
                                ccf_threads: threads.max(1),
                                ..Default::default()
                            },
                        )
                        .with_trace(trace.clone()),
                    )
                }
                Implementation::Fiji => {
                    Box::new(FijiStyleStitcher::new(threads).with_trace(trace.clone()))
                }
            };
            // Multi-channel / z-stack datasets (extended manifest) — or an
            // explicit channel flag — take the register-once/replay path:
            // one phase-1+2 solve on the reference channel, then pure
            // composition of every (channel, plane) unit in that frame.
            let is_multi = stitch_image::MultiGridManifest::load(&dataset)
                .ok()
                .is_some_and(|m| m.channels > 1 || m.z_planes > 1);
            if is_multi || ref_channel > 0 || correct_illumination || maxz {
                return run_channel_stitch(
                    &dataset,
                    stitcher.as_ref(),
                    ChannelPlan {
                        reference_channel: ref_channel,
                        z_mode: if maxz {
                            ZMode::MaxProject
                        } else {
                            ZMode::Stack
                        },
                        registration_plane: None,
                        correct_illumination,
                    },
                    blend,
                    out.as_deref(),
                    positions_out.as_deref(),
                );
            }
            let dir = match DirSource::open(&dataset) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot open dataset: {e}");
                    return 1;
                }
            };
            let source: Box<dyn TileSource> = match tile_faults {
                Some(spec) => Box::new(FaultySource::new(dir, spec)),
                None => Box::new(dir),
            };
            println!(
                "stitching {} ({}x{} grid) with {}",
                dataset.display(),
                source.shape().rows,
                source.shape().cols,
                stitcher.name()
            );
            let result = match stitcher.try_compute_displacements(source.as_ref(), &policy) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let health = &result.health;
            if health.is_degraded() || !health.recovered_tiles().is_empty() {
                println!(
                    "health: {} tile(s) failed, {} recovered, {} retries total",
                    health.failed_tiles().len(),
                    health.recovered_tiles().len(),
                    health.total_retries
                );
                for id in health.failed_tiles() {
                    println!("  lost tile {id}");
                }
            }
            if let Some(path) = health_out {
                if let Err(e) = std::fs::write(&path, health.to_json()) {
                    eprintln!("error writing health report: {e}");
                    return 1;
                }
                println!("health report -> {}", path.display());
            }
            println!(
                "phase 1: {} pairs in {:.2?} ({} forward FFTs, peak {} live tiles)",
                source.shape().pairs(),
                result.elapsed,
                result.ops.forward_ffts,
                result.peak_live_tiles
            );
            let positions = GlobalOptimizer::default().solve(&result);
            if let Some(path) = positions_out {
                let mut tsv = String::from("row\tcol\tx\ty\n");
                for id in result.shape.ids() {
                    let (x, y) = positions.get(id);
                    tsv.push_str(&format!("{}\t{}\t{x}\t{y}\n", id.row, id.col));
                }
                if let Err(e) = std::fs::write(&path, tsv) {
                    eprintln!("error writing positions: {e}");
                    return 1;
                }
                println!("phase 2: positions -> {}", path.display());
            }
            if let Some(path) = out {
                let mut composer = Composer::new(positions, blend).with_trace(trace.clone());
                composer.highlight_tiles = highlight;
                let mosaic = composer.compose(source.as_ref());
                let res = match path.extension().and_then(|e| e.to_str()) {
                    Some("tif") | Some("tiff") => tiff::write_tiff(&path, &mosaic),
                    _ => pgm::write_pgm(&path, &mosaic),
                };
                match res {
                    Ok(()) => println!(
                        "phase 3: {}x{} mosaic -> {}",
                        mosaic.width(),
                        mosaic.height(),
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("error writing mosaic: {e}");
                        return 1;
                    }
                }
            }
            if let Some(path) = trace_out {
                if let Err(e) = std::fs::write(&path, trace.to_chrome_json()) {
                    eprintln!("error writing trace: {e}");
                    return 1;
                }
                println!("trace -> {}", path.display());
            }
            if let Some(path) = report_out {
                let report = stitch_trace::RunReport::from_trace(&trace);
                if let Err(e) = std::fs::write(&path, report.to_json()) {
                    eprintln!("error writing run report: {e}");
                    return 1;
                }
                println!(
                    "run report -> {} (kernel density {:.3}, copy/compute overlap {:.3})",
                    path.display(),
                    report.kernel_density,
                    report.copy_compute_overlap
                );
            }
            0
        }
    }
}

/// Splices a compose-unit label into an output path before the
/// extension: `m.pgm` + `c01_z02` → `m_c01_z02.pgm`.
fn unit_output_path(base: &std::path::Path, label: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("mosaic");
    let name = match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}_{label}.{ext}"),
        None => format!("{stem}_{label}"),
    };
    base.with_file_name(name)
}

/// Executes `stitch` on a multi-channel / z-stack dataset: registration
/// runs once on the reference channel, the solved frame replays across
/// every (channel, plane) compose unit, and each unit's mosaic lands in
/// its own label-suffixed file.
fn run_channel_stitch(
    dataset: &std::path::Path,
    stitcher: &dyn Stitcher,
    plan: ChannelPlan,
    blend: Blend,
    out: Option<&std::path::Path>,
    positions_out: Option<&std::path::Path>,
) -> i32 {
    let source: Arc<dyn MultiTileSource> = match MultiDirSource::open(dataset) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("error: cannot open dataset: {e}");
            return 1;
        }
    };
    let (channels, z_planes) = (source.channels(), source.z_planes());
    let corrected = plan.correct_illumination;
    let session = match ChannelSession::new(source, plan) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "stitching {} ({} channel(s) x {} plane(s), registering on channel {}{}) with {}",
        dataset.display(),
        channels,
        z_planes,
        session.plan().reference_channel,
        if corrected {
            ", flat-field corrected"
        } else {
            ""
        },
        stitcher.name()
    );
    let run = match run_channel_plan(&session, stitcher, blend) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    println!(
        "phase 1+2: {} pair(s) registered once in {:.2?}; frame replays over {} unit(s)",
        run.registration.shape.pairs(),
        run.registration.elapsed,
        run.mosaics.len()
    );
    if let Some(path) = positions_out {
        let mut tsv = String::from("row\tcol\tx\ty\n");
        for id in run.registration.shape.ids() {
            let (x, y) = run.positions.get(id);
            tsv.push_str(&format!("{}\t{}\t{x}\t{y}\n", id.row, id.col));
        }
        if let Err(e) = std::fs::write(path, tsv) {
            eprintln!("error writing positions: {e}");
            return 1;
        }
        println!("positions (shared by all units) -> {}", path.display());
    }
    if let Some(base) = out {
        for (unit, mosaic) in &run.mosaics {
            let path = unit_output_path(base, &unit.label());
            let res = match path.extension().and_then(|e| e.to_str()) {
                Some("tif") | Some("tiff") => tiff::write_tiff(&path, mosaic),
                _ => pgm::write_pgm(&path, mosaic),
            };
            match res {
                Ok(()) => println!(
                    "phase 3: {}x{} mosaic ({}) -> {}",
                    mosaic.width(),
                    mosaic.height(),
                    unit.label(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("error writing mosaic: {e}");
                    return 1;
                }
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_help_and_empty() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn parses_generate_defaults() {
        let cmd = parse(&argv("generate --out /tmp/x")).unwrap();
        match cmd {
            Command::Generate { out, config, .. } => {
                assert_eq!(out, PathBuf::from("/tmp/x"));
                assert_eq!(config.grid_rows, 8);
                assert_eq!(config.tile_width, 128);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_stitch_flags() {
        let cmd = parse(&argv(
            "stitch --dataset /d --impl pipelined-gpu --gpus 2 --threads 8 \
             --transform real --blend linear --out m.tif --highlight",
        ))
        .unwrap();
        match cmd {
            Command::Stitch {
                implementation,
                gpus,
                threads,
                transform,
                blend,
                out,
                highlight,
                ..
            } => {
                assert_eq!(implementation, Implementation::PipelinedGpu);
                assert_eq!(gpus, 2);
                assert_eq!(threads, 8);
                assert_eq!(transform, TransformKind::Real);
                assert_eq!(blend, Blend::Linear);
                assert_eq!(out, Some(PathBuf::from("m.tif")));
                assert!(highlight);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_shard_flags() {
        let cmd = parse(&argv(
            "shard --rows 10 --cols 12 --tile-width 64 --tile-height 48 \
             --shard-rows 2 --shard-cols 3 --mem-budget-mb 64 --workers 3 \
             --impl mt-cpu --threads 4 --band-rows 32 --out m.pgm --positions p.tsv \
             --preview ov.pgm --preview-scale 3",
        ))
        .unwrap();
        match cmd {
            Command::Shard {
                dataset,
                config,
                shard_rows,
                shard_cols,
                budget_mb,
                workers,
                implementation,
                threads,
                out,
                positions_out,
                band_rows,
                preview_out,
                preview_scale,
                ..
            } => {
                assert_eq!(dataset, None);
                assert_eq!((config.grid_rows, config.grid_cols), (10, 12));
                assert_eq!((config.tile_width, config.tile_height), (64, 48));
                assert_eq!((shard_rows, shard_cols), (2, 3));
                assert_eq!(budget_mb, 64);
                assert_eq!(workers, 3);
                assert_eq!(implementation, Implementation::MtCpu);
                assert_eq!(threads, 4);
                assert_eq!(out, Some(PathBuf::from("m.pgm")));
                assert_eq!(positions_out, Some(PathBuf::from("p.tsv")));
                assert_eq!(band_rows, 32);
                assert_eq!(preview_out, Some(PathBuf::from("ov.pgm")));
                assert_eq!(preview_scale, 3);
            }
            other => panic!("{other:?}"),
        }
        // datasets and synthetic specs both parse; GPU variants are
        // rejected at run time, not parse time
        match parse(&argv("shard --dataset /d")).unwrap() {
            Command::Shard {
                dataset,
                preview_out,
                preview_scale,
                ..
            } => {
                assert_eq!(dataset, Some(PathBuf::from("/d")));
                assert_eq!(preview_out, None, "preview is opt-in");
                assert_eq!(preview_scale, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_fault_tolerance_flags() {
        let cmd = parse(&argv(
            "stitch --dataset /d --retries 5 --retry-backoff-ms 20 \
             --fault-spec transient=0.1,gpu-h2d=0.05 --allow-partial \
             --health-json h.json",
        ))
        .unwrap();
        match cmd {
            Command::Stitch {
                retries,
                retry_backoff_ms,
                fault_spec,
                allow_partial,
                health_out,
                ..
            } => {
                assert_eq!(retries, 5);
                assert_eq!(retry_backoff_ms, 20);
                assert_eq!(fault_spec.as_deref(), Some("transient=0.1,gpu-h2d=0.05"));
                assert!(allow_partial);
                assert_eq!(health_out, Some(PathBuf::from("h.json")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_tolerance_defaults_are_strict() {
        match parse(&argv("stitch --dataset /d")).unwrap() {
            Command::Stitch {
                retries,
                retry_backoff_ms,
                fault_spec,
                allow_partial,
                health_out,
                ..
            } => {
                assert_eq!(retries, 3);
                assert_eq!(retry_backoff_ms, 1);
                assert_eq!(fault_spec, None);
                assert!(!allow_partial, "partial mosaics must be opt-in");
                assert_eq!(health_out, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_observability_flags() {
        let cmd = parse(&argv(
            "stitch --dataset /d --trace-json t.json --run-report r.json",
        ))
        .unwrap();
        match cmd {
            Command::Stitch {
                trace_out,
                report_out,
                ..
            } => {
                assert_eq!(trace_out, Some(PathBuf::from("t.json")));
                assert_eq!(report_out, Some(PathBuf::from("r.json")));
            }
            other => panic!("{other:?}"),
        }
        // both default off: tracing must cost nothing unless asked for
        match parse(&argv("stitch --dataset /d")).unwrap() {
            Command::Stitch {
                trace_out,
                report_out,
                ..
            } => {
                assert_eq!(trace_out, None);
                assert_eq!(report_out, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_backend_flag() {
        match parse(&argv("stitch --dataset /d --backend scalar")).unwrap() {
            Command::Stitch { backend, .. } => assert_eq!(backend, Some(BackendChoice::Scalar)),
            other => panic!("{other:?}"),
        }
        // absent: defer to STITCH_BACKEND / auto-detection at dispatch time
        match parse(&argv("stitch --dataset /d")).unwrap() {
            Command::Stitch { backend, .. } => assert_eq!(backend, None),
            other => panic!("{other:?}"),
        }
        let err = parse(&argv("stitch --dataset /d --backend sse9")).unwrap_err();
        assert!(err.contains("--backend"), "{err}");
        assert!(err.contains("sse9"), "{err}");
    }

    #[test]
    fn parses_serve_batch_flags() {
        let cmd = parse(&argv(
            "serve-batch --jobs batch.txt --workers 4 --budget-mb 128 \
             --stream-slots 1 --trace-json t.json --reports-dir out",
        ))
        .unwrap();
        match cmd {
            Command::ServeBatch {
                jobs,
                workers,
                budget_mb,
                stream_slots,
                trace_out,
                reports_dir,
            } => {
                assert_eq!(jobs, PathBuf::from("batch.txt"));
                assert_eq!(workers, 4);
                assert_eq!(budget_mb, 128);
                assert_eq!(stream_slots, Some(1));
                assert_eq!(trace_out, Some(PathBuf::from("t.json")));
                assert_eq!(reports_dir, Some(PathBuf::from("out")));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve-batch --jobs batch.txt")).unwrap() {
            Command::ServeBatch {
                workers,
                budget_mb,
                stream_slots,
                ..
            } => {
                assert_eq!((workers, budget_mb), (2, 256));
                assert_eq!(stream_slots, None, "leasing unbounded by default");
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve-batch")).is_err(), "missing --jobs");
        assert!(parse(&argv("serve-batch --jobs f --stream-slots x")).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let cmd = parse(&argv(
            "serve --workers 3 --max-pending 16 --watchdog-ms 5000 --tenant-jobs 4 \
             --rate-burst 10 --rate-per-sec 2.5 --tenant-cap-mb 64 \
             --breaker-threshold 3 --drain cancel-all --socket /tmp/s.sock",
        ))
        .unwrap();
        match cmd {
            Command::Serve {
                workers,
                max_pending,
                watchdog_ms,
                tenant_jobs,
                rate_burst,
                rate_per_sec,
                tenant_cap_mb,
                breaker_threshold,
                drain,
                socket,
                ..
            } => {
                assert_eq!(workers, 3);
                assert_eq!(max_pending, 16);
                assert_eq!(watchdog_ms, Some(5000));
                assert_eq!(tenant_jobs, 4);
                assert_eq!(rate_burst, Some(10));
                assert_eq!(rate_per_sec, 2.5);
                assert_eq!(tenant_cap_mb, Some(64));
                assert_eq!(breaker_threshold, 3);
                assert_eq!(drain, DrainPolicy::CancelAll);
                assert_eq!(socket, Some(PathBuf::from("/tmp/s.sock")));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve")).unwrap() {
            Command::Serve {
                workers,
                watchdog_ms,
                rate_burst,
                drain,
                socket,
                ..
            } => {
                assert_eq!(workers, 2);
                assert_eq!(watchdog_ms, None, "no default watchdog");
                assert_eq!(rate_burst, None, "rate limiting is opt-in");
                assert_eq!(drain, DrainPolicy::Finish);
                assert_eq!(socket, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve --drain nope")).is_err());
        assert!(parse(&argv("serve --watchdog-ms x")).is_err());
    }

    /// In-memory `Write + Send` sink for driving [`serve_session`].
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_session_streams_events_and_drains_on_eof() {
        let daemon = ServeDaemon::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let input: &[u8] = b"submit name=a grid=2x2 tile=32x24 compose=false\n\
                             this is not a request\n\
                             ping\n";
        let buf = SharedBuf::default();
        serve_session(&daemon, input, buf.clone(), Some(DrainPolicy::Finish)).unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("event=queued tenant=default job=a"), "{text}");
        assert!(
            text.contains("event=error"),
            "malformed line contained: {text}"
        );
        assert!(text.contains("event=pong"), "{text}");
        assert!(
            text.contains("event=done tenant=default job=a status=completed"),
            "{text}"
        );
        assert!(text.contains("event=drained"), "EOF must drain: {text}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("stitch")).is_err(), "missing --dataset");
        assert!(parse(&argv("stitch --dataset /d --impl nope")).is_err());
        assert!(parse(&argv("generate --out /tmp/x --rows abc")).is_err());
        assert!(
            parse(&argv("generate --out")).is_err(),
            "flag without value"
        );
    }

    #[test]
    fn parses_channel_flags() {
        match parse(&argv("generate --out /tmp/x --channels 3 --z-planes 4")).unwrap() {
            Command::Generate {
                channels, z_planes, ..
            } => assert_eq!((channels, z_planes), (3, 4)),
            other => panic!("{other:?}"),
        }
        // single-channel by default: existing datasets are unchanged
        match parse(&argv("generate --out /tmp/x")).unwrap() {
            Command::Generate {
                channels, z_planes, ..
            } => assert_eq!((channels, z_planes), (1, 1)),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv(
            "stitch --dataset /d --ref-channel 1 --correct-illumination --maxz",
        ))
        .unwrap();
        match cmd {
            Command::Stitch {
                ref_channel,
                correct_illumination,
                maxz,
                ..
            } => {
                assert_eq!(ref_channel, 1);
                assert!(correct_illumination);
                assert!(maxz);
            }
            other => panic!("{other:?}"),
        }
        // defaults: register on channel 0, no correction, full stacks
        match parse(&argv("stitch --dataset /d")).unwrap() {
            Command::Stitch {
                ref_channel,
                correct_illumination,
                maxz,
                ..
            } => {
                assert_eq!(ref_channel, 0);
                assert!(!correct_illumination, "correction must be opt-in");
                assert!(!maxz);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("stitch --dataset /d --ref-channel x")).is_err());
    }

    #[test]
    fn unit_output_paths_carry_the_label() {
        assert_eq!(
            unit_output_path(std::path::Path::new("/t/m.pgm"), "c01_z02"),
            PathBuf::from("/t/m_c01_z02.pgm")
        );
        assert_eq!(
            unit_output_path(std::path::Path::new("m.tif"), "c00_maxz"),
            PathBuf::from("m_c00_maxz.tif")
        );
        assert_eq!(
            unit_output_path(std::path::Path::new("mosaic"), "c00_z00"),
            PathBuf::from("mosaic_c00_z00")
        );
    }

    #[test]
    fn default_implementation_is_pipelined_cpu() {
        match parse(&argv("stitch --dataset /d")).unwrap() {
            Command::Stitch { implementation, .. } => {
                assert_eq!(implementation, Implementation::PipelinedCpu)
            }
            other => panic!("{other:?}"),
        }
    }
}
