//! # stitching — hybrid CPU-GPU large-scale microscopy image stitching
//!
//! A from-scratch Rust reproduction of *Blattner et al., "A Hybrid
//! CPU-GPU System for Stitching Large Scale Optical Microscopy Images"*
//! (ICPP 2014) — the system that became NIST's MIST tool. This facade
//! crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`fft`] | FFT substrate (FFTW/cuFFT stand-in): mixed-radix, Bluestein, 2-D, real-input, planner |
//! | [`image`] | image substrate: buffers, TIFF/PGM codecs, synthetic plate generator |
//! | [`pipeline`] | general-purpose bounded-queue pipeline framework (§VI-A's "general purpose API") |
//! | [`gpu`] | simulated accelerator: device memory, streams, events, kernels, profiler |
//! | [`core`] | the stitching system: PCIAM, six implementation variants, global optimization, composition |
//! | [`sched`] | multi-job scheduler: shared-resource arbitration, fair-share dispatch, admission control |
//! | [`serve`] | long-running job daemon: line protocol, tenant quotas, watchdogs, load shedding, graceful drain |
//! | [`sim`] | virtual-time discrete-event simulator for the paper's scaling experiments |
//! | [`trace`] | unified run observability: merged CPU+GPU span timeline, Chrome-trace export, run reports |
//!
//! ## Quickstart
//!
//! ```
//! use stitching::prelude::*;
//! use stitching::image::{ScanConfig, SyntheticPlate};
//!
//! // synthesize a small plate (stands in for the paper's A10 dataset)
//! let plate = SyntheticPlate::generate(ScanConfig {
//!     grid_rows: 2,
//!     grid_cols: 3,
//!     tile_width: 64,
//!     tile_height: 48,
//!     overlap: 0.25,
//!     ..ScanConfig::default()
//! });
//! let source = SyntheticSource::new(plate);
//!
//! // phase 1: relative displacements
//! let result = SimpleCpuStitcher::default().compute_displacements(&source);
//! assert!(result.is_complete());
//!
//! // phase 2: absolute positions; phase 3: compose
//! let positions = GlobalOptimizer::default().solve(&result);
//! let mosaic = Composer::new(positions, Blend::Overlay).compose(&source);
//! assert!(mosaic.width() > 64);
//! ```

pub mod cli;

pub use stitch_core as core;
pub use stitch_fft as fft;
pub use stitch_gpu as gpu;
pub use stitch_image as image;
pub use stitch_pipeline as pipeline;
pub use stitch_sched as sched;
pub use stitch_serve as serve;
pub use stitch_sim as sim;
pub use stitch_trace as trace;

/// One-stop imports for applications.
pub mod prelude {
    pub use stitch_core::prelude::*;
    pub use stitch_gpu::{Device, DeviceConfig};
    pub use stitch_image::{GridManifest, Image, ScanConfig, SyntheticPlate};
    pub use stitch_trace::{RunReport, TraceHandle};
}
