//! Concurrency battery for the multi-job scheduler.
//!
//! The contract under test: a scheduler may interleave, reorder, and
//! arbitrate shared substrates (FFT plan cache, bounded spectrum pool,
//! device stream slots, memory budget) however it likes, but
//!
//! 1. every admitted job's result is **bit-identical** to the same job
//!    run solo with nothing shared (differential oracle),
//! 2. cancellation and panics free every lease (memory reservation,
//!    pool buffers, stream slots) — nothing leaks, siblings never
//!    deadlock,
//! 3. admission control never over-commits the memory budget, under any
//!    randomized job storm, and
//! 4. `run_sched_stress(seed)` is deterministic in its seed.

use std::time::Duration;

use stitch_testkit::{run_sched_stress, solo_digests};
use stitching::gpu::{Device, DeviceConfig};
use stitching::image::ScanConfig;
use stitching::sched::{JobStatus, JobVariant, Scheduler, SchedulerConfig, StitchJob, SubmitError};

/// Differential oracle: for every stress seed, each job that completed
/// under the scheduler — sharing the plan cache, pool quotas, device
/// streams, and memory budget with its siblings — must produce the exact
/// displacements, positions, and mosaic hash as a solo run with fully
/// private resources.
#[test]
fn admitted_jobs_are_bit_identical_to_solo_runs() {
    for seed in [1u64, 7, 42] {
        let out = run_sched_stress(seed);
        assert!(out.resources_clean(), "seed {seed}: dirty resources");
        let solo = solo_digests(&out.config);
        let mut compared = 0;
        for digest in &out.digests {
            assert_eq!(
                digest.status,
                JobStatus::Completed,
                "seed {seed}: job {} did not complete",
                digest.name
            );
            let baseline = &solo[&digest.name];
            assert_eq!(
                digest, baseline,
                "seed {seed}: job {} diverged from its solo run",
                digest.name
            );
            compared += 1;
        }
        assert!(compared > 0, "seed {seed}: no job was admitted");
    }
}

/// Determinism: equal seeds give equal digests and equal rejection sets,
/// regardless of thread interleaving; resources always come back clean.
#[test]
fn stress_is_pure_in_its_seed_and_never_overcommits() {
    for seed in 0..6u64 {
        let a = run_sched_stress(seed);
        let b = run_sched_stress(seed);
        assert_eq!(a, b, "seed {seed}: reruns diverged");
        for out in [&a, &b] {
            assert!(
                out.high_water <= out.config.memory_budget,
                "seed {seed}: high water {} exceeded budget {}",
                out.high_water,
                out.config.memory_budget
            );
            assert_eq!(
                out.reservations_after, 0,
                "seed {seed}: leaked reservations"
            );
            assert_eq!(out.leases_after, 0, "seed {seed}: leaked pool leases");
        }
    }
}

/// Cancelling jobs mid-flight releases every lease class: memory
/// reservations, spectrum-pool buffers, and device stream slots all
/// return to zero, and the remaining jobs still complete.
#[test]
fn cancellation_frees_every_lease_class() {
    let device = Device::new(
        0,
        DeviceConfig {
            stream_slots: Some(1),
            ..DeviceConfig::small(256 << 20)
        },
    );
    let sched = Scheduler::new(SchedulerConfig {
        workers: 2,
        device: Some(device.clone()),
        ..SchedulerConfig::default()
    });
    let scan = ScanConfig::for_grid(4, 4, 64, 48, 0.25, 11);
    // One pool-leasing CPU job, one stream-leasing GPU job, one survivor.
    let doomed_cpu = sched
        .submit(
            StitchJob::new("doomed-cpu", scan.clone())
                .variant(JobVariant::PipelinedCpu)
                .threads(2)
                .compose(false),
        )
        .unwrap();
    let doomed_gpu = sched
        .submit(
            StitchJob::new("doomed-gpu", scan.clone())
                .variant(JobVariant::SimpleGpu)
                .compose(false),
        )
        .unwrap();
    let survivor = sched
        .submit(
            StitchJob::new("survivor", ScanConfig::for_grid(2, 2, 32, 24, 0.25, 3)).compose(false),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(15));
    doomed_cpu.cancel();
    doomed_gpu.cancel();
    // Cancellation is best-effort: a job that already crossed its last
    // phase boundary completes. Either way, no lease survives.
    for h in [&doomed_cpu, &doomed_gpu] {
        let out = h.wait();
        assert!(
            matches!(out.status, JobStatus::Cancelled | JobStatus::Completed),
            "{}: unexpected status {:?}",
            out.name,
            out.status
        );
    }
    assert_eq!(survivor.wait().status, JobStatus::Completed);
    sched.join();
    assert_eq!(sched.arbiter().active_reservations(), 0, "memory leaked");
    assert_eq!(sched.arbiter().leased_spectra(), 0, "pool leases leaked");
    assert_eq!(device.active_stream_leases(), 0, "stream leases leaked");
}

/// Panic containment: a job whose stitcher panics is reported as
/// `Failed`, its leases are released by the drop-guard, and sibling jobs
/// sharing the same pool, budget, and device are unaffected.
#[test]
fn panicking_job_is_contained_and_siblings_complete() {
    let device = Device::new(
        0,
        DeviceConfig {
            stream_slots: Some(1),
            ..DeviceConfig::small(256 << 20)
        },
    );
    let sched = Scheduler::new(SchedulerConfig {
        workers: 2,
        device: Some(device.clone()),
        ..SchedulerConfig::default()
    });
    // Zero-size tiles make the FFT planner assert inside the stitcher —
    // a genuine panic on a worker thread, not an error return.
    let bomb = sched
        .submit(StitchJob::new("bomb", ScanConfig::for_grid(2, 2, 0, 0, 0.25, 3)).compose(false))
        .unwrap();
    let mut siblings = Vec::new();
    for (i, variant) in [
        JobVariant::SimpleCpu,
        JobVariant::PipelinedCpu,
        JobVariant::SimpleGpu,
    ]
    .into_iter()
    .enumerate()
    {
        siblings.push(
            sched
                .submit(
                    StitchJob::new(
                        format!("sib{i}"),
                        ScanConfig::for_grid(2, 2, 32, 24, 0.25, 5),
                    )
                    .variant(variant)
                    .compose(false),
                )
                .unwrap(),
        );
    }
    let out = bomb.wait();
    assert!(
        matches!(out.status, JobStatus::Failed(_)),
        "bomb should fail, got {:?}",
        out.status
    );
    for h in &siblings {
        let out = h.wait();
        assert_eq!(
            out.status,
            JobStatus::Completed,
            "sibling {} must survive the panic",
            out.name
        );
        assert!(out.result.is_some());
    }
    sched.join();
    assert_eq!(
        sched.arbiter().active_reservations(),
        0,
        "panic leaked memory"
    );
    assert_eq!(
        sched.arbiter().leased_spectra(),
        0,
        "panic leaked pool leases"
    );
    assert_eq!(
        device.active_stream_leases(),
        0,
        "panic leaked stream leases"
    );

    // The pool survived: the same scheduler still runs new jobs.
    let after = sched
        .submit(StitchJob::new("after", ScanConfig::for_grid(2, 2, 32, 24, 0.25, 9)).compose(false))
        .unwrap();
    assert_eq!(after.wait().status, JobStatus::Completed);
}

/// Randomized job storm against a deliberately tight budget: admissions
/// may queue and interleave arbitrarily, but the arbiter's high-water
/// mark never exceeds the budget, and only impossible jobs are rejected.
#[test]
fn job_storm_never_overcommits_the_budget() {
    let probe = StitchJob::new("probe", ScanConfig::for_grid(2, 2, 48, 40, 0.25, 1));
    // Budget fits roughly two mid-size jobs at once.
    let budget = probe.estimated_bytes() * 2 + 1024;
    let sched = Scheduler::new(SchedulerConfig {
        workers: 3,
        memory_budget: budget,
        max_pending: 4,
        ..SchedulerConfig::default()
    });
    let mut handles = Vec::new();
    let mut rejected = 0;
    for i in 0..12 {
        let (rows, cols) = [(2, 2), (2, 3), (3, 3), (8, 8)][i % 4];
        let job = StitchJob::new(
            format!("storm{i}"),
            ScanConfig::for_grid(rows, cols, 48, 40, 0.25, i as u64),
        )
        .priority((i % 3 + 1) as u32)
        .compose(false);
        let too_large = job.estimated_bytes() > budget;
        match sched.submit_blocking(job) {
            Ok(h) => {
                assert!(!too_large, "storm{i} should have been rejected");
                handles.push(h);
            }
            Err(SubmitError::TooLarge { .. }) => {
                assert!(too_large, "storm{i} fits but was rejected");
                rejected += 1;
            }
            Err(e) => panic!("storm{i}: unexpected refusal {e}"),
        }
    }
    assert_eq!(rejected, 3, "every 8x8 job exceeds the two-job budget");
    for h in &handles {
        assert_eq!(h.wait().status, JobStatus::Completed);
    }
    sched.join();
    assert!(
        sched.arbiter().high_water() <= budget,
        "over-committed: {} > {}",
        sched.arbiter().high_water(),
        budget
    );
    assert_eq!(sched.arbiter().active_reservations(), 0);
}
