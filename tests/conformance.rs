//! Conformance suite: the cross-variant differential oracle over the
//! full sweep, plus stress-runner reproducibility.
//!
//! `STITCH_TESTKIT_EXHAUSTIVE=1` widens the sweep (bigger grids, more
//! prime geometries, harsher noise); the default sweep is sized for
//! tier-1 CI. On failure the oracle prints a structured report naming
//! the variant, tile pair / tile / pixel, and both values — see
//! EXPERIMENTS.md § "Conformance & stress testing" for how to read it.
//!
//! This binary also runs under the counting allocator so it can assert
//! the hot-path invariant directly: steady-state PCIAM pair computation
//! performs zero heap allocations after warmup.

use stitch_core::{Correlator, OpCounters, PairKind, TransformKind};
use stitch_fft::{PlanMode, Planner};
use stitch_image::{Scene, SceneParams};
use stitch_testkit::alloc::CountingAllocator;
use stitch_testkit::{run_case, run_stress, sweep};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Runs `pairs` full PCIAM pair computations (two forward FFTs + NCC +
/// inverse + peaks + CCF refine) after `warmup` of the same, returning
/// the number of heap allocations the measured iterations performed on
/// this thread.
fn steady_state_pair_allocations(kind: TransformKind, warmup: usize, pairs: usize) -> u64 {
    let (w, h) = (64usize, 48usize);
    let scene = Scene::generate(
        w as f64 * 3.0,
        h as f64 * 3.0,
        SceneParams {
            colony_count: 20,
            seed: 99,
            ..SceneParams::default()
        },
    );
    let a = scene.render_region(w as f64, h as f64, w, h, 0.02, 30.0, 1);
    let b = scene.render_region(w as f64 * 1.75, h as f64 + 2.0, w, h, 0.02, 30.0, 2);
    let planner = Planner::new(PlanMode::Estimate);
    let mut ctx = Correlator::new(kind, &planner, w, h, OpCounters::new_shared());
    let run_pair = |ctx: &mut Correlator| {
        let fa = ctx.forward_fft(&a);
        let fb = ctx.forward_fft(&b);
        ctx.displacement_oriented(&fa, &fb, &a, &b, Some(PairKind::West))
    };
    let mut sink = Vec::with_capacity(warmup + pairs);
    for _ in 0..warmup {
        sink.push(run_pair(&mut ctx));
    }
    let before = CountingAllocator::thread_allocations();
    for _ in 0..pairs {
        sink.push(run_pair(&mut ctx));
    }
    let measured = CountingAllocator::thread_allocations() - before;
    // sanity: the work actually happened and was deterministic
    assert!(sink.windows(2).all(|p| p[0] == p[1]), "unstable result");
    measured
}

#[test]
fn steady_state_pair_computation_is_allocation_free() {
    for kind in [TransformKind::Complex, TransformKind::Real] {
        let allocs = steady_state_pair_allocations(kind, 3, 5);
        assert_eq!(
            allocs, 0,
            "{kind:?}: steady-state pair computation allocated {allocs} times"
        );
    }
}

#[test]
fn all_variants_bit_identical_across_sweep() {
    let cases = sweep();
    assert!(cases.len() >= 12, "sweep shrank below the acceptance floor");
    assert!(
        cases.iter().any(|c| c.has_prime_dim()),
        "sweep lost its prime-tile (Bluestein) coverage"
    );
    let mut failures = Vec::new();
    for case in &cases {
        let report = run_case(case);
        assert_eq!(report.variants.len(), 6, "{}", report.label);
        // Cross-variant agreement is the hard invariant. Truth recovery
        // is asserted separately below on well-conditioned cases.
        if !report.is_clean() {
            failures.push(report);
        }
    }
    assert!(
        failures.is_empty(),
        "variant divergence in {} of {} cases:\n{}",
        failures.len(),
        cases.len(),
        failures
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn well_conditioned_cases_also_match_ground_truth() {
    // Generous overlap, moderate noise: phase 1 should nail every pair
    // and phase 2 must land every tile exactly. (Thin-overlap and
    // high-noise sweep cases may legitimately miss a featureless pair —
    // identically in all variants — so truth is only asserted here.)
    for case in sweep()
        .into_iter()
        .filter(|c| c.overlap >= 0.25 && c.noise_sigma <= 40.0)
    {
        let report = run_case(&case);
        assert!(report.is_clean(), "{report}");
        assert!(
            report.truth_errors <= 2,
            "phase-1 truth errors ({}) out of line: {report}",
            report.truth_errors
        );
        assert_eq!(
            report.position_deviation,
            (0, 0),
            "phase 2 must recover exact positions: {report}"
        );
    }
}

#[test]
fn stress_runner_is_reproducible() {
    for seed in [1u64, 2026] {
        let a = run_stress(seed);
        let b = run_stress(seed);
        assert_eq!(a, b, "seed {seed}: same seed must give identical outcome");
        assert!(
            a.cpu_gpu_agree(),
            "seed {seed}: pipelined CPU and GPU diverged under stress\ncpu west {:?}\ngpu west {:?}",
            a.cpu_west,
            a.gpu_west
        );
    }
}
