//! Conformance suite: the cross-variant differential oracle over the
//! full sweep, plus stress-runner reproducibility.
//!
//! `STITCH_TESTKIT_EXHAUSTIVE=1` widens the sweep (bigger grids, more
//! prime geometries, harsher noise); the default sweep is sized for
//! tier-1 CI. On failure the oracle prints a structured report naming
//! the variant, tile pair / tile / pixel, and both values — see
//! EXPERIMENTS.md § "Conformance & stress testing" for how to read it.

use stitch_testkit::{run_case, run_stress, sweep};

#[test]
fn all_variants_bit_identical_across_sweep() {
    let cases = sweep();
    assert!(cases.len() >= 12, "sweep shrank below the acceptance floor");
    assert!(
        cases.iter().any(|c| c.has_prime_dim()),
        "sweep lost its prime-tile (Bluestein) coverage"
    );
    let mut failures = Vec::new();
    for case in &cases {
        let report = run_case(case);
        assert_eq!(report.variants.len(), 6, "{}", report.label);
        // Cross-variant agreement is the hard invariant. Truth recovery
        // is asserted separately below on well-conditioned cases.
        if !report.is_clean() {
            failures.push(report);
        }
    }
    assert!(
        failures.is_empty(),
        "variant divergence in {} of {} cases:\n{}",
        failures.len(),
        cases.len(),
        failures
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn well_conditioned_cases_also_match_ground_truth() {
    // Generous overlap, moderate noise: phase 1 should nail every pair
    // and phase 2 must land every tile exactly. (Thin-overlap and
    // high-noise sweep cases may legitimately miss a featureless pair —
    // identically in all variants — so truth is only asserted here.)
    for case in sweep()
        .into_iter()
        .filter(|c| c.overlap >= 0.25 && c.noise_sigma <= 40.0)
    {
        let report = run_case(&case);
        assert!(report.is_clean(), "{report}");
        assert!(
            report.truth_errors <= 2,
            "phase-1 truth errors ({}) out of line: {report}",
            report.truth_errors
        );
        assert_eq!(
            report.position_deviation,
            (0, 0),
            "phase 2 must recover exact positions: {report}"
        );
    }
}

#[test]
fn stress_runner_is_reproducible() {
    for seed in [1u64, 2026] {
        let a = run_stress(seed);
        let b = run_stress(seed);
        assert_eq!(a, b, "seed {seed}: same seed must give identical outcome");
        assert!(
            a.cpu_gpu_agree(),
            "seed {seed}: pipelined CPU and GPU diverged under stress\ncpu west {:?}\ngpu west {:?}",
            a.cpu_west,
            a.gpu_west
        );
    }
}
