//! Acceptance tests for the fault-tolerance work: deterministic fault
//! injection against every stitcher variant, checking (a) transient
//! faults + retries leave the output bit-identical, (b) a permanently
//! corrupt tile degrades to a partial result under `--allow-partial`,
//! and (c) strict mode aborts cleanly instead of hanging.

use std::time::Duration;

use stitching::gpu::{Device, DeviceConfig, GpuFaultConfig};
use stitching::image::{ScanConfig, SyntheticPlate};
use stitching::prelude::*;

fn scan(rows: usize, cols: usize, seed: u64) -> ScanConfig {
    ScanConfig {
        grid_rows: rows,
        grid_cols: cols,
        tile_width: 64,
        tile_height: 48,
        overlap: 0.25,
        stage_jitter: 2.5,
        backlash_x: 1.0,
        noise_sigma: 40.0,
        vignette: 0.03,
        seed,
    }
}

fn variants() -> Vec<Box<dyn Stitcher>> {
    let gpu = || Device::new(0, DeviceConfig::small(128 << 20));
    vec![
        Box::new(SimpleCpuStitcher::default()),
        Box::new(MtCpuStitcher::new(2)),
        Box::new(PipelinedCpuStitcher::new(2)),
        Box::new(SimpleGpuStitcher::new(gpu())),
        Box::new(PipelinedGpuStitcher::single(gpu())),
        Box::new(FijiStyleStitcher::new(2)),
    ]
}

/// A retry policy that spins fast (no real sleeping) with enough budget
/// that a 20% per-attempt transient rate cannot plausibly exhaust it.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        deadline: None,
    }
}

#[test]
fn transient_faults_with_retries_are_bit_identical() {
    let cfg = scan(3, 4, 1101);
    let clean = SyntheticSource::new(SyntheticPlate::generate(cfg.clone()));
    let reference = SimpleCpuStitcher::default().compute_displacements(&clean);
    assert!(reference.is_complete());

    let spec = FaultSpec::parse("seed=7,transient=0.2").unwrap();
    let policy = FailurePolicy {
        retry: fast_retry(),
        allow_partial: false,
    };
    for s in variants() {
        let faulty = FaultySource::new(
            SyntheticSource::new(SyntheticPlate::generate(cfg.clone())),
            spec.clone(),
        );
        let r = s
            .try_compute_displacements(&faulty, &policy)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        assert!(r.is_complete(), "{}", s.name());
        assert_eq!(r.west, reference.west, "{}", s.name());
        assert_eq!(r.north, reference.north, "{}", s.name());
        assert!(r.health.failed_tiles().is_empty(), "{}", s.name());
        assert!(
            faulty.stats().transient > 0,
            "{}: seed 7 at 20% must inject something",
            s.name()
        );
        assert!(
            r.health.total_retries > 0,
            "{}: injected transients imply retries",
            s.name()
        );
    }
}

#[test]
fn corrupt_tile_degrades_to_partial_result() {
    let cfg = scan(3, 4, 1202);
    let truth = SyntheticPlate::generate(cfg.clone()).positions().to_vec();
    let dead = TileId::new(1, 1);
    let spec = FaultSpec::parse("corrupt=1.1").unwrap();
    let policy = FailurePolicy {
        retry: fast_retry(),
        allow_partial: true,
    };
    for s in variants() {
        let faulty = FaultySource::new(
            SyntheticSource::new(SyntheticPlate::generate(cfg.clone())),
            spec.clone(),
        );
        let r = s
            .try_compute_displacements(&faulty, &policy)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        assert_eq!(r.health.failed_tiles(), vec![dead], "{}", s.name());
        assert!(r.health.is_degraded(), "{}", s.name());
        assert!(r.is_complete_modulo_failures(), "{}", s.name());
        assert!(!r.is_complete(), "{}", s.name());

        // phase 2 must still place every survivor exactly (up to the
        // global translation the optimizer normalizes away)
        let positions = GlobalOptimizer::default().solve(&r);
        let anchor = TileId::new(0, 0);
        let (ax, ay) = positions.get(anchor);
        let (tx, ty) = truth[r.shape.index(anchor)];
        for id in r.shape.ids() {
            if id == dead {
                continue;
            }
            let (x, y) = positions.get(id);
            let (wx, wy) = truth[r.shape.index(id)];
            assert_eq!(
                (x - ax, y - ay),
                (wx - tx, wy - ty),
                "{}: survivor {id} misplaced",
                s.name()
            );
        }

        // the machine-readable summary must name the lost tile
        let json = r.health.to_json();
        assert!(json.contains("\"failed\""), "{}: {json}", s.name());
        assert!(
            json.contains("1,1") || json.contains("(1, 1)"),
            "{}: {json}",
            s.name()
        );

        // and composition must still produce a mosaic (with a hole)
        let mosaic = Composer::new(positions, Blend::First).compose(&faulty);
        assert!(mosaic.width() > 0 && mosaic.height() > 0, "{}", s.name());
    }
}

#[test]
fn strict_mode_aborts_cleanly_on_corrupt_tile() {
    let cfg = scan(3, 4, 1303);
    let spec = FaultSpec::parse("corrupt=2.0").unwrap();
    let policy = FailurePolicy {
        retry: fast_retry(),
        allow_partial: false,
    };
    for s in variants() {
        let faulty = FaultySource::new(
            SyntheticSource::new(SyntheticPlate::generate(cfg.clone())),
            spec.clone(),
        );
        let err = s
            .try_compute_displacements(&faulty, &policy)
            .err()
            .unwrap_or_else(|| panic!("{}: strict mode must refuse a lost tile", s.name()));
        match &err {
            StitchError::Tile { id, .. } => assert_eq!(*id, TileId::new(2, 0), "{}", s.name()),
            other => panic!("{}: unexpected error {other:?}", s.name()),
        }
        assert!(
            err.to_string().contains("allow-partial"),
            "{}: the error must point at the escape hatch: {err}",
            s.name()
        );
    }
}

#[test]
fn device_faults_and_tile_faults_compose() {
    // one spec string drives both layers: tile transients retried by the
    // reader, device transfer/kernel faults retried by the stream workers
    let cfg = scan(3, 4, 1404);
    let clean = SyntheticSource::new(SyntheticPlate::generate(cfg.clone()));
    let reference = SimpleCpuStitcher::default().compute_displacements(&clean);

    let spec_str = "seed=5,transient=0.15,gpu-seed=5,gpu-h2d=0.1,gpu-d2h=0.1,gpu-kernel=0.1";
    let tile_spec = FaultSpec::parse(spec_str).unwrap();
    let gpu_cfg = GpuFaultConfig::parse(spec_str).unwrap().unwrap();
    let device_config = DeviceConfig {
        fault: Some(gpu_cfg),
        ..DeviceConfig::small(128 << 20)
    };
    let policy = FailurePolicy {
        retry: fast_retry(),
        allow_partial: false,
    };

    let stitchers: Vec<Box<dyn Stitcher>> = vec![
        Box::new(SimpleGpuStitcher::new(Device::new(
            0,
            device_config.clone(),
        ))),
        Box::new(PipelinedGpuStitcher::single(Device::new(
            0,
            device_config.clone(),
        ))),
    ];
    for s in stitchers {
        let faulty = FaultySource::new(
            SyntheticSource::new(SyntheticPlate::generate(cfg.clone())),
            tile_spec.clone(),
        );
        let r = s
            .try_compute_displacements(&faulty, &policy)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        assert!(r.is_complete(), "{}", s.name());
        assert_eq!(r.west, reference.west, "{}", s.name());
        assert_eq!(r.north, reference.north, "{}", s.name());
    }
}

#[test]
fn both_endpoints_of_a_pair_can_fail() {
    // adjacent corrupt tiles: the shared pair must be voided exactly once
    // and every variant must still terminate and report both tiles
    let cfg = scan(3, 4, 1505);
    let spec = FaultSpec::parse("corrupt=1.1+1.2").unwrap();
    let policy = FailurePolicy {
        retry: fast_retry(),
        allow_partial: true,
    };
    for s in variants() {
        let faulty = FaultySource::new(
            SyntheticSource::new(SyntheticPlate::generate(cfg.clone())),
            spec.clone(),
        );
        let r = s
            .try_compute_displacements(&faulty, &policy)
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        let mut failed = r.health.failed_tiles();
        failed.sort();
        assert_eq!(
            failed,
            vec![TileId::new(1, 1), TileId::new(1, 2)],
            "{}",
            s.name()
        );
        assert!(r.is_complete_modulo_failures(), "{}", s.name());
    }
}
