//! End-to-end tests for unified run observability: the merged CPU+GPU
//! timeline, Chrome-trace export, and the run report.

use stitching::gpu::{Device, DeviceConfig};
use stitching::image::{ScanConfig, SyntheticPlate};
use stitching::prelude::*;
use stitching::trace::json;

fn profile_source() -> SyntheticSource {
    // kernel time must dominate per-item overheads for the Fig 7 vs
    // Fig 9 density contrast to show, hence larger-than-default tiles
    SyntheticSource::new(SyntheticPlate::generate(ScanConfig {
        grid_rows: 6,
        grid_cols: 6,
        tile_width: 160,
        tile_height: 120,
        overlap: 0.25,
        stage_jitter: 2.0,
        backlash_x: 1.0,
        noise_sigma: 40.0,
        vignette: 0.03,
        seed: 83,
    }))
}

fn transfer_device(id: usize) -> Device {
    Device::new(
        id,
        DeviceConfig {
            memory_bytes: 256 << 20,
            ..DeviceConfig::with_transfer_model()
        },
    )
}

/// The PR's acceptance criterion: on the same transfer-model scenario,
/// the *merged-timeline* kernel density of Pipelined-GPU is strictly
/// greater than Simple-GPU's (the paper's Fig 7 vs Fig 9 contrast, now
/// measured from the unified trace instead of the raw device profiler).
#[test]
fn merged_timeline_density_pipelined_beats_simple() {
    let src = profile_source();

    let trace_simple = TraceHandle::new();
    SimpleGpuStitcher::new(transfer_device(0))
        .with_trace(trace_simple.clone())
        .compute_displacements(&src);
    let rep_simple = RunReport::from_trace(&trace_simple);

    let trace_pipe = TraceHandle::new();
    PipelinedGpuStitcher::single(transfer_device(1))
        .with_trace(trace_pipe.clone())
        .compute_displacements(&src);
    let rep_pipe = RunReport::from_trace(&trace_pipe);

    assert!(
        rep_pipe.kernel_density > rep_simple.kernel_density,
        "pipelined {:.3} should beat simple {:.3}",
        rep_pipe.kernel_density,
        rep_simple.kernel_density
    );
    // the pipelined run overlaps copies with kernels; the synchronous
    // run cannot (every op is followed by a stream synchronize)
    assert!(rep_pipe.copy_compute_overlap > rep_simple.copy_compute_overlap);
}

/// A single traced stitch run emits one Chrome-trace file holding both
/// CPU stage spans and simulated-device spans on a shared clock.
#[test]
fn chrome_trace_merges_host_and_device_rows() {
    let src = profile_source();
    let trace = TraceHandle::new();
    PipelinedGpuStitcher::single(transfer_device(0))
        .with_trace(trace.clone())
        .compute_displacements(&src);

    let spans = trace.spans();
    let host = |s: &stitching::trace::TraceSpan| s.track.starts_with("pipe0/");
    let device = |s: &stitching::trace::TraceSpan| s.track.starts_with("gpu0/");
    assert!(spans.iter().any(host), "host stage spans present");
    assert!(spans.iter().any(device), "device spans present");
    // shared clock: the two families of spans interleave — each one's
    // window overlaps the other's rather than sitting disjoint
    let window = |f: &dyn Fn(&stitching::trace::TraceSpan) -> bool| {
        let lo = spans.iter().filter(|s| f(s)).map(|s| s.start_ns).min();
        let hi = spans.iter().filter(|s| f(s)).map(|s| s.end_ns).max();
        (lo.unwrap(), hi.unwrap())
    };
    let (h0, h1) = window(&|s: &stitching::trace::TraceSpan| host(s));
    let (d0, d1) = window(&|s: &stitching::trace::TraceSpan| device(s));
    assert!(h0 < d1 && d0 < h1, "host {h0}..{h1} vs device {d0}..{d1}");

    let chrome = trace.to_chrome_json();
    json::validate(&chrome).expect("well-formed JSON");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("pipe0/read"), "host row named");
    assert!(chrome.contains("gpu0/"), "device row named");

    // queue occupancy stats made it into the report
    let rep = RunReport::from_trace(&trace);
    assert!(rep.queues.iter().any(|q| q.name == "gpu0.q12"));
    assert!(rep.queues.iter().any(|q| q.name == "q56"));
    json::validate(&rep.to_json()).expect("well-formed report JSON");
}

/// `--trace-json` / `--run-report` work end to end through the CLI.
#[test]
fn cli_writes_trace_and_report() {
    use stitching::cli::{parse, run};
    let argv = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();

    let dir = std::env::temp_dir().join("stitch_trace_it");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();
    let cmd = parse(&argv(&format!(
        "generate --out {dir_s} --rows 2 --cols 3 --tile-width 64 --tile-height 48"
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);

    let trace_path = dir.join("trace.json");
    let report_path = dir.join("report.json");
    let cmd = parse(&argv(&format!(
        "stitch --dataset {dir_s} --impl pipelined-gpu --trace-json {} --run-report {}",
        trace_path.display(),
        report_path.display()
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);

    let chrome = std::fs::read_to_string(&trace_path).unwrap();
    json::validate(&chrome).expect("well-formed trace JSON");
    assert!(chrome.contains("pipe0/read"), "host rows");
    assert!(chrome.contains("gpu0/"), "device rows");

    let report = std::fs::read_to_string(&report_path).unwrap();
    json::validate(&report).expect("well-formed report JSON");
    assert!(report.contains("\"kernel_density\""));
    assert!(report.contains("\"queues\""));

    std::fs::remove_dir_all(&dir).ok();
}

/// Cross-job device contention: two GPU jobs submitted to the scheduler
/// share one device with a single stream slot. They must serialize their
/// kernels (never deadlock), release every lease, and produce a merged
/// per-job-lane timeline that passes the strict trace checker.
#[test]
fn two_gpu_jobs_on_one_stream_serialize_without_deadlock() {
    use stitching::gpu::SpanKind;
    use stitching::sched::{JobStatus, JobVariant, Scheduler, SchedulerConfig, StitchJob};

    let device = Device::new(
        0,
        DeviceConfig {
            stream_slots: Some(1),
            ..DeviceConfig::with_transfer_model()
        },
    );
    let trace = TraceHandle::new();
    let sched = Scheduler::new(SchedulerConfig {
        workers: 2, // both jobs get a worker; only the stream slot gates
        device: Some(device.clone()),
        trace: trace.clone(),
        ..SchedulerConfig::default()
    });
    let scan = |seed| ScanConfig::for_grid(3, 3, 64, 48, 0.25, seed);
    let a = sched
        .submit(
            StitchJob::new("a", scan(1))
                .variant(JobVariant::SimpleGpu)
                .compose(false),
        )
        .unwrap();
    let b = sched
        .submit(
            StitchJob::new("b", scan(2))
                .variant(JobVariant::SimpleGpu)
                .compose(false),
        )
        .unwrap();
    assert_eq!(a.wait().status, JobStatus::Completed, "job a must finish");
    assert_eq!(b.wait().status, JobStatus::Completed, "job b must finish");
    sched.join();
    assert_eq!(device.active_stream_leases(), 0, "stream leases returned");

    // One stream slot means whole-job serialization on the device: at no
    // instant were two kernels in flight.
    assert_eq!(
        device.profiler().peak_concurrency(SpanKind::Kernel),
        1,
        "kernels overlapped on a one-stream device"
    );

    // The merged timeline carries one lane family per job, device rows
    // included, and survives the strict Chrome-trace checker.
    let spans = trace.spans();
    assert!(spans.iter().any(|s| s.track.starts_with("job.a/")));
    assert!(spans.iter().any(|s| s.track.starts_with("job.b/")));
    assert!(
        spans
            .iter()
            .any(|s| s.track.starts_with("job.a/gpu0/") && s.cat == "kernel"),
        "per-job device kernel rows present"
    );
    json::validate(&trace.to_chrome_json()).expect("well-formed merged trace");
}
