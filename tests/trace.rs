//! End-to-end tests for unified run observability: the merged CPU+GPU
//! timeline, Chrome-trace export, and the run report.

use stitching::gpu::{Device, DeviceConfig};
use stitching::image::{ScanConfig, SyntheticPlate};
use stitching::prelude::*;
use stitching::trace::json;

fn profile_source() -> SyntheticSource {
    // kernel time must dominate per-item overheads for the Fig 7 vs
    // Fig 9 density contrast to show, hence larger-than-default tiles
    SyntheticSource::new(SyntheticPlate::generate(ScanConfig {
        grid_rows: 6,
        grid_cols: 6,
        tile_width: 160,
        tile_height: 120,
        overlap: 0.25,
        stage_jitter: 2.0,
        backlash_x: 1.0,
        noise_sigma: 40.0,
        vignette: 0.03,
        seed: 83,
    }))
}

fn transfer_device(id: usize) -> Device {
    Device::new(
        id,
        DeviceConfig {
            memory_bytes: 256 << 20,
            ..DeviceConfig::with_transfer_model()
        },
    )
}

/// The PR's acceptance criterion: on the same transfer-model scenario,
/// the *merged-timeline* kernel density of Pipelined-GPU is strictly
/// greater than Simple-GPU's (the paper's Fig 7 vs Fig 9 contrast, now
/// measured from the unified trace instead of the raw device profiler).
#[test]
fn merged_timeline_density_pipelined_beats_simple() {
    let src = profile_source();

    let trace_simple = TraceHandle::new();
    SimpleGpuStitcher::new(transfer_device(0))
        .with_trace(trace_simple.clone())
        .compute_displacements(&src);
    let rep_simple = RunReport::from_trace(&trace_simple);

    let trace_pipe = TraceHandle::new();
    PipelinedGpuStitcher::single(transfer_device(1))
        .with_trace(trace_pipe.clone())
        .compute_displacements(&src);
    let rep_pipe = RunReport::from_trace(&trace_pipe);

    assert!(
        rep_pipe.kernel_density > rep_simple.kernel_density,
        "pipelined {:.3} should beat simple {:.3}",
        rep_pipe.kernel_density,
        rep_simple.kernel_density
    );
    // the pipelined run overlaps copies with kernels; the synchronous
    // run cannot (every op is followed by a stream synchronize)
    assert!(rep_pipe.copy_compute_overlap > rep_simple.copy_compute_overlap);
}

/// A single traced stitch run emits one Chrome-trace file holding both
/// CPU stage spans and simulated-device spans on a shared clock.
#[test]
fn chrome_trace_merges_host_and_device_rows() {
    let src = profile_source();
    let trace = TraceHandle::new();
    PipelinedGpuStitcher::single(transfer_device(0))
        .with_trace(trace.clone())
        .compute_displacements(&src);

    let spans = trace.spans();
    let host = |s: &stitching::trace::TraceSpan| s.track.starts_with("pipe0/");
    let device = |s: &stitching::trace::TraceSpan| s.track.starts_with("gpu0/");
    assert!(spans.iter().any(host), "host stage spans present");
    assert!(spans.iter().any(device), "device spans present");
    // shared clock: the two families of spans interleave — each one's
    // window overlaps the other's rather than sitting disjoint
    let window = |f: &dyn Fn(&stitching::trace::TraceSpan) -> bool| {
        let lo = spans.iter().filter(|s| f(s)).map(|s| s.start_ns).min();
        let hi = spans.iter().filter(|s| f(s)).map(|s| s.end_ns).max();
        (lo.unwrap(), hi.unwrap())
    };
    let (h0, h1) = window(&|s: &stitching::trace::TraceSpan| host(s));
    let (d0, d1) = window(&|s: &stitching::trace::TraceSpan| device(s));
    assert!(h0 < d1 && d0 < h1, "host {h0}..{h1} vs device {d0}..{d1}");

    let chrome = trace.to_chrome_json();
    json::validate(&chrome).expect("well-formed JSON");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("pipe0/read"), "host row named");
    assert!(chrome.contains("gpu0/"), "device row named");

    // queue occupancy stats made it into the report
    let rep = RunReport::from_trace(&trace);
    assert!(rep.queues.iter().any(|q| q.name == "gpu0.q12"));
    assert!(rep.queues.iter().any(|q| q.name == "q56"));
    json::validate(&rep.to_json()).expect("well-formed report JSON");
}

/// `--trace-json` / `--run-report` work end to end through the CLI.
#[test]
fn cli_writes_trace_and_report() {
    use stitching::cli::{parse, run};
    let argv = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();

    let dir = std::env::temp_dir().join("stitch_trace_it");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();
    let cmd = parse(&argv(&format!(
        "generate --out {dir_s} --rows 2 --cols 3 --tile-width 64 --tile-height 48"
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);

    let trace_path = dir.join("trace.json");
    let report_path = dir.join("report.json");
    let cmd = parse(&argv(&format!(
        "stitch --dataset {dir_s} --impl pipelined-gpu --trace-json {} --run-report {}",
        trace_path.display(),
        report_path.display()
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);

    let chrome = std::fs::read_to_string(&trace_path).unwrap();
    json::validate(&chrome).expect("well-formed trace JSON");
    assert!(chrome.contains("pipe0/read"), "host rows");
    assert!(chrome.contains("gpu0/"), "device rows");

    let report = std::fs::read_to_string(&report_path).unwrap();
    json::validate(&report).expect("well-formed report JSON");
    assert!(report.contains("\"kernel_density\""));
    assert!(report.contains("\"queues\""));

    std::fs::remove_dir_all(&dir).ok();
}
