//! Multi-channel / z-stack conformance battery: registration runs once
//! on the reference channel and replays everywhere, flat-field
//! correction helps exactly where it should, and the scheduler-backed
//! batch driver is a drop-in for the sequential one.

use std::sync::Arc;

use stitch_core::{ChannelPlan, ChannelSession, MultiSyntheticSource, ZMode};
use stitch_image::{MultiChannelPlate, MultiScanConfig, ScanConfig};
use stitch_sched::{run_channel_batch, ChannelBatchOptions, JobStatus, Scheduler, SchedulerConfig};
use stitch_testkit::run_channel_differential;

#[test]
fn channel_differential_battery_is_clean() {
    for seed in [5u64, 11] {
        let report = run_channel_differential(seed);
        assert!(
            report.is_clean(),
            "seed {seed}: {} violations over {} cases:\n{}",
            report.mismatches.len(),
            report.cases,
            report
                .mismatches
                .iter()
                .map(|m| format!("  {}: {}", m.label, m.detail))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn channel_differential_digest_is_pure_in_seed() {
    let a = run_channel_differential(42);
    let b = run_channel_differential(42);
    assert_eq!(a.digest, b.digest, "same seed must reproduce bit-for-bit");
    let c = run_channel_differential(43);
    assert_ne!(
        a.digest, c.digest,
        "different seed stitches different plates"
    );
}

/// The accuracy sweep's headline shape, pinned end to end: no vignette →
/// the estimator snaps to the identity and the error counts are equal;
/// strong vignette → corrected registration is strictly more accurate.
#[test]
fn correction_is_noop_when_flat_and_wins_when_vignetted() {
    let report = run_channel_differential(5);
    let flat = &report.accuracy[0];
    assert_eq!(flat.vignette, 0.0);
    assert_eq!(
        flat.estimated_falloff, 0.0,
        "un-vignetted stacks must estimate the exact identity"
    );
    assert_eq!(flat.uncorrected_errors, flat.corrected_errors);
    for p in &report.accuracy {
        assert!(
            p.corrected_errors <= p.uncorrected_errors,
            "correction made vignette {} worse: {} -> {}",
            p.vignette,
            p.uncorrected_errors,
            p.corrected_errors
        );
        if p.vignette >= report.improvement_threshold {
            assert!(
                p.corrected_errors < p.uncorrected_errors,
                "no strict win at vignette {}: {} vs {}",
                p.vignette,
                p.uncorrected_errors,
                p.corrected_errors
            );
        }
    }
}

/// Scheduler batch over a 3-channel × 2-plane acquisition: one
/// registration job, six replay jobs, every replay sharing the solved
/// frame and skipping phase 1.
#[test]
fn scheduler_batch_registers_once_and_replays_each_unit() {
    let cfg = MultiScanConfig::for_channels(
        ScanConfig {
            grid_rows: 2,
            grid_cols: 2,
            tile_width: 48,
            tile_height: 36,
            ..ScanConfig::default()
        },
        3,
        2,
    );
    let source = Arc::new(MultiSyntheticSource::new(MultiChannelPlate::generate(cfg)));
    let session = ChannelSession::new(source, ChannelPlan::default()).expect("valid plan");
    let sched = Scheduler::new(SchedulerConfig {
        workers: 2,
        ..SchedulerConfig::default()
    });
    let batch = run_channel_batch(&sched, "plate", &session, &ChannelBatchOptions::default())
        .expect("batch completes");
    assert_eq!(batch.registration.status, JobStatus::Completed);
    assert!(
        batch.registration.result.is_some(),
        "registration runs phase 1"
    );
    assert_eq!(batch.units.len(), 6);
    for (unit, out) in &batch.units {
        assert_eq!(out.status, JobStatus::Completed, "{}", unit.label());
        assert!(out.result.is_none(), "replay jobs skip phase 1");
        assert_eq!(out.positions.as_ref(), Some(&batch.positions));
        assert!(out.mosaic.is_some());
    }
    // Dispatch order shows exactly one registration before the replays.
    let order = sched.dispatch_order();
    assert_eq!(order[0], "plate.reg");
    assert_eq!(order.len(), 7);
    sched.join();
    assert_eq!(sched.arbiter().active_reservations(), 0);
}

/// Max-z projection mode: one mosaic per channel, and the projection is
/// a pixelwise upper bound of every plane's mosaic at the same frame.
#[test]
fn maxz_mode_produces_one_mosaic_per_channel() {
    let cfg = MultiScanConfig::for_channels(
        ScanConfig {
            grid_rows: 2,
            grid_cols: 2,
            tile_width: 48,
            tile_height: 36,
            ..ScanConfig::default()
        },
        2,
        3,
    );
    let source = Arc::new(MultiSyntheticSource::new(MultiChannelPlate::generate(cfg)));
    let session = ChannelSession::new(
        source,
        ChannelPlan {
            z_mode: ZMode::MaxProject,
            ..ChannelPlan::default()
        },
    )
    .expect("valid plan");
    let sched = Scheduler::new(SchedulerConfig::default());
    let batch = run_channel_batch(&sched, "mz", &session, &ChannelBatchOptions::default())
        .expect("batch completes");
    assert_eq!(batch.units.len(), 2);
    for (unit, out) in &batch.units {
        assert!(unit.plane.is_none(), "max-z units carry no plane index");
        assert_eq!(out.status, JobStatus::Completed);
    }
}
