//! Workspace-level property tests: invariants that span crates.

use proptest::prelude::*;
use stitching::core::grid::{GridShape, Traversal};
use stitching::core::pciam::{ccf_at, overlap_pixels, peak_candidates};
use stitching::core::prelude::*;
use stitching::core::stitcher::StitchResult;
use stitching::image::{
    FlatFieldEstimator, Image, MultiChannelPlate, MultiScanConfig, ScanConfig, Scene, SceneParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every traversal visits every tile of any grid exactly once.
    #[test]
    fn traversals_are_permutations(rows in 1usize..12, cols in 1usize..12) {
        let shape = GridShape::new(rows, cols);
        for t in Traversal::ALL {
            let order = t.order(shape);
            prop_assert_eq!(order.len(), shape.tiles());
            let mut seen = vec![false; shape.tiles()];
            for id in order {
                let i = shape.index(id);
                prop_assert!(!seen[i], "{:?} revisits {:?}", t, id);
                seen[i] = true;
            }
        }
    }

    /// Chained-diagonal's live window never exceeds 2·min_dim + 2.
    #[test]
    fn chained_diagonal_window_bound(rows in 1usize..14, cols in 1usize..14) {
        let shape = GridShape::new(rows, cols);
        let peak = Traversal::ChainedDiagonal.peak_live(shape);
        prop_assert!(peak <= 2 * rows.min(cols) + 2, "peak {} for {}x{}", peak, rows, cols);
    }

    /// The four peak candidates are exactly the signed residues of the
    /// peak modulo the tile size.
    #[test]
    fn peak_candidates_are_residues(w in 2usize..64, h in 2usize..64, idx_seed in 0usize..10_000) {
        let idx = idx_seed % (w * h);
        for (dx, dy) in peak_candidates(idx, w, h) {
            prop_assert_eq!(dx.rem_euclid(w as i64), (idx % w) as i64);
            prop_assert_eq!(dy.rem_euclid(h as i64), (idx / w) as i64);
            // |x − w| == w exactly when the residue is zero
            prop_assert!(dx.abs() <= w as i64 && dy.abs() <= h as i64);
        }
    }

    /// CCF is symmetric: ccf(a, b, d) == ccf(b, a, −d).
    #[test]
    fn ccf_symmetry(dx in -20i64..20, dy in -14i64..14, seed in 0u64..500) {
        let scene = Scene::generate(96.0, 96.0, SceneParams { seed, ..SceneParams::default() });
        let a = scene.render_region(8.0, 8.0, 24, 16, 0.0, 0.0, 1);
        let b = scene.render_region(20.0, 12.0, 24, 16, 0.0, 0.0, 2);
        let fwd = ccf_at(&a, &b, dx, dy);
        let rev = ccf_at(&b, &a, -dx, -dy);
        match (fwd, rev) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            other => prop_assert!(false, "asymmetric availability {:?}", other),
        }
    }

    /// CCF is invariant under affine intensity changes of either tile.
    #[test]
    fn ccf_affine_invariance(gain_num in 2u32..6, offset in 0u16..500) {
        let a = Image::from_fn(16, 12, |x, y| ((x * 31 + y * 17) % 199) as u16 + 100);
        let b = Image::from_fn(16, 12, |x, y| ((x * 13 + y * 41) % 173) as u16 + 80);
        let scaled = b.map(|v| v * gain_num as u16 + offset);
        let c1 = ccf_at(&a, &b, 3, 2).unwrap();
        let c2 = ccf_at(&a, &scaled, 3, 2).unwrap();
        prop_assert!((c1 - c2).abs() < 1e-9, "{} vs {}", c1, c2);
    }

    /// overlap_pixels is symmetric in sign and bounded by the tile area.
    #[test]
    fn overlap_pixels_properties(w in 1usize..64, h in 1usize..64, dx in -70i64..70, dy in -70i64..70) {
        let n = overlap_pixels(w, h, dx, dy);
        prop_assert_eq!(n, overlap_pixels(w, h, -dx, -dy));
        prop_assert!(n >= 0 && n <= (w * h) as i64);
        if dx == 0 && dy == 0 {
            prop_assert_eq!(n, (w * h) as i64);
        }
    }

    /// Global optimization is exact on any consistent displacement system
    /// (path invariance): positions derived from a random truth raster are
    /// recovered up to the gauge.
    #[test]
    fn global_opt_path_invariance(
        rows in 1usize..5,
        cols in 1usize..5,
        step_x in 30i64..60,
        step_y in 25i64..50,
        seed in 0u64..1000,
    ) {
        let shape = GridShape::new(rows, cols);
        let truth: Vec<(i64, i64)> = shape
            .ids()
            .map(|id| {
                let r = (seed.wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((id.row * 31 + id.col * 7) as u64) >> 20) % 7;
                (id.col as i64 * step_x + r as i64 - 3, id.row as i64 * step_y + (r as i64 % 3))
            })
            .collect();
        let mut result = StitchResult::empty(shape);
        for id in shape.ids() {
            let i = shape.index(id);
            if let Some(west) = shape.west(id) {
                let (x0, y0) = truth[shape.index(west)];
                let (x1, y1) = truth[i];
                result.west[i] = Some(Displacement::new(x1 - x0, y1 - y0, 0.9));
            }
            if let Some(north) = shape.north(id) {
                let (x0, y0) = truth[shape.index(north)];
                let (x1, y1) = truth[i];
                result.north[i] = Some(Displacement::new(x1 - x0, y1 - y0, 0.9));
            }
        }
        for method in [Method::SpanningTree, Method::LeastSquares] {
            let opt = GlobalOptimizer { method, ..GlobalOptimizer::default() };
            let sol = opt.solve(&result);
            prop_assert_eq!(sol.max_deviation(&truth), (0, 0), "{:?}", method);
        }
    }

    /// Tiled rendering of a volumetric scene equals the whole-region
    /// render, for every focal plane: region rasterization is a pure
    /// function of absolute plate coordinates. (Vignette and noise are
    /// excluded by design — the first is tile-fixed, the second
    /// per-exposure, so neither can tile.)
    #[test]
    fn volume_render_region_tiles_exactly(seed in 0u64..200, plane in 0usize..3) {
        let scene = Scene::generate_volume(
            96.0,
            72.0,
            SceneParams { seed, ..SceneParams::default() },
            3,
            0.35,
        );
        let plane = plane as f64;
        let whole = scene.render_region_plane(6.0, 4.0, 40, 24, plane, 0.0, 0.0, 0);
        let left = scene.render_region_plane(6.0, 4.0, 20, 24, plane, 0.0, 0.0, 0);
        let right = scene.render_region_plane(26.0, 4.0, 20, 24, plane, 0.0, 0.0, 0);
        for y in 0..24usize {
            for x in 0..40usize {
                let tiled = if x < 20 { left.get(x, y) } else { right.get(x - 20, y) };
                prop_assert_eq!(whole.get(x, y), tiled, "at ({}, {})", x, y);
            }
        }
    }

    /// The flat-field estimate of an un-vignetted plate is the *exact*
    /// identity (the flatness prior snaps near-flat fits to zero), and
    /// applying it returns every tile bit-for-bit.
    #[test]
    fn flatfield_of_unvignetted_plate_is_identity(seed in 0u64..100) {
        let base = ScanConfig {
            grid_rows: 3,
            grid_cols: 3,
            tile_width: 48,
            tile_height: 36,
            vignette: 0.0,
            seed,
            ..ScanConfig::default()
        };
        let mut cfg = MultiScanConfig::for_channels(base, 2, 2);
        for ch in &mut cfg.channels {
            ch.vignette = 0.0;
            // Sparse bright-background scenes: the per-pixel minimum then
            // tracks the (flat) background instead of scene structure.
            ch.scene.colony_count = 3;
            ch.scene.texture_amplitude = 60.0;
            ch.scene.background = 10_000.0;
            ch.scene.illumination_amplitude = 0.0;
            ch.noise_sigma = 20.0;
        }
        let plate = MultiChannelPlate::generate(cfg);
        for ch in 0..plate.channels() {
            let mut est = FlatFieldEstimator::new(48, 36);
            for z in 0..plate.z_planes() {
                for r in 0..3 {
                    for c in 0..3 {
                        est.add(&plate.render_tile(ch, z, r, c));
                    }
                }
            }
            let flat = est.finish();
            prop_assert!(flat.is_identity(), "channel {} falloff {}", ch, flat.falloff());
            let tile = plate.render_tile(ch, 0, 1, 1);
            prop_assert_eq!(&flat.apply(&tile), &tile, "apply must be bit-exact");
        }
    }

    /// Seeded multi-channel generation is deterministic: the same config
    /// reproduces positions and every (channel, plane) tile bit-for-bit,
    /// and all channels share one set of stage positions.
    #[test]
    fn multichannel_generation_is_deterministic(seed in 0u64..200) {
        let cfg = MultiScanConfig::for_channels(
            ScanConfig {
                grid_rows: 2,
                grid_cols: 2,
                tile_width: 32,
                tile_height: 24,
                seed,
                ..ScanConfig::default()
            },
            2,
            2,
        );
        let a = MultiChannelPlate::generate(cfg.clone());
        let b = MultiChannelPlate::generate(cfg);
        prop_assert_eq!(a.positions(), b.positions());
        for ch in 0..2usize {
            for z in 0..2usize {
                prop_assert_eq!(
                    &a.render_tile(ch, z, 1, 1),
                    &b.render_tile(ch, z, 1, 1),
                    "channel {} plane {}", ch, z
                );
            }
        }
    }

    /// Composition with Overlay blend never invents pixel values: every
    /// mosaic pixel is either 0 (uncovered) or present in some tile.
    #[test]
    fn overlay_pixels_come_from_tiles(seed in 0u64..200) {
        let shape = GridShape::new(1, 2);
        let a = Image::from_fn(8, 6, |x, y| ((x + y) as u64 * 37 % 997) as u16 + 1);
        let b = Image::from_fn(8, 6, |x, y| ((x * y) as u64 * 53 % 991) as u16 + 1);
        let src = MemorySource::new(shape, vec![a.clone(), b.clone()]);
        let dx = 3 + (seed % 5) as i64;
        let positions = AbsolutePositions { shape, positions: vec![(0, 0), (dx, 1)] };
        let mosaic = Composer::new(positions, Blend::Overlay).compose(&src);
        for y in 0..mosaic.height() {
            for x in 0..mosaic.width() {
                let v = mosaic.get(x, y);
                if v != 0 {
                    let in_a = a.pixels().contains(&v);
                    let in_b = b.pixels().contains(&v);
                    prop_assert!(in_a || in_b, "pixel {} at ({},{})", v, x, y);
                }
            }
        }
    }
}
