//! In-process integration tests for the `stitch` CLI: parse + run over a
//! real temporary dataset.

use stitching::cli::{parse, run, Command};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

#[test]
fn generate_then_info_then_stitch() {
    let dir = std::env::temp_dir().join("stitch_cli_it");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();

    // generate
    let cmd = parse(&argv(&format!(
        "generate --out {dir_s} --rows 2 --cols 3 --tile-width 64 --tile-height 48"
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);
    assert!(dir.join("manifest.tsv").exists());
    assert!(dir.join("img_r000_c000.tif").exists());

    // info
    let cmd = parse(&argv(&format!("info --dataset {dir_s}"))).unwrap();
    assert_eq!(run(cmd), 0);

    // stitch with outputs
    let mosaic = dir.join("mosaic.pgm");
    let pos = dir.join("pos.tsv");
    let cmd = parse(&argv(&format!(
        "stitch --dataset {dir_s} --impl simple-cpu --out {} --positions {}",
        mosaic.display(),
        pos.display()
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);
    assert!(mosaic.exists());
    let tsv = std::fs::read_to_string(&pos).unwrap();
    assert!(tsv.starts_with("row\tcol\tx\ty\n"));
    assert_eq!(tsv.lines().count(), 1 + 6, "header + one line per tile");

    // the mosaic decodes and is larger than a single tile
    let img = stitching::image::pgm::read_pgm(&mosaic).unwrap();
    assert!(img.width() > 64 && img.height() > 48);

    // real-transform path also works end to end
    let cmd = parse(&argv(&format!(
        "stitch --dataset {dir_s} --impl pipelined-cpu --transform real"
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stitch_missing_dataset_fails_cleanly() {
    let cmd = parse(&argv("stitch --dataset /nonexistent/place")).unwrap();
    assert_eq!(run(cmd), 1);
}

#[test]
fn info_missing_dataset_fails_cleanly() {
    let cmd = parse(&argv("info --dataset /nonexistent/place")).unwrap();
    assert_eq!(run(cmd), 1);
}

#[test]
fn simulate_runs() {
    let cmd = parse(&argv("simulate --machine laptop --rows 8 --cols 8")).unwrap();
    assert!(matches!(cmd, Command::Simulate { .. }));
    assert_eq!(run(cmd), 0);
}

#[test]
fn help_runs() {
    assert_eq!(run(Command::Help), 0);
}
