//! In-process integration tests for the `stitch` CLI: parse + run over a
//! real temporary dataset.

use stitching::cli::{parse, run, Command};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

#[test]
fn generate_then_info_then_stitch() {
    let dir = std::env::temp_dir().join("stitch_cli_it");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();

    // generate
    let cmd = parse(&argv(&format!(
        "generate --out {dir_s} --rows 2 --cols 3 --tile-width 64 --tile-height 48"
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);
    assert!(dir.join("manifest.tsv").exists());
    assert!(dir.join("img_c00_z00_r000_c000.tif").exists());

    // info
    let cmd = parse(&argv(&format!("info --dataset {dir_s}"))).unwrap();
    assert_eq!(run(cmd), 0);

    // stitch with outputs
    let mosaic = dir.join("mosaic.pgm");
    let pos = dir.join("pos.tsv");
    let cmd = parse(&argv(&format!(
        "stitch --dataset {dir_s} --impl simple-cpu --out {} --positions {}",
        mosaic.display(),
        pos.display()
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);
    assert!(mosaic.exists());
    let tsv = std::fs::read_to_string(&pos).unwrap();
    assert!(tsv.starts_with("row\tcol\tx\ty\n"));
    assert_eq!(tsv.lines().count(), 1 + 6, "header + one line per tile");

    // the mosaic decodes and is larger than a single tile
    let img = stitching::image::pgm::read_pgm(&mosaic).unwrap();
    assert!(img.width() > 64 && img.height() > 48);

    // real-transform path also works end to end
    let cmd = parse(&argv(&format!(
        "stitch --dataset {dir_s} --impl pipelined-cpu --transform real"
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_then_stitch_multichannel_stack() {
    let dir = std::env::temp_dir().join("stitch_cli_it_channels");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();

    // generate a 2-channel × 2-plane stack
    let cmd = parse(&argv(&format!(
        "generate --out {dir_s} --rows 2 --cols 3 --tile-width 64 --tile-height 48 \
         --channels 2 --z-planes 2"
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);
    assert!(dir.join("manifest.tsv").exists());
    assert!(dir.join("img_c01_z01_r001_c002.tif").exists());

    // stitch: the extended manifest flips the CLI into channel mode with
    // no extra flags — one mosaic per (channel, plane)
    let mosaic = dir.join("m.pgm");
    let pos = dir.join("pos.tsv");
    let cmd = parse(&argv(&format!(
        "stitch --dataset {dir_s} --impl simple-cpu --out {} --positions {}",
        mosaic.display(),
        pos.display()
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);
    for label in ["c00_z00", "c00_z01", "c01_z00", "c01_z01"] {
        assert!(
            dir.join(format!("m_{label}.pgm")).exists(),
            "missing unit {label}"
        );
    }
    let tsv = std::fs::read_to_string(&pos).unwrap();
    assert_eq!(tsv.lines().count(), 1 + 6, "one shared frame for all units");

    // max-z + flat-field correction: one projection per channel
    let cmd = parse(&argv(&format!(
        "stitch --dataset {dir_s} --impl simple-cpu --maxz --correct-illumination \
         --ref-channel 1 --out {}",
        mosaic.display()
    )))
    .unwrap();
    assert_eq!(run(cmd), 0);
    assert!(dir.join("m_c00_maxz.pgm").exists());
    assert!(dir.join("m_c01_maxz.pgm").exists());
    let img = stitching::image::pgm::read_pgm(dir.join("m_c01_maxz.pgm")).unwrap();
    assert!(img.width() > 64 && img.height() > 48);

    // an out-of-range reference channel fails cleanly
    let cmd = parse(&argv(&format!("stitch --dataset {dir_s} --ref-channel 9"))).unwrap();
    assert_eq!(run(cmd), 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stitch_missing_dataset_fails_cleanly() {
    let cmd = parse(&argv("stitch --dataset /nonexistent/place")).unwrap();
    assert_eq!(run(cmd), 1);
}

#[test]
fn info_missing_dataset_fails_cleanly() {
    let cmd = parse(&argv("info --dataset /nonexistent/place")).unwrap();
    assert_eq!(run(cmd), 1);
}

#[test]
fn simulate_runs() {
    let cmd = parse(&argv("simulate --machine laptop --rows 8 --cols 8")).unwrap();
    assert!(matches!(cmd, Command::Simulate { .. }));
    assert_eq!(run(cmd), 0);
}

#[test]
fn help_runs() {
    assert_eq!(run(Command::Help), 0);
}
