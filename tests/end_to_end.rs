//! Cross-crate integration tests: dataset on disk → all stitcher variants
//! → global optimization → composition, checked against ground truth.

use stitching::gpu::{Device, DeviceConfig};
use stitching::image::{pgm, tiff, ScanConfig, SceneParams, SyntheticPlate};
use stitching::prelude::*;

fn scan(rows: usize, cols: usize, seed: u64) -> ScanConfig {
    ScanConfig {
        grid_rows: rows,
        grid_cols: cols,
        tile_width: 64,
        tile_height: 48,
        overlap: 0.25,
        stage_jitter: 2.5,
        backlash_x: 1.0,
        noise_sigma: 40.0,
        vignette: 0.03,
        seed,
    }
}

#[test]
fn disk_dataset_full_pipeline() {
    let dir = std::env::temp_dir().join("stitch_it_e2e");
    let _ = std::fs::remove_dir_all(&dir);
    let plate = SyntheticPlate::generate(scan(3, 4, 101));
    plate.write_to_dir(&dir).unwrap();
    let source = DirSource::open(&dir).unwrap();

    let result = PipelinedCpuStitcher::new(2).compute_displacements(&source);
    assert!(result.is_complete());
    let (tw, tn) = truth_vectors(&plate);
    // phase 1 may fail on the rare featureless pair; phase 2 must repair it
    assert!(result.count_errors(&tw, &tn, 0) <= 2);

    let positions = GlobalOptimizer::default().solve(&result);
    assert_eq!(positions.max_deviation(plate.positions()), (0, 0));

    // the mosaic must reproduce the noise-free scene up to noise/vignette:
    // sample the center of tile (1,1) and compare against the tile pixel.
    // Sample at the tile's *solved* position: the optimizer normalizes the
    // mosaic origin, so absolute truth coordinates are shifted by a global
    // translation (already checked exactly by max_deviation above).
    let (px, py) = positions.get(TileId::new(1, 1));
    let mosaic = Composer::new(positions, Blend::Average).compose(&source);
    let tile = plate.render_tile(1, 1);
    let got = mosaic.get(px as usize + 32, py as usize + 24);
    let want = tile.get(32, 24);
    assert!(
        (got as i64 - want as i64).abs() < 2500,
        "mosaic {got} vs tile {want}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_stitchers_agree_and_match_truth() {
    let plate = SyntheticPlate::generate(scan(3, 4, 202));
    let source = SyntheticSource::new(plate);
    let (tw, tn) = truth_vectors(source.plate());

    let gpu = || Device::new(0, DeviceConfig::small(128 << 20));
    let stitchers: Vec<Box<dyn Stitcher>> = vec![
        Box::new(SimpleCpuStitcher::default()),
        Box::new(MtCpuStitcher::new(2)),
        Box::new(PipelinedCpuStitcher::new(2)),
        Box::new(SimpleGpuStitcher::new(gpu())),
        Box::new(PipelinedGpuStitcher::single(gpu())),
        Box::new(FijiStyleStitcher::new(2)),
    ];
    let reference = SimpleCpuStitcher::default().compute_displacements(&source);
    for s in stitchers {
        let r = s.compute_displacements(&source);
        assert!(r.is_complete(), "{}", s.name());
        assert_eq!(r.west, reference.west, "{}", s.name());
        assert_eq!(r.north, reference.north, "{}", s.name());
        // phase 1 may fail on the rare featureless pair (equally in every
        // implementation — they share the algorithm)
        assert!(r.count_errors(&tw, &tn, 0) <= 2, "{}", s.name());
        // but phase 2 must land every tile exactly
        let positions = GlobalOptimizer::default().solve(&r);
        assert_eq!(
            positions.max_deviation(source.plate().positions()),
            (0, 0),
            "{}",
            s.name()
        );
    }
}

#[test]
fn phase2_repairs_corrupted_pair() {
    let plate = SyntheticPlate::generate(scan(3, 4, 303));
    let source = SyntheticSource::new(plate);
    let mut result = SimpleCpuStitcher::default().compute_displacements(&source);
    // corrupt one displacement as if phase 1 had failed on a blank overlap
    let idx = result.shape.index(TileId::new(1, 2));
    result.west[idx] = Some(Displacement::new(-7, 23, 0.05));
    let positions = GlobalOptimizer::default().solve(&result);
    assert_eq!(
        positions.max_deviation(source.plate().positions()),
        (0, 0),
        "low-correlation outlier must not corrupt the solution"
    );
}

#[test]
fn sparse_scene_still_stitches() {
    // early-experiment low density (§I): few cells, texture only in most
    // overlaps — phase correlation must still work
    let config = scan(2, 3, 404);
    let scene = SceneParams {
        colony_count: 2,
        cells_per_colony: (2, 5),
        ..SceneParams::default()
    };
    let plate = SyntheticPlate::generate_with_scene(config, scene);
    let source = SyntheticSource::new(plate);
    let (tw, tn) = truth_vectors(source.plate());
    let r = SimpleCpuStitcher::default().compute_displacements(&source);
    assert_eq!(r.count_errors(&tw, &tn, 1), 0, "west={:?}", r.west);
}

#[test]
fn multi_gpu_partitioning_is_exact() {
    let plate = SyntheticPlate::generate(scan(3, 7, 505));
    let source = SyntheticSource::new(plate);
    let one = PipelinedGpuStitcher::single(Device::new(0, DeviceConfig::small(128 << 20)))
        .compute_displacements(&source);
    for gpus in [2usize, 3] {
        let devices: Vec<Device> = (0..gpus)
            .map(|i| Device::new(i, DeviceConfig::small(128 << 20)))
            .collect();
        let multi =
            PipelinedGpuStitcher::new(devices, Default::default()).compute_displacements(&source);
        assert_eq!(multi.west, one.west, "{gpus} GPUs");
        assert_eq!(multi.north, one.north, "{gpus} GPUs");
    }
}

#[test]
fn composed_mosaic_round_trips_through_codecs() {
    let plate = SyntheticPlate::generate(scan(2, 2, 606));
    let source = SyntheticSource::new(plate);
    let r = SimpleCpuStitcher::default().compute_displacements(&source);
    let positions = GlobalOptimizer::default().solve(&r);
    let mosaic = Composer::new(positions, Blend::Overlay).compose(&source);
    assert_eq!(
        tiff::decode_tiff(&tiff::encode_tiff(&mosaic)).unwrap(),
        mosaic
    );
    assert_eq!(pgm::decode_pgm(&pgm::encode_pgm(&mosaic)).unwrap(), mosaic);
}

#[test]
fn spanning_tree_and_least_squares_agree_on_clean_data() {
    let plate = SyntheticPlate::generate(scan(3, 3, 707));
    let source = SyntheticSource::new(plate);
    let r = SimpleCpuStitcher::default().compute_displacements(&source);
    let ls = GlobalOptimizer {
        method: Method::LeastSquares,
        ..GlobalOptimizer::default()
    }
    .solve(&r);
    let mst = GlobalOptimizer {
        method: Method::SpanningTree,
        ..GlobalOptimizer::default()
    }
    .solve(&r);
    assert_eq!(ls.positions, mst.positions);
}
