//! Shard conformance battery: the sharded out-of-core path must be a
//! drop-in replacement for the unsharded stitch.
//!
//! * the differential oracle proves bit-identity (displacements,
//!   positions, mosaic pixels) across shard geometries;
//! * the stress battery proves determinism and leak-freedom under
//!   random geometry, tight budgets, faults, and cancellation;
//! * the peak-memory gate proves the headline claim: arbiter high-water
//!   is *flat* in grid area — a grid 20× the standard preset stitches
//!   under the same fixed budget as the 1× grid.

use std::sync::Arc;

use stitch_core::{
    Blend, FailurePolicy, GlobalOptimizer, SimpleCpuStitcher, Stitcher, SyntheticSource, TileSource,
};
use stitch_image::{ScanConfig, SyntheticPlate};
use stitch_sched::StitchJob;
use stitch_shard::{stitch_sharded, stitch_sharded_streaming, ShardConfig};
use stitch_testkit::{run_shard_differential, run_shard_stress};
use stitch_trace::TraceHandle;

#[test]
fn shard_differential_battery_is_clean() {
    let report = run_shard_differential(0xA11CE);
    assert!(
        report.is_clean(),
        "{} of {} shard cases not bit-identical:\n{}",
        report.mismatches.len(),
        report.cases,
        report
            .mismatches
            .iter()
            .map(|m| format!("  {}: {}", m.label, m.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn shard_differential_digest_is_pure_in_seed() {
    let a = run_shard_differential(42);
    let b = run_shard_differential(42);
    assert_eq!(a.digest, b.digest, "same seed must reproduce bit-for-bit");
    let c = run_shard_differential(43);
    assert_ne!(
        a.digest, c.digest,
        "different seed stitches different plates"
    );
}

#[test]
fn shard_stress_battery_is_deterministic_and_leak_free() {
    for seed in [7u64, 0xBEEF] {
        let a = run_shard_stress(seed);
        let b = run_shard_stress(seed);
        assert_eq!(
            a, b,
            "seed {seed} not deterministic:\n{:#?}\n{:#?}",
            a.fates, b.fates
        );
        assert!(
            a.resources_clean(),
            "seed {seed} leaked: {} reservations, {} spectra, high-water ok: {}\n{:#?}",
            a.leaked_reservations,
            a.leaked_spectra,
            a.high_water_ok,
            a.fates
        );
        assert_eq!(a.fates.len(), a.iterations);
    }
}

/// End-to-end pin of the degenerate-geometry fix: single-row and
/// single-column grids (where filtered edges leave orphans with only one
/// step axis available) must still round-trip bit-identically through
/// the sharded path.
#[test]
fn degenerate_single_row_and_column_grids_round_trip() {
    for (rows, cols, sr, sc) in [(1, 5, 1, 2), (5, 1, 2, 1), (1, 1, 1, 1)] {
        let scan = ScanConfig::for_grid(rows, cols, 48, 36, 0.25, 99);
        let source: Arc<dyn TileSource> =
            Arc::new(SyntheticSource::new(SyntheticPlate::generate(scan)));
        let baseline = SimpleCpuStitcher::default()
            .try_compute_displacements(&*source, &FailurePolicy::default())
            .expect("baseline");
        let base_positions = GlobalOptimizer::default().solve(&baseline);
        let config = ShardConfig {
            shard_rows: sr,
            shard_cols: sc,
            compose: Some(Blend::Overlay),
            band_rows: 5,
            ..ShardConfig::default()
        };
        let sharded = stitch_sharded(Arc::clone(&source), &config)
            .unwrap_or_else(|e| panic!("{rows}x{cols} grid in {sr}x{sc} shards: {e}"));
        assert_eq!(
            base_positions, sharded.positions,
            "{rows}x{cols} grid in {sr}x{sc} shards: positions diverge"
        );
        assert!(sharded.mosaic.is_some());
        assert_eq!(sharded.leaked_reservations, 0);
        assert_eq!(sharded.leaked_spectra, 0);
    }
}

/// The headline out-of-core gate. One shard's admission estimate fixes
/// the budget; grids of 1×, 4×, and 20× the base area must all complete
/// under it, with *identical* arbiter high-water — peak memory is a
/// function of (shard size × workers), not grid area.
#[test]
fn peak_memory_is_flat_in_grid_area_and_within_budget() {
    let (tw, th) = (32, 24);
    let workers = 2;
    // one 2x2-tile shard's scheduler admission estimate
    let est =
        StitchJob::new("estimate", ScanConfig::for_grid(2, 2, tw, th, 0.25, 0)).estimated_bytes();
    let budget = workers * est;

    // 4x6 = 24 tiles (1x), 8x12 = 96 (4x), 20x24 = 480 (20x)
    let mut high_waters = Vec::new();
    for (rows, cols) in [(4, 6), (8, 12), (20, 24)] {
        let scan = ScanConfig::for_grid(rows, cols, tw, th, 0.25, 5);
        let source: Arc<dyn TileSource> =
            Arc::new(SyntheticSource::new(SyntheticPlate::generate(scan)));
        let config = ShardConfig {
            shard_rows: 2,
            shard_cols: 2,
            workers,
            memory_budget: budget,
            ..ShardConfig::default()
        };
        let out = stitch_sharded(source, &config)
            .unwrap_or_else(|e| panic!("{rows}x{cols} under {budget}B budget: {e}"));
        assert!(
            out.high_water <= budget,
            "{rows}x{cols}: high-water {} exceeds budget {budget}",
            out.high_water
        );
        assert!(
            out.high_water >= est,
            "{rows}x{cols}: implausibly low high-water"
        );
        assert_eq!(out.leaked_reservations, 0);
        assert_eq!(out.leaked_spectra, 0);
        high_waters.push(out.high_water);
    }
    assert!(
        high_waters.windows(2).all(|w| w[0] == w[1]),
        "peak memory must be flat in grid area, got {high_waters:?}"
    );
}

/// The 20× grid again, this time streaming the mosaic out in bounded
/// bands: no band may exceed its `band_rows` bound, bands must arrive
/// top-to-bottom and reassemble the exact unsharded mosaic height.
#[test]
fn streaming_composition_stays_banded_and_ordered() {
    let scan = ScanConfig::for_grid(20, 24, 32, 24, 0.25, 5);
    let source: Arc<dyn TileSource> =
        Arc::new(SyntheticSource::new(SyntheticPlate::generate(scan)));
    let band_rows = 48;
    let config = ShardConfig {
        shard_rows: 2,
        shard_cols: 2,
        compose: Some(Blend::Overlay),
        band_rows,
        ..ShardConfig::default()
    };
    let mut next_y = 0usize;
    let mut width = None;
    let out = stitch_sharded_streaming(Arc::clone(&source), &config, &mut |y0, band| {
        assert_eq!(y0, next_y, "bands must arrive top-to-bottom, gapless");
        assert!(band.height() <= band_rows, "band taller than the bound");
        assert_eq!(*width.get_or_insert(band.width()), band.width());
        next_y += band.height();
    })
    .expect("streaming run");
    assert!(
        out.mosaic.is_none(),
        "streaming path must not materialize the mosaic"
    );
    let (mw, mh) = out.positions.mosaic_dims(32, 24);
    assert_eq!(width, Some(mw));
    assert_eq!(next_y, mh, "bands must cover the full mosaic height");
    assert!(out.max_band_bytes <= mw * band_rows * 2);
}

/// Out-of-core composition into the pyramid canvas: baking the shard
/// run's bands must reproduce the collected mosaic bit-for-bit at
/// scale 0 and match the `pyramid()` kernel at every scale above,
/// while retaining zero placements (bands are pre-composed, so only
/// the pyramid stays lazy).
#[test]
fn sharded_canvas_sink_matches_collected_mosaic_at_every_scale() {
    use stitch_canvas::{CanvasConfig, SharedCanvas};
    use stitch_core::pyramid;
    use stitch_shard::stitch_sharded_into_canvas;

    let scan = ScanConfig::for_grid(4, 6, 32, 24, 0.25, 13);
    let source: Arc<dyn TileSource> =
        Arc::new(SyntheticSource::new(SyntheticPlate::generate(scan)));
    let config = ShardConfig {
        shard_rows: 2,
        shard_cols: 2,
        compose: Some(Blend::Overlay),
        band_rows: 17, // deliberately unaligned with tile and chunk sizes
        ..ShardConfig::default()
    };
    let canvas = SharedCanvas::new(CanvasConfig {
        chunk: 64,
        ..CanvasConfig::default()
    });
    let out =
        stitch_sharded_into_canvas(Arc::clone(&source), &config, &canvas).expect("canvas-sink run");
    assert!(out.mosaic.is_none(), "sink path must stream, not collect");

    let collected = stitch_sharded(source, &config)
        .expect("collected run")
        .mosaic
        .expect("compose requested");
    let (mw, mh) = (collected.width(), collected.height());
    let base = canvas.get_region(0, 0, 0, mw, mh);
    assert_eq!(base.pixels(), collected.pixels(), "scale 0 diverges");
    let levels = pyramid(collected, canvas.max_scale());
    for (scale, level) in levels.iter().enumerate().skip(1) {
        let got = canvas.get_region(scale, 0, 0, level.width(), level.height());
        assert_eq!(got.pixels(), level.pixels(), "scale {scale} diverges");
    }
    let stats = canvas.stats();
    assert_eq!(stats.placements, 0, "baked mode retains no tile images");
}

/// Sharded runs carry per-shard trace lanes plus the merge/compose
/// phases, so a trace viewer can see every shard as its own track.
#[test]
fn trace_carries_per_shard_lanes_and_merge_track() {
    let scan = ScanConfig::for_grid(3, 4, 48, 36, 0.25, 11);
    let source: Arc<dyn TileSource> =
        Arc::new(SyntheticSource::new(SyntheticPlate::generate(scan)));
    let trace = TraceHandle::new();
    let config = ShardConfig {
        shard_rows: 2,
        shard_cols: 2,
        compose: Some(Blend::Overlay),
        trace: trace.clone(),
        ..ShardConfig::default()
    };
    stitch_sharded(source, &config).expect("traced run");
    let tracks = trace.tracks();
    for shard in ["shard-r0c0", "shard-r0c1", "shard-r1c0", "shard-r1c1"] {
        assert!(
            tracks
                .iter()
                .any(|t| t.starts_with(&format!("job.{shard}/"))),
            "missing per-shard lane for {shard} in {tracks:?}"
        );
    }
    assert!(
        tracks.iter().any(|t| t == "shard/merge"),
        "missing merge track in {tracks:?}"
    );
    assert!(
        tracks.iter().any(|t| t == "shard/compose"),
        "missing compose track in {tracks:?}"
    );
}
