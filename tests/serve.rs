//! Chaos and soak battery for the `stitch serve` daemon.
//!
//! The contract under test: a long-running daemon fed continuous job
//! submissions from multiple tenants must
//!
//! 1. force every scripted fate deterministically — healthy jobs
//!    complete, panicking jobs fail (contained), hung jobs with a
//!    watchdog time out, hung jobs cancelled by a client cancel —
//!    with `run_serve_chaos(seed)` pure in its seed,
//! 2. contain malformed input as `event=error` lines without dropping
//!    service, and survive subscriber disconnects,
//! 3. shed overload fast (tenant quotas, rate limits, queue-full →
//!    circuit breaker) instead of queueing unboundedly, and
//! 4. drain gracefully: close admission, settle every in-flight job,
//!    flush every report, release every lease.

use std::time::{Duration, Instant};

use stitch_testkit::{run_serve_chaos, run_serve_soak};
use stitching::sched::DrainPolicy;
use stitching::serve::{
    BreakerConfig, CircuitBreaker, Event, RateLimit, ServeConfig, ServeDaemon, ShedReason,
    TenantPolicy,
};

/// Chaos determinism: same seed, same fates, same contained errors —
/// regardless of worker interleaving.
#[test]
fn serve_chaos_is_deterministic_in_its_seed() {
    for seed in [3u64, 11, 2026] {
        let a = run_serve_chaos(seed);
        let b = run_serve_chaos(seed);
        assert_eq!(a, b, "seed {seed}: chaos outcome diverged");
        assert!(a.clean(), "seed {seed}: dirty invariants: {a:?}");
        assert_eq!(
            a.fates,
            a.expected_fates(),
            "seed {seed}: a job escaped its scripted fate"
        );
    }
}

/// Different seeds must produce different storms (the harness is not
/// degenerate).
#[test]
fn serve_chaos_seeds_differ() {
    let a = run_serve_chaos(1);
    let b = run_serve_chaos(2);
    assert_ne!(a.fates, b.fates);
}

/// Soak: hundreds of jobs across three tenants through a deliberately
/// tiny daemon. Every accepted job is accounted for, queue depth stays
/// bounded, nothing leaks, and the drain flushes one report per job
/// that ran.
#[test]
fn serve_soak_accounts_for_every_job_and_leaks_nothing() {
    let out = run_serve_soak(42, 120);
    assert!(out.clean(), "soak invariants violated: {out:?}");
    assert!(
        out.dropped == 0,
        "retrying client should have landed every job: {out:?}"
    );
    assert!(out.completed > 0, "soak ran no jobs: {out:?}");
}

/// CI soak smoke (run explicitly with `--ignored`): ≥500 jobs across
/// three tenants through a small daemon with quotas, rate limits, a
/// watchdog, and injected hangs/panics — zero leaked leases, bounded
/// queue depth, every accepted job accounted for, one report per job
/// that ran.
#[test]
#[ignore = "soak smoke for the CI serve job; seconds-long"]
fn serve_soak_smoke_500() {
    let out = run_serve_soak(2026, 600);
    assert!(out.clean(), "soak invariants violated: {out:?}");
    assert!(out.submitted >= 500, "not a soak: {out:?}");
}

/// Watchdog story, end to end at the daemon level: a hung job is
/// cancelled by its deadline, its leases come back, its trace lane is
/// merged and closed, and the daemon keeps serving other tenants
/// throughout.
#[test]
fn watchdog_cancels_hung_job_while_daemon_serves_others() {
    let trace = stitching::trace::TraceHandle::new();
    let daemon = ServeDaemon::new(ServeConfig {
        workers: 2,
        trace: trace.clone(),
        ..ServeConfig::default()
    });
    let rx = daemon.subscribe();
    let events = daemon.handle_line(
        "submit name=hung tenant=acme grid=2x2 tile=32x24 hang-ms=600000 watchdog-ms=25 \
         compose=false",
    );
    assert!(matches!(events.last(), Some(Event::Queued { .. })));

    // While the watchdog counts down, another tenant gets full service.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut served = 0u32;
    while served < 3 && Instant::now() < deadline {
        let events = daemon.handle_line(&format!(
            "submit name=ok{served} tenant=beta grid=2x2 tile=32x24 compose=false"
        ));
        assert!(
            matches!(events.last(), Some(Event::Queued { .. })),
            "{events:?}"
        );
        served += 1;
    }

    let summary = daemon.drain(DrainPolicy::Finish);
    assert_eq!(summary.timed_out, 1, "watchdog must have fired");
    assert_eq!(summary.completed, u64::from(served));
    assert_eq!(summary.cancelled, 0);

    // The timed-out job's terminal event says `timeout`.
    let done: Vec<Event> = rx.try_iter().collect();
    assert!(done.iter().any(|e| matches!(
        e,
        Event::Done { job, status, .. }
            if job == "hung" && *status == stitching::sched::JobStatus::TimedOut
    )));

    // Leases reclaimed, nothing tracked, daemon still answering.
    assert_eq!(daemon.scheduler().arbiter().active_reservations(), 0);
    assert_eq!(daemon.scheduler().arbiter().leased_spectra(), 0);
    assert_eq!(daemon.stats().in_flight, 0);
    assert_eq!(daemon.handle_line("ping"), vec![Event::Pong]);

    // The healthy jobs' trace lanes were merged back under the master
    // trace (`job.<tenant>/<name>/…`) — the lanes closed cleanly.
    let spans = trace.spans();
    assert!(
        spans.iter().any(|s| s.track.starts_with("job.beta/ok0/")),
        "missing merged per-job lane among {} spans",
        spans.len()
    );
    assert_eq!(trace.counters().get("serve.timed_out"), Some(&1));
}

/// Overload shedding, all three layers: tenant quota, rate limit, and
/// the queue-full → breaker path, each refusing fast with the right
/// reason.
#[test]
fn overload_sheds_fast_with_the_right_reasons() {
    let daemon = ServeDaemon::new(ServeConfig {
        workers: 1,
        max_pending: 3,
        tenant_policy: TenantPolicy {
            max_in_flight: 4,
            rate: Some(RateLimit {
                burst: 100,
                per_sec: 1000.0,
            }),
            mem_cap: None,
        },
        breaker: BreakerConfig {
            threshold: 2,
            window: Duration::from_secs(10),
            cooldown: Duration::from_secs(600),
        },
        ..ServeConfig::default()
    });
    // One hung job occupies the single worker...
    let events = daemon
        .handle_line("submit name=h0 tenant=acme grid=2x2 tile=32x24 hang-ms=600000 compose=false");
    assert!(
        matches!(events.last(), Some(Event::Queued { .. })),
        "{events:?}"
    );
    // ...and once it is *dispatched* (not merely queued), three more
    // fill the bounded pending queue deterministically.
    let deadline = Instant::now() + Duration::from_secs(30);
    while daemon.stats().running < 1 {
        assert!(Instant::now() < deadline, "h0 never dispatched");
        std::thread::sleep(Duration::from_millis(1));
    }
    for i in 1..4 {
        let events = daemon.handle_line(&format!(
            "submit name=h{i} tenant=acme grid=2x2 tile=32x24 hang-ms=600000 compose=false"
        ));
        assert!(
            matches!(events.last(), Some(Event::Queued { .. })),
            "{events:?}"
        );
    }
    // Tenant quota: acme is at max_in_flight (1 running + 3 queued).
    let events = daemon.handle_line("submit name=h4 tenant=acme grid=2x2 tile=32x24 compose=false");
    assert!(matches!(
        events.last(),
        Some(Event::Shed {
            reason: ShedReason::TenantQuota,
            ..
        })
    ));
    // Queue full: another tenant hits the scheduler's bounded queue.
    // Two queue-full overloads trip the breaker...
    for i in 0..2 {
        let events = daemon.handle_line(&format!(
            "submit name=q{i} tenant=beta grid=2x2 tile=32x24 compose=false"
        ));
        assert!(
            matches!(
                events.last(),
                Some(Event::Shed {
                    reason: ShedReason::QueueFull,
                    ..
                })
            ),
            "{events:?}"
        );
    }
    // ...after which the daemon rejects without consulting the
    // scheduler at all (cooldown is 10 min; no probe).
    let events = daemon.handle_line("submit name=q2 tenant=beta grid=2x2 tile=32x24 compose=false");
    assert!(matches!(
        events.last(),
        Some(Event::Shed {
            reason: ShedReason::BreakerOpen,
            ..
        })
    ));
    let stats = daemon.stats();
    assert_eq!(stats.breaker_trips, 1);
    assert_eq!(stats.shed, 4);
    // Unwedge and shut down cleanly: cancel the hung tenant's jobs,
    // then drain cancelling anything left.
    for i in 0..4 {
        daemon.handle_line(&format!("cancel tenant=acme name=h{i}"));
    }
    let summary = daemon.drain(DrainPolicy::CancelAll);
    assert_eq!(summary.cancelled, 4);
    assert_eq!(daemon.scheduler().arbiter().active_reservations(), 0);
}

/// A standalone rate-limit check with a manual clock (no sleeps): the
/// bucket's burst admits, the next submission sheds `rate-limit`.
#[test]
fn rate_limit_sheds_beyond_burst() {
    let daemon = ServeDaemon::new(ServeConfig {
        workers: 2,
        tenant_policy: TenantPolicy {
            max_in_flight: 100,
            rate: Some(RateLimit {
                burst: 2,
                per_sec: 0.001, // effectively no refill within the test
            }),
            mem_cap: None,
        },
        ..ServeConfig::default()
    });
    for i in 0..2 {
        let events = daemon.handle_line(&format!(
            "submit name=r{i} tenant=acme grid=2x2 tile=32x24 compose=false"
        ));
        assert!(
            matches!(events.last(), Some(Event::Queued { .. })),
            "{events:?}"
        );
    }
    let events = daemon.handle_line("submit name=r2 tenant=acme grid=2x2 tile=32x24 compose=false");
    assert!(matches!(
        events.last(),
        Some(Event::Shed {
            reason: ShedReason::RateLimit,
            ..
        })
    ));
    daemon.drain(DrainPolicy::Finish);
}

/// Per-tenant memory caps flow through to the arbiter as scope caps: a
/// job that can never fit its tenant's cap is rejected outright even
/// though the global budget would admit it.
#[test]
fn tenant_mem_cap_rejects_oversized_jobs() {
    let daemon = ServeDaemon::new(ServeConfig {
        workers: 2,
        memory_budget: 1 << 30,
        tenant_policy: TenantPolicy {
            max_in_flight: 8,
            rate: None,
            mem_cap: Some(1 << 20), // 1 MiB per tenant
        },
        ..ServeConfig::default()
    });
    // Register the tenant (first touch installs the scope cap), then
    // oversubscribe it.
    let events =
        daemon.handle_line("submit name=small tenant=acme grid=2x2 tile=32x24 compose=false");
    assert!(matches!(events.last(), Some(Event::Queued { .. })));
    let events =
        daemon.handle_line("submit name=big tenant=acme grid=8x8 tile=256x256 compose=false");
    assert!(
        matches!(events.last(), Some(Event::Rejected { .. })),
        "a job beyond its tenant's cap must be rejected: {events:?}"
    );
    let summary = daemon.drain(DrainPolicy::Finish);
    assert_eq!(summary.completed, 1);
    assert_eq!(daemon.stats().rejected, 1);
}

/// The drain request is honored over the wire, and a drained daemon
/// sheds new submissions with `draining` while still answering pings —
/// clients get a clean refusal, not a hang or a dropped connection.
#[test]
fn wire_drain_then_submissions_shed_as_draining() {
    let daemon = ServeDaemon::new(ServeConfig::default());
    daemon.handle_line("submit name=j grid=2x2 tile=32x24 compose=false");
    let events = daemon.handle_line("drain policy=finish");
    assert!(
        matches!(events.last(), Some(Event::Drained { completed: 1, .. })),
        "{events:?}"
    );
    let events = daemon.handle_line("submit name=late grid=2x2 tile=32x24 compose=false");
    assert!(matches!(
        events.last(),
        Some(Event::Shed {
            reason: ShedReason::Draining,
            ..
        })
    ));
    assert_eq!(daemon.handle_line("ping"), vec![Event::Pong]);
}

/// The breaker recovers: after the cooldown, one probe is admitted and
/// a successful probe closes the circuit (tested on the component with
/// a manual clock; the daemon path is covered above).
#[test]
fn breaker_recovers_after_cooldown() {
    let t0 = Instant::now();
    let mut b = CircuitBreaker::new(BreakerConfig {
        threshold: 2,
        window: Duration::from_millis(100),
        cooldown: Duration::from_millis(50),
    });
    b.on_overload(t0);
    b.on_overload(t0);
    assert!(b.is_open());
    let t1 = t0 + Duration::from_millis(60);
    assert!(b.admit(t1), "cooldown elapsed: probe admitted");
    b.on_accept(t1);
    assert!(!b.is_open(), "successful probe closes the breaker");
}
