//! Backend differential suite: every compute backend must produce
//! bit-identical integer displacements, global positions and mosaics
//! over the ground-truth sweep (including the prime/Bluestein tile
//! sizes), and every backend must honor the steady-state zero-allocation
//! contract of the PCIAM pair hot path.
//!
//! The active backend is process-global, so this suite lives in its own
//! integration binary (its tests serialize via
//! `stitch_testkit::backends::serial_guard`) instead of riding along in
//! `conformance.rs`, whose tests assume the backend never moves under
//! them.

use stitch_core::{Correlator, OpCounters, PairKind, TransformKind};
use stitch_fft::backend::{self, BackendChoice};
use stitch_fft::{PlanMode, Planner};
use stitch_image::{Scene, SceneParams};
use stitch_testkit::alloc::CountingAllocator;
use stitch_testkit::backends::{choices, run_backend_case, serial_guard};
use stitch_testkit::sweep;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn all_backends_bit_identical_across_sweep() {
    let cases = sweep();
    assert!(cases.len() >= 12, "sweep shrank below the acceptance floor");
    assert!(
        cases.iter().any(|c| c.has_prime_dim()),
        "sweep lost its prime-tile (Bluestein) coverage"
    );
    let mut failures = Vec::new();
    for case in &cases {
        let report = run_backend_case(case);
        if !report.is_clean() {
            failures.push(report);
        }
    }
    assert!(
        failures.is_empty(),
        "backend divergence in {} case(s):\n{}",
        failures.len(),
        failures
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Runs `pairs` full PCIAM pair computations after `warmup` of the same
/// under the currently selected backend, returning the heap allocations
/// the measured iterations performed on this thread. Mirrors the
/// conformance suite's probe; the warmup also absorbs the backend
/// module's one-time `STITCH_BACKEND` environment read.
fn steady_state_pair_allocations(kind: TransformKind, warmup: usize, pairs: usize) -> u64 {
    let (w, h) = (64usize, 48usize);
    let scene = Scene::generate(
        w as f64 * 3.0,
        h as f64 * 3.0,
        SceneParams {
            colony_count: 20,
            seed: 99,
            ..SceneParams::default()
        },
    );
    let a = scene.render_region(w as f64, h as f64, w, h, 0.02, 30.0, 1);
    let b = scene.render_region(w as f64 * 1.75, h as f64 + 2.0, w, h, 0.02, 30.0, 2);
    let planner = Planner::new(PlanMode::Estimate);
    let mut ctx = Correlator::new(kind, &planner, w, h, OpCounters::new_shared());
    let run_pair = |ctx: &mut Correlator| {
        let fa = ctx.forward_fft(&a);
        let fb = ctx.forward_fft(&b);
        ctx.displacement_oriented(&fa, &fb, &a, &b, Some(PairKind::West))
    };
    let mut sink = Vec::with_capacity(warmup + pairs);
    for _ in 0..warmup {
        sink.push(run_pair(&mut ctx));
    }
    let before = CountingAllocator::thread_allocations();
    for _ in 0..pairs {
        sink.push(run_pair(&mut ctx));
    }
    let measured = CountingAllocator::thread_allocations() - before;
    assert!(sink.windows(2).all(|p| p[0] == p[1]), "unstable result");
    measured
}

#[test]
fn every_backend_is_allocation_free_in_steady_state() {
    let _guard = serial_guard();
    for choice in choices() {
        backend::select(choice);
        let name = backend::resolved_name(choice);
        for kind in [TransformKind::Complex, TransformKind::Real] {
            let allocs = steady_state_pair_allocations(kind, 3, 5);
            assert_eq!(
                allocs, 0,
                "backend {name} / {kind:?}: steady-state pair computation \
                 allocated {allocs} times"
            );
        }
    }
    backend::select(BackendChoice::Auto);
}
