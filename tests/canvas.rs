//! Incremental-canvas conformance battery: the chunked pyramid canvas
//! fed in arrival order must be a drop-in replacement for one-shot
//! composition.
//!
//! * the differential oracle proves bit-identity at every pyramid scale
//!   for every blend mode (and border highlighting) under seeded-random
//!   arrival orders with mid-run re-anchors, with peak canvas residency
//!   bounded by touched chunks rather than mosaic area;
//! * the stress battery proves determinism across random geometries,
//!   chunk sizes, solve cadences, off-canvas reads, and resets;
//! * the bounds regression pins the `Image::get`/`set` hard panic in
//!   release builds (run via `cargo test --release --test canvas`).

use stitch_image::Image;
use stitch_testkit::{run_canvas_differential, run_canvas_stress};

#[test]
fn canvas_differential_battery_is_clean() {
    let report = run_canvas_differential(0xCA0A5);
    assert!(
        report.is_clean(),
        "{} of {} canvas cases not bit-identical:\n{}",
        report.mismatches.len(),
        report.cases,
        report
            .mismatches
            .iter()
            .map(|m| format!("  {}: {}", m.label, m.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn canvas_differential_digest_is_pure_in_seed() {
    let a = run_canvas_differential(42);
    let b = run_canvas_differential(42);
    assert_eq!(a.digest, b.digest, "same seed must reproduce bit-for-bit");
    let c = run_canvas_differential(43);
    assert_ne!(
        a.digest, c.digest,
        "different seed stitches different plates"
    );
}

#[test]
fn canvas_stress_battery_is_deterministic_and_resets_clean() {
    for seed in [7u64, 0xF00D] {
        let a = run_canvas_stress(seed);
        let b = run_canvas_stress(seed);
        assert_eq!(
            a, b,
            "seed {seed} not deterministic:\n{:#?}\n{:#?}",
            a.fates, b.fates
        );
        assert!(
            a.fates.iter().all(|f| !f.contains("DIRTY")),
            "a reset left state behind:\n{:#?}",
            a.fates
        );
    }
}

/// `Image::get`/`set` must panic out of bounds in release builds too —
/// the old `debug_assert!` let `get(width, 0)` silently alias pixel
/// `(0, 1)` through the row-major index when assertions were compiled
/// out.
#[test]
fn image_bounds_panic_survives_release() {
    let mut img: Image<u16> = Image::new(8, 4);
    img.set(7, 3, 42);
    assert_eq!(img.get(7, 3), 42);
    let (w, h) = img.dims();
    let read = std::panic::catch_unwind(|| img.get(w, 0));
    assert!(read.is_err(), "get(width, 0) must panic, not alias (0, 1)");
    let read = std::panic::catch_unwind(|| img.get(0, h));
    assert!(read.is_err(), "get(0, height) must panic");
    let mut img2: Image<u16> = Image::new(8, 4);
    let write = std::panic::catch_unwind(move || img2.set(8, 0, 1));
    assert!(write.is_err(), "set(width, 0) must panic, not alias (0, 1)");
}
