//! Shard planning: partitioning a tile grid into rectangular sub-grids.
//!
//! A [`ShardPlan`] tiles the full grid with shards of at most
//! `shard_rows × shard_cols` tiles; shards on the bottom/right edges
//! keep whatever remainder is left, so every tile belongs to exactly
//! one shard and no shard is empty. Adjacent-tile pairs whose endpoints
//! fall in *different* shards are the [seam pairs](ShardPlan::seam_pairs)
//! — the only registrations the sharded driver must compute itself
//! after the per-shard jobs finish.

use stitch_core::{GridShape, PairKind, TileId};

/// One rectangular sub-grid of the full plate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Index into [`ShardPlan::shards`] (row-major over shard coords).
    pub index: usize,
    /// Shard-grid row.
    pub srow: usize,
    /// Shard-grid column.
    pub scol: usize,
    /// Full-grid row of this shard's top-left tile.
    pub row0: usize,
    /// Full-grid column of this shard's top-left tile.
    pub col0: usize,
    /// Tiles in this shard.
    pub shape: GridShape,
}

impl Shard {
    /// Scheduler job name for this shard (also its trace-lane name:
    /// the scheduler merges the job's spans as `job.<name>/…`).
    pub fn name(&self) -> String {
        format!("shard-r{}c{}", self.srow, self.scol)
    }

    /// Does this shard contain the full-grid tile?
    pub fn contains(&self, id: TileId) -> bool {
        id.row >= self.row0
            && id.row < self.row0 + self.shape.rows
            && id.col >= self.col0
            && id.col < self.col0 + self.shape.cols
    }

    /// Full-grid tile id → shard-local tile id. Panics when the tile is
    /// outside the shard.
    pub fn to_local(&self, id: TileId) -> TileId {
        assert!(self.contains(id), "{id:?} outside shard {}", self.name());
        TileId::new(id.row - self.row0, id.col - self.col0)
    }

    /// Shard-local tile id → full-grid tile id.
    pub fn to_global(&self, local: TileId) -> TileId {
        TileId::new(local.row + self.row0, local.col + self.col0)
    }
}

/// An adjacent-tile pair that crosses a shard boundary. By the repo-wide
/// convention, `b` is the east/south member — the displacement belongs
/// in `west[index(b)]` / `north[index(b)]` of the full-grid result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeamPair {
    /// West/north member.
    pub a: TileId,
    /// East/south member (the result slot).
    pub b: TileId,
    /// Pair orientation.
    pub kind: PairKind,
}

/// A partition of the full grid into shards.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Full grid being partitioned.
    pub grid: GridShape,
    /// Maximum tiles per shard, vertically.
    pub shard_rows: usize,
    /// Maximum tiles per shard, horizontally.
    pub shard_cols: usize,
    /// Shard-grid rows (`ceil(grid.rows / shard_rows)`).
    pub shards_down: usize,
    /// Shard-grid columns (`ceil(grid.cols / shard_cols)`).
    pub shards_across: usize,
}

impl ShardPlan {
    /// Plans a partition. Shard dimensions are clamped to the grid, so
    /// e.g. `shard_rows > grid.rows` simply yields one shard row.
    pub fn new(grid: GridShape, shard_rows: usize, shard_cols: usize) -> Result<ShardPlan, String> {
        if grid.rows == 0 || grid.cols == 0 {
            return Err(format!(
                "cannot shard an empty {}x{} grid",
                grid.rows, grid.cols
            ));
        }
        if shard_rows == 0 || shard_cols == 0 {
            return Err("shard dimensions must be at least 1x1".to_string());
        }
        let shard_rows = shard_rows.min(grid.rows);
        let shard_cols = shard_cols.min(grid.cols);
        Ok(ShardPlan {
            grid,
            shard_rows,
            shard_cols,
            shards_down: grid.rows.div_ceil(shard_rows),
            shards_across: grid.cols.div_ceil(shard_cols),
        })
    }

    /// Total shard count.
    pub fn shard_count(&self) -> usize {
        self.shards_down * self.shards_across
    }

    /// The shard at shard-grid coordinates `(srow, scol)`.
    pub fn shard_at(&self, srow: usize, scol: usize) -> Shard {
        debug_assert!(srow < self.shards_down && scol < self.shards_across);
        let row0 = srow * self.shard_rows;
        let col0 = scol * self.shard_cols;
        Shard {
            index: srow * self.shards_across + scol,
            srow,
            scol,
            row0,
            col0,
            shape: GridShape::new(
                self.shard_rows.min(self.grid.rows - row0),
                self.shard_cols.min(self.grid.cols - col0),
            ),
        }
    }

    /// All shards, row-major over shard coordinates.
    pub fn shards(&self) -> Vec<Shard> {
        (0..self.shards_down)
            .flat_map(|sr| (0..self.shards_across).map(move |sc| (sr, sc)))
            .map(|(sr, sc)| self.shard_at(sr, sc))
            .collect()
    }

    /// Index of the shard containing a full-grid tile.
    pub fn shard_of(&self, id: TileId) -> usize {
        debug_assert!(id.row < self.grid.rows && id.col < self.grid.cols);
        (id.row / self.shard_rows) * self.shards_across + id.col / self.shard_cols
    }

    /// Every adjacent-tile pair whose endpoints fall in different
    /// shards, in row-major order of the east/south member. These are
    /// exactly the pairs missing from the union of shard-local results:
    /// together they reassemble the full-grid pair graph.
    pub fn seam_pairs(&self) -> Vec<SeamPair> {
        let mut out = Vec::new();
        for id in self.grid.ids() {
            let s = self.shard_of(id);
            if let Some(w) = self.grid.west(id) {
                if self.shard_of(w) != s {
                    out.push(SeamPair {
                        a: w,
                        b: id,
                        kind: PairKind::West,
                    });
                }
            }
            if let Some(n) = self.grid.north(id) {
                if self.shard_of(n) != s {
                    out.push(SeamPair {
                        a: n,
                        b: id,
                        kind: PairKind::North,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uneven_partition_covers_every_tile_exactly_once() {
        let grid = GridShape::new(5, 7);
        let plan = ShardPlan::new(grid, 2, 3).unwrap();
        assert_eq!((plan.shards_down, plan.shards_across), (3, 3));
        let shards = plan.shards();
        assert_eq!(shards.len(), plan.shard_count());
        let mut owner = vec![usize::MAX; grid.tiles()];
        for s in &shards {
            assert!(s.shape.rows >= 1 && s.shape.cols >= 1, "no empty shards");
            for r in 0..s.shape.rows {
                for c in 0..s.shape.cols {
                    let g = s.to_global(TileId::new(r, c));
                    let i = grid.index(g);
                    assert_eq!(owner[i], usize::MAX, "tile {g:?} owned twice");
                    owner[i] = s.index;
                    assert_eq!(plan.shard_of(g), s.index);
                    assert_eq!(s.to_local(g), TileId::new(r, c));
                }
            }
        }
        assert!(owner.iter().all(|&o| o != usize::MAX), "every tile owned");
        // remainder shards: last shard row has 1 tile row, last column 1 tile col
        assert_eq!(plan.shard_at(2, 2).shape, GridShape::new(1, 1));
    }

    #[test]
    fn seam_pairs_plus_shard_pairs_reassemble_the_full_pair_graph() {
        for (rows, cols, sr, sc) in [(5, 7, 2, 3), (4, 4, 1, 4), (3, 5, 3, 1), (2, 2, 1, 1)] {
            let grid = GridShape::new(rows, cols);
            let plan = ShardPlan::new(grid, sr, sc).unwrap();
            let internal: usize = plan.shards().iter().map(|s| s.shape.pairs()).sum();
            let seams = plan.seam_pairs();
            assert_eq!(
                internal + seams.len(),
                grid.pairs(),
                "{rows}x{cols} grid in {sr}x{sc} shards"
            );
            for p in &seams {
                assert_ne!(plan.shard_of(p.a), plan.shard_of(p.b));
                match p.kind {
                    PairKind::West => {
                        assert_eq!(p.a.row, p.b.row);
                        assert_eq!(p.a.col + 1, p.b.col);
                    }
                    PairKind::North => {
                        assert_eq!(p.a.col, p.b.col);
                        assert_eq!(p.a.row + 1, p.b.row);
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_shard_shapes_still_produce_both_axis_seams() {
        // 1-row shards: every north pair is a seam, every west pair internal
        let grid = GridShape::new(3, 4);
        let plan = ShardPlan::new(grid, 1, 4).unwrap();
        let seams = plan.seam_pairs();
        assert_eq!(seams.len(), (grid.rows - 1) * grid.cols);
        assert!(seams.iter().all(|p| p.kind == PairKind::North));
        // 1-column shards: the transpose
        let plan = ShardPlan::new(grid, 3, 1).unwrap();
        let seams = plan.seam_pairs();
        assert_eq!(seams.len(), grid.rows * (grid.cols - 1));
        assert!(seams.iter().all(|p| p.kind == PairKind::West));
        // 1x1 shards: every pair is a seam, in both axes
        let plan = ShardPlan::new(grid, 1, 1).unwrap();
        let seams = plan.seam_pairs();
        assert_eq!(seams.len(), grid.pairs());
        assert!(seams.iter().any(|p| p.kind == PairKind::West));
        assert!(seams.iter().any(|p| p.kind == PairKind::North));
    }

    #[test]
    fn oversized_shard_dims_clamp_to_one_shard() {
        let plan = ShardPlan::new(GridShape::new(2, 3), 10, 10).unwrap();
        assert_eq!(plan.shard_count(), 1);
        assert!(plan.seam_pairs().is_empty());
        assert_eq!(plan.shards()[0].shape, GridShape::new(2, 3));
    }

    #[test]
    fn rejects_empty_inputs() {
        assert!(ShardPlan::new(GridShape::new(0, 3), 1, 1).is_err());
        assert!(ShardPlan::new(GridShape::new(2, 2), 0, 1).is_err());
    }
}
