//! Merging shard-local results into one full-grid solve.
//!
//! Three pieces:
//!
//! 1. [`register_seams`] — phase-1 registration of the pairs that cross
//!    shard boundaries, with the *same* correlator kernel and settings
//!    the in-shard stitchers use. PCIAM phase 1 is a pure function of
//!    the two tile images, so a seam displacement computed here is
//!    bit-identical to the one the unsharded run computes for the same
//!    pair. At most two tiles (and their spectra) are live at a time.
//! 2. [`merge_results`] — copies shard-local displacements into their
//!    full-grid slots and adds the seam displacements, reassembling the
//!    exact pair graph the unsharded run would have produced.
//! 3. [`solve_hierarchical`] — per-shard local solves plus a weighted
//!    least-squares solve over *shard anchors* constrained by the seam
//!    displacements. This is the streaming/provisional frame (each
//!    shard's tiles are placeable as soon as its local solve and seams
//!    are in) and a consistency audit for the committed positions; the
//!    committed positions themselves come from running the standard
//!    [`GlobalOptimizer`] on the merged full-grid graph, which is what
//!    makes them bit-identical to the unsharded solve.

use std::sync::Arc;
use std::time::Duration;

use stitch_core::{
    AbsolutePositions, Correlator, Displacement, FailurePolicy, FaultTracker, GlobalOptimizer,
    HealthReport, OpCounters, StitchError, StitchResult, TileSource, TileStatus, TransformKind,
};
use stitch_fft::Planner;
use stitch_trace::TraceHandle;

use crate::plan::{SeamPair, Shard, ShardPlan};

/// Everything [`register_seams`] produced.
pub struct SeamOutcome {
    /// Registered seam displacements (pairs with a failed endpoint are
    /// absent, mirroring how the in-shard stitchers void such pairs).
    pub displacements: Vec<(SeamPair, Displacement)>,
    /// Health of the boundary tiles read during the seam walk.
    pub health: HealthReport,
}

/// Registers every seam pair by loading its two tiles, transforming
/// them, and running the oriented PCIAM displacement — the identical
/// kernel path `SimpleCpuStitcher` uses, so results are bit-identical
/// to an unsharded run's for the same pairs. Peak memory is two tiles
/// plus two spectra regardless of grid size.
pub fn register_seams(
    source: &dyn TileSource,
    plan: &ShardPlan,
    planner: &Planner,
    policy: &FailurePolicy,
    trace: &TraceHandle,
) -> Result<SeamOutcome, StitchError> {
    let (w, h) = source.tile_dims();
    let counters = OpCounters::new_shared();
    let mut ctx = Correlator::new(TransformKind::Complex, planner, w, h, Arc::clone(&counters));
    let tracker = FaultTracker::new(plan.grid);
    let mut displacements = Vec::new();
    let _span = trace.scope("shard/merge", "compute", "register seams");
    for pair in plan.seam_pairs() {
        // a tile that already failed permanently voids all its pairs;
        // don't hammer it with another retry cycle per pair
        if tracker.is_failed(pair.a) || tracker.is_failed(pair.b) {
            continue;
        }
        let r0 = trace.now_ns();
        let ia = tracker.load(source, pair.a, &policy.retry);
        let ib = tracker.load(source, pair.b, &policy.retry);
        trace.record(
            "shard/merge",
            "io",
            format!(
                "read seam r{}c{}-r{}c{}",
                pair.a.row, pair.a.col, pair.b.row, pair.b.col
            ),
            r0,
            trace.now_ns(),
        );
        let (Some(ia), Some(ib)) = (ia, ib) else {
            continue;
        };
        counters.count_read();
        counters.count_read();
        let c0 = trace.now_ns();
        let fa = ctx.forward_fft(&ia);
        let fb = ctx.forward_fft(&ib);
        let d = ctx.displacement_oriented(&fa, &fb, &ia, &ib, Some(pair.kind));
        trace.record(
            "shard/merge",
            "compute",
            format!(
                "seam ccf r{}c{}-r{}c{}",
                pair.a.row, pair.a.col, pair.b.row, pair.b.col
            ),
            c0,
            trace.now_ns(),
        );
        displacements.push((pair, d));
    }
    let health = tracker.finish(policy)?;
    Ok(SeamOutcome {
        displacements,
        health,
    })
}

/// Reassembles the full-grid [`StitchResult`] from shard-local results
/// (indexed like `plan.shards()`) and the registered seam
/// displacements. Because each shard saw the identical tile images the
/// full grid holds and seam pairs were registered with the identical
/// kernel, the merged pair graph is bit-identical to the unsharded
/// run's. Ops and retries are summed; `elapsed` is left at zero for the
/// driver to stamp with its own wall clock.
pub fn merge_results(
    plan: &ShardPlan,
    shards: &[(Shard, StitchResult)],
    seams: &SeamOutcome,
) -> StitchResult {
    let mut merged = StitchResult::empty(plan.grid);
    let mut peak_live = 0usize;
    for (shard, local) in shards {
        for local_id in shard.shape.ids() {
            let g = plan.grid.index(shard.to_global(local_id));
            let l = shard.shape.index(local_id);
            if local.west[l].is_some() {
                merged.west[g] = local.west[l];
            }
            if local.north[l].is_some() {
                merged.north[g] = local.north[l];
            }
            merge_tile_status(
                &mut merged.health.tiles[g],
                &local.health.tiles[shard.shape.index(local_id)],
            );
        }
        merged.ops.reads += local.ops.reads;
        merged.ops.forward_ffts += local.ops.forward_ffts;
        merged.ops.elementwise_mults += local.ops.elementwise_mults;
        merged.ops.inverse_ffts += local.ops.inverse_ffts;
        merged.ops.max_reductions += local.ops.max_reductions;
        merged.ops.ccf_groups += local.ops.ccf_groups;
        merged.health.total_retries += local.health.total_retries;
        peak_live = peak_live.max(local.peak_live_tiles);
    }
    for (pair, d) in &seams.displacements {
        let slot = plan.grid.index(pair.b);
        match pair.kind {
            stitch_core::PairKind::West => merged.west[slot] = Some(*d),
            stitch_core::PairKind::North => merged.north[slot] = Some(*d),
        }
    }
    for id in plan.grid.ids() {
        merge_tile_status(
            &mut merged.health.tiles[plan.grid.index(id)],
            &seams.health.tiles[plan.grid.index(id)],
        );
    }
    merged.health.total_retries += seams.health.total_retries;
    // the seam walk holds at most 2 tiles live on top of the per-shard peak
    merged.peak_live_tiles = peak_live.max(2);
    merged.elapsed = Duration::ZERO;
    merged
}

/// Combines two observations of the same tile (a shard job's and the
/// seam walk's): `Failed` dominates, then `Recovered` (attempts summed),
/// then `Ok`.
fn merge_tile_status(into: &mut TileStatus, other: &TileStatus) {
    match (&*into, other) {
        (TileStatus::Failed { .. }, _) => {}
        (_, TileStatus::Failed { error }) => {
            *into = TileStatus::Failed {
                error: error.clone(),
            };
        }
        (TileStatus::Recovered { attempts: a }, TileStatus::Recovered { attempts: b }) => {
            *into = TileStatus::Recovered { attempts: a + b };
        }
        (TileStatus::Ok, TileStatus::Recovered { attempts }) => {
            *into = TileStatus::Recovered {
                attempts: *attempts,
            };
        }
        (_, TileStatus::Ok) => {}
    }
}

/// The hierarchical (two-level) solve: shard-local positions re-anchored
/// into one absolute frame.
pub struct HierarchicalSolve {
    /// Per-shard anchor offsets (indexed like `plan.shards()`), before
    /// normalization.
    pub anchors: Vec<(f64, f64)>,
    /// Re-anchored absolute positions, normalized to a `(0, 0)` minimum
    /// like [`GlobalOptimizer::solve`]'s output.
    pub positions: AbsolutePositions,
}

/// Solves shard anchors from seam constraints and re-anchors each
/// shard's local positions into one frame.
///
/// For a seam pair `a → b` with displacement `d` joining shard `i` to
/// shard `j`, consistency demands
/// `anchor_j − anchor_i = local_i(a) + d − local_j(b)` per axis. The
/// over-constrained system is solved by correlation-weighted least
/// squares (conjugate gradient on the shard-anchor Laplacian, anchor 0
/// pinned). Note this two-level decomposition is *not* algebraically
/// identical to the flat least-squares-with-IRLS solve on the merged
/// graph when measurements disagree — which is why the driver commits
/// the merged-graph solve and uses this as the provisional streaming
/// frame plus a consistency audit.
pub fn solve_hierarchical(
    plan: &ShardPlan,
    locals: &[AbsolutePositions],
    seams: &SeamOutcome,
    optimizer: &GlobalOptimizer,
    tile_dims: (usize, usize),
) -> HierarchicalSolve {
    let n = plan.shard_count();
    assert_eq!(locals.len(), n, "one local solve per shard");
    let shards = plan.shards();
    // weighted constraints between anchors
    struct C {
        i: usize,
        j: usize,
        dx: f64,
        dy: f64,
        w: f64,
    }
    let mut cs: Vec<C> = Vec::new();
    for (pair, d) in &seams.displacements {
        if d.correlation < optimizer.min_correlation {
            continue;
        }
        let i = plan.shard_of(pair.a);
        let j = plan.shard_of(pair.b);
        let la = locals[i].get(shards[i].to_local(pair.a));
        let lb = locals[j].get(shards[j].to_local(pair.b));
        cs.push(C {
            i,
            j,
            dx: (la.0 + d.x - lb.0) as f64,
            dy: (la.1 + d.y - lb.1) as f64,
            w: d.correlation.max(1e-3),
        });
    }
    // CG on the anchor Laplacian, anchor 0 pinned at the origin
    let mut lap = vec![0.0f64; n * n];
    let mut rhs_x = vec![0.0f64; n];
    let mut rhs_y = vec![0.0f64; n];
    for c in &cs {
        lap[c.i * n + c.i] += c.w;
        lap[c.j * n + c.j] += c.w;
        lap[c.i * n + c.j] -= c.w;
        lap[c.j * n + c.i] -= c.w;
        rhs_x[c.j] += c.w * c.dx;
        rhs_x[c.i] -= c.w * c.dx;
        rhs_y[c.j] += c.w * c.dy;
        rhs_y[c.i] -= c.w * c.dy;
    }
    let solve_axis = |rhs: &[f64]| -> Vec<f64> {
        let mut x = vec![0.0f64; n];
        if n <= 1 {
            return x;
        }
        // project out node 0 (pin): solve over indices 1..n
        let mut r: Vec<f64> = rhs[1..].to_vec();
        let mut p = r.clone();
        let mut rs: f64 = r.iter().map(|v| v * v).sum();
        for _ in 0..optimizer.max_iterations.max(n) {
            if rs.sqrt() <= optimizer.tolerance {
                break;
            }
            // ap = L[1.., 1..] * p
            let mut ap = vec![0.0f64; n - 1];
            for (ri, ap_i) in ap.iter_mut().enumerate() {
                let row = &lap[(ri + 1) * n..(ri + 2) * n];
                *ap_i = row[1..]
                    .iter()
                    .zip(p.iter())
                    .map(|(l, pv)| l * pv)
                    .sum::<f64>();
            }
            let denom: f64 = p.iter().zip(ap.iter()).map(|(a, b)| a * b).sum();
            if denom.abs() < f64::EPSILON {
                break;
            }
            let alpha = rs / denom;
            for i in 0..n - 1 {
                x[i + 1] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rs_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rs_new / rs;
            rs = rs_new;
            for i in 0..n - 1 {
                p[i] = r[i] + beta * p[i];
            }
        }
        x
    };
    let ax = solve_axis(&rhs_x);
    let ay = solve_axis(&rhs_y);
    let mut anchors: Vec<(f64, f64)> = ax.into_iter().zip(ay).collect();
    // shards with no usable seam constraint to the pinned component sit
    // at the origin in the CG solution; place them at their nominal
    // raster offset (default 25% overlap) so the provisional frame stays
    // renderable even with a severed seam
    let mut placed = vec![false; n];
    placed[0] = true;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in &cs {
        adj[c.i].push(c.j);
        adj[c.j].push(c.i);
    }
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !placed[v] {
                placed[v] = true;
                queue.push_back(v);
            }
        }
    }
    let (tw, th) = tile_dims;
    let (step_x, step_y) = (tw as f64 * 0.75, th as f64 * 0.75);
    for (s, anchor) in anchors.iter_mut().enumerate() {
        if !placed[s] {
            *anchor = (
                shards[s].col0 as f64 * step_x,
                shards[s].row0 as f64 * step_y,
            );
        }
    }
    // re-anchor: global tile position = shard anchor + local position
    let mut positions = vec![(0i64, 0i64); plan.grid.tiles()];
    for (s, shard) in shards.iter().enumerate() {
        for local_id in shard.shape.ids() {
            let (lx, ly) = locals[s].get(local_id);
            let g = plan.grid.index(shard.to_global(local_id));
            positions[g] = (
                (anchors[s].0 + lx as f64).round() as i64,
                (anchors[s].1 + ly as f64).round() as i64,
            );
        }
    }
    let min_x = positions.iter().map(|p| p.0).min().unwrap_or(0);
    let min_y = positions.iter().map(|p| p.1).min().unwrap_or(0);
    for p in &mut positions {
        p.0 -= min_x;
        p.1 -= min_y;
    }
    HierarchicalSolve {
        anchors,
        positions: AbsolutePositions {
            shape: plan.grid,
            positions,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_core::{GridShape, PairKind, TileId};

    /// Hand-builds a consistent two-shard world and checks the anchor
    /// solve recovers the exact offset between the shards.
    #[test]
    fn anchor_solve_recovers_exact_offsets() {
        let grid = GridShape::new(2, 4);
        let plan = ShardPlan::new(grid, 2, 2).unwrap();
        let shards = plan.shards();
        assert_eq!(shards.len(), 2);
        // each shard's local solve: a clean 50x40 raster
        let local = |shape: GridShape| AbsolutePositions {
            shape,
            positions: shape
                .ids()
                .map(|id| (id.col as i64 * 50, id.row as i64 * 40))
                .collect(),
        };
        let locals = vec![local(shards[0].shape), local(shards[1].shape)];
        // two seam pairs between col 1 and col 2, both implying that the
        // right shard starts 100 px right of the left shard's origin
        let seams = SeamOutcome {
            displacements: vec![
                (
                    SeamPair {
                        a: TileId::new(0, 1),
                        b: TileId::new(0, 2),
                        kind: PairKind::West,
                    },
                    Displacement::new(50, 0, 0.9),
                ),
                (
                    SeamPair {
                        a: TileId::new(1, 1),
                        b: TileId::new(1, 2),
                        kind: PairKind::West,
                    },
                    Displacement::new(50, 0, 0.9),
                ),
            ],
            health: HealthReport::new(grid),
        };
        let h = solve_hierarchical(
            &plan,
            &locals,
            &seams,
            &GlobalOptimizer::default(),
            (64, 48),
        );
        let expect: Vec<(i64, i64)> = grid
            .ids()
            .map(|id| (id.col as i64 * 50, id.row as i64 * 40))
            .collect();
        assert_eq!(h.positions.positions, expect);
    }

    /// A shard with every seam severed gets the nominal-raster fallback
    /// instead of collapsing onto the origin.
    #[test]
    fn disconnected_shard_falls_back_to_nominal_raster() {
        let grid = GridShape::new(1, 4);
        let plan = ShardPlan::new(grid, 1, 2).unwrap();
        let shards = plan.shards();
        let local = |shape: GridShape| AbsolutePositions {
            shape,
            positions: shape.ids().map(|id| (id.col as i64 * 48, 0)).collect(),
        };
        let locals = vec![local(shards[0].shape), local(shards[1].shape)];
        let seams = SeamOutcome {
            displacements: Vec::new(),
            health: HealthReport::new(grid),
        };
        let h = solve_hierarchical(
            &plan,
            &locals,
            &seams,
            &GlobalOptimizer::default(),
            (64, 48),
        );
        // right shard anchored at col0 * 64 * 0.75 = 2 * 48 = 96
        assert_eq!(h.anchors[1], (96.0, 0.0));
        assert_eq!(h.positions.get(TileId::new(0, 2)), (96, 0));
    }
}
