//! # stitch-shard — sharded out-of-core stitching
//!
//! Breaks the single-grid size ceiling: the tile grid is partitioned
//! into rectangular sub-grids ([`ShardPlan`]), each stitched
//! independently as a job on the existing `stitch-sched` scheduler
//! (sharing its worker pool, FFT plan cache, and memory-budget
//! arbiter), then merged back into one absolute frame:
//!
//! 1. **Shard jobs** — each shard is a [`SubgridSource`] view of the
//!    full plate submitted via [`StitchJob::over_source`]; admission
//!    control sizes reservations from the *shard* geometry, so with a
//!    fixed shard size the arbiter high-water is `workers × one shard`
//!    no matter how large the plate grows.
//! 2. **Seam registration** — the adjacent pairs that cross shard
//!    boundaries are registered with the identical PCIAM kernel the
//!    in-shard stitchers use ([`register_seams`]), two tiles live at a
//!    time.
//! 3. **Merge + solve** — shard-local displacements and seam
//!    displacements reassemble the exact full-grid pair graph
//!    ([`merge_results`]); the committed positions come from the
//!    standard [`GlobalOptimizer`](stitch_core::GlobalOptimizer) on
//!    that graph and are therefore **bit-identical to the unsharded
//!    solve**. A hierarchical anchor solve ([`solve_hierarchical`])
//!    provides the provisional streaming frame and a consistency audit.
//! 4. **Banded composition** — the mosaic streams out in bounded
//!    full-width row bands
//!    ([`Composer::compose_bands`](stitch_core::Composer::compose_bands)),
//!    so composition memory is one band plus one tile.
//!
//! Entry points: [`stitch_sharded`] (collects the mosaic when
//! composition is requested), [`stitch_sharded_streaming`] (hands
//! bands to a sink and never materializes the mosaic), and
//! [`stitch_sharded_into_canvas`] (bakes the bands into a
//! [`stitch_canvas::SharedCanvas`] pyramid for on-demand region reads
//! at any scale).

#![warn(missing_docs)]

pub mod driver;
pub mod merge;
pub mod plan;

pub use driver::{
    stitch_sharded, stitch_sharded_into_canvas, stitch_sharded_streaming, ShardConfig, ShardError,
    ShardOutcome,
};
pub use merge::{
    merge_results, register_seams, solve_hierarchical, HierarchicalSolve, SeamOutcome,
};
pub use plan::{SeamPair, Shard, ShardPlan};

// re-exported for doc links and driver callers
#[doc(no_inline)]
pub use stitch_core::SubgridSource;
#[doc(no_inline)]
pub use stitch_sched::StitchJob;
