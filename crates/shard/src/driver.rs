//! The sharded stitching driver: shards-as-scheduler-jobs, seam merge,
//! hierarchical re-anchoring, and out-of-core banded composition.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stitch_core::{
    AbsolutePositions, Blend, Composer, FailurePolicy, GlobalOptimizer, StitchError, StitchResult,
    SubgridSource, TileSource,
};
use stitch_fft::PlanMode;
use stitch_image::Image;
use stitch_sched::{
    DrainPolicy, JobStatus, JobVariant, Scheduler, SchedulerConfig, StitchJob, SubmitError,
};
use stitch_trace::TraceHandle;

use crate::merge::{merge_results, register_seams, solve_hierarchical, HierarchicalSolve};
use crate::plan::ShardPlan;

/// Configuration for [`stitch_sharded`].
#[derive(Clone)]
pub struct ShardConfig {
    /// Maximum tile rows per shard.
    pub shard_rows: usize,
    /// Maximum tile columns per shard.
    pub shard_cols: usize,
    /// Concurrent shard jobs (scheduler worker threads).
    pub workers: usize,
    /// Host-memory byte budget shared by all in-flight shards — the
    /// scheduler's admission-control budget. Peak arbiter usage is
    /// `workers × one shard's estimate` regardless of total grid size,
    /// which is what keeps sharded memory flat in grid area.
    pub memory_budget: usize,
    /// Stitcher variant each shard job runs.
    pub variant: JobVariant,
    /// Compute threads per shard job (multi-threaded variants).
    pub threads: usize,
    /// When set, compose the mosaic with this blend after the solve.
    pub compose: Option<Blend>,
    /// Pixel rows per composition band (out-of-core streaming; bounds
    /// composition memory to one band plus one tile).
    pub band_rows: usize,
    /// Phase-2 optimizer for the committed solve, the per-shard local
    /// solves, and the anchor solve.
    pub optimizer: GlobalOptimizer,
    /// Tile-read failure policy for the seam walk (shard jobs use the
    /// scheduler's default policy).
    pub policy: FailurePolicy,
    /// Trace sink; per-shard lanes appear as `job.shard-rXcY/…` and the
    /// merge/solve/compose phases on `shard/…` tracks.
    pub trace: TraceHandle,
    /// Chaos hook: cancel this shard index right after submission (the
    /// stress harness's mid-run cancellation scenario).
    pub cancel_shard: Option<usize>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shard_rows: 4,
            shard_cols: 4,
            workers: 2,
            memory_budget: 256 << 20,
            variant: JobVariant::SimpleCpu,
            threads: 1,
            compose: None,
            band_rows: 64,
            optimizer: GlobalOptimizer::default(),
            policy: FailurePolicy::default(),
            trace: TraceHandle::disabled(),
            cancel_shard: None,
        }
    }
}

/// Everything a sharded run produced.
pub struct ShardOutcome {
    /// The merged full-grid phase-1 result (bit-identical pair graph to
    /// an unsharded run over the same source).
    pub result: StitchResult,
    /// Committed absolute positions: the standard optimizer run on the
    /// merged graph (bit-identical to the unsharded solve).
    pub positions: AbsolutePositions,
    /// The hierarchical (anchor-based) solve — provisional frame + audit.
    pub hierarchical: HierarchicalSolve,
    /// Max per-axis deviation of the hierarchical frame from the
    /// committed positions (the consistency audit).
    pub hierarchical_deviation: (i64, i64),
    /// Composed mosaic, when requested and collected.
    pub mosaic: Option<Image<u16>>,
    /// Shards the plan produced.
    pub shard_count: usize,
    /// Seam pairs registered during the merge.
    pub seam_pairs: usize,
    /// Arbiter memory high-water across the whole run, in bytes.
    pub high_water: usize,
    /// The configured budget, for convenience.
    pub budget: usize,
    /// Arbiter reservations still alive after drain (must be 0).
    pub leaked_reservations: usize,
    /// Pool spectra still leased after drain (must be 0).
    pub leaked_spectra: usize,
    /// Largest single composition band, in bytes (0 when not composing).
    pub max_band_bytes: usize,
    /// End-to-end wall time.
    pub elapsed: Duration,
}

/// Why a sharded run failed. Even on failure the scheduler is drained
/// first, so the leak counters are always meaningful.
#[derive(Debug)]
pub enum ShardError {
    /// The shard plan was invalid (empty grid, zero shard dims).
    Plan(String),
    /// The scheduler refused a shard job (e.g. one shard's estimate
    /// alone exceeds the memory budget).
    Submit {
        /// Shard job name.
        name: String,
        /// The scheduler's refusal.
        error: SubmitError,
    },
    /// A shard job ended in a non-completed state.
    Shard {
        /// Shard job name.
        name: String,
        /// Its terminal status.
        status: JobStatus,
        /// Arbiter reservations alive after the post-failure drain.
        leaked_reservations: usize,
        /// Pool spectra leased after the post-failure drain.
        leaked_spectra: usize,
    },
    /// Seam registration failed (a boundary tile failed permanently
    /// under a non-partial policy).
    Stitch(StitchError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Plan(msg) => write!(f, "shard plan: {msg}"),
            ShardError::Submit { name, error } => write!(f, "submit {name}: {error}"),
            ShardError::Shard { name, status, .. } => write!(f, "shard {name} ended {status:?}"),
            ShardError::Stitch(e) => write!(f, "seam registration: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Stitches `source` shard-by-shard and, when composition is requested,
/// collects the banded composition into one full mosaic (convenient for
/// oracles and small runs; the bands themselves are still produced
/// through the bounded streaming path).
pub fn stitch_sharded(
    source: Arc<dyn TileSource>,
    config: &ShardConfig,
) -> Result<ShardOutcome, ShardError> {
    let mut collected: Option<(usize, Vec<u16>, usize)> = None; // (width, pixels, rows)
    let mut outcome = run_sharded(source, config, &mut |y0, band: Image<u16>| {
        let (w, pixels, rows) = collected.get_or_insert((band.width(), Vec::new(), 0));
        debug_assert_eq!(*w, band.width());
        debug_assert_eq!(*rows, y0);
        pixels.extend_from_slice(band.pixels());
        *rows += band.height();
    })?;
    if let Some((w, pixels, rows)) = collected {
        outcome.mosaic = Some(Image::from_vec(w, rows, pixels));
    }
    Ok(outcome)
}

/// Stitches `source` shard-by-shard, streaming composition bands to
/// `sink(y0, band)` top-to-bottom instead of materializing the mosaic —
/// the out-of-core path: peak memory stays flat in grid size. The sink
/// is only called when [`ShardConfig::compose`] is set.
pub fn stitch_sharded_streaming(
    source: Arc<dyn TileSource>,
    config: &ShardConfig,
    sink: &mut dyn FnMut(usize, Image<u16>),
) -> Result<ShardOutcome, ShardError> {
    run_sharded(source, config, sink)
}

/// Stitches `source` shard-by-shard, baking each composition band into
/// `canvas` (at `(0, y0)`, scale 0) instead of collecting images — the
/// out-of-core sink that leaves a readable pyramid behind: after the
/// run, `canvas.get_region(scale, …)` serves any window of the mosaic
/// at any scale, bit-identical to composing whole and downsampling.
/// Band images are not retained beyond their chunks, so peak memory
/// stays the banded path's. Requires [`ShardConfig::compose`] to be set
/// (otherwise no bands are produced and the canvas stays empty).
pub fn stitch_sharded_into_canvas(
    source: Arc<dyn TileSource>,
    config: &ShardConfig,
    canvas: &stitch_canvas::SharedCanvas,
) -> Result<ShardOutcome, ShardError> {
    run_sharded(source, config, &mut |y0, band| {
        canvas.bake_region((0, y0 as i64), &band);
    })
}

fn run_sharded(
    source: Arc<dyn TileSource>,
    config: &ShardConfig,
    sink: &mut dyn FnMut(usize, Image<u16>),
) -> Result<ShardOutcome, ShardError> {
    let t0 = Instant::now();
    let trace = &config.trace;
    let plan = ShardPlan::new(source.shape(), config.shard_rows, config.shard_cols)
        .map_err(ShardError::Plan)?;
    let shards = plan.shards();
    let sched = Scheduler::new(SchedulerConfig {
        workers: config.workers.max(1),
        memory_budget: config.memory_budget,
        max_pending: shards.len().max(4),
        device: None,
        trace: trace.clone(),
    });
    // audit + error helper: drain, read the arbiter, drop nothing early
    let audit = |sched: &Scheduler| {
        sched.drain(DrainPolicy::CancelAll);
        (
            sched.arbiter().high_water(),
            sched.arbiter().active_reservations(),
            sched.arbiter().leased_spectra(),
        )
    };

    // Pause → submit all → resume, so dispatch order is decided over the
    // full batch (and the chaos cancel lands deterministically while the
    // target is still queued).
    sched.pause();
    let mut handles = Vec::with_capacity(shards.len());
    for shard in &shards {
        let view: Arc<dyn TileSource> = Arc::new(SubgridSource::new(
            Arc::clone(&source),
            shard.row0,
            shard.col0,
            shard.shape,
        ));
        let job = StitchJob::over_source(shard.name(), view)
            .variant(config.variant)
            .threads(config.threads)
            .compose(false);
        match sched.submit_blocking(job) {
            Ok(handle) => {
                if config.cancel_shard == Some(shard.index) {
                    handle.cancel();
                }
                handles.push(handle);
            }
            Err(error) => {
                sched.resume();
                audit(&sched);
                return Err(ShardError::Submit {
                    name: shard.name(),
                    error,
                });
            }
        }
    }
    sched.resume();

    let mut results = Vec::with_capacity(shards.len());
    let mut first_bad: Option<(String, JobStatus)> = None;
    for (shard, handle) in shards.iter().zip(&handles) {
        let out = handle.wait();
        match (out.status, out.result) {
            (JobStatus::Completed, Some(result)) => results.push((*shard, result)),
            (status, _) => {
                if first_bad.is_none() {
                    first_bad = Some((shard.name(), status));
                }
            }
        }
    }
    if let Some((name, status)) = first_bad {
        let (_, leaked_reservations, leaked_spectra) = audit(&sched);
        return Err(ShardError::Shard {
            name,
            status,
            leaked_reservations,
            leaked_spectra,
        });
    }

    // Seam registration shares the scheduler's FFT plan cache.
    let planner = sched.arbiter().planner(PlanMode::Estimate);
    let seams = match register_seams(&*source, &plan, &planner, &config.policy, trace) {
        Ok(s) => s,
        Err(e) => {
            audit(&sched);
            return Err(ShardError::Stitch(e));
        }
    };

    // Merge, then both solves.
    let mut merged = {
        let _span = trace.scope("shard/merge", "compute", "merge shard results");
        merge_results(&plan, &results, &seams)
    };
    let (positions, hierarchical) = {
        let _span = trace.scope("shard/merge", "compute", "global + hierarchical solve");
        let locals: Vec<AbsolutePositions> = results
            .iter()
            .map(|(_, r)| config.optimizer.solve(r))
            .collect();
        let hierarchical = solve_hierarchical(
            &plan,
            &locals,
            &seams,
            &config.optimizer,
            source.tile_dims(),
        );
        let positions = config.optimizer.solve(&merged);
        (positions, hierarchical)
    };
    let hierarchical_deviation = hierarchical.positions.max_deviation(&positions.positions);
    trace.set_gauge(
        "shard/hierarchical_deviation_px",
        hierarchical_deviation.0.max(hierarchical_deviation.1) as f64,
    );

    // Out-of-core composition: full-width bands, bounded by band_rows.
    let mut max_band_bytes = 0usize;
    if let Some(blend) = config.compose {
        let _span = trace.scope("shard/compose", "compute", "banded compose");
        let composer = Composer::new(positions.clone(), blend).with_trace(trace.clone());
        composer.compose_bands(&*source, config.band_rows, &mut |y0, band| {
            max_band_bytes =
                max_band_bytes.max(band.width() * band.height() * std::mem::size_of::<u16>());
            sink(y0, band);
        });
        trace.set_gauge_max("shard/max_band_bytes", max_band_bytes as f64);
    }

    let (high_water, leaked_reservations, leaked_spectra) = audit(&sched);
    merged.elapsed = t0.elapsed();
    Ok(ShardOutcome {
        result: merged,
        positions,
        hierarchical,
        hierarchical_deviation,
        mosaic: None,
        shard_count: shards.len(),
        seam_pairs: seams.displacements.len(),
        high_water,
        budget: config.memory_budget,
        leaked_reservations,
        leaked_spectra,
        max_band_bytes,
        elapsed: t0.elapsed(),
    })
}
