//! Cross-backend differential oracle.
//!
//! The compute-backend contract (see `stitch_fft::backend`): swapping
//! the scalar, portable, or explicit-SIMD kernels under the stitching
//! pipeline must not move a single *integer* observable — phase-1
//! displacements, phase-2 global positions, composed mosaic pixels.
//! The NCC normalize, the max reduction and every FFT butterfly are
//! bit-identical across backends by construction; only the CCF
//! co-moments re-associate, and the disambiguation they feed is
//! gated here empirically, over the same ground-truth sweep (including
//! the prime/Bluestein tile sizes) the cross-variant oracle runs.
//!
//! The active backend is process-global state, so every sweep in this
//! module serializes behind one lock ([`serial_guard`]) and restores
//! `auto` on exit — callers running their own backend experiments
//! (e.g. the per-backend zero-alloc assertion) should hold the same
//! guard.

use std::fmt;
use std::sync::{Mutex, MutexGuard, PoisonError};

use stitch_core::prelude::*;
use stitch_fft::backend::{self, BackendChoice};
use stitch_image::Image;

use crate::cases::SweepCase;

/// Serializes all backend switching in this process.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Takes the global backend lock. A panic in a previous holder does not
/// invalidate the lock's purpose (mutual exclusion), so poisoning is
/// ignored.
pub fn serial_guard() -> MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The backend choices the differential sweep covers. `Simd` is always
/// included: off x86_64 (or off AVX2 hosts) it resolves to the portable
/// implementation, which must of course still agree.
pub fn choices() -> Vec<BackendChoice> {
    vec![
        BackendChoice::Scalar,
        BackendChoice::Portable,
        BackendChoice::Simd,
    ]
}

/// One recorded cross-backend divergence.
#[derive(Clone, Debug)]
pub struct BackendMismatch {
    /// Resolved name of the diverging backend.
    pub backend: &'static str,
    /// What diverged, with location and both values.
    pub detail: String,
}

impl fmt::Display for BackendMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.backend, self.detail)
    }
}

/// The oracle's verdict for one sweep case.
#[derive(Clone, Debug)]
pub struct BackendReport {
    /// Human-readable case identifier.
    pub label: String,
    /// Resolved backend names that ran, scalar reference first.
    pub backends: Vec<&'static str>,
    /// Every divergence found.
    pub mismatches: Vec<BackendMismatch>,
}

impl BackendReport {
    /// True when every backend agreed on every integer observable.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for BackendReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "case: {}", self.label)?;
        if self.is_clean() {
            write!(f, "backends {:?} identical", self.backends)
        } else {
            writeln!(f, "{} mismatches:", self.mismatches.len())?;
            for m in &self.mismatches {
                writeln!(f, "  {m}")?;
            }
            Ok(())
        }
    }
}

struct Outputs {
    result: StitchResult,
    positions: AbsolutePositions,
    mosaic: Image<u16>,
}

fn run_under(choice: BackendChoice, source: &impl TileSource) -> Outputs {
    backend::select(choice);
    let result = SimpleCpuStitcher::default().compute_displacements(source);
    let positions = GlobalOptimizer::default().solve(&result);
    let mosaic = Composer::new(positions.clone(), Blend::Overlay).compose(source);
    Outputs {
        result,
        positions,
        mosaic,
    }
}

/// Runs the Simple-CPU pipeline on `case` once per backend and diffs
/// every integer observable against the scalar reference. Restores the
/// `auto` backend before returning.
pub fn run_backend_case(case: &SweepCase) -> BackendReport {
    let _guard = serial_guard();
    let source = case.source();

    let mut report = BackendReport {
        label: case.label(),
        backends: Vec::new(),
        mismatches: Vec::new(),
    };

    let mut reference: Option<Outputs> = None;
    for choice in choices() {
        let name = backend::resolved_name(choice);
        report.backends.push(name);
        let out = run_under(choice, &source);
        match &reference {
            None => reference = Some(out),
            Some(r) => diff_backend(name, r, &out, &mut report),
        }
    }
    backend::select(BackendChoice::Auto);
    report
}

fn diff_backend(name: &'static str, reference: &Outputs, got: &Outputs, rep: &mut BackendReport) {
    let shape = got.result.shape;
    for id in shape.ids() {
        let i = shape.index(id);
        for (axis, g, want) in [
            ("west", got.result.west[i], reference.result.west[i]),
            ("north", got.result.north[i], reference.result.north[i]),
        ] {
            // Integer displacement only: the correlation channel carries
            // CCF values, whose co-moments legitimately re-associate.
            let gxy = g.map(|d| (d.x, d.y));
            let wxy = want.map(|d| (d.x, d.y));
            if gxy != wxy {
                rep.mismatches.push(BackendMismatch {
                    backend: name,
                    detail: format!(
                        "{axis} displacement at tile ({}, {}): scalar {wxy:?}, got {gxy:?}",
                        id.row, id.col
                    ),
                });
            }
        }
        let (gp, wp) = (got.positions.get(id), reference.positions.get(id));
        if gp != wp {
            rep.mismatches.push(BackendMismatch {
                backend: name,
                detail: format!(
                    "position of tile ({}, {}): scalar {wp:?}, got {gp:?}",
                    id.row, id.col
                ),
            });
        }
    }
    if got.mosaic.dims() != reference.mosaic.dims() {
        rep.mismatches.push(BackendMismatch {
            backend: name,
            detail: format!(
                "mosaic dims: scalar {:?}, got {:?}",
                reference.mosaic.dims(),
                got.mosaic.dims()
            ),
        });
    } else if got.mosaic != reference.mosaic {
        let w = got.mosaic.width();
        let (idx, (a, b)) = got
            .mosaic
            .pixels()
            .iter()
            .zip(reference.mosaic.pixels())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| (i, (*a, *b)))
            .expect("mosaics differ");
        rep.mismatches.push(BackendMismatch {
            backend: name,
            detail: format!(
                "mosaic pixel at ({}, {}): scalar {b}, got {a}",
                idx % w,
                idx / w
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_choice_list_covers_all_non_auto_backends() {
        let c = choices();
        assert_eq!(c.len(), BackendChoice::NAMES.len() - 1);
        assert!(!c.contains(&BackendChoice::Auto));
    }

    #[test]
    fn single_case_runs_clean_and_restores_auto() {
        let case = SweepCase {
            rows: 2,
            cols: 2,
            tile_width: 48,
            tile_height: 40,
            overlap: 0.25,
            noise_sigma: 30.0,
            seed: 21,
        };
        let report = run_backend_case(&case);
        assert_eq!(report.backends.len(), choices().len());
        assert_eq!(report.backends[0], "scalar");
        assert!(report.is_clean(), "{report}");
    }
}
