//! # stitch-testkit — conformance and stress harness for the stitching system
//!
//! The paper's core claim is that all implementation variants compute the
//! *same* stitching result and differ only in schedule. This crate turns
//! that claim into machine-checked oracles:
//!
//! * [`canvas`] — the incremental-canvas differential oracle: a
//!   seeded-random arrival order with mid-run re-anchors fed through
//!   `stitch_canvas::run_incremental` must leave every pyramid scale
//!   bit-identical to one-shot compose + `pyramid()`, for every blend
//!   mode, with peak canvas residency bounded by touched chunks; plus
//!   a seeded stress harness over random geometries, chunk sizes,
//!   solve cadences, out-of-bounds reads, and resets;
//! * [`cases`] — a ground-truth grid generator over
//!   `stitch_image::synth`: textured scenes cut into `r×c` tile grids
//!   with known absolute positions, swept over overlap %, noise level,
//!   and tile sizes including awkward FFT lengths (primes → Bluestein);
//! * [`oracle`] — a cross-variant differential oracle that runs all six
//!   variants (Simple-CPU, MT-CPU, Pipelined-CPU, Simple-GPU,
//!   Pipelined-GPU, Fiji-style) on the same `TileSource` and asserts
//!   bit-identical phase-1 displacements, phase-2 positions, and composed
//!   mosaics, producing a structured diff report on mismatch;
//! * [`backends`] — a cross-*backend* differential oracle: the same
//!   pipeline under each `stitch_fft::backend` compute backend (scalar /
//!   portable / SIMD) must produce identical integer displacements,
//!   positions and mosaics over the same ground-truth sweep;
//! * [`channels`] — the multi-channel replay oracle: every channel and
//!   plane of a stacked acquisition must be composed with positions
//!   bit-identical to the reference-channel solo run (sequential and
//!   scheduler-backed drivers alike), plus a corrected-vs-uncorrected
//!   registration-accuracy sweep over vignetting strengths;
//! * [`metamorphic`] — metamorphic properties of PCIAM/subpixel:
//!   translation consistency, flip symmetry, intensity-scale invariance
//!   of the peak location;
//! * [`serve_chaos`] — a seeded chaos/soak harness for the
//!   `stitch serve` daemon: tenant storms, hung and panicking jobs,
//!   mid-run cancels, malformed lines, and client disconnects, with a
//!   deterministic fate digest and lease/queue-depth audits;
//! * [`shard`] — the sharded-vs-unsharded differential oracle and a
//!   seeded shard stress harness: random shard geometries (including
//!   degenerate 1×1/1×N/N×1 and uneven remainders), tight memory
//!   budgets, boundary-tile fault injection, and mid-run shard
//!   cancellation, with leak audits on every exit path;
//! * [`stress`] — a seeded stress runner that drives the pipelined
//!   variants under randomized-but-seeded queue capacities, worker
//!   counts, transfer-model latencies, and fault specs; the same seed
//!   always yields the same mosaic and health report.
//!
//! The top-level `tests/conformance.rs` suite drives all four; setting
//! `STITCH_TESTKIT_EXHAUSTIVE=1` extends the sweep (see
//! [`cases::sweep`]).

#![warn(missing_docs)]

pub mod alloc;
pub mod backends;
pub mod canvas;
pub mod cases;
pub mod channels;
pub mod metamorphic;
pub mod oracle;
pub mod sched_stress;
pub mod serve_chaos;
pub mod shard;
pub mod stress;

pub use backends::{run_backend_case, BackendMismatch, BackendReport};
pub use canvas::{
    run_canvas_differential, run_canvas_stress, CanvasMismatch, CanvasReport, CanvasStressOutcome,
};
pub use cases::{exhaustive_sweep, standard_sweep, sweep, SweepCase};
pub use channels::{
    multi_truth_vectors, run_channel_differential, AccuracyPoint, ChannelMismatch, ChannelReport,
};
pub use oracle::{run_case, variants, CaseReport, Mismatch, MismatchDetail};
pub use sched_stress::{
    run_job_solo, run_sched_stress, solo_digests, JobDigest, SchedStressConfig, SchedStressOutcome,
};
pub use serve_chaos::{
    run_serve_chaos, run_serve_soak, JobFate, ServeChaosConfig, ServeChaosOutcome, ServeSoakOutcome,
};
pub use shard::{
    run_shard_differential, run_shard_stress, shard_cases, ShardCaseSpec, ShardMismatch,
    ShardReport, ShardStressOutcome,
};
pub use stress::{run_stress, StressConfig, StressOutcome};
