//! Cross-variant differential oracle.
//!
//! Runs all six stitcher variants on the *same* tile source and checks
//! that every observable output — phase-1 displacements, phase-2 global
//! positions, and the composed mosaic — is **bit-identical** to the
//! Simple-CPU reference. The paper's variants differ only in schedule
//! (threading, pipelining, device placement); any numeric divergence is
//! a bug, and the oracle reports exactly which tile pair / tile /
//! pixel diverged on which variant.

use std::fmt;

use stitch_core::prelude::*;
use stitch_gpu::{Device, DeviceConfig};
use stitch_image::Image;

use crate::cases::SweepCase;

/// How many mismatches of each kind are recorded per variant before the
/// report truncates (the run still *counts* everything).
const MAX_RECORDED_PER_VARIANT: usize = 8;

/// Worker-thread count for the threaded variants: small enough to be
/// cheap on CI runners, large enough to exercise real concurrency.
const THREADS: usize = 2;

/// The six variants of Table II, reference (Simple-CPU) first. A fresh
/// set is built per call — stitchers hold per-run state (simulated GPU
/// devices), so sharing them across cases would couple the runs.
pub fn variants() -> Vec<Box<dyn Stitcher>> {
    let gpu = || Device::new(0, DeviceConfig::small(128 << 20));
    vec![
        Box::new(SimpleCpuStitcher::default()),
        Box::new(MtCpuStitcher::new(THREADS)),
        Box::new(PipelinedCpuStitcher::new(THREADS)),
        Box::new(SimpleGpuStitcher::new(gpu())),
        Box::new(PipelinedGpuStitcher::single(gpu())),
        Box::new(FijiStyleStitcher::new(THREADS)),
    ]
}

/// What diverged, in enough detail to reproduce and debug.
#[derive(Clone, Debug, PartialEq)]
pub enum MismatchDetail {
    /// A phase-1 relative displacement differs from the reference.
    Displacement {
        /// `"west"` or `"north"` — which pair family.
        axis: &'static str,
        /// The tile whose pair diverged.
        tile: TileId,
        /// The Simple-CPU reference value.
        reference: Option<Displacement>,
        /// The value this variant produced.
        got: Option<Displacement>,
    },
    /// A phase-2 global position differs from the reference.
    Position {
        /// The tile whose solved position diverged.
        tile: TileId,
        /// The Simple-CPU reference position.
        reference: (i64, i64),
        /// The position this variant produced.
        got: (i64, i64),
    },
    /// The composed mosaics have different dimensions.
    MosaicShape {
        /// Reference mosaic `(width, height)`.
        reference: (usize, usize),
        /// This variant's mosaic `(width, height)`.
        got: (usize, usize),
    },
    /// The composed mosaics differ pixel-wise.
    MosaicPixels {
        /// Coordinates of the first differing pixel.
        first: (usize, usize),
        /// Reference value at that pixel.
        reference: u16,
        /// This variant's value at that pixel.
        got: u16,
        /// Total number of differing pixels.
        differing: usize,
    },
    /// The variant did not produce a displacement for every pair.
    Incomplete,
}

impl fmt::Display for MismatchDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MismatchDetail::Displacement {
                axis,
                tile,
                reference,
                got,
            } => write!(
                f,
                "{axis} pair at tile ({}, {}): reference {reference:?}, got {got:?}",
                tile.row, tile.col
            ),
            MismatchDetail::Position {
                tile,
                reference,
                got,
            } => write!(
                f,
                "global position of tile ({}, {}): reference {reference:?}, got {got:?}",
                tile.row, tile.col
            ),
            MismatchDetail::MosaicShape { reference, got } => write!(
                f,
                "mosaic dims: reference {}x{}, got {}x{}",
                reference.0, reference.1, got.0, got.1
            ),
            MismatchDetail::MosaicPixels {
                first,
                reference,
                got,
                differing,
            } => write!(
                f,
                "mosaic pixels: {differing} differ, first at ({}, {}): reference {reference}, got {got}",
                first.0, first.1
            ),
            MismatchDetail::Incomplete => write!(f, "result incomplete: missing pair displacements"),
        }
    }
}

/// One recorded divergence: which variant, and what exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct Mismatch {
    /// Variant name (as reported by [`Stitcher::name`]).
    pub variant: String,
    /// The divergence itself.
    pub detail: MismatchDetail,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.variant, self.detail)
    }
}

/// The oracle's verdict for one sweep case.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Human-readable case identifier.
    pub label: String,
    /// The case that was run.
    pub case: SweepCase,
    /// Names of all variants that ran, reference first.
    pub variants: Vec<String>,
    /// Pairs where the *reference* disagrees with ground truth at zero
    /// tolerance (phase 1 may legitimately miss a featureless pair; the
    /// cross-variant checks are unaffected — every variant must miss it
    /// identically).
    pub truth_errors: usize,
    /// `max_deviation` of the reference's solved positions against the
    /// plate's ground-truth positions.
    pub position_deviation: (i64, i64),
    /// Every divergence found, capped per variant and kind.
    pub mismatches: Vec<Mismatch>,
    /// Total divergences found (not capped).
    pub total_mismatches: usize,
}

impl CaseReport {
    /// True when all variants agreed bit-for-bit on every output.
    pub fn is_clean(&self) -> bool {
        self.total_mismatches == 0
    }
}

impl fmt::Display for CaseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "case: {}", self.label)?;
        writeln!(
            f,
            "reference truth errors: {} pairs, position deviation {:?}",
            self.truth_errors, self.position_deviation
        )?;
        if self.is_clean() {
            write!(f, "all {} variants bit-identical", self.variants.len())
        } else {
            writeln!(
                f,
                "{} mismatches ({} recorded):",
                self.total_mismatches,
                self.mismatches.len()
            )?;
            for m in &self.mismatches {
                writeln!(f, "  {m}")?;
            }
            Ok(())
        }
    }
}

struct Reference {
    result: StitchResult,
    positions: AbsolutePositions,
    mosaic: Image<u16>,
}

/// Runs all six variants on `case` and diffs them against the Simple-CPU
/// reference. Panics never; the verdict (including any divergences) is in
/// the returned [`CaseReport`].
pub fn run_case(case: &SweepCase) -> CaseReport {
    let source = case.source();
    let plate = case.plate();
    let (truth_west, truth_north) = truth_vectors(&plate);

    let mut report = CaseReport {
        label: case.label(),
        case: case.clone(),
        variants: Vec::new(),
        truth_errors: 0,
        position_deviation: (0, 0),
        mismatches: Vec::new(),
        total_mismatches: 0,
    };

    let mut reference: Option<Reference> = None;
    for stitcher in variants() {
        let name = stitcher.name();
        report.variants.push(name.clone());

        let result = stitcher.compute_displacements(&source);
        let positions = GlobalOptimizer::default().solve(&result);
        let mosaic = Composer::new(positions.clone(), Blend::Overlay).compose(&source);

        match &reference {
            None => {
                report.truth_errors = result.count_errors(&truth_west, &truth_north, 0);
                report.position_deviation = positions.max_deviation(plate.positions());
                reference = Some(Reference {
                    result,
                    positions,
                    mosaic,
                });
            }
            Some(r) => diff_variant(&name, r, &result, &positions, &mosaic, &mut report),
        }
    }
    report
}

fn diff_variant(
    name: &str,
    reference: &Reference,
    result: &StitchResult,
    positions: &AbsolutePositions,
    mosaic: &Image<u16>,
    report: &mut CaseReport,
) {
    let mut recorded_for_variant = 0;
    let mut record = |report: &mut CaseReport, detail: MismatchDetail| {
        report.total_mismatches += 1;
        if recorded_for_variant < MAX_RECORDED_PER_VARIANT {
            recorded_for_variant += 1;
            report.mismatches.push(Mismatch {
                variant: name.to_string(),
                detail,
            });
        }
    };

    if !result.is_complete() && reference.result.is_complete() {
        record(report, MismatchDetail::Incomplete);
    }

    let shape = result.shape;
    for id in shape.ids().collect::<Vec<_>>() {
        let i = shape.index(id);
        for (axis, got, want) in [
            ("west", result.west[i], reference.result.west[i]),
            ("north", result.north[i], reference.result.north[i]),
        ] {
            if got != want {
                record(
                    report,
                    MismatchDetail::Displacement {
                        axis,
                        tile: id,
                        reference: want,
                        got,
                    },
                );
            }
        }
    }

    if positions.positions != reference.positions.positions {
        for id in shape.ids().collect::<Vec<_>>() {
            let got = positions.get(id);
            let want = reference.positions.get(id);
            if got != want {
                record(
                    report,
                    MismatchDetail::Position {
                        tile: id,
                        reference: want,
                        got,
                    },
                );
            }
        }
    }

    if mosaic.dims() != reference.mosaic.dims() {
        record(
            report,
            MismatchDetail::MosaicShape {
                reference: reference.mosaic.dims(),
                got: mosaic.dims(),
            },
        );
    } else if mosaic != &reference.mosaic {
        let w = mosaic.width();
        let mut first = None;
        let mut differing = 0usize;
        for (idx, (a, b)) in mosaic
            .pixels()
            .iter()
            .zip(reference.mosaic.pixels())
            .enumerate()
        {
            if a != b {
                differing += 1;
                if first.is_none() {
                    first = Some((idx % w, idx / w, *b, *a));
                }
            }
        }
        if let Some((x, y, want, got)) = first {
            record(
                report,
                MismatchDetail::MosaicPixels {
                    first: (x, y),
                    reference: want,
                    got,
                    differing,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_case_reports_clean() {
        let case = SweepCase {
            rows: 2,
            cols: 2,
            tile_width: 48,
            tile_height: 40,
            overlap: 0.25,
            noise_sigma: 30.0,
            seed: 11,
        };
        let report = run_case(&case);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.variants.len(), 6);
        assert_eq!(report.position_deviation, (0, 0), "{report}");
        let shown = format!("{report}");
        assert!(shown.contains("bit-identical"), "{shown}");
    }

    #[test]
    fn injected_divergence_is_reported_with_location() {
        // Diff a doctored result against a genuine reference to prove the
        // report pinpoints the divergence (variant, axis, tile).
        let case = SweepCase {
            rows: 2,
            cols: 2,
            tile_width: 48,
            tile_height: 40,
            overlap: 0.25,
            noise_sigma: 30.0,
            seed: 12,
        };
        let source = case.source();
        let result = SimpleCpuStitcher::default().compute_displacements(&source);
        let positions = GlobalOptimizer::default().solve(&result);
        let mosaic = Composer::new(positions.clone(), Blend::Overlay).compose(&source);
        let reference = Reference {
            result: result.clone(),
            positions: positions.clone(),
            mosaic: mosaic.clone(),
        };

        let mut doctored = result;
        let tile = TileId::new(1, 1);
        let idx = doctored.shape.index(tile);
        doctored.west[idx] = Some(Displacement::new(999, -999, 0.5));

        let mut report = CaseReport {
            label: case.label(),
            case,
            variants: vec!["reference".into(), "doctored".into()],
            truth_errors: 0,
            position_deviation: (0, 0),
            mismatches: Vec::new(),
            total_mismatches: 0,
        };
        diff_variant(
            "doctored",
            &reference,
            &doctored,
            &positions,
            &mosaic,
            &mut report,
        );
        assert!(!report.is_clean());
        let m = &report.mismatches[0];
        assert_eq!(m.variant, "doctored");
        let text = format!("{m}");
        assert!(text.contains("west pair at tile (1, 1)"), "{text}");
        assert!(text.contains("999"), "{text}");
    }

    #[test]
    fn mosaic_pixel_divergence_is_located() {
        let case = SweepCase {
            rows: 2,
            cols: 2,
            tile_width: 48,
            tile_height: 40,
            overlap: 0.25,
            noise_sigma: 30.0,
            seed: 13,
        };
        let source = case.source();
        let result = SimpleCpuStitcher::default().compute_displacements(&source);
        let positions = GlobalOptimizer::default().solve(&result);
        let mosaic = Composer::new(positions.clone(), Blend::Overlay).compose(&source);
        let reference = Reference {
            result: result.clone(),
            positions: positions.clone(),
            mosaic: mosaic.clone(),
        };
        let mut doctored = mosaic.clone();
        let v = doctored.get(5, 7);
        doctored.set(5, 7, v.wrapping_add(1));

        let mut report = CaseReport {
            label: case.label(),
            case,
            variants: vec!["reference".into(), "doctored".into()],
            truth_errors: 0,
            position_deviation: (0, 0),
            mismatches: Vec::new(),
            total_mismatches: 0,
        };
        diff_variant(
            "doctored",
            &reference,
            &result,
            &positions,
            &doctored,
            &mut report,
        );
        assert_eq!(report.total_mismatches, 1);
        match &report.mismatches[0].detail {
            MismatchDetail::MosaicPixels {
                first, differing, ..
            } => {
                assert_eq!(*first, (5, 7));
                assert_eq!(*differing, 1);
            }
            other => panic!("wrong detail: {other:?}"),
        }
    }
}
