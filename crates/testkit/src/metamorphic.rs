//! Metamorphic properties of PCIAM and the subpixel refinement.
//!
//! Phase correlation has algebraic symmetries that hold regardless of
//! the scene: translating a pair translates its displacement, mirroring
//! a pair mirrors it, and rescaling intensities by a power of two leaves
//! the peak location (and, in `f64`, every correlation value) *bit*
//! unchanged — normalization divides the scale factor out exactly. These
//! properties need no ground truth, so they catch regressions even where
//! the synthetic-plate oracle has none.

use std::sync::Arc;

use stitch_core::opcount::OpCounters;
use stitch_core::subpixel::{refine_subpixel, SubpixelDisplacement};
use stitch_core::types::Displacement;
use stitch_core::PciamContext;
use stitch_fft::Planner;
use stitch_image::synth::{Scene, SceneParams};
use stitch_image::Image;

/// Mirrors an image left↔right. Under `pciam`'s convention this maps a
/// pair displacement `(dx, dy)` to `(-dx, dy)` when applied to both
/// tiles.
pub fn flip_horizontal(img: &Image<u16>) -> Image<u16> {
    let (w, h) = img.dims();
    let mut out = Image::new(w, h);
    for y in 0..h {
        for x in 0..w {
            out.set(x, y, img.get(w - 1 - x, y));
        }
    }
    out
}

/// Mirrors an image top↔bottom: pair displacement `(dx, dy)` becomes
/// `(dx, -dy)` when applied to both tiles.
pub fn flip_vertical(img: &Image<u16>) -> Image<u16> {
    let (w, h) = img.dims();
    let mut out = Image::new(w, h);
    for y in 0..h {
        for x in 0..w {
            out.set(x, y, img.get(x, h - 1 - y));
        }
    }
    out
}

/// Scales every pixel by an integer factor, saturating at `u16::MAX`.
/// With a power-of-two factor and unsaturated pixels, every PCIAM
/// intermediate scales exactly and the displacement (including its
/// correlation value) is bit-identical.
pub fn scale_intensity(img: &Image<u16>, factor: u16) -> Image<u16> {
    let (w, h) = img.dims();
    let mut out = Image::new(w, h);
    for (o, &p) in out.pixels_mut().iter_mut().zip(img.pixels()) {
        *o = p.saturating_mul(factor);
    }
    out
}

/// One-shot PCIAM between two same-size tiles: `d = pos(b) − pos(a)`.
pub fn pciam_displacement(a: &Image<u16>, b: &Image<u16>) -> Displacement {
    let planner = Planner::default();
    let mut ctx = PciamContext::new(
        &planner,
        a.width(),
        a.height(),
        Arc::new(OpCounters::default()),
    );
    ctx.pciam(a, b)
}

/// [`pciam_displacement`] followed by parabolic subpixel refinement.
pub fn pciam_subpixel(a: &Image<u16>, b: &Image<u16>) -> SubpixelDisplacement {
    let d = pciam_displacement(a, b);
    refine_subpixel(a, b, d)
}

/// A deterministic, well-textured analytic scene for rendering tile
/// pairs at arbitrary (even fractional) offsets, noise- and
/// vignette-free so translations are exact content shifts.
pub fn test_scene(seed: u64) -> Scene {
    Scene::generate(
        512.0,
        512.0,
        SceneParams {
            colony_count: 14,
            seed,
            ..SceneParams::default()
        },
    )
}

/// Renders a `w × h` tile whose top-left corner sits at `(x0, y0)` in
/// scene coordinates (no noise, no vignette).
pub fn render_at(scene: &Scene, x0: f64, y0: f64, w: usize, h: usize) -> Image<u16> {
    scene.render_region(x0, y0, w, h, 0.0, 0.0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 64;
    const H: usize = 48;

    /// Anchored pairs with a known offset: PCIAM must recover the offset
    /// exactly, from any anchor — d(render(p), render(p+t)) == t.
    #[test]
    fn translation_consistency_integer_offsets() {
        let scene = test_scene(9001);
        for (ax, ay) in [(40.0, 40.0), (120.0, 200.0), (300.0, 77.0)] {
            for (dx, dy) in [(45i64, 2i64), (44, -3), (-2, 33), (3, 35)] {
                let a = render_at(&scene, ax, ay, W, H);
                let b = render_at(&scene, ax + dx as f64, ay + dy as f64, W, H);
                let d = pciam_displacement(&a, &b);
                assert_eq!(
                    (d.x, d.y),
                    (dx, dy),
                    "anchor ({ax}, {ay}), true offset ({dx}, {dy}), got {d:?}"
                );
            }
        }
    }

    /// Adding δ to a pair's offset adds δ to its displacement — the
    /// metamorphic relation proper, checked without trusting either
    /// absolute answer.
    #[test]
    fn translation_metamorphic_relation() {
        let scene = test_scene(9002);
        let (ax, ay) = (100.0, 150.0);
        let a = render_at(&scene, ax, ay, W, H);
        let base = pciam_displacement(&a, &render_at(&scene, ax + 42.0, ay + 1.0, W, H));
        for (ddx, ddy) in [(1i64, 0i64), (0, 1), (3, -2), (-5, 4)] {
            let shifted = pciam_displacement(
                &a,
                &render_at(&scene, ax + 42.0 + ddx as f64, ay + 1.0 + ddy as f64, W, H),
            );
            assert_eq!(
                (shifted.x, shifted.y),
                (base.x + ddx, base.y + ddy),
                "δ = ({ddx}, {ddy}), base {base:?}, shifted {shifted:?}"
            );
        }
    }

    /// Mirroring both tiles mirrors the displacement: flip_h negates dx,
    /// flip_v negates dy, and the winning correlation is preserved.
    #[test]
    fn flip_symmetry() {
        let scene = test_scene(9003);
        let a = render_at(&scene, 60.0, 90.0, W, H);
        let b = render_at(&scene, 60.0 + 46.0, 90.0 + 3.0, W, H);
        let d = pciam_displacement(&a, &b);
        assert_eq!((d.x, d.y), (46, 3));

        let dh = pciam_displacement(&flip_horizontal(&a), &flip_horizontal(&b));
        assert_eq!((dh.x, dh.y), (-d.x, d.y), "flip_h: {d:?} → {dh:?}");

        let dv = pciam_displacement(&flip_vertical(&a), &flip_vertical(&b));
        assert_eq!((dv.x, dv.y), (d.x, -d.y), "flip_v: {d:?} → {dv:?}");

        // flips permute pixels, they do not change overlap statistics
        assert_eq!(d.correlation, dh.correlation);
        assert_eq!(d.correlation, dv.correlation);
    }

    /// Power-of-two intensity scaling is exact in f64 end to end (FFT,
    /// NCC normalization, Pearson CCF): displacement *and* correlation
    /// are bit-identical, as is the subpixel refinement.
    #[test]
    fn intensity_scale_invariance_is_bit_exact() {
        let scene = test_scene(9004);
        let a = render_at(&scene, 200.0, 50.0, W, H);
        let b = render_at(&scene, 200.0 + 45.0, 50.0 - 2.0, W, H);
        // scene intensities stay < 22_000, so ×2 cannot saturate u16
        assert!(a.pixels().iter().all(|&p| p < 32_768));
        let a2 = scale_intensity(&a, 2);
        let b2 = scale_intensity(&b, 2);

        let d = pciam_displacement(&a, &b);
        let d2 = pciam_displacement(&a2, &b2);
        assert_eq!(
            d, d2,
            "integer displacement + correlation must match bitwise"
        );

        let s = pciam_subpixel(&a, &b);
        let s2 = pciam_subpixel(&a2, &b2);
        assert_eq!(s.x.to_bits(), s2.x.to_bits());
        assert_eq!(s.y.to_bits(), s2.y.to_bits());
        assert_eq!(s.correlation.to_bits(), s2.correlation.to_bits());
    }

    /// Fractional scene offsets: the refinement must stay finite, within
    /// the ±0.5 clamp around the integer peak, and within one pixel of
    /// the true subpixel displacement. (A three-point parabola on a
    /// Pearson CCF is not a half-pixel-accurate interpolator for
    /// arbitrary scenes, so truth gets a full-pixel tolerance; the clamp
    /// is the hard guarantee.)
    #[test]
    fn subpixel_translation_consistency() {
        let scene = test_scene(9005);
        let (ax, ay) = (150.0, 150.0);
        let a = render_at(&scene, ax, ay, W, H);
        for (dx, dy) in [(45.5, 2.0), (45.25, 1.75), (44.0, 2.5)] {
            let b = render_at(&scene, ax + dx, ay + dy, W, H);
            let d = pciam_displacement(&a, &b);
            let s = pciam_subpixel(&a, &b);
            assert!(s.x.is_finite() && s.y.is_finite());
            assert!(
                (s.x - d.x as f64).abs() <= 0.5 && (s.y - d.y as f64).abs() <= 0.5,
                "refinement left the clamp: integer {d:?}, refined ({}, {})",
                s.x,
                s.y
            );
            assert!(
                (s.x - dx).abs() < 1.0 && (s.y - dy).abs() < 1.0,
                "true ({dx}, {dy}), refined ({}, {})",
                s.x,
                s.y
            );
        }
    }
}
