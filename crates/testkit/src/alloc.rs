//! A counting global allocator for allocation-budget assertions.
//!
//! The paper's §IV-A memory discipline — buffers allocated once and
//! recycled by reference count — is only checkable if allocations are
//! observable. [`CountingAllocator`] wraps the system allocator with
//! atomic counters; a test or bench binary installs it with
//! `#[global_allocator]` and asserts deltas around the region of
//! interest (the conformance suite pins the steady-state PCIAM pair
//! computation at **zero** allocations; `perfgate` reports per-run
//! allocation counts next to wall-clock medians).
//!
//! Two counter scopes are exposed:
//!
//! * process-wide ([`CountingAllocator::allocations`] /
//!   [`CountingAllocator::bytes_allocated`]) — right for sequential
//!   whole-run measurements like `perfgate`;
//! * per-thread ([`CountingAllocator::thread_allocations`]) — right for
//!   assertions inside a multi-threaded test harness, where unrelated
//!   tests allocating on sibling threads must not pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-initialized Cell: no lazy init, no destructor — safe to
    // touch from inside the allocator itself.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// A `#[global_allocator]`-installable wrapper over [`System`] that
/// counts every allocation. Zero-sized; the counters are process-global
/// statics so the type can be constructed in `const` position.
pub struct CountingAllocator;

impl CountingAllocator {
    /// Creates the allocator (const, for `static` initializers).
    pub const fn new() -> CountingAllocator {
        CountingAllocator
    }

    /// Total heap allocations (including reallocations) process-wide.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total heap deallocations process-wide.
    pub fn deallocations() -> u64 {
        DEALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested from the heap process-wide.
    pub fn bytes_allocated() -> u64 {
        BYTES_ALLOCATED.load(Ordering::Relaxed)
    }

    /// Heap allocations performed by the *calling thread* only.
    pub fn thread_allocations() -> u64 {
        THREAD_ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
    }
}

impl Default for CountingAllocator {
    fn default() -> CountingAllocator {
        CountingAllocator::new()
    }
}

#[inline]
fn count(bytes: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    BYTES_ALLOCATED.fetch_add(bytes as u64, Ordering::Relaxed);
    // try_with: the TLS slot has no destructor, but stay panic-free
    // during thread teardown regardless.
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates verbatim to `System`; the counter updates are
// side-effect-only and allocation-free (atomics + const-init TLS).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        System.realloc(ptr, layout, new_size)
    }
}
