//! Incremental-canvas conformance: the differential oracle and the
//! seeded stress harness for `stitch-canvas`.
//!
//! The oracle's claim is the tentpole guarantee of the incremental
//! path: feeding tiles in **any** arrival order through
//! [`run_incremental`] — with mid-run solves re-anchoring already
//! placed tiles — must leave the pyramid canvas **bit identical**, at
//! every scale, to the one-shot oracle (batch stitch → global solve →
//! [`Composer`] compose → [`pyramid`] downsample), for every blend
//! mode and with tile-border highlighting on or off. Alongside, the
//! canvas's peak resident bytes must be bounded by the chunks the
//! reads actually touched, not by mosaic area.

use std::sync::Arc;

use stitch_canvas::{run_incremental, CanvasConfig, IncrementalConfig, SharedCanvas};
use stitch_core::{
    pyramid, Blend, Composer, FailurePolicy, GlobalOptimizer, GridShape, SimpleCpuStitcher,
    Stitcher, SyntheticSource, TileId, TileSource,
};
use stitch_image::{ScanConfig, SyntheticPlate};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One incremental-vs-one-shot disagreement.
#[derive(Clone, Debug)]
pub struct CanvasMismatch {
    /// Which case disagreed.
    pub label: String,
    /// What disagreed and how.
    pub detail: String,
}

/// What [`run_canvas_differential`] observed.
#[derive(Clone, Debug)]
pub struct CanvasReport {
    /// Cases run.
    pub cases: usize,
    /// Disagreements (empty on a clean run).
    pub mismatches: Vec<CanvasMismatch>,
    /// FNV digest of every case's per-scale pixels — pure in the seed,
    /// for determinism assertions.
    pub digest: u64,
}

impl CanvasReport {
    /// True when every case was bit-identical.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Seeded Fisher-Yates over the grid's row-major id list.
fn shuffled_ids(shape: GridShape, rng: &mut StdRng) -> Vec<TileId> {
    let mut ids: Vec<TileId> = shape.ids().collect();
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        ids.swap(i, j);
    }
    ids
}

fn scan_for(seed: u64, case: u64) -> ScanConfig {
    ScanConfig {
        grid_rows: 3,
        grid_cols: 3,
        tile_width: 40,
        tile_height: 32,
        overlap: 0.25,
        stage_jitter: 2.0,
        backlash_x: 1.0,
        noise_sigma: 40.0,
        vignette: 0.03,
        seed: seed ^ (0x6c1 + case),
    }
}

/// Runs the incremental-vs-one-shot differential: every blend mode
/// (plus a border-highlight case) under a seeded-random arrival order
/// with a mid-run solve cadence that forces at least one re-anchor.
/// Pure in `seed`: the same seed always yields the same report digest.
pub fn run_canvas_differential(seed: u64) -> CanvasReport {
    let specs: [(Blend, bool, &str); 5] = [
        (Blend::Overlay, false, "overlay"),
        (Blend::First, false, "first"),
        (Blend::Average, false, "average"),
        (Blend::Linear, false, "linear"),
        (Blend::Overlay, true, "overlay+highlight"),
    ];
    let mut mismatches = Vec::new();
    let mut digest = 0xcbf29ce484222325u64;

    for (case, &(blend, highlight, name)) in specs.iter().enumerate() {
        let label = format!("{name} seed={seed}");
        let mut rng = StdRng::seed_from_u64(seed ^ (0xca9 + case as u64));
        let source = SyntheticSource::new(SyntheticPlate::generate(scan_for(seed, case as u64)));
        let order = shuffled_ids(source.shape(), &mut rng);

        // chunk=64 straddles both tile and mosaic boundaries; solving
        // every 3 arrivals forces re-anchors while tiles keep landing
        let canvas = Arc::new(SharedCanvas::new(CanvasConfig {
            chunk: 64,
            blend,
            highlight_tiles: highlight,
            ..CanvasConfig::default()
        }));
        let cfg = IncrementalConfig {
            solve_every: 3,
            ..IncrementalConfig::default()
        };
        let out = match run_incremental(
            &source,
            &order,
            cfg,
            Arc::clone(&canvas),
            &FailurePolicy::default(),
        ) {
            Ok(out) => out,
            Err(e) => {
                mismatches.push(CanvasMismatch {
                    label,
                    detail: format!("incremental run failed: {e}"),
                });
                continue;
            }
        };
        if out.moved == 0 {
            mismatches.push(CanvasMismatch {
                label: label.clone(),
                detail: "no mid-run re-anchor happened (case proves nothing)".into(),
            });
        }

        // the one-shot oracle over the same plate
        let baseline = SimpleCpuStitcher::default()
            .try_compute_displacements(&source, &FailurePolicy::default())
            .expect("baseline stitch on a clean synthetic plate");
        let positions = GlobalOptimizer::default().solve(&baseline);
        if positions != out.positions {
            mismatches.push(CanvasMismatch {
                label: label.clone(),
                detail: "incremental final solve differs from batch solve".into(),
            });
        }
        let mut composer = Composer::new(positions, blend);
        composer.highlight_tiles = highlight;
        let mosaic = composer.compose(&source);
        let levels = pyramid(mosaic, canvas.max_scale());

        for (scale, level) in levels.iter().enumerate() {
            let got = canvas.get_region(scale, 0, 0, level.width(), level.height());
            if got.pixels() != level.pixels() {
                let diff = got
                    .pixels()
                    .iter()
                    .zip(level.pixels())
                    .filter(|(a, b)| a != b)
                    .count();
                mismatches.push(CanvasMismatch {
                    label: label.clone(),
                    detail: format!("scale {scale}: {diff} pixels differ from oracle pyramid"),
                });
            }
            for px in got.pixels() {
                digest = fnv_fold(digest, &px.to_le_bytes());
            }
        }

        // Peak residency bound: the reads above touch at most the
        // chunk grid covering each pyramid level (one slack chunk per
        // axis for pre-solve nominal placements that later re-anchor).
        let chunk = 64usize;
        let bound: usize = levels
            .iter()
            .map(|level| {
                (level.width().div_ceil(chunk) + 1)
                    * (level.height().div_ceil(chunk) + 1)
                    * chunk
                    * chunk
                    * 2
            })
            .sum();
        let stats = canvas.stats();
        if stats.peak_chunk_bytes > bound {
            mismatches.push(CanvasMismatch {
                label: label.clone(),
                detail: format!(
                    "peak chunk bytes {} exceed the read-footprint bound {bound}",
                    stats.peak_chunk_bytes
                ),
            });
        }
    }

    CanvasReport {
        cases: specs.len(),
        mismatches,
        digest,
    }
}

/// What [`run_canvas_stress`] observed across its iterations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanvasStressOutcome {
    /// The driving seed.
    pub seed: u64,
    /// Iterations run.
    pub iterations: usize,
    /// One deterministic fate string per iteration.
    pub fates: Vec<String>,
    /// FNV digest over fates and sampled region pixels — pure in `seed`.
    pub digest: u64,
}

/// Runs a seeded batch of randomized incremental runs: random grid and
/// tile geometry, random chunk sizes (including ones misaligned with
/// everything), random solve cadence (including solve-only-at-finish),
/// random arrival order, then random region reads at random scales and
/// offsets — including regions hanging off the canvas into the signed
/// plane — and an occasional reset that must leave the canvas truly
/// empty. Fates and digest are pure in `seed`.
pub fn run_canvas_stress(seed: u64) -> CanvasStressOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xca57);
    let iterations = 4usize;
    let mut fates = Vec::with_capacity(iterations);
    let mut digest = 0xcbf29ce484222325u64;

    for i in 0..iterations {
        let rows = rng.gen_range(2usize..=3);
        let cols = rng.gen_range(2usize..=3);
        let (tw, th) = [(32, 24), (40, 32), (48, 36)][rng.gen_range(0usize..3)];
        let chunk = [16usize, 33, 64][rng.gen_range(0usize..3)];
        let blend =
            [Blend::Overlay, Blend::First, Blend::Average, Blend::Linear][rng.gen_range(0usize..4)];
        let solve_every = [0usize, 1, 2, 4][rng.gen_range(0usize..4)];
        let scan = ScanConfig {
            grid_rows: rows,
            grid_cols: cols,
            tile_width: tw,
            tile_height: th,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 40.0,
            vignette: 0.03,
            seed: seed ^ (0x9e37 + i as u64),
        };
        let source = SyntheticSource::new(SyntheticPlate::generate(scan));
        let order = shuffled_ids(source.shape(), &mut rng);
        let canvas = Arc::new(SharedCanvas::new(CanvasConfig {
            chunk,
            blend,
            ..CanvasConfig::default()
        }));
        let cfg = IncrementalConfig {
            solve_every,
            ..IncrementalConfig::default()
        };
        let out = run_incremental(
            &source,
            &order,
            cfg,
            Arc::clone(&canvas),
            &FailurePolicy::default(),
        )
        .expect("clean plates stitch");

        let (mw, mh) = out.positions.mosaic_dims(tw, th);
        for _ in 0..3 {
            let scale = rng.gen_range(0usize..=canvas.max_scale());
            let x = rng.gen_range(-20i64..(mw as i64));
            let y = rng.gen_range(-20i64..(mh as i64));
            let w = rng.gen_range(1usize..=50);
            let h = rng.gen_range(1usize..=50);
            let img = canvas.get_region(scale, x, y, w, h);
            for px in img.pixels() {
                digest = fnv_fold(digest, &px.to_le_bytes());
            }
        }
        let stats = canvas.stats();
        let reset = rng.gen_range(0u32..3) == 0;
        let mut fate = format!(
            "iter{i} {rows}x{cols} {tw}x{th} chunk={chunk} {blend:?} solve_every={solve_every}: \
             placed={} solves={} moved={} live={}",
            out.placed, out.solves, out.moved, stats.live_chunks
        );
        if reset {
            canvas.reset();
            let after = canvas.stats();
            let blank = canvas.get_region(0, 0, 0, mw.min(64), mh.min(64));
            let clean = after.live_chunks == 0
                && after.placements == 0
                && blank.pixels().iter().all(|&p| p == 0);
            fate.push_str(if clean {
                " reset=clean"
            } else {
                " reset=DIRTY"
            });
        }
        digest = fnv_fold(digest, fate.as_bytes());
        fates.push(fate);
    }

    CanvasStressOutcome {
        seed,
        iterations,
        fates,
        digest,
    }
}
