//! Seeded stress runner for the pipelined variants.
//!
//! Randomizes — from a single seed — everything that is *allowed* to
//! vary without changing the answer: queue capacities, worker counts,
//! buffer-pool sizes, simulated transfer bandwidths and launch
//! overheads, injected fault patterns and retry backoffs. Then runs the
//! Pipelined-CPU and Pipelined-GPU stitchers under that regime and
//! packages every observable output into a [`StressOutcome`].
//!
//! The contract: `run_stress(seed)` is a pure function of `seed`. Two
//! runs with the same seed must produce `==` outcomes (same
//! displacements, same health reports, same mosaic), and within one
//! outcome the CPU and GPU pipelines must agree with each other — the
//! schedule chaos the randomization creates must never leak into the
//! result.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stitch_core::prelude::*;
use stitch_core::{PipelinedCpuConfig, PipelinedCpuStitcher, PipelinedGpuConfig};
use stitch_gpu::{Device, DeviceConfig};
use stitch_image::Image;

use crate::cases::SweepCase;

/// Everything `run_stress` randomizes, fully determined by the seed.
#[derive(Clone, Debug, PartialEq)]
pub struct StressConfig {
    /// The driving seed.
    pub seed: u64,
    /// The grid/imaging case under stress.
    pub case: SweepCase,
    /// Compute workers in the CPU pipeline.
    pub cpu_threads: usize,
    /// Reader threads in the CPU pipeline.
    pub read_threads: usize,
    /// CPU transform-pool size (kept ≥ `2·min_dim + 2`, the deadlock-free
    /// floor for chained-diagonal traversal).
    pub cpu_pool: usize,
    /// Queue-capacity floor for the CPU pipeline's inter-stage queues.
    pub queue_floor: usize,
    /// CCF host threads in the GPU pipeline.
    pub ccf_threads: usize,
    /// GPU transform-pool buffers.
    pub gpu_pool: usize,
    /// Simulated host→device bandwidth, bytes/s.
    pub h2d_bytes_per_sec: f64,
    /// Simulated device→host bandwidth, bytes/s.
    pub d2h_bytes_per_sec: f64,
    /// Simulated kernel launch overhead, nanoseconds.
    pub launch_overhead_nanos: u64,
    /// Probability that any single read attempt fails transiently.
    pub transient_rate: f64,
    /// Tile that always fails permanently, if any.
    pub corrupt: Option<TileId>,
    /// Injected per-read latency, microseconds.
    pub read_latency_micros: u64,
    /// Retry budget per tile.
    pub max_retries: u32,
    /// First-retry backoff, microseconds (doubles per retry).
    pub backoff_micros: u64,
}

impl StressConfig {
    /// Derives a full stress regime from a seed. Every parameter stays
    /// inside its documented safe envelope (pool sizes above the
    /// deadlock-free floor, latencies small enough to keep runs fast),
    /// so any seed is a valid test.
    pub fn derive(seed: u64) -> StressConfig {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57e55);
        let rows = rng.gen_range(2usize..=3);
        let cols = rng.gen_range(2usize..=4);
        let (tile_width, tile_height) = [(48, 40), (64, 48), (40, 32)][rng.gen_range(0usize..3)];
        let case = SweepCase {
            rows,
            cols,
            tile_width,
            tile_height,
            overlap: 0.20 + 0.03 * rng.gen_range(0u64..6) as f64,
            noise_sigma: 10.0 * rng.gen_range(0u64..7) as f64,
            seed: seed ^ 0x9e37,
        };
        let min_dim = rows.min(cols);
        let corrupt = if rng.gen_range(0u32..2) == 1 {
            // never tile (0,0): the optimizer pins the mosaic gauge there
            let idx = rng.gen_range(1usize..rows * cols);
            Some(TileId::new(idx / cols, idx % cols))
        } else {
            None
        };
        StressConfig {
            seed,
            case,
            cpu_threads: rng.gen_range(2usize..=4),
            read_threads: rng.gen_range(1usize..=2),
            cpu_pool: rng.gen_range(2 * min_dim + 2..=4 * min_dim + 8),
            queue_floor: rng.gen_range(1usize..=16),
            ccf_threads: rng.gen_range(1usize..=4),
            gpu_pool: rng.gen_range(2 * min_dim + 2..=2 * min_dim + 10),
            h2d_bytes_per_sec: 1.0e8 * rng.gen_range(1u64..=100) as f64,
            d2h_bytes_per_sec: 1.0e8 * rng.gen_range(1u64..=100) as f64,
            launch_overhead_nanos: rng.gen_range(0u64..=20_000),
            transient_rate: 0.05 * rng.gen_range(0u64..=5) as f64,
            corrupt,
            read_latency_micros: rng.gen_range(0u64..=300),
            max_retries: rng.gen_range(3u32..=6),
            backoff_micros: rng.gen_range(10u64..=200),
        }
    }

    fn fault_spec(&self) -> FaultSpec {
        FaultSpec {
            seed: self.seed ^ 0xfa17,
            transient_rate: self.transient_rate,
            corrupt: self.corrupt.into_iter().collect(),
            latency: Duration::from_micros(self.read_latency_micros),
        }
    }

    fn failure_policy(&self) -> FailurePolicy {
        FailurePolicy {
            retry: RetryPolicy {
                max_retries: self.max_retries,
                backoff: Duration::from_micros(self.backoff_micros),
                max_backoff: Duration::from_millis(5),
                deadline: None,
            },
            allow_partial: true,
        }
    }
}

/// Every observable output of one stress run. Derives `PartialEq` so
/// reproducibility is a single `==`.
#[derive(Clone, Debug, PartialEq)]
pub struct StressOutcome {
    /// The derived regime (itself part of the reproducibility contract).
    pub config: StressConfig,
    /// Pipelined-CPU west displacements, row-major.
    pub cpu_west: Vec<Option<Displacement>>,
    /// Pipelined-CPU north displacements.
    pub cpu_north: Vec<Option<Displacement>>,
    /// Pipelined-CPU per-tile read health.
    pub cpu_health: HealthReport,
    /// Pipelined-GPU west displacements.
    pub gpu_west: Vec<Option<Displacement>>,
    /// Pipelined-GPU north displacements.
    pub gpu_north: Vec<Option<Displacement>>,
    /// Pipelined-GPU per-tile read health.
    pub gpu_health: HealthReport,
    /// Global positions solved from the CPU result.
    pub positions: Vec<(i64, i64)>,
    /// The mosaic composed from those positions (clean source, so the
    /// composition is total even when some pairs degraded).
    pub mosaic: Image<u16>,
}

impl StressOutcome {
    /// True when the CPU and GPU pipelines agreed on every displacement
    /// and on the per-tile health (the cross-variant half of the stress
    /// contract).
    pub fn cpu_gpu_agree(&self) -> bool {
        self.cpu_west == self.gpu_west
            && self.cpu_north == self.gpu_north
            && self.cpu_health.tiles == self.gpu_health.tiles
    }
}

/// Runs one seeded stress iteration: derive the regime, run both
/// pipelined variants over (independently instantiated but identically
/// seeded) faulty sources, solve and compose. Pure in `seed`.
pub fn run_stress(seed: u64) -> StressOutcome {
    let config = StressConfig::derive(seed);
    let policy = config.failure_policy();

    // Fresh FaultySource per run: it counts attempts per instance, so
    // sharing one would hand the second stitcher different fault rolls.
    let cpu_source = FaultySource::new(config.case.source(), config.fault_spec());
    let cpu_cfg = PipelinedCpuConfig {
        read_threads: config.read_threads,
        pool_size: Some(config.cpu_pool),
        queue_floor: Some(config.queue_floor),
        ..PipelinedCpuConfig::with_threads(config.cpu_threads)
    };
    let cpu = PipelinedCpuStitcher::with_config(cpu_cfg)
        .try_compute_displacements(&cpu_source, &policy)
        .expect("partial policy tolerates tile failures");

    let gpu_source = FaultySource::new(config.case.source(), config.fault_spec());
    let device = Device::new(
        0,
        DeviceConfig {
            h2d_bytes_per_sec: Some(config.h2d_bytes_per_sec),
            d2h_bytes_per_sec: Some(config.d2h_bytes_per_sec),
            launch_overhead: Duration::from_nanos(config.launch_overhead_nanos),
            ..DeviceConfig::small(128 << 20)
        },
    );
    let gpu_cfg = PipelinedGpuConfig {
        ccf_threads: config.ccf_threads,
        pool_size: Some(config.gpu_pool),
        ..PipelinedGpuConfig::default()
    };
    let gpu = PipelinedGpuStitcher::new(vec![device], gpu_cfg)
        .try_compute_displacements(&gpu_source, &policy)
        .expect("partial policy tolerates tile failures");

    let positions = GlobalOptimizer::default().solve(&cpu);
    let mosaic = Composer::new(positions.clone(), Blend::Overlay).compose(&config.case.source());

    StressOutcome {
        config,
        cpu_west: cpu.west,
        cpu_north: cpu.north,
        cpu_health: cpu.health,
        gpu_west: gpu.west,
        gpu_north: gpu.north,
        gpu_health: gpu.health,
        positions: positions.positions,
        mosaic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_in_envelope() {
        for seed in 0..64u64 {
            let a = StressConfig::derive(seed);
            let b = StressConfig::derive(seed);
            assert_eq!(a, b);
            let min_dim = a.case.rows.min(a.case.cols);
            assert!(a.cpu_pool >= 2 * min_dim + 2, "{a:?}");
            assert!(a.gpu_pool >= 2 * min_dim + 2, "{a:?}");
            assert!(a.queue_floor >= 1 && a.queue_floor <= 16);
            assert!(a.transient_rate <= 0.25 + 1e-9);
            assert!(a.corrupt != Some(TileId::new(0, 0)));
        }
    }

    #[test]
    fn same_seed_same_outcome() {
        let a = run_stress(7);
        let b = run_stress(7);
        assert_eq!(a, b);
        assert!(a.cpu_gpu_agree(), "CPU/GPU divergence under stress");
    }

    #[test]
    fn corrupt_tile_degrades_identically_on_both_pipelines() {
        // find a seed whose regime includes a corrupt tile
        let seed = (0..64u64)
            .find(|&s| StressConfig::derive(s).corrupt.is_some())
            .expect("half of all seeds corrupt a tile");
        let out = run_stress(seed);
        let id = out.config.corrupt.unwrap();
        let shape = out.cpu_health.shape;
        assert!(matches!(
            out.cpu_health.tiles[shape.index(id)],
            TileStatus::Failed { .. }
        ));
        assert!(
            out.cpu_gpu_agree(),
            "degradation must match across pipelines"
        );
        // the mosaic still composes (partial-mosaic contract from PR 1)
        assert!(out.mosaic.width() > 0 && out.mosaic.height() > 0);
    }
}
