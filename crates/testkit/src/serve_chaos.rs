//! Seeded chaos and soak harness for the `stitch serve` daemon — the
//! service-level sibling of [`run_sched_stress`](crate::run_sched_stress).
//!
//! ## Chaos: `run_serve_chaos(seed)`
//!
//! From one seed it derives a full abuse script — tenant storms across
//! several named tenants, healthy jobs, panicking jobs, hung jobs that a
//! watchdog must kill, hung jobs a client cancels mid-run, malformed
//! protocol lines, and a subscriber that disconnects partway — then
//! drives a real [`ServeDaemon`] through it and drains.
//!
//! Contract, mirroring the other seeded harnesses:
//!
//! * **Pure in `seed` for its deterministic parts.** The script is built
//!   so every job's fate is forced, not raced: healthy jobs complete,
//!   `panic=true` jobs fail, hung jobs *with* a watchdog time out (the
//!   hang is ~4 orders of magnitude longer than the watchdog), and hung
//!   jobs *without* one are explicitly cancelled by the script (so a
//!   `Finish` drain cannot wedge). `PartialEq` on [`ServeChaosOutcome`]
//!   compares exactly the deterministic parts: per-job fates, contained
//!   parse errors, sheds, and rejections.
//! * **Invariant audits are separate.** Lease/reservation hygiene, the
//!   bounded queue depth, and event accounting are timing-independent
//!   facts checked via [`ServeChaosOutcome::clean`].
//!
//! ## Soak: `run_serve_soak(seed, jobs)`
//!
//! Pushes `jobs` submissions (≥3 tenants, a sprinkle of panics and
//! watchdog timeouts) through a *small* daemon — tight pending queue,
//! real rate limits — with a backpressure-aware client that retries
//! sheds. Not deterministic; [`ServeSoakOutcome::clean`] audits what
//! must hold regardless of timing: zero leaked reservations/leases,
//! pending depth bounded by `max_pending`, every accepted job accounted
//! for by a terminal status, and one flushed report file per job that
//! ran.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use stitch_sched::DrainPolicy;
use stitch_serve::protocol::status_token;
use stitch_serve::{Event, RateLimit, ServeConfig, ServeDaemon};

/// What the script intends for one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobFate {
    /// Healthy job; must complete.
    Complete,
    /// `panic=true`; must fail (contained).
    Panic,
    /// Hangs ~10 min with a ~25 ms watchdog; must time out.
    HangWatchdog,
    /// Hangs with no watchdog; the script cancels it; must be
    /// cancelled.
    HangCancel,
}

impl JobFate {
    /// The `event=done` status token this fate must produce.
    pub fn expected_token(&self) -> &'static str {
        match self {
            JobFate::Complete => "completed",
            JobFate::Panic => "failed",
            JobFate::HangWatchdog => "timeout",
            JobFate::HangCancel => "cancelled",
        }
    }
}

/// One scripted job: tenant, name, and forced fate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptedJob {
    /// Owning tenant (`t0`, `t1`, …).
    pub tenant: String,
    /// Tenant-local job name.
    pub name: String,
    /// The forced fate.
    pub fate: JobFate,
    /// The full `submit …` protocol line.
    pub line: String,
}

/// The abuse script derived from one seed.
#[derive(Clone, Debug)]
pub struct ServeChaosConfig {
    /// The driving seed.
    pub seed: u64,
    /// Named tenants in the storm.
    pub tenants: usize,
    /// Worker slots.
    pub workers: usize,
    /// Scripted jobs, in submission order.
    pub jobs: Vec<ScriptedJob>,
    /// Malformed lines interleaved with the submissions, as
    /// `(position in submission order, line)`.
    pub bad_lines: Vec<(usize, String)>,
}

impl ServeChaosConfig {
    /// Derives a full chaos script from a seed.
    pub fn derive(seed: u64) -> ServeChaosConfig {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e7ec4a05);
        let tenants = rng.gen_range(3usize..=4);
        let n_jobs = rng.gen_range(12usize..=20);
        let mut jobs = Vec::with_capacity(n_jobs);
        for i in 0..n_jobs {
            let tenant = format!("t{}", rng.gen_range(0usize..tenants));
            let name = format!("j{i}");
            let fate = match rng.gen_range(0u32..10) {
                0..=4 => JobFate::Complete,
                5 | 6 => JobFate::Panic,
                7 | 8 => JobFate::HangWatchdog,
                _ => JobFate::HangCancel,
            };
            let (rows, cols) = [(2, 2), (2, 3)][rng.gen_range(0usize..2)];
            let (tw, th) = [(32, 24), (40, 32)][rng.gen_range(0usize..2)];
            let mut line = format!(
                "submit name={name} tenant={tenant} grid={rows}x{cols} tile={tw}x{th} \
                 seed={} compose=false",
                seed ^ (0xc4a05 + i as u64)
            );
            match fate {
                JobFate::Complete => {}
                JobFate::Panic => line.push_str(" panic=true"),
                JobFate::HangWatchdog => line.push_str(" hang-ms=600000 watchdog-ms=25"),
                JobFate::HangCancel => line.push_str(" hang-ms=600000"),
            }
            jobs.push(ScriptedJob {
                tenant,
                name,
                fate,
                line,
            });
        }
        const BAD_POOL: [&str; 6] = [
            "frobnicate the mosaic",
            "submit name=bad grdi=2x2",
            "submit tile=32x24",
            "cancel tenant=ghost",
            "drain policy=sideways",
            "submit name=bad variant=quantum grid=2x2 tile=32x24",
        ];
        let n_bad = rng.gen_range(2usize..=4);
        let mut bad_lines = Vec::with_capacity(n_bad);
        for _ in 0..n_bad {
            let pos = rng.gen_range(0usize..=n_jobs);
            let line = BAD_POOL[rng.gen_range(0usize..BAD_POOL.len())];
            bad_lines.push((pos, line.to_string()));
        }
        bad_lines.sort_by_key(|(pos, _)| *pos);
        ServeChaosConfig {
            seed,
            tenants,
            workers: rng.gen_range(2usize..=3),
            jobs,
            bad_lines,
        }
    }
}

/// Everything one chaos run observed. `PartialEq` covers only the
/// deterministic parts (fates, errors, sheds, rejections); audits are
/// checked through [`ServeChaosOutcome::clean`].
#[derive(Clone, Debug)]
pub struct ServeChaosOutcome {
    /// The derived script.
    pub config: ServeChaosConfig,
    /// `(tenant/job, status token)` for every finished job, sorted.
    pub fates: Vec<(String, String)>,
    /// Malformed lines contained as `event=error`.
    pub errors: u64,
    /// Overload sheds (the chaos regime is provisioned so none occur).
    pub shed: u64,
    /// Outright rejections (likewise none).
    pub rejected: u64,
    /// Arbiter reservations outstanding after the drain (must be 0).
    pub reservations_after: usize,
    /// Spectrum-pool leases outstanding after the drain (must be 0).
    pub leases_after: usize,
    /// Highest pending-queue depth the daemon saw.
    pub pending_high_water: u64,
    /// Jobs still tracked after the drain (must be 0).
    pub inflight_after: u64,
    /// `done` events a survivor subscriber (connected from the start)
    /// received — must equal the job count even though a sibling
    /// subscriber disconnected mid-storm.
    pub survivor_done_events: usize,
}

impl PartialEq for ServeChaosOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.config.seed == other.config.seed
            && self.fates == other.fates
            && self.errors == other.errors
            && self.shed == other.shed
            && self.rejected == other.rejected
    }
}

impl ServeChaosOutcome {
    /// All service-level invariants in one check.
    pub fn clean(&self) -> bool {
        self.reservations_after == 0
            && self.leases_after == 0
            && self.inflight_after == 0
            && self.pending_high_water <= self.config.jobs.len() as u64
            && self.survivor_done_events == self.config.jobs.len()
            && self.shed == 0
            && self.rejected == 0
    }

    /// The fates the script forced, in the same sorted shape as
    /// [`ServeChaosOutcome::fates`].
    pub fn expected_fates(&self) -> Vec<(String, String)> {
        let mut expected: Vec<(String, String)> = self
            .config
            .jobs
            .iter()
            .map(|j| {
                (
                    format!("{}/{}", j.tenant, j.name),
                    j.fate.expected_token().to_string(),
                )
            })
            .collect();
        expected.sort();
        expected
    }
}

/// Runs one seeded chaos iteration. Deterministic parts are pure in
/// `seed`; see the module docs for the contract.
pub fn run_serve_chaos(seed: u64) -> ServeChaosOutcome {
    let config = ServeChaosConfig::derive(seed);
    let n_jobs = config.jobs.len();
    let daemon = ServeDaemon::new(ServeConfig {
        workers: config.workers,
        // Provisioned so overload protection never bites: the chaos
        // digest must be timing-free. (Shedding is exercised by the
        // soak runner and the unit batteries instead.)
        max_pending: n_jobs,
        tenant_policy: stitch_serve::TenantPolicy {
            max_in_flight: n_jobs,
            rate: None,
            mem_cap: None,
        },
        ..ServeConfig::default()
    });
    let survivor = daemon.subscribe();
    let quitter = daemon.subscribe();
    let mut quitter = Some(quitter);

    // The storm: submissions with malformed lines spliced in; halfway
    // through, one subscriber walks away.
    let mut bad = config.bad_lines.iter().peekable();
    for (i, job) in config.jobs.iter().enumerate() {
        while bad.next_if(|(pos, _)| *pos <= i).map(|(_, line)| {
            daemon.handle_line(line);
        }) == Some(())
        {}
        if i == n_jobs / 2 {
            quitter.take(); // client disconnect, mid-storm
        }
        daemon.handle_line(&job.line);
    }
    for (_, line) in bad {
        daemon.handle_line(line);
    }
    // Cancel every unwatched hung job — scripted, so a Finish drain
    // cannot wedge and the fate is forced.
    for job in &config.jobs {
        if job.fate == JobFate::HangCancel {
            daemon.handle_line(&format!("cancel tenant={} name={}", job.tenant, job.name));
        }
    }

    daemon.drain(DrainPolicy::Finish);
    let stats = daemon.stats();

    let mut fates = Vec::with_capacity(n_jobs);
    let mut survivor_done_events = 0usize;
    for event in survivor.try_iter() {
        if let Event::Done {
            tenant,
            job,
            status,
            ..
        } = event
        {
            survivor_done_events += 1;
            fates.push((format!("{tenant}/{job}"), status_token(&status).to_string()));
        }
    }
    fates.sort();

    ServeChaosOutcome {
        fates,
        errors: stats.errors,
        shed: stats.shed,
        rejected: stats.rejected,
        reservations_after: daemon.scheduler().arbiter().active_reservations(),
        leases_after: daemon.scheduler().arbiter().leased_spectra(),
        pending_high_water: stats.pending_high_water,
        inflight_after: stats.in_flight,
        survivor_done_events,
        config,
    }
}

/// What one soak run observed; audit via [`ServeSoakOutcome::clean`].
#[derive(Clone, Debug)]
pub struct ServeSoakOutcome {
    /// Submissions attempted.
    pub submitted: usize,
    /// Submissions the daemon accepted.
    pub accepted: u64,
    /// Accepted jobs that completed.
    pub completed: u64,
    /// Accepted jobs that failed (injected panics).
    pub failed: u64,
    /// Accepted jobs the watchdog timed out.
    pub timed_out: u64,
    /// Accepted jobs cancelled (none are scripted; drain is `Finish`).
    pub cancelled: u64,
    /// Shed events observed across all retries (overload is expected).
    pub shed_events: u64,
    /// Submissions dropped after exhausting their retry budget.
    pub dropped: usize,
    /// The daemon's pending-queue bound.
    pub max_pending: usize,
    /// Highest pending depth observed (must stay ≤ `max_pending`).
    pub pending_high_water: u64,
    /// Arbiter reservations outstanding after the drain (must be 0).
    pub reservations_after: usize,
    /// Spectrum-pool leases outstanding after the drain (must be 0).
    pub leases_after: usize,
    /// Jobs still tracked after the drain (must be 0).
    pub inflight_after: u64,
    /// Report files flushed by the drain.
    pub report_files: usize,
    /// Jobs that ran far enough to produce a report (completed+failed).
    pub report_eligible: u64,
}

impl ServeSoakOutcome {
    /// Every invariant the soak must uphold regardless of timing.
    pub fn clean(&self) -> bool {
        self.reservations_after == 0
            && self.leases_after == 0
            && self.inflight_after == 0
            && self.pending_high_water <= self.max_pending as u64
            && self.accepted == self.completed + self.failed + self.timed_out + self.cancelled
            && self.accepted as usize + self.dropped == self.submitted
            && self.report_files == self.report_eligible as usize
    }
}

/// Soaks a small daemon with `jobs` submissions across three tenants
/// through a backpressure-aware client (sheds are retried, briefly).
/// Panics and watchdog timeouts are injected throughout; the run ends
/// with a graceful `Finish` drain and a flushed-report audit.
pub fn run_serve_soak(seed: u64, jobs: usize) -> ServeSoakOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50a4);
    let max_pending = 32;
    let reports_dir =
        std::env::temp_dir().join(format!("stitch-serve-soak-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&reports_dir);
    let daemon = ServeDaemon::new(ServeConfig {
        workers: 3,
        max_pending,
        trace: stitch_trace::TraceHandle::new(),
        tenant_policy: stitch_serve::TenantPolicy {
            max_in_flight: 24,
            rate: Some(RateLimit {
                burst: 64,
                per_sec: 20_000.0,
            }),
            mem_cap: None,
        },
        reports_dir: Some(reports_dir.clone()),
        ..ServeConfig::default()
    });

    let mut shed_events = 0u64;
    let mut dropped = 0usize;
    for i in 0..jobs {
        let tenant = format!("t{}", i % 3);
        let mut line = format!(
            "submit name=s{i} tenant={tenant} grid=2x2 tile=32x24 seed={} compose=false",
            seed ^ i as u64
        );
        match rng.gen_range(0u32..20) {
            0 => line.push_str(" panic=true"),
            1 => line.push_str(" hang-ms=600000 watchdog-ms=20"),
            _ => {}
        }
        // Backpressure-aware client: a shed is retried for a while
        // (the daemon is tiny on purpose — overload is the test).
        let mut accepted = false;
        for _attempt in 0..500 {
            let events = daemon.handle_line(&line);
            match events.last() {
                Some(Event::Queued { .. }) => {
                    accepted = true;
                    break;
                }
                Some(Event::Shed { .. }) => {
                    shed_events += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => panic!("soak submission produced {other:?}"),
            }
        }
        if !accepted {
            dropped += 1;
        }
    }

    daemon.drain(DrainPolicy::Finish);
    let stats = daemon.stats();
    let report_files = std::fs::read_dir(&reports_dir)
        .map(|dir| dir.count())
        .unwrap_or(0);
    let outcome = ServeSoakOutcome {
        submitted: jobs,
        accepted: stats.accepted,
        completed: stats.completed,
        failed: stats.failed,
        timed_out: stats.timed_out,
        cancelled: stats.cancelled,
        shed_events,
        dropped,
        max_pending,
        pending_high_water: stats.pending_high_water,
        reservations_after: daemon.scheduler().arbiter().active_reservations(),
        leases_after: daemon.scheduler().arbiter().leased_spectra(),
        inflight_after: stats.in_flight,
        report_files,
        report_eligible: stats.completed + stats.failed,
    };
    let _ = std::fs::remove_dir_all(&reports_dir);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_script_derivation_is_deterministic_and_in_envelope() {
        for seed in 0..32u64 {
            let a = ServeChaosConfig::derive(seed);
            let b = ServeChaosConfig::derive(seed);
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.bad_lines, b.bad_lines);
            assert_eq!((a.tenants, a.workers), (b.tenants, b.workers));
            assert!((12..=20).contains(&a.jobs.len()));
            assert!((3..=4).contains(&a.tenants));
            assert!((2..=4).contains(&a.bad_lines.len()));
            // Unique names: the fate map must be collision-free.
            let mut keys: Vec<_> = a
                .jobs
                .iter()
                .map(|j| format!("{}/{}", j.tenant, j.name))
                .collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), a.jobs.len());
        }
    }

    #[test]
    fn scripts_cover_every_fate_across_a_few_seeds() {
        let mut seen = [false; 4];
        for seed in 0..8u64 {
            for job in ServeChaosConfig::derive(seed).jobs {
                seen[match job.fate {
                    JobFate::Complete => 0,
                    JobFate::Panic => 1,
                    JobFate::HangWatchdog => 2,
                    JobFate::HangCancel => 3,
                }] = true;
            }
        }
        assert_eq!(seen, [true; 4], "fate mix degenerated");
    }
}
