//! Multi-channel / z-stack conformance: the replay bit-identity oracle
//! and the flat-field registration-accuracy battery.
//!
//! Two claims are machine-checked here:
//!
//! 1. **Replay bit-identity** — a multi-channel run registers *once* on
//!    the reference channel and replays the solved frame everywhere, so
//!    every channel's mosaic must be composed with positions
//!    bit-identical to a solo run over the reference source, and the
//!    scheduler-backed batch driver must reproduce the sequential
//!    driver's mosaics bit-for-bit.
//! 2. **Correction helps where it should** — radial vignetting is
//!    tile-fixed, so uncorrected it correlates between overlapping tiles
//!    at zero displacement and drags phase-correlation peaks off the
//!    true offset. Sweeping falloff strength on ground-truth plates,
//!    flat-field-corrected registration must never be less accurate than
//!    uncorrected, and must be *strictly* more accurate once the falloff
//!    passes [`ChannelReport::improvement_threshold`].
//!
//! The whole battery is pure in `seed`: the same seed always produces
//! the same report digest.

use std::sync::Arc;

use stitch_core::{
    run_channel_plan, Blend, ChannelPlan, ChannelSession, Composer, FailurePolicy, GlobalOptimizer,
    SimpleCpuStitcher, Stitcher, TruthVector, ZMode,
};
use stitch_image::{Image, MultiChannelPlate, MultiScanConfig, ScanConfig, SceneParams};
use stitch_sched::{run_channel_batch, ChannelBatchOptions, JobStatus, Scheduler, SchedulerConfig};

use stitch_core::MultiSyntheticSource;

/// One replay-identity or accuracy-ordering violation.
#[derive(Clone, Debug)]
pub struct ChannelMismatch {
    /// Which case disagreed.
    pub label: String,
    /// What disagreed and how.
    pub detail: String,
}

/// One point of the corrected-vs-uncorrected accuracy sweep.
#[derive(Clone, Debug)]
pub struct AccuracyPoint {
    /// True vignetting falloff of the level's plates.
    pub vignette: f64,
    /// Displacement-pair errors (vs ground truth, ±1 px tolerance)
    /// registering the raw tiles, summed over the level's plates.
    pub uncorrected_errors: usize,
    /// The same count registering flat-field-corrected tiles.
    pub corrected_errors: usize,
    /// Mean falloff the estimator recovered from the tile stacks (0 when
    /// every fit snapped to the identity).
    pub estimated_falloff: f64,
    /// Displacement pairs scored across the level's plates (the
    /// denominator for the error counts).
    pub pairs: usize,
}

/// What [`run_channel_differential`] observed.
#[derive(Clone, Debug)]
pub struct ChannelReport {
    /// Replay-identity cases run.
    pub cases: usize,
    /// Violations (empty on a clean run).
    pub mismatches: Vec<ChannelMismatch>,
    /// The corrected-vs-uncorrected sweep, ascending in falloff.
    pub accuracy: Vec<AccuracyPoint>,
    /// Falloff beyond which correction must be *strictly* better.
    pub improvement_threshold: f64,
    /// FNV digest of every case's positions, mosaics, and accuracy
    /// counts — pure in the seed.
    pub digest: u64,
}

impl ChannelReport {
    /// True when every case was bit-identical and the accuracy ordering
    /// held at every sweep point.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn digest_mosaic(mut h: u64, m: &Image<u16>) -> u64 {
    for px in m.pixels() {
        h = fnv_fold(h, &px.to_le_bytes());
    }
    h
}

/// Ground-truth displacement vectors of a multi-channel plate, in the
/// layout `StitchResult::count_errors` expects. Positions are shared by
/// every channel and plane, so one pair of vectors covers them all.
pub fn multi_truth_vectors(plate: &MultiChannelPlate) -> (TruthVector, TruthVector) {
    let rows = plate.base().grid_rows;
    let cols = plate.base().grid_cols;
    let mut west = vec![None; rows * cols];
    let mut north = vec![None; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let (x1, y1) = plate.true_position(r, c);
            if c > 0 {
                let (x0, y0) = plate.true_position(r, c - 1);
                west[r * cols + c] = Some((x1 - x0, y1 - y0));
            }
            if r > 0 {
                let (x0, y0) = plate.true_position(r - 1, c);
                north[r * cols + c] = Some((x1 - x0, y1 - y0));
            }
        }
    }
    (west, north)
}

/// The replay-identity case list: a stacked run, a max-z run, and a
/// corrected run on a strongly vignetted plate.
fn replay_cases(seed: u64) -> Vec<(String, MultiScanConfig, ChannelPlan)> {
    let base = |case_seed: u64, vignette: f64| ScanConfig {
        grid_rows: 2,
        grid_cols: 3,
        tile_width: 64,
        tile_height: 48,
        overlap: 0.2,
        vignette,
        seed: case_seed ^ (seed & 0xffff),
        ..ScanConfig::default()
    };
    vec![
        (
            "stack 2ch x 2z".into(),
            MultiScanConfig::for_channels(base(901, 0.04), 2, 2),
            ChannelPlan::default(),
        ),
        (
            "maxz 3ch x 3z".into(),
            MultiScanConfig::for_channels(base(902, 0.04), 3, 3),
            ChannelPlan {
                z_mode: ZMode::MaxProject,
                reference_channel: 1,
                ..ChannelPlan::default()
            },
        ),
        (
            "corrected stack 2ch x 2z, vignette 0.5".into(),
            MultiScanConfig::for_channels(base(903, 0.5), 2, 2),
            ChannelPlan {
                correct_illumination: true,
                ..ChannelPlan::default()
            },
        ),
    ]
}

/// The accuracy sweep's plate: bright background, modest plate-fixed
/// texture, sparse colonies. A strong vignette over a bright background
/// is a large tile-fixed signal, while the weak texture gives phase
/// correlation just enough plate-fixed structure to recover the true
/// offset once the field is divided out — the regime where uncorrected
/// registration actually fails and correction must rescue it.
fn sweep_config(seed: u64, plate: u64, vignette: f64) -> MultiScanConfig {
    let base = ScanConfig {
        grid_rows: 3,
        grid_cols: 3,
        tile_width: 64,
        tile_height: 48,
        overlap: 0.25,
        noise_sigma: 40.0,
        vignette,
        seed: 0x7a11 ^ (seed & 0xffff) ^ (plate * 131),
        ..ScanConfig::default()
    };
    let mut cfg = MultiScanConfig::for_channels(base, 1, 1);
    cfg.channels[0].scene = SceneParams {
        colony_count: 3,
        texture_amplitude: 60.0,
        background: 10_000.0,
        ..cfg.channels[0].scene.clone()
    };
    cfg
}

/// Falloff levels the accuracy battery sweeps, and the threshold beyond
/// which correction must strictly improve registration. Error counts are
/// aggregated over [`SWEEP_PLATES`] independent plates per level, so a
/// single borderline pair cannot flip the ordering.
const SWEEP_LEVELS: [f64; 5] = [0.0, 0.15, 0.3, 0.45, 0.6];
const SWEEP_PLATES: u64 = 3;
const IMPROVEMENT_THRESHOLD: f64 = 0.45;

/// Runs the whole battery. Pure in `seed`: the same seed always yields
/// the same report digest.
pub fn run_channel_differential(seed: u64) -> ChannelReport {
    let mut mismatches = Vec::new();
    let mut digest = 0xcbf29ce484222325u64;
    let stitcher = SimpleCpuStitcher::default();

    // ------------------------------------------------------- replay identity
    let cases = replay_cases(seed);
    for (label, cfg, plan) in &cases {
        let plate = MultiChannelPlate::generate(cfg.clone());
        let source = Arc::new(MultiSyntheticSource::new(plate));
        let session = match ChannelSession::new(source, plan.clone()) {
            Ok(s) => s,
            Err(e) => {
                mismatches.push(ChannelMismatch {
                    label: label.clone(),
                    detail: format!("session setup failed: {e}"),
                });
                continue;
            }
        };

        // The reference-channel solo run the whole batch must agree with.
        let reg_source = session.registration_source();
        let solo = stitcher
            .try_compute_displacements(reg_source.as_ref(), &FailurePolicy::default())
            .expect("solo registration on a clean synthetic plate");
        let solo_positions = GlobalOptimizer::default().solve(&solo);

        let run = match run_channel_plan(&session, &stitcher, Blend::Overlay) {
            Ok(r) => r,
            Err(e) => {
                mismatches.push(ChannelMismatch {
                    label: label.clone(),
                    detail: format!("sequential run failed: {e}"),
                });
                continue;
            }
        };
        if run.positions != solo_positions {
            mismatches.push(ChannelMismatch {
                label: label.clone(),
                detail: "run positions differ from reference-channel solo run".into(),
            });
        }
        for (unit, mosaic) in &run.mosaics {
            let solo_mosaic = Composer::new(solo_positions.clone(), Blend::Overlay)
                .compose(session.unit_source(*unit).as_ref());
            if mosaic.pixels() != solo_mosaic.pixels() {
                mismatches.push(ChannelMismatch {
                    label: label.clone(),
                    detail: format!("unit {} mosaic differs from solo compose", unit.label()),
                });
            }
        }

        // Scheduler-backed batch: same frame, same pixels.
        let sched = Scheduler::new(SchedulerConfig {
            workers: 2,
            ..SchedulerConfig::default()
        });
        match run_channel_batch(&sched, "diff", &session, &ChannelBatchOptions::default()) {
            Ok(batch) => {
                if batch.positions != run.positions {
                    mismatches.push(ChannelMismatch {
                        label: label.clone(),
                        detail: "scheduler batch solved a different frame".into(),
                    });
                }
                if batch.units.len() != run.mosaics.len() {
                    mismatches.push(ChannelMismatch {
                        label: label.clone(),
                        detail: format!(
                            "scheduler batch produced {} units, sequential {}",
                            batch.units.len(),
                            run.mosaics.len()
                        ),
                    });
                } else {
                    for ((unit, out), (seq_unit, seq_mosaic)) in
                        batch.units.iter().zip(run.mosaics.iter())
                    {
                        if unit != seq_unit || out.status != JobStatus::Completed {
                            mismatches.push(ChannelMismatch {
                                label: label.clone(),
                                detail: format!("unit {} ended {:?}", unit.label(), out.status),
                            });
                            continue;
                        }
                        if out.mosaic.as_ref().map(Image::pixels) != Some(seq_mosaic.pixels()) {
                            mismatches.push(ChannelMismatch {
                                label: label.clone(),
                                detail: format!(
                                    "scheduler unit {} mosaic diverged from sequential",
                                    unit.label()
                                ),
                            });
                        }
                    }
                }
            }
            Err(e) => mismatches.push(ChannelMismatch {
                label: label.clone(),
                detail: format!("scheduler batch failed: {e}"),
            }),
        }
        sched.join();

        for p in &run.positions.positions {
            digest = fnv_fold(digest, &p.0.to_le_bytes());
            digest = fnv_fold(digest, &p.1.to_le_bytes());
        }
        for (_, m) in &run.mosaics {
            digest = digest_mosaic(digest, m);
        }
    }

    // ------------------------------------------- corrected-vs-uncorrected
    let mut accuracy = Vec::with_capacity(SWEEP_LEVELS.len());
    for &vignette in &SWEEP_LEVELS {
        let mut errors = [0usize; 2];
        let mut pairs = 0usize;
        let mut estimated_falloff = 0.0;
        for plate_idx in 0..SWEEP_PLATES {
            let cfg = sweep_config(seed, plate_idx, vignette);
            let plate = MultiChannelPlate::generate(cfg);
            let (tw, tn) = multi_truth_vectors(&plate);
            pairs += tw.iter().chain(tn.iter()).filter(|d| d.is_some()).count();
            let source: Arc<MultiSyntheticSource> = Arc::new(MultiSyntheticSource::new(plate));

            for (i, correct) in [false, true].into_iter().enumerate() {
                let session = ChannelSession::new(
                    Arc::clone(&source) as Arc<_>,
                    ChannelPlan {
                        correct_illumination: correct,
                        ..ChannelPlan::default()
                    },
                )
                .expect("valid plan");
                if correct {
                    estimated_falloff += session.flat(0).falloff() / SWEEP_PLATES as f64;
                }
                let result = stitcher
                    .try_compute_displacements(
                        session.registration_source().as_ref(),
                        &FailurePolicy::default(),
                    )
                    .expect("registration on a clean synthetic plate");
                errors[i] += result.count_errors(&tw, &tn, 1);
            }
        }
        let point = AccuracyPoint {
            vignette,
            uncorrected_errors: errors[0],
            corrected_errors: errors[1],
            estimated_falloff,
            pairs,
        };
        if point.corrected_errors > point.uncorrected_errors {
            mismatches.push(ChannelMismatch {
                label: format!("sweep vignette {vignette}"),
                detail: format!(
                    "correction made registration worse: {} -> {} errors",
                    point.uncorrected_errors, point.corrected_errors
                ),
            });
        }
        if vignette >= IMPROVEMENT_THRESHOLD && point.corrected_errors >= point.uncorrected_errors {
            mismatches.push(ChannelMismatch {
                label: format!("sweep vignette {vignette}"),
                detail: format!(
                    "no strict improvement past threshold: uncorrected {} vs corrected {} \
                     (of {} pairs)",
                    point.uncorrected_errors, point.corrected_errors, point.pairs
                ),
            });
        }
        digest = fnv_fold(digest, &vignette.to_bits().to_le_bytes());
        digest = fnv_fold(digest, &(point.uncorrected_errors as u64).to_le_bytes());
        digest = fnv_fold(digest, &(point.corrected_errors as u64).to_le_bytes());
        accuracy.push(point);
    }

    ChannelReport {
        cases: cases.len(),
        mismatches,
        accuracy,
        improvement_threshold: IMPROVEMENT_THRESHOLD,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_is_clean_and_pure_in_seed() {
        let a = run_channel_differential(5);
        for m in &a.mismatches {
            eprintln!("MISMATCH [{}] {}", m.label, m.detail);
        }
        for p in &a.accuracy {
            eprintln!(
                "vignette {:.2}: uncorrected {} corrected {} (est falloff {:.3}, {} pairs)",
                p.vignette, p.uncorrected_errors, p.corrected_errors, p.estimated_falloff, p.pairs
            );
        }
        assert!(a.is_clean());
        let b = run_channel_differential(5);
        assert_eq!(a.digest, b.digest, "report must be pure in the seed");
    }
}
