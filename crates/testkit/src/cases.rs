//! Ground-truth sweep cases: textured scenes cut into tile grids with
//! known positions, over a matrix of grid shapes, overlaps, noise levels
//! and tile sizes.
//!
//! Tile sizes deliberately include *awkward* FFT lengths: primes such as
//! 61×47 cannot be handled by the mixed-radix kernel and force the
//! Bluestein/chirp-z path, which has its own numerics — a classic place
//! for variants to silently diverge.

use stitch_core::source::SyntheticSource;
use stitch_image::{ScanConfig, SyntheticPlate};

/// One conformance sweep case: a grid geometry plus imaging conditions.
/// The rendered plate carries exact ground-truth positions, so phase-1
/// output can be checked against truth as well as across variants.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCase {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Tile width in pixels (prime values exercise the Bluestein path).
    pub tile_width: usize,
    /// Tile height in pixels.
    pub tile_height: usize,
    /// Nominal overlap fraction between adjacent tiles.
    pub overlap: f64,
    /// Sensor noise sigma (16-bit counts).
    pub noise_sigma: f64,
    /// Scene + stage seed.
    pub seed: u64,
}

impl SweepCase {
    /// The scan configuration for this case (standard mechanical
    /// imperfections: ±2 px jitter, 1 px serpentine backlash, mild
    /// vignetting).
    pub fn scan_config(&self) -> ScanConfig {
        ScanConfig {
            noise_sigma: self.noise_sigma,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            vignette: 0.03,
            ..ScanConfig::for_grid(
                self.rows,
                self.cols,
                self.tile_width,
                self.tile_height,
                self.overlap,
                self.seed,
            )
        }
    }

    /// Synthesizes the plate (deterministic for a given case).
    pub fn plate(&self) -> SyntheticPlate {
        SyntheticPlate::generate(self.scan_config())
    }

    /// The plate wrapped as a [`stitch_core::source::TileSource`].
    pub fn source(&self) -> SyntheticSource {
        SyntheticSource::new(self.plate())
    }

    /// Human-readable case identifier for failure reports.
    pub fn label(&self) -> String {
        let mut l = self.scan_config().label();
        if self.has_prime_dim() {
            l.push_str(" [prime tile dim → Bluestein]");
        }
        l
    }

    /// True when either tile dimension is prime (and > 3), i.e. the FFT
    /// substrate must take the Bluestein path for that axis.
    pub fn has_prime_dim(&self) -> bool {
        is_prime(self.tile_width) || is_prime(self.tile_height)
    }
}

fn is_prime(n: usize) -> bool {
    if n < 4 {
        return n >= 2;
    }
    if n.is_multiple_of(2) {
        return false;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The standard sweep: ≥ 12 grid/overlap/noise/tile-size combinations,
/// including prime tile dimensions. Kept small enough to run in debug
/// builds as part of tier-1.
pub fn standard_sweep() -> Vec<SweepCase> {
    let case = |rows, cols, tw, th, overlap, noise, seed| SweepCase {
        rows,
        cols,
        tile_width: tw,
        tile_height: th,
        overlap,
        noise_sigma: noise,
        seed,
    };
    vec![
        // grid-shape axis
        case(2, 2, 64, 48, 0.25, 40.0, 301),
        case(2, 3, 64, 48, 0.25, 40.0, 302),
        case(3, 3, 64, 48, 0.25, 40.0, 303),
        case(3, 4, 64, 48, 0.25, 40.0, 304),
        // overlap axis
        case(2, 3, 64, 48, 0.15, 40.0, 305),
        case(2, 3, 64, 48, 0.35, 40.0, 306),
        // noise axis
        case(2, 3, 64, 48, 0.25, 0.0, 307),
        case(2, 3, 64, 48, 0.25, 90.0, 308),
        // tile-size axis, including primes (Bluestein path)
        case(2, 3, 61, 47, 0.25, 40.0, 309),
        case(2, 3, 53, 41, 0.30, 30.0, 310),
        case(2, 3, 48, 64, 0.25, 40.0, 311),
        case(3, 3, 40, 40, 0.30, 30.0, 312),
    ]
}

/// Extra cases enabled by `STITCH_TESTKIT_EXHAUSTIVE=1`: bigger grids,
/// another prime geometry, extreme noise and thin overlap.
pub fn exhaustive_sweep() -> Vec<SweepCase> {
    let case = |rows, cols, tw, th, overlap, noise, seed| SweepCase {
        rows,
        cols,
        tile_width: tw,
        tile_height: th,
        overlap,
        noise_sigma: noise,
        seed,
    };
    let mut cases = standard_sweep();
    cases.extend([
        case(4, 4, 64, 48, 0.25, 40.0, 401),
        case(3, 5, 64, 48, 0.20, 40.0, 402),
        case(2, 3, 67, 53, 0.30, 40.0, 403),
        case(2, 3, 64, 48, 0.25, 120.0, 404),
        case(2, 4, 64, 48, 0.12, 20.0, 405),
        case(4, 2, 59, 48, 0.28, 35.0, 406),
    ]);
    cases
}

/// The sweep the conformance suite runs: [`standard_sweep`] by default,
/// [`exhaustive_sweep`] when the environment variable
/// `STITCH_TESTKIT_EXHAUSTIVE` is set to a non-empty, non-`0` value.
pub fn sweep() -> Vec<SweepCase> {
    match std::env::var("STITCH_TESTKIT_EXHAUSTIVE") {
        Ok(v) if !v.is_empty() && v != "0" => exhaustive_sweep(),
        _ => standard_sweep(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_core::source::TileSource;

    #[test]
    fn standard_sweep_meets_coverage_floor() {
        let cases = standard_sweep();
        assert!(cases.len() >= 12, "sweep must have ≥ 12 cases");
        assert!(
            cases.iter().filter(|c| c.has_prime_dim()).count() >= 2,
            "sweep must include prime tile dimensions"
        );
        // the axes really vary
        let overlaps: std::collections::BTreeSet<u64> =
            cases.iter().map(|c| (c.overlap * 100.0) as u64).collect();
        let noises: std::collections::BTreeSet<u64> =
            cases.iter().map(|c| c.noise_sigma as u64).collect();
        let dims: std::collections::BTreeSet<(usize, usize)> = cases
            .iter()
            .map(|c| (c.tile_width, c.tile_height))
            .collect();
        assert!(overlaps.len() >= 4, "overlap axis: {overlaps:?}");
        assert!(noises.len() >= 4, "noise axis: {noises:?}");
        assert!(dims.len() >= 4, "tile-size axis: {dims:?}");
    }

    #[test]
    fn exhaustive_extends_standard() {
        let std_cases = standard_sweep();
        let all = exhaustive_sweep();
        assert!(all.len() > std_cases.len());
        assert_eq!(&all[..std_cases.len()], &std_cases[..]);
    }

    #[test]
    fn prime_detection() {
        assert!(is_prime(61) && is_prime(47) && is_prime(2));
        assert!(!is_prime(64) && !is_prime(48) && !is_prime(1) && !is_prime(49));
    }

    #[test]
    fn cases_are_deterministic_sources() {
        let case = &standard_sweep()[8]; // prime-dim case
        let a = case.source();
        let b = case.source();
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.tile_dims(), (case.tile_width, case.tile_height));
        let id = stitch_core::types::TileId::new(1, 2);
        assert_eq!(a.load(id).unwrap(), b.load(id).unwrap());
        // ground truth is retained and plausible for the geometry
        let plate = case.plate();
        let (dx, _) = plate.true_west_displacement(0, 1);
        let nominal = case.scan_config().step_x();
        assert!(
            (dx as f64 - nominal).abs() <= 6.0,
            "dx={dx} nominal={nominal}"
        );
    }
}
