//! Seeded stress runner for the multi-job scheduler — the cross-job
//! sibling of [`run_stress`](crate::run_stress).
//!
//! From one seed it derives a whole *batch* regime: how many jobs, each
//! job's grid/variant/threads/priority, the scheduler's worker count,
//! and a memory budget that is deliberately sometimes too small for the
//! largest jobs. Then it runs the batch through a real
//! [`Scheduler`](stitch_sched::Scheduler) and digests every observable
//! output.
//!
//! Contract, mirroring `run_stress`:
//!
//! * `run_sched_stress(seed)` is **pure in `seed`** for its deterministic
//!   parts: per-job result digests (equal for equal seeds, regardless of
//!   interleaving) and the set of rejected jobs (rejections happen only
//!   via the deterministic `TooLarge` admission check, never via timing).
//!   `PartialEq` on [`SchedStressOutcome`] compares exactly those parts.
//! * Every digest must equal [`run_job_solo`] of the same job — a
//!   scheduler may reorder and interleave, but shared pools, plan caches,
//!   and device contention must never leak into results.
//! * The audit fields must come back clean: `high_water <= budget`,
//!   and zero outstanding reservations or pool leases after the batch.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stitch_core::prelude::*;
use stitch_core::{
    FijiStyleStitcher, MtCpuStitcher, PipelinedCpuConfig, PipelinedCpuStitcher, PipelinedGpuConfig,
    PipelinedGpuStitcher, SimpleCpuStitcher, SimpleGpuStitcher, TransformKind,
};
use stitch_gpu::{Device, DeviceConfig};
use stitch_image::{Image, ScanConfig, SyntheticPlate};
use stitch_sched::{JobStatus, JobVariant, Scheduler, SchedulerConfig, StitchJob, SubmitError};

/// The batch regime derived from one seed.
#[derive(Clone, Debug)]
pub struct SchedStressConfig {
    /// The driving seed.
    pub seed: u64,
    /// Concurrent job slots.
    pub workers: usize,
    /// Stream-lease bound on the shared device.
    pub stream_slots: usize,
    /// Host-memory admission budget, bytes.
    pub memory_budget: usize,
    /// The jobs, in submission order.
    pub jobs: Vec<StitchJob>,
}

impl SchedStressConfig {
    /// Derives a full batch regime from a seed.
    pub fn derive(seed: u64) -> SchedStressConfig {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5c4ed);
        let n_jobs = rng.gen_range(3usize..=6);
        let variants = [
            JobVariant::SimpleCpu,
            JobVariant::MtCpu,
            JobVariant::PipelinedCpu,
            JobVariant::FijiStyle,
            JobVariant::SimpleGpu,
            JobVariant::PipelinedGpu,
        ];
        let mut jobs = Vec::with_capacity(n_jobs);
        for i in 0..n_jobs {
            let rows = rng.gen_range(2usize..=3);
            let cols = rng.gen_range(2usize..=4);
            let (tile_w, tile_h) = [(48, 40), (64, 48), (40, 32)][rng.gen_range(0usize..3)];
            let scan = ScanConfig::for_grid(
                rows,
                cols,
                tile_w,
                tile_h,
                0.20 + 0.03 * rng.gen_range(0u64..6) as f64,
                seed ^ (0x9e37 + i as u64),
            );
            let job = StitchJob::new(format!("job{i}"), scan)
                .variant(variants[rng.gen_range(0usize..variants.len())])
                .threads(rng.gen_range(1usize..=3))
                .priority(rng.gen_range(1u32..=3))
                .compose(rng.gen_range(0u32..3) == 0);
            jobs.push(job);
        }
        // Half the seeds get a budget that fits every job; the other half
        // get the *median* job footprint, deterministically rejecting the
        // larger jobs at submission. Always at least one admissible job.
        let mut estimates: Vec<usize> = jobs.iter().map(|j| j.estimated_bytes()).collect();
        estimates.sort_unstable();
        let memory_budget = if rng.gen_range(0u32..2) == 0 {
            *estimates.last().expect("jobs is non-empty")
        } else {
            estimates[estimates.len() / 2]
        };
        SchedStressConfig {
            seed,
            workers: rng.gen_range(1usize..=3),
            stream_slots: rng.gen_range(1usize..=2),
            memory_budget,
            jobs,
        }
    }
}

/// A compact, order-independent digest of one job's full result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobDigest {
    /// Job name.
    pub name: String,
    /// Terminal status.
    pub status: JobStatus,
    /// West displacements, row-major.
    pub west: Vec<Option<Displacement2>>,
    /// North displacements, row-major.
    pub north: Vec<Option<Displacement2>>,
    /// Solved absolute positions.
    pub positions: Vec<(i64, i64)>,
    /// FNV-1a hash of the composed mosaic (`None` when not composed).
    pub mosaic_fnv: Option<u64>,
}

/// An `Eq`-able displacement (the core type carries an `f64` correlation;
/// the digest keeps its bits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Displacement2 {
    /// Pixel offset x.
    pub x: i64,
    /// Pixel offset y.
    pub y: i64,
    /// `correlation.to_bits()` — bit-exact equality, which is the point.
    pub correlation_bits: u64,
}

impl From<Displacement> for Displacement2 {
    fn from(d: Displacement) -> Displacement2 {
        Displacement2 {
            x: d.x,
            y: d.y,
            correlation_bits: d.correlation.to_bits(),
        }
    }
}

fn digest_displacements(v: &[Option<Displacement>]) -> Vec<Option<Displacement2>> {
    v.iter().map(|d| d.map(Displacement2::from)).collect()
}

fn fnv1a(pixels: &[u16]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &p in pixels {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn digest_mosaic(img: &Image<u16>) -> u64 {
    fnv1a(img.pixels()) ^ ((img.width() as u64) << 32 | img.height() as u64)
}

/// Everything one scheduler stress run observed. `PartialEq` covers only
/// the deterministic parts (digests + rejections); the audit fields are
/// timing-dependent and asserted against invariants instead.
#[derive(Clone, Debug)]
pub struct SchedStressOutcome {
    /// The derived regime.
    pub config: SchedStressConfig,
    /// Per-job digests, sorted by job name (completion order is timing).
    pub digests: Vec<JobDigest>,
    /// Names rejected at submission (all must be `TooLarge`), sorted.
    pub rejected: Vec<String>,
    /// Arbiter high-water mark — must never exceed the budget.
    pub high_water: usize,
    /// Reservations still outstanding after the batch (must be 0).
    pub reservations_after: usize,
    /// Spectrum-pool leases still outstanding after the batch (must be 0).
    pub leases_after: usize,
}

impl PartialEq for SchedStressOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.config.seed == other.config.seed
            && self.digests == other.digests
            && self.rejected == other.rejected
    }
}

impl SchedStressOutcome {
    /// All scheduler-side resource invariants in one check.
    pub fn resources_clean(&self) -> bool {
        self.high_water <= self.config.memory_budget
            && self.reservations_after == 0
            && self.leases_after == 0
    }
}

fn digest_outcome(out: &stitch_sched::JobOutcome) -> JobDigest {
    let (west, north) = match &out.result {
        Some(r) => (
            digest_displacements(&r.west),
            digest_displacements(&r.north),
        ),
        None => (Vec::new(), Vec::new()),
    };
    JobDigest {
        name: out.name.clone(),
        status: out.status.clone(),
        west,
        north,
        positions: out
            .positions
            .as_ref()
            .map(|p| p.positions.clone())
            .unwrap_or_default(),
        mosaic_fnv: out.mosaic.as_ref().map(digest_mosaic),
    }
}

/// Runs one seeded scheduler stress iteration. Deterministic parts are
/// pure in `seed`; see the module docs for the contract.
pub fn run_sched_stress(seed: u64) -> SchedStressOutcome {
    let config = SchedStressConfig::derive(seed);
    let device = Device::new(
        0,
        DeviceConfig {
            stream_slots: Some(config.stream_slots),
            ..DeviceConfig::small(256 << 20)
        },
    );
    let sched = Scheduler::new(SchedulerConfig {
        workers: config.workers,
        memory_budget: config.memory_budget,
        max_pending: config.jobs.len(),
        device: Some(device),
        trace: stitch_trace::TraceHandle::disabled(),
    });
    let mut handles = Vec::new();
    let mut rejected = Vec::new();
    for job in config.jobs.clone() {
        let name = job.name.clone();
        match sched.submit(job) {
            Ok(h) => handles.push(h),
            Err(SubmitError::TooLarge { .. }) => rejected.push(name),
            Err(e) => panic!("only TooLarge rejections are deterministic, got {e}"),
        }
    }
    let mut digests: Vec<JobDigest> = handles.iter().map(|h| digest_outcome(&h.wait())).collect();
    digests.sort_by(|a, b| a.name.cmp(&b.name));
    rejected.sort_unstable();
    sched.join();
    SchedStressOutcome {
        high_water: sched.arbiter().high_water(),
        reservations_after: sched.arbiter().active_reservations(),
        leases_after: sched.arbiter().leased_spectra(),
        config,
        digests,
        rejected,
    }
}

/// Runs one job *alone*, with nothing shared — private pools, private
/// planner, private device — and digests the result. The differential
/// baseline for the bit-identical-under-concurrency contract.
pub fn run_job_solo(job: &StitchJob) -> JobDigest {
    let plate = SyntheticPlate::generate(job.scan.clone());
    let source = SyntheticSource::new(plate);
    let device = || Device::new(0, DeviceConfig::small(256 << 20));
    let stitcher: Box<dyn Stitcher> = match job.variant {
        JobVariant::SimpleCpu => {
            Box::new(SimpleCpuStitcher::default().with_transform(TransformKind::Complex))
        }
        JobVariant::MtCpu => Box::new(MtCpuStitcher::new(job.threads)),
        JobVariant::PipelinedCpu => Box::new(PipelinedCpuStitcher::with_config(
            PipelinedCpuConfig::with_threads(job.threads),
        )),
        JobVariant::FijiStyle => Box::new(FijiStyleStitcher::new(job.threads)),
        JobVariant::SimpleGpu => Box::new(SimpleGpuStitcher::new(device())),
        JobVariant::PipelinedGpu => Box::new(PipelinedGpuStitcher::new(
            vec![device()],
            PipelinedGpuConfig {
                ccf_threads: job.threads.max(1),
                ..Default::default()
            },
        )),
    };
    let result = stitcher
        .try_compute_displacements(&source, &FailurePolicy::default())
        .expect("clean synthetic source");
    let positions = GlobalOptimizer::default().solve(&result);
    let mosaic = job
        .compose
        .then(|| Composer::new(positions.clone(), Blend::Overlay).compose(&source));
    JobDigest {
        name: job.name.clone(),
        status: JobStatus::Completed,
        west: digest_displacements(&result.west),
        north: digest_displacements(&result.north),
        positions: positions.positions,
        mosaic_fnv: mosaic.as_ref().map(digest_mosaic),
    }
}

/// Convenience: the solo digests of every job in a config, by name.
pub fn solo_digests(config: &SchedStressConfig) -> HashMap<String, JobDigest> {
    config
        .jobs
        .iter()
        .map(|j| (j.name.clone(), run_job_solo(j)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_in_envelope() {
        for seed in 0..32u64 {
            let a = SchedStressConfig::derive(seed);
            let b = SchedStressConfig::derive(seed);
            assert_eq!(a.workers, b.workers);
            assert_eq!(a.memory_budget, b.memory_budget);
            assert_eq!(a.jobs.len(), b.jobs.len());
            assert!((3..=6).contains(&a.jobs.len()));
            assert!((1..=3).contains(&a.workers));
            // at least one job always fits (budget >= median estimate)
            assert!(a
                .jobs
                .iter()
                .any(|j| j.estimated_bytes() <= a.memory_budget));
            for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
                assert_eq!(ja.name, jb.name);
                assert_eq!(ja.variant, jb.variant);
                assert_eq!(ja.scan, jb.scan);
                assert_eq!((ja.threads, ja.priority), (jb.threads, jb.priority));
            }
        }
    }

    #[test]
    fn fnv_digest_is_order_sensitive() {
        assert_ne!(fnv1a(&[1, 2, 3]), fnv1a(&[3, 2, 1]));
        assert_ne!(fnv1a(&[0, 0]), fnv1a(&[0, 0, 0]));
    }
}
