//! Sharded-vs-unsharded conformance: the differential oracle and the
//! seeded stress harness for `stitch-shard`.
//!
//! The oracle's claim is the tentpole guarantee of the sharded driver:
//! partitioning the grid into shards, stitching each as a scheduler
//! job, registering the seams, and re-solving must produce **bit
//! identical** phase-1 displacements, phase-2 positions, and composed
//! mosaic pixels to a plain unsharded run over the same source — for
//! every shard geometry, including the degenerate ones (1×1, single
//! row/column, uneven remainders) and Bluestein-path tile sizes.

use std::sync::Arc;

use stitch_core::{
    Blend, Composer, FailurePolicy, FaultSpec, FaultySource, GlobalOptimizer, SimpleCpuStitcher,
    Stitcher, SyntheticSource, TileId, TileSource,
};
use stitch_image::SyntheticPlate;
use stitch_sched::{JobStatus, JobVariant, StitchJob};
use stitch_shard::{stitch_sharded, ShardConfig, ShardError, ShardPlan};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cases::SweepCase;
use crate::sched_stress::Displacement2;

/// One oracle case: a ground-truth sweep case plus a shard geometry.
#[derive(Clone, Debug)]
pub struct ShardCaseSpec {
    /// The plate to stitch.
    pub case: SweepCase,
    /// Max tile rows per shard.
    pub shard_rows: usize,
    /// Max tile cols per shard.
    pub shard_cols: usize,
}

impl ShardCaseSpec {
    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        format!(
            "{} in {}x{}-tile shards",
            self.case.label(),
            self.shard_rows,
            self.shard_cols
        )
    }
}

/// One sharded-vs-unsharded disagreement.
#[derive(Clone, Debug)]
pub struct ShardMismatch {
    /// Which case disagreed.
    pub label: String,
    /// What disagreed and how.
    pub detail: String,
}

/// What [`run_shard_differential`] observed.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Cases run.
    pub cases: usize,
    /// Disagreements (empty on a clean run).
    pub mismatches: Vec<ShardMismatch>,
    /// FNV digest of every case's positions + mosaic + displacement
    /// bits — pure in the seed, for determinism assertions.
    pub digest: u64,
}

impl ShardReport {
    /// True when every case was bit-identical.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The shard-geometry sweep: degenerate single-tile shards, single-row
/// and single-column shards, uneven remainder shards, and a prime
/// (Bluestein) tile size. Scene seeds are perturbed by `seed` so
/// different seeds stitch different plates.
pub fn shard_cases(seed: u64) -> Vec<ShardCaseSpec> {
    let case = |rows, cols, tw, th, overlap, case_seed: u64| SweepCase {
        rows,
        cols,
        tile_width: tw,
        tile_height: th,
        overlap,
        noise_sigma: 40.0,
        seed: case_seed ^ (seed & 0xffff),
    };
    vec![
        // 1x1 shards: every pair is a seam pair
        ShardCaseSpec {
            case: case(2, 2, 64, 48, 0.25, 801),
            shard_rows: 1,
            shard_cols: 1,
        },
        // single-row shards (1xN): all seams vertical
        ShardCaseSpec {
            case: case(3, 3, 64, 48, 0.25, 802),
            shard_rows: 1,
            shard_cols: 3,
        },
        // single-column shards (Nx1): all seams horizontal
        ShardCaseSpec {
            case: case(3, 3, 64, 48, 0.25, 803),
            shard_rows: 3,
            shard_cols: 1,
        },
        // uneven remainder shards: 3x4 grid in 2x3 shards
        ShardCaseSpec {
            case: case(3, 4, 64, 48, 0.25, 804),
            shard_rows: 2,
            shard_cols: 3,
        },
        // prime tile dims: shard-local and seam registrations both take
        // the Bluestein path
        ShardCaseSpec {
            case: case(2, 3, 61, 47, 0.25, 805),
            shard_rows: 2,
            shard_cols: 2,
        },
    ]
}

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn digest_displacements(h: u64, v: &[Option<Displacement2>]) -> u64 {
    v.iter().fold(h, |h, d| match d {
        Some(d) => {
            let h = fnv_fold(h, &d.x.to_le_bytes());
            let h = fnv_fold(h, &d.y.to_le_bytes());
            fnv_fold(h, &d.correlation_bits.to_le_bytes())
        }
        None => fnv_fold(h, &[0xFF]),
    })
}

fn to_bits(v: &[Option<stitch_core::Displacement>]) -> Vec<Option<Displacement2>> {
    v.iter().map(|d| d.map(Displacement2::from)).collect()
}

/// Runs the sharded-vs-unsharded differential over [`shard_cases`].
/// Pure in `seed`: the same seed always yields the same report digest.
pub fn run_shard_differential(seed: u64) -> ShardReport {
    let specs = shard_cases(seed);
    let mut mismatches = Vec::new();
    let mut digest = 0xcbf29ce484222325u64;
    for spec in &specs {
        let label = spec.label();
        let source: Arc<dyn TileSource> = Arc::new(spec.case.source());

        // unsharded baseline: the sequential reference variant
        let baseline = SimpleCpuStitcher::default()
            .try_compute_displacements(&*source, &FailurePolicy::default())
            .expect("baseline stitch on a clean synthetic plate");
        let base_positions = GlobalOptimizer::default().solve(&baseline);
        let base_mosaic = Composer::new(base_positions.clone(), Blend::Overlay).compose(&*source);

        // sharded run, banded composition (odd band height on purpose)
        let config = ShardConfig {
            shard_rows: spec.shard_rows,
            shard_cols: spec.shard_cols,
            compose: Some(Blend::Overlay),
            band_rows: 13,
            ..ShardConfig::default()
        };
        let sharded = match stitch_sharded(Arc::clone(&source), &config) {
            Ok(s) => s,
            Err(e) => {
                mismatches.push(ShardMismatch {
                    label,
                    detail: format!("sharded run failed: {e}"),
                });
                continue;
            }
        };

        let (bw, bn) = (to_bits(&baseline.west), to_bits(&baseline.north));
        let (sw, sn) = (
            to_bits(&sharded.result.west),
            to_bits(&sharded.result.north),
        );
        if bw != sw || bn != sn {
            let diff = bw
                .iter()
                .zip(&sw)
                .chain(bn.iter().zip(&sn))
                .filter(|(a, b)| a != b)
                .count();
            mismatches.push(ShardMismatch {
                label: label.clone(),
                detail: format!("{diff} displacement slots differ"),
            });
        }
        if base_positions != sharded.positions {
            mismatches.push(ShardMismatch {
                label: label.clone(),
                detail: "global positions differ".to_string(),
            });
        }
        match &sharded.mosaic {
            Some(m) if m.pixels() == base_mosaic.pixels() => {}
            Some(m) => mismatches.push(ShardMismatch {
                label: label.clone(),
                detail: format!(
                    "mosaic differs ({}x{} sharded vs {}x{} baseline)",
                    m.width(),
                    m.height(),
                    base_mosaic.width(),
                    base_mosaic.height()
                ),
            }),
            None => mismatches.push(ShardMismatch {
                label: label.clone(),
                detail: "sharded run produced no mosaic".to_string(),
            }),
        }
        // the hierarchical frame is an audit, not the committed answer:
        // on a clean, consistent plate it must agree to within a pixel
        let (dx, dy) = sharded.hierarchical_deviation;
        if dx > 1 || dy > 1 {
            mismatches.push(ShardMismatch {
                label: label.clone(),
                detail: format!("hierarchical frame drifts ({dx}, {dy}) px from committed"),
            });
        }
        if sharded.leaked_reservations != 0 || sharded.leaked_spectra != 0 {
            mismatches.push(ShardMismatch {
                label: label.clone(),
                detail: format!(
                    "leaks: {} reservations, {} spectra",
                    sharded.leaked_reservations, sharded.leaked_spectra
                ),
            });
        }

        digest = digest_displacements(digest, &sw);
        digest = digest_displacements(digest, &sn);
        for p in &sharded.positions.positions {
            digest = fnv_fold(digest, &p.0.to_le_bytes());
            digest = fnv_fold(digest, &p.1.to_le_bytes());
        }
        if let Some(m) = &sharded.mosaic {
            for px in m.pixels() {
                digest = fnv_fold(digest, &px.to_le_bytes());
            }
        }
    }
    ShardReport {
        cases: specs.len(),
        mismatches,
        digest,
    }
}

/// What one stress iteration was set up to do.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Scenario {
    Clean,
    CancelShard(usize),
    CorruptBoundaryTile(TileId),
    TransientFaults,
}

/// What [`run_shard_stress`] observed across its iterations.
#[derive(Clone, Debug)]
pub struct ShardStressOutcome {
    /// The driving seed.
    pub seed: u64,
    /// Iterations run.
    pub iterations: usize,
    /// One deterministic fate string per iteration.
    pub fates: Vec<String>,
    /// FNV digest over fates and result digests — pure in `seed`.
    pub digest: u64,
    /// Arbiter reservations leaked across all iterations (must be 0,
    /// including after cancelled and failed shards).
    pub leaked_reservations: usize,
    /// Pool spectra leaked across all iterations (must be 0).
    pub leaked_spectra: usize,
    /// True when every iteration's arbiter high-water stayed within its
    /// memory budget.
    pub high_water_ok: bool,
}

impl PartialEq for ShardStressOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed && self.fates == other.fates && self.digest == other.digest
    }
}

impl ShardStressOutcome {
    /// All resource invariants in one check.
    pub fn resources_clean(&self) -> bool {
        self.leaked_reservations == 0 && self.leaked_spectra == 0 && self.high_water_ok
    }
}

/// Runs a seeded batch of randomized sharded runs: random grid and
/// shard geometry (including degenerate), random memory budgets down to
/// a single shard's footprint, fault injection on boundary tiles,
/// transient-fault storms, and mid-run shard cancellation. The fates
/// and digest are pure in `seed`; leak counters must come back zero.
pub fn run_shard_stress(seed: u64) -> ShardStressOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ad3);
    run_shard_stress_inner(seed, &mut rng)
}

fn run_shard_stress_inner(seed: u64, rng: &mut StdRng) -> ShardStressOutcome {
    let iterations = 5usize;
    let mut fates = Vec::with_capacity(iterations);
    let mut digest = 0xcbf29ce484222325u64;
    let mut leaked_reservations = 0usize;
    let mut leaked_spectra = 0usize;
    let mut high_water_ok = true;

    for i in 0..iterations {
        let rows = rng.gen_range(2usize..=4);
        let cols = rng.gen_range(2usize..=4);
        let (tw, th) = [(32, 24), (40, 32), (48, 36)][rng.gen_range(0usize..3)];
        let shard_rows = rng.gen_range(1usize..=rows);
        let shard_cols = rng.gen_range(1usize..=cols);
        let scan = stitch_image::ScanConfig {
            grid_rows: rows,
            grid_cols: cols,
            tile_width: tw,
            tile_height: th,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 40.0,
            vignette: 0.03,
            seed: seed ^ (0x9e37 + i as u64),
        };
        let plate = SyntheticPlate::generate(scan.clone());
        let plan = ShardPlan::new(
            stitch_core::GridShape::new(rows, cols),
            shard_rows,
            shard_cols,
        )
        .expect("non-empty plan");
        let seams = plan.seam_pairs();

        // budget: 1–3× the largest shard's admission estimate, so some
        // iterations force shards to queue behind the arbiter
        let max_shard = plan
            .shards()
            .into_iter()
            .max_by_key(|s| s.shape.tiles())
            .expect("at least one shard");
        let est = StitchJob::new(
            "estimate",
            stitch_image::ScanConfig::for_grid(
                max_shard.shape.rows,
                max_shard.shape.cols,
                tw,
                th,
                0.25,
                0,
            ),
        )
        .estimated_bytes();
        let budget = est * rng.gen_range(1usize..=3);

        let scenario = match rng.gen_range(0u32..4) {
            0 => Scenario::Clean,
            1 => Scenario::CancelShard(rng.gen_range(0usize..plan.shard_count())),
            2 => {
                // corrupt a boundary tile when the plan has seams, else
                // the origin tile
                let tile = if seams.is_empty() {
                    TileId::new(0, 0)
                } else {
                    seams[rng.gen_range(0usize..seams.len())].a
                };
                Scenario::CorruptBoundaryTile(tile)
            }
            _ => Scenario::TransientFaults,
        };

        let spec = match &scenario {
            Scenario::CorruptBoundaryTile(tile) => Some(FaultSpec {
                seed: seed ^ i as u64,
                transient_rate: 0.0,
                corrupt: vec![*tile],
                latency: std::time::Duration::ZERO,
            }),
            Scenario::TransientFaults => Some(FaultSpec {
                seed: seed ^ i as u64,
                transient_rate: 0.12,
                corrupt: Vec::new(),
                latency: std::time::Duration::ZERO,
            }),
            _ => None,
        };
        let source: Arc<dyn TileSource> = match spec {
            Some(spec) => Arc::new(FaultySource::new(SyntheticSource::new(plate), spec)),
            None => Arc::new(SyntheticSource::new(plate)),
        };

        let compose = rng.gen_range(0u32..2) == 0;
        let config = ShardConfig {
            shard_rows,
            shard_cols,
            workers: rng.gen_range(1usize..=2),
            memory_budget: budget,
            variant: JobVariant::SimpleCpu,
            threads: 1,
            compose: compose.then_some(Blend::Overlay),
            band_rows: [3usize, 16, 64][rng.gen_range(0usize..3)],
            cancel_shard: match scenario {
                Scenario::CancelShard(k) => Some(k),
                _ => None,
            },
            ..ShardConfig::default()
        };

        let fate = match stitch_sharded(Arc::clone(&source), &config) {
            Ok(out) => {
                leaked_reservations += out.leaked_reservations;
                leaked_spectra += out.leaked_spectra;
                high_water_ok &= out.high_water <= config.memory_budget;
                for p in &out.positions.positions {
                    digest = fnv_fold(digest, &p.0.to_le_bytes());
                    digest = fnv_fold(digest, &p.1.to_le_bytes());
                }
                if let Some(m) = &out.mosaic {
                    for px in m.pixels() {
                        digest = fnv_fold(digest, &px.to_le_bytes());
                    }
                }
                format!(
                    "ok shards={} seams={} retries={} composed={}",
                    out.shard_count,
                    out.seam_pairs,
                    out.result.health.total_retries,
                    out.mosaic.is_some()
                )
            }
            Err(ShardError::Shard {
                name,
                status,
                leaked_reservations: lr,
                leaked_spectra: ls,
            }) => {
                leaked_reservations += lr;
                leaked_spectra += ls;
                let status = match status {
                    JobStatus::Failed(_) => "failed".to_string(),
                    other => format!("{other:?}").to_lowercase(),
                };
                format!("shard-error {name} {status}")
            }
            Err(e) => format!("error {e}"),
        };
        let fate = format!(
            "iter{i} {rows}x{cols}/{shard_rows}x{shard_cols} {tw}x{th} {scenario:?}: {fate}"
        );
        digest = fnv_fold(digest, fate.as_bytes());
        fates.push(fate);
    }

    ShardStressOutcome {
        seed,
        iterations,
        fates,
        digest,
        leaked_reservations,
        leaked_spectra,
        high_water_ok,
    }
}
