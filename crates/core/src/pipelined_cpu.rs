//! Pipelined-CPU: the CPU-only pipeline implementation (paper §IV-B).
//!
//! "To better compare CPU and GPU performance, we implemented a
//! Pipelined-CPU version which includes all the memory mechanisms in its
//! GPU counterpart. The CPU pipeline consists of three stages: reader,
//! displacement/fft, and bookkeeping."
//!
//! Structure (all queues are bounded monitors from `stitch-pipeline`):
//!
//! ```text
//! traversal ─Q01→ [reader ×R] ─Q12→ [fft/displacement ×N] ⇄ [bookkeeping ×1]
//! ```
//!
//! * the reader loads tiles from disk, throttled by a transform-pool
//!   semaphore — the CPU-side equivalent of the GPU buffer pool, sized
//!   past the smallest grid dimension so chained-diagonal traversal can
//!   always recycle (§IV-B);
//! * fft/displacement workers either transform a tile (then notify
//!   bookkeeping) or compute a ready pair's displacement;
//! * bookkeeping owns the dependency state: when both transforms of an
//!   adjacent pair exist it emits the pair computation, and it drops each
//!   tile's resources when its reference count reaches zero — releasing a
//!   pool permit back to the reader.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use stitch_fft::{PlanMode, Planner};
use stitch_gpu::semaphore::{OwnedPermit, Semaphore};
use stitch_image::Image;
use stitch_trace::TraceHandle;

use crate::fault::{FailurePolicy, FaultTracker, StitchError};
use crate::grid::Traversal;
use crate::hostpool::{PooledSpectrum, SpectrumPool};
use crate::opcount::OpCounters;
use crate::pciam_real::{Correlator, TransformKind};
use crate::source::TileSource;
use crate::stitcher::{StitchResult, Stitcher};
use crate::types::{Displacement, PairKind, TileId};
use stitch_pipeline::{Pipeline, Queue};

/// Configuration for the CPU pipeline.
#[derive(Clone, Debug)]
pub struct PipelinedCpuConfig {
    /// Worker threads in the fft/displacement stage.
    pub threads: usize,
    /// Reader threads.
    pub read_threads: usize,
    /// Transform pool size (max in-flight tiles); `None` sizes it from the
    /// grid (`4·min_dim + 8` — host RAM affords slack well beyond the
    /// paper's "exceed the smallest grid dimension" minimum, and a tight
    /// pool stalls the reader on recycle latency).
    pub pool_size: Option<usize>,
    /// Traversal order feeding the reader.
    pub traversal: Traversal,
    /// FFT planning effort.
    pub plan_mode: PlanMode,
    /// Transform path: complex (paper) or real-to-complex (§VI-A).
    pub transform: TransformKind,
    /// Capacity floor for the inter-stage queues. `None` keeps the
    /// defaults (id queue 64; work/bookkeeping queues floored at 8 on top
    /// of their pool-derived sizes). The pool-derived terms are never
    /// reduced — they are what makes the work/bookkeeping cycle
    /// deadlock-free — so any floor ≥ 1 is safe. The stress harness sweeps
    /// this to exercise close/pop orderings under tight buffering.
    pub queue_floor: Option<usize>,
}

impl PipelinedCpuConfig {
    /// A sensible default with `threads` compute workers.
    pub fn with_threads(threads: usize) -> PipelinedCpuConfig {
        PipelinedCpuConfig {
            threads,
            read_threads: 1,
            pool_size: None,
            traversal: Traversal::ChainedDiagonal,
            plan_mode: PlanMode::Estimate,
            transform: TransformKind::Complex,
            queue_floor: None,
        }
    }
}

/// The Pipelined-CPU stitcher.
pub struct PipelinedCpuStitcher {
    config: PipelinedCpuConfig,
    trace: TraceHandle,
    shared_spectra: Option<SpectrumPool>,
    shared_planner: Option<Arc<Planner>>,
}

struct TileData {
    img: Arc<Image<u16>>,
    /// Dropping the last clone returns the spectrum to the shared pool.
    fft: Arc<PooledSpectrum>,
}

/// Work items for the fft/displacement stage.
enum Work {
    /// Transform this freshly read tile.
    Fft(TileId, Arc<Image<u16>>, OwnedPermit),
    /// Both transforms are ready: compute the displacement.
    Pair {
        a: TileData,
        b: TileData,
        kind: PairKind,
        slot: usize,
    },
}

/// Bookkeeping input: a completed transform, or notice that a tile is
/// permanently unavailable (so its pairs must be written off).
enum BkMsg {
    Done(FftDone),
    Failed(TileId),
}

/// A completed transform.
struct FftDone {
    id: TileId,
    data: TileData,
    permit: OwnedPermit,
}

struct BookEntry {
    data: TileData,
    remaining: usize,
    _permit: OwnedPermit,
}

impl PipelinedCpuStitcher {
    /// Creates a pipeline stitcher with `threads` compute workers.
    pub fn new(threads: usize) -> PipelinedCpuStitcher {
        Self::with_config(PipelinedCpuConfig::with_threads(threads))
    }

    /// Creates a pipeline stitcher with an explicit configuration.
    pub fn with_config(config: PipelinedCpuConfig) -> PipelinedCpuStitcher {
        assert!(config.threads >= 1 && config.read_threads >= 1);
        PipelinedCpuStitcher {
            config,
            trace: TraceHandle::disabled(),
            shared_spectra: None,
            shared_planner: None,
        }
    }

    /// Runs over an externally owned [`SpectrumPool`] instead of a
    /// private per-run one. This is the batch scheduler's quota hook: the
    /// pool may be [`SpectrumPool::bounded`], in which case its cap must
    /// be at least the transform-pool size (each in-flight tile holds at
    /// most one spectrum) or the run will stall on acquire. The pool's
    /// `buf_len` must match this configuration's transform kind and the
    /// source's tile dims (checked at run time).
    pub fn with_spectrum_pool(mut self, pool: SpectrumPool) -> PipelinedCpuStitcher {
        self.shared_spectra = Some(pool);
        self
    }

    /// Runs over an externally owned FFT [`Planner`] (plans cached by
    /// size inside) instead of a private per-run one, so concurrent jobs
    /// with equal tile dims share plan-construction work.
    pub fn with_planner(mut self, planner: Arc<Planner>) -> PipelinedCpuStitcher {
        self.shared_planner = Some(planner);
        self
    }

    /// Records every stage's spans into `trace`: reader tracks
    /// `"read.{i}"`, compute-worker tracks `"fft.{i}"`, bookkeeping track
    /// `"bk"`, each with `"wait"` spans around queue pops; queue statistics
    /// are snapshotted after the run.
    pub fn with_trace(mut self, trace: TraceHandle) -> PipelinedCpuStitcher {
        self.trace = trace;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelinedCpuConfig {
        &self.config
    }
}

impl Stitcher for PipelinedCpuStitcher {
    fn name(&self) -> String {
        format!("Pipelined-CPU({})", self.config.threads)
    }

    fn try_compute_displacements(
        &self,
        source: &dyn TileSource,
        policy: &FailurePolicy,
    ) -> Result<StitchResult, StitchError> {
        let t0 = Instant::now();
        let shape = source.shape();
        let (w, h) = source.tile_dims();
        if shape.tiles() == 0 {
            return Ok(StitchResult::empty(shape));
        }
        let counters = OpCounters::new_shared();
        let tracker = FaultTracker::new(shape);
        let planner = match &self.shared_planner {
            Some(p) => Arc::clone(p),
            None => Arc::new(Planner::new(self.config.plan_mode)),
        };
        let pool_size = self
            .config
            .pool_size
            .unwrap_or(4 * shape.rows.min(shape.cols) + 8)
            .max(4);
        let pool = Arc::new(Semaphore::new(pool_size));
        // spectra released by bookkeeping recycle through a pool shared by
        // all fft/displacement workers (externally owned when the batch
        // scheduler injected a quota pool)
        let spectra = match &self.shared_spectra {
            Some(p) => {
                assert_eq!(
                    p.buf_len(),
                    Correlator::spectrum_len(self.config.transform, w, h),
                    "shared spectrum pool sized for different tile dims/transform"
                );
                if let Some(cap) = p.cap() {
                    assert!(
                        cap >= pool_size,
                        "bounded spectrum pool cap {cap} below transform pool {pool_size}: \
                         the run would stall on acquire"
                    );
                }
                p.clone()
            }
            None => Correlator::spectrum_pool(self.config.transform, w, h),
        };
        let total_pairs = shape.pairs();
        let total_tiles = shape.tiles();

        let floor = self.config.queue_floor;
        let q_ids: Queue<TileId> = Queue::new(floor.unwrap_or(64).max(1));
        let q_work: Queue<Work> = Queue::new((2 * pool_size).max(floor.unwrap_or(8).max(1)));
        let q_bk: Queue<BkMsg> = Queue::new(pool_size.max(floor.unwrap_or(8).max(1)));
        // q_work and q_bk each have producers in two different stages.
        // Writer-counted queues close for good when the count hits zero,
        // so hold guard writers until every stage has registered its own —
        // otherwise a fast early stage can finish, drop the last writer,
        // and close the queue before a later stage's writer exists.
        let w_work_guard = q_work.writer();
        let w_bk_guard = q_bk.writer();

        let west: Arc<Mutex<Vec<Option<Displacement>>>> =
            Arc::new(Mutex::new(vec![None; shape.tiles()]));
        let north: Arc<Mutex<Vec<Option<Displacement>>>> =
            Arc::new(Mutex::new(vec![None; shape.tiles()]));
        let live_peak = Arc::new(AtomicUsize::new(0));

        // The scoped-thread trick is unnecessary: the source reference only
        // needs to outlive the pipeline, which `join` below guarantees.
        let joined = std::thread::scope(|scope| {
            let mut pipeline = Pipeline::with_trace(self.trace.clone());

            // Stage 0 — feed tile ids in traversal order.
            {
                let ids = self.config.traversal.order(shape);
                let w_ids = q_ids.writer();
                pipeline.add_source("traversal", move || {
                    for id in ids {
                        if !w_ids.push(id) {
                            break;
                        }
                    }
                });
            }

            // Stage 1 — reader(s): disk → memory, throttled by the pool.
            // `source` borrows the caller's TileSource; a scoped spawn
            // inside Pipeline isn't possible, so readers run on scoped
            // threads of our own mirroring a pipeline stage.
            for rt in 0..self.config.read_threads {
                let w_work = q_work.writer();
                let w_bk = q_bk.writer();
                let pool = Arc::clone(&pool);
                let counters = Arc::clone(&counters);
                let q_ids = q_ids.clone();
                let tracker = &tracker;
                let trace = self.trace.clone();
                scope.spawn(move || {
                    let track = format!("read.{rt}");
                    loop {
                        let w0 = trace.now_ns();
                        let Some(id) = q_ids.pop() else { break };
                        trace.record(&track, "wait", "wait", w0, trace.now_ns());
                        let permit = pool.acquire_owned();
                        let l0 = trace.now_ns();
                        let loaded = tracker.load(source, id, &policy.retry);
                        trace.record(
                            &track,
                            "io",
                            format!("read r{}c{}", id.row, id.col),
                            l0,
                            trace.now_ns(),
                        );
                        match loaded {
                            Some(img) => {
                                counters.count_read();
                                if !w_work.push(Work::Fft(id, Arc::new(img), permit)) {
                                    break;
                                }
                            }
                            None => {
                                // tell bookkeeping directly so it can write
                                // off this tile's pairs; the permit goes
                                // straight back to the pool
                                drop(permit);
                                if !w_bk.push(BkMsg::Failed(id)) {
                                    break;
                                }
                            }
                        }
                    }
                });
            }

            // Stage 2 — fft/displacement workers.
            for t in 0..self.config.threads {
                let q_work = q_work.clone();
                let w_bk = q_bk.writer();
                let planner = Arc::clone(&planner);
                let counters = Arc::clone(&counters);
                let west = Arc::clone(&west);
                let north = Arc::clone(&north);
                let transform = self.config.transform;
                let trace = self.trace.clone();
                let spectra = spectra.clone();
                scope.spawn(move || {
                    let track = format!("fft.{t}");
                    let mut ctx = Correlator::with_pool(
                        transform,
                        &planner,
                        w,
                        h,
                        Arc::clone(&counters),
                        spectra,
                    );
                    loop {
                        let w0 = trace.now_ns();
                        let Some(work) = q_work.pop() else { break };
                        trace.record(&track, "wait", "wait", w0, trace.now_ns());
                        match work {
                            Work::Fft(id, img, permit) => {
                                let f0 = trace.now_ns();
                                let fft = Arc::new(ctx.forward_fft(&img));
                                trace.record(
                                    &track,
                                    "compute",
                                    format!("fft r{}c{}", id.row, id.col),
                                    f0,
                                    trace.now_ns(),
                                );
                                let done = FftDone {
                                    id,
                                    data: TileData { img, fft },
                                    permit,
                                };
                                if !w_bk.push(BkMsg::Done(done)) {
                                    break;
                                }
                            }
                            Work::Pair { a, b, kind, slot } => {
                                let c0 = trace.now_ns();
                                let d = ctx.displacement_oriented(
                                    &a.fft,
                                    &b.fft,
                                    &a.img,
                                    &b.img,
                                    Some(kind),
                                );
                                trace.record(
                                    &track,
                                    "compute",
                                    format!("ccf slot {slot}"),
                                    c0,
                                    trace.now_ns(),
                                );
                                match kind {
                                    PairKind::West => west.lock()[slot] = Some(d),
                                    PairKind::North => north.lock()[slot] = Some(d),
                                }
                            }
                        }
                    }
                });
            }

            // Stage 3 — bookkeeping: dependency resolution + recycling.
            {
                let q_bk2 = q_bk.clone();
                let w_work = q_work.writer();
                let live_peak = Arc::clone(&live_peak);
                let trace = self.trace.clone();
                scope.spawn(move || {
                    let mut book: HashMap<TileId, BookEntry> = HashMap::new();
                    let mut failed: HashSet<TileId> = HashSet::new();
                    // pairs written off because an endpoint never arrived,
                    // keyed by (slot, kind) so a pair counts once even if
                    // both of its endpoints fail
                    let mut voided: HashSet<(usize, PairKind)> = HashSet::new();
                    let mut tiles_seen = 0usize;
                    let mut pairs_emitted = 0usize;
                    loop {
                        let w0 = trace.now_ns();
                        let Some(msg) = q_bk2.pop() else { break };
                        trace.record("bk", "wait", "wait", w0, trace.now_ns());
                        let s0 = trace.now_ns();
                        tiles_seen += 1;
                        match msg {
                            BkMsg::Failed(id) => {
                                failed.insert(id);
                                for (a, b, kind) in [
                                    (shape.west(id), Some(id), PairKind::West),
                                    (shape.north(id), Some(id), PairKind::North),
                                    (Some(id), shape.east(id), PairKind::West),
                                    (Some(id), shape.south(id), PairKind::North),
                                ] {
                                    if let (Some(_a), Some(b)) = (a, b) {
                                        voided.insert((shape.index(b), kind));
                                    }
                                }
                                // resident neighbors will never pair with
                                // this tile: drop their claim on it
                                for nb in [
                                    shape.west(id),
                                    shape.north(id),
                                    shape.east(id),
                                    shape.south(id),
                                ]
                                .into_iter()
                                .flatten()
                                {
                                    if let Some(e) = book.get_mut(&nb) {
                                        e.remaining -= 1;
                                        if e.remaining == 0 {
                                            book.remove(&nb); // releases the pool permit
                                        }
                                    }
                                }
                            }
                            BkMsg::Done(done) => {
                                let id = done.id;
                                // neighbors already written off reduce this
                                // tile's reference count up front
                                let already_voided = [
                                    shape.west(id),
                                    shape.north(id),
                                    shape.east(id),
                                    shape.south(id),
                                ]
                                .into_iter()
                                .flatten()
                                .filter(|nb| failed.contains(nb))
                                .count();
                                let remaining = shape.degree(id) - already_voided;
                                if remaining > 0 {
                                    book.insert(
                                        id,
                                        BookEntry {
                                            data: done.data,
                                            remaining,
                                            _permit: done.permit,
                                        },
                                    );
                                }
                                let peak = book.len();
                                live_peak.fetch_max(peak, Ordering::Relaxed);
                                // emit every pair that just became ready
                                let mut ready: Vec<(TileId, TileId, PairKind)> =
                                    Vec::with_capacity(4);
                                for (a, b, kind) in [
                                    (shape.west(id), Some(id), PairKind::West),
                                    (shape.north(id), Some(id), PairKind::North),
                                    (Some(id), shape.east(id), PairKind::West),
                                    (Some(id), shape.south(id), PairKind::North),
                                ] {
                                    if let (Some(a), Some(b)) = (a, b) {
                                        if book.contains_key(&a) && book.contains_key(&b) {
                                            ready.push((a, b, kind));
                                        }
                                    }
                                }
                                for (a, b, kind) in ready {
                                    let work = Work::Pair {
                                        a: TileData {
                                            img: Arc::clone(&book[&a].data.img),
                                            fft: Arc::clone(&book[&a].data.fft),
                                        },
                                        b: TileData {
                                            img: Arc::clone(&book[&b].data.img),
                                            fft: Arc::clone(&book[&b].data.fft),
                                        },
                                        kind,
                                        slot: shape.index(b),
                                    };
                                    if !w_work.push(work) {
                                        return;
                                    }
                                    pairs_emitted += 1;
                                    for t in [a, b] {
                                        let e = book.get_mut(&t).expect("endpoint resident");
                                        e.remaining -= 1;
                                        if e.remaining == 0 {
                                            book.remove(&t); // releases the pool permit
                                        }
                                    }
                                }
                            }
                        }
                        trace.record("bk", "stage", "bookkeep", s0, trace.now_ns());
                        if tiles_seen == total_tiles && pairs_emitted + voided.len() == total_pairs
                        {
                            break; // all work emitted; drop our work-queue writer
                        }
                    }
                });
            }

            // every stage's writers are registered; release the guards
            drop(w_work_guard);
            drop(w_bk_guard);

            pipeline.join()
            // the scope now waits for reader/workers/bookkeeping threads
        });
        // snapshot queue metrics into the trace once every thread is done
        q_ids.record_to_trace(&self.trace, "read.in");
        q_work.record_to_trace(&self.trace, "fft.in");
        q_bk.record_to_trace(&self.trace, "bk.in");
        if let Err(e) = joined {
            return Err(StitchError::Pipeline {
                detail: e.to_string(),
            });
        }

        let mut result = StitchResult::empty(shape);
        result.west = Arc::try_unwrap(west).expect("sole owner").into_inner();
        result.north = Arc::try_unwrap(north).expect("sole owner").into_inner();
        result.elapsed = t0.elapsed();
        result.ops = counters.snapshot();
        result.peak_live_tiles = live_peak.load(Ordering::Relaxed);
        self.trace
            .set_gauge("peak_live_tiles", result.peak_live_tiles as f64);
        result.health = tracker.finish(policy)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_cpu::SimpleCpuStitcher;
    use crate::source::SyntheticSource;
    use crate::stitcher::truth_vectors;
    use stitch_image::{ScanConfig, SyntheticPlate};

    fn source(rows: usize, cols: usize, seed: u64) -> SyntheticSource {
        SyntheticSource::new(SyntheticPlate::generate(ScanConfig {
            grid_rows: rows,
            grid_cols: cols,
            tile_width: 64,
            tile_height: 48,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 40.0,
            vignette: 0.03,
            seed,
        }))
    }

    #[test]
    fn matches_sequential() {
        let src = source(3, 4, 51);
        let seq = SimpleCpuStitcher::default().compute_displacements(&src);
        for threads in [1, 2, 4] {
            let r = PipelinedCpuStitcher::new(threads).compute_displacements(&src);
            assert_eq!(r.west, seq.west, "threads={threads}");
            assert_eq!(r.north, seq.north, "threads={threads}");
        }
    }

    #[test]
    fn recovers_ground_truth() {
        let src = source(4, 4, 52);
        let r = PipelinedCpuStitcher::new(4).compute_displacements(&src);
        assert!(r.is_complete());
        let (tw, tn) = truth_vectors(src.plate());
        assert_eq!(r.count_errors(&tw, &tn, 0), 0);
    }

    #[test]
    fn pool_bounds_live_tiles() {
        let src = source(4, 6, 53);
        let cfg = PipelinedCpuConfig {
            pool_size: Some(6),
            ..PipelinedCpuConfig::with_threads(4)
        };
        let r = PipelinedCpuStitcher::with_config(cfg).compute_displacements(&src);
        assert!(r.is_complete());
        assert!(
            r.peak_live_tiles <= 6,
            "peak {} > pool 6",
            r.peak_live_tiles
        );
    }

    #[test]
    fn minimal_pool_does_not_deadlock() {
        let src = source(3, 8, 54);
        // the paper requires the pool to exceed the smallest grid
        // dimension; with eager pair completion two anti-diagonals can be
        // live at once, so the safe minimum is 2·min_dim + 2
        let cfg = PipelinedCpuConfig {
            pool_size: Some(8),
            ..PipelinedCpuConfig::with_threads(2)
        };
        let r = PipelinedCpuStitcher::with_config(cfg).compute_displacements(&src);
        assert!(r.is_complete());
    }

    #[test]
    fn tight_queue_floor_still_matches_sequential() {
        let src = source(3, 4, 51);
        let seq = SimpleCpuStitcher::default().compute_displacements(&src);
        for floor in [1, 2, 5] {
            let cfg = PipelinedCpuConfig {
                queue_floor: Some(floor),
                ..PipelinedCpuConfig::with_threads(3)
            };
            let r = PipelinedCpuStitcher::with_config(cfg).compute_displacements(&src);
            assert_eq!(r.west, seq.west, "floor={floor}");
            assert_eq!(r.north, seq.north, "floor={floor}");
        }
    }

    #[test]
    fn op_counts_match_table1() {
        let src = source(3, 3, 55);
        let r = PipelinedCpuStitcher::new(2).compute_displacements(&src);
        assert_eq!(r.ops, crate::opcount::OpCounts::predicted(3, 3));
    }

    #[test]
    fn real_transform_path_matches_complex() {
        use crate::pciam_real::TransformKind;
        let src = source(3, 4, 57);
        let complex = PipelinedCpuStitcher::new(2).compute_displacements(&src);
        let real = PipelinedCpuStitcher::with_config(PipelinedCpuConfig {
            transform: TransformKind::Real,
            ..PipelinedCpuConfig::with_threads(2)
        })
        .compute_displacements(&src);
        assert_eq!(real.west, complex.west);
        assert_eq!(real.north, complex.north);
    }

    #[test]
    fn multiple_reader_threads() {
        let src = source(3, 4, 58);
        let seq = PipelinedCpuStitcher::new(2).compute_displacements(&src);
        let r = PipelinedCpuStitcher::with_config(PipelinedCpuConfig {
            read_threads: 3,
            ..PipelinedCpuConfig::with_threads(2)
        })
        .compute_displacements(&src);
        assert_eq!(r.west, seq.west);
        assert_eq!(r.north, seq.north);
        assert_eq!(r.ops.reads, 12);
    }

    #[test]
    fn single_tile_grid() {
        let src = source(1, 1, 56);
        let r = PipelinedCpuStitcher::new(2).compute_displacements(&src);
        assert!(r.is_complete());
        assert_eq!(r.ops.forward_ffts, 1);
        assert_eq!(r.ops.inverse_ffts, 0);
    }
}
