//! PCIAM — the phase correlation image alignment method (paper §III).
//!
//! Implements the data-flow of Fig 1 / pseudo-code of Fig 2 for one
//! adjacent pair `(a, b)`:
//!
//! 1. forward 2-D FFTs of both tiles;
//! 2. `NCC = (F_a ⊗ conj(F_b)) / |·|` — element-wise normalized conjugate
//!    multiply;
//! 3. inverse 2-D FFT of the NCC;
//! 4. max-|·| reduction → peak index `(x, y)`;
//! 5. periodicity disambiguation: the peak is only defined modulo the tile
//!    size, so the true displacement is one of the four signed candidates
//!    `{x, x−W} × {y, y−H}` (equivalently the paper's overlap modes
//!    `(x | W−x) × (y | H−y)` — same four overlap geometries, expressed
//!    with signs so northern/western jitter can be negative);
//! 6. each candidate is scored by the cross-correlation factor (Fig 3:
//!    Pearson correlation of the overlap pixels) and the best wins.
//!
//! **Convention**: `pciam(a, b)` returns `d = position(b) − position(a)`
//! in plate coordinates — pixel `p` of `b` shows the same plate content as
//! pixel `p + d` of `a`. For a west pair, `a` is the western tile and `d.x
//! ≈ +step`; for a north pair, `a` is the northern tile and `d.y ≈ +step`.

use std::sync::Arc;

use stitch_fft::{c64, Direction, Fft2d, Planner, C64};
use stitch_image::Image;

use crate::hostpool::{PooledSpectrum, SpectrumPool};
use crate::opcount::OpCounters;
use crate::types::{Displacement, PairKind};

/// Minimum overlap area (in pixels) for a CCF candidate to be considered.
/// Below this the correlation estimate is meaningless noise.
const MIN_OVERLAP_PIXELS: i64 = 4;

/// How many correlation peaks are tested with the CCF before picking a
/// displacement. The paper's Fig 2 uses the single max; the ImageJ/Fiji
/// plugin it compares against checks several peaks, and with small
/// overlaps the true peak is frequently not the global one (spectral
/// leakage puts spurious maxima on the axes). Checking the top few peaks
/// costs four cheap CCF evaluations each and removes that failure mode.
pub const DEFAULT_PEAK_COUNT: usize = 8;

/// Chebyshev radius within which nearby maxima are considered the same
/// peak during top-K extraction.
const PEAK_SUPPRESSION_RADIUS: usize = 2;

/// How many of the best-scoring candidates get CCF refinement. All
/// candidates are refined: the pre-refinement score of a peak one pixel
/// off the truth is a poor predictor of its refined score.
const REFINE_CANDIDATES: usize = usize::MAX;

/// Reusable per-pair working vectors (peak gather/output buffers, peak
/// indices, scored CCF candidates). Capacities converge after the first
/// pair, making the steady-state pair computation allocation-free.
#[derive(Default)]
pub(crate) struct PairScratch {
    pub(crate) cand: Vec<(usize, f64)>,
    pub(crate) peaks: Vec<(usize, f64)>,
    pub(crate) indices: Vec<usize>,
    pub(crate) scored: Vec<(f64, Displacement)>,
}

/// Per-thread context for PCIAM computations over one tile geometry:
/// holds the planned transforms, scratch memory, and a [`SpectrumPool`]
/// that recycles tile-spectrum buffers, so the steady-state hot path
/// performs no heap allocation at all.
pub struct PciamContext {
    width: usize,
    height: usize,
    forward: Fft2d,
    inverse: Fft2d,
    scratch: Vec<C64>,
    work: Vec<C64>,
    pool: SpectrumPool,
    pair: PairScratch,
    counters: Arc<OpCounters>,
}

impl PciamContext {
    /// Builds a context for `width × height` tiles with a private
    /// spectrum pool. Plans come from (and are cached by) `planner`.
    pub fn new(planner: &Planner, width: usize, height: usize, counters: Arc<OpCounters>) -> Self {
        let pool = SpectrumPool::new(width * height);
        Self::with_pool(planner, width, height, counters, pool)
    }

    /// Like [`PciamContext::new`] but recycling spectra through a shared
    /// pool — the multi-threaded stitchers hand one pool to every worker
    /// so buffers released by one thread serve another's next tile.
    pub fn with_pool(
        planner: &Planner,
        width: usize,
        height: usize,
        counters: Arc<OpCounters>,
        pool: SpectrumPool,
    ) -> Self {
        assert_eq!(pool.buf_len(), width * height, "pool sized for other tiles");
        PciamContext {
            width,
            height,
            forward: Fft2d::new(planner, width, height, Direction::Forward),
            inverse: Fft2d::new(planner, width, height, Direction::Inverse),
            scratch: vec![C64::ZERO; width * height],
            work: vec![C64::ZERO; width * height],
            pool,
            pair: PairScratch::default(),
            counters,
        }
    }

    /// Tile width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Tile height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The shared operation counters.
    pub fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }

    /// Step 2 of Fig 2: the forward 2-D FFT of a tile. The returned
    /// spectrum's storage comes from (and returns to) the context's
    /// [`SpectrumPool`] — drop it and the next tile reuses the memory.
    pub fn forward_fft(&mut self, img: &Image<u16>) -> PooledSpectrum {
        assert_eq!(img.dims(), (self.width, self.height), "tile dims mismatch");
        let mut data = self.pool.acquire();
        for (d, &p) in data.iter_mut().zip(img.pixels()) {
            *d = c64(p as f64, 0.0);
        }
        self.forward.process(&mut data, &mut self.scratch);
        self.counters.count_forward_fft();
        data
    }

    /// Steps 4–7 of Fig 2: NCC, inverse FFT, max reduction. Returns the
    /// peak's flat index and magnitude.
    pub fn correlation_peak(&mut self, fa: &[C64], fb: &[C64]) -> (usize, f64) {
        let peaks = self.correlation_peaks(fa, fb, 1);
        peaks[0]
    }

    /// Like [`PciamContext::correlation_peak`] but returns up to `k`
    /// distinct peaks (suppressing near-duplicates), strongest first.
    pub fn correlation_peaks(&mut self, fa: &[C64], fb: &[C64], k: usize) -> Vec<(usize, f64)> {
        self.correlation_peaks_into(fa, fb, k);
        self.pair.peaks.clone()
    }

    /// Allocation-free core of [`PciamContext::correlation_peaks`]: the
    /// result lands in `self.pair.peaks`.
    fn correlation_peaks_into(&mut self, fa: &[C64], fb: &[C64], k: usize) {
        let n = self.width * self.height;
        assert_eq!(fa.len(), n);
        assert_eq!(fb.len(), n);
        assert!(k >= 1);
        // NCC (the paper's first hand-vectorized kernel, §IV-A) fused with
        // the inverse transform's row pass: each row is normalized and
        // row-transformed while cache-hot, through the process-wide
        // compute backend. Unscaled — scaling does not move the argmax.
        let backend = stitch_fft::backend::active();
        self.inverse
            .process_ncc_fused(backend, fa, fb, &mut self.work, &mut self.scratch);
        self.counters.count_elementwise();
        self.counters.count_inverse_fft();
        top_peaks_into(
            &self.work,
            self.width,
            k,
            &mut self.pair.cand,
            &mut self.pair.peaks,
        );
        self.counters.count_max_reduction();
        let scale = 1.0 / n as f64;
        for p in &mut self.pair.peaks {
            p.1 *= scale;
        }
    }

    /// Full pair computation from precomputed transforms plus the pixel
    /// data needed for CCF disambiguation. Unconstrained (no scan-geometry
    /// prior); grid stitchers use
    /// [`PciamContext::displacement_oriented`] instead.
    pub fn displacement_from_ffts(
        &mut self,
        fa: &[C64],
        fb: &[C64],
        img_a: &Image<u16>,
        img_b: &Image<u16>,
    ) -> Displacement {
        self.displacement_oriented(fa, fb, img_a, img_b, None)
    }

    /// Like [`PciamContext::displacement_from_ffts`] but with the scan
    /// geometry made explicit: for a [`PairKind::West`] pair tile `b` is
    /// physically east of `a` (`dx ≥ 1`), for [`PairKind::North`] it is
    /// physically south (`dy ≥ 1`). The constraint discards
    /// scene-self-similarity matches in the impossible half-plane — the
    /// same stage-model prior NIST's production tool applies.
    pub fn displacement_oriented(
        &mut self,
        fa: &[C64],
        fb: &[C64],
        img_a: &Image<u16>,
        img_b: &Image<u16>,
        kind: Option<PairKind>,
    ) -> Displacement {
        self.correlation_peaks_into(fa, fb, DEFAULT_PEAK_COUNT);
        self.pair.indices.clear();
        self.pair
            .indices
            .extend(self.pair.peaks.iter().map(|&(i, _)| i));
        let d = resolve_peaks_oriented_into(
            &self.pair.indices,
            self.width,
            self.height,
            img_a,
            img_b,
            kind,
            &mut self.pair.scored,
        );
        self.counters.count_ccf_group();
        d
    }

    /// Convenience: the whole of Fig 2 for a pair of images.
    pub fn pciam(&mut self, img_a: &Image<u16>, img_b: &Image<u16>) -> Displacement {
        let fa = self.forward_fft(img_a);
        let fb = self.forward_fft(img_b);
        self.displacement_from_ffts(&fa, &fb, img_a, img_b)
    }
}

/// Converts a correlation-peak index into the four signed displacement
/// candidates implied by FFT periodicity (Fig 2 steps 8–11).
pub fn peak_candidates(peak: usize, width: usize, height: usize) -> [(i64, i64); 4] {
    let x = (peak % width) as i64;
    let y = (peak / width) as i64;
    let w = width as i64;
    let h = height as i64;
    [(x, y), (x - w, y), (x, y - h), (x - w, y - h)]
}

/// Scores the four candidates of `peak` with the CCF and returns the
/// winner (Fig 2 step 12).
pub fn resolve_peak(
    peak: usize,
    width: usize,
    height: usize,
    img_a: &Image<u16>,
    img_b: &Image<u16>,
) -> Displacement {
    resolve_peaks(&[peak], width, height, img_a, img_b)
}

/// Scores the four interpretation candidates of *each* peak with the CCF
/// and returns the global winner.
///
/// Candidates are ranked by correlation *significance* — `ccf · √pixels`
/// with the pixel count saturating at a small fraction of the tile area —
/// rather than the raw coefficient: a 0.8 correlation over a one-pixel-thin
/// sliver is far weaker evidence than 0.6 over a thousand-pixel strip, and
/// without the weighting thin slivers win often enough to corrupt grids.
/// The saturation point matters: an unsaturated √n drags the choice toward
/// larger overlaps (smaller displacements), because on smooth content the
/// correlation one pixel off is nearly as high while the overlap is larger.
pub fn resolve_peaks(
    peaks: &[usize],
    width: usize,
    height: usize,
    img_a: &Image<u16>,
    img_b: &Image<u16>,
) -> Displacement {
    resolve_peaks_oriented(peaks, width, height, img_a, img_b, None)
}

/// [`resolve_peaks`] with an optional pair-orientation constraint; see
/// [`PciamContext::displacement_oriented`].
pub fn resolve_peaks_oriented(
    peaks: &[usize],
    width: usize,
    height: usize,
    img_a: &Image<u16>,
    img_b: &Image<u16>,
    kind: Option<PairKind>,
) -> Displacement {
    let mut scored = Vec::with_capacity(peaks.len() * 4);
    resolve_peaks_oriented_into(peaks, width, height, img_a, img_b, kind, &mut scored)
}

/// Allocation-free core of [`resolve_peaks_oriented`]: candidate scoring
/// reuses the caller's `scored` buffer (cleared on entry).
pub(crate) fn resolve_peaks_oriented_into(
    peaks: &[usize],
    width: usize,
    height: usize,
    img_a: &Image<u16>,
    img_b: &Image<u16>,
    kind: Option<PairKind>,
    scored: &mut Vec<(f64, Displacement)>,
) -> Displacement {
    let (center_a, center_b) = (img_a.mean(), img_b.mean());
    scored.clear();
    for &peak in peaks {
        for (dx, dy) in peak_candidates(peak, width, height) {
            if !orientation_ok(kind, dx, dy) {
                continue;
            }
            if let Some(ccf) = ccf_at_centered(img_a, img_b, center_a, center_b, dx, dy) {
                let score = candidate_score(width, height, dx, dy, ccf);
                scored.push((score, Displacement::new(dx, dy, ccf)));
            }
        }
    }
    if scored.is_empty() {
        // no candidate produced a usable overlap (degenerate tiny tiles);
        // fall back to the strongest raw peak with zero confidence
        let (dx, dy) = peak_candidates(peaks.first().copied().unwrap_or(0), width, height)[0];
        return Displacement::new(dx, dy, 0.0);
    }
    // Refine the best-scoring candidates, not just the winner: a peak a
    // pixel or two off the truth can score below a spurious-but-smooth
    // candidate, yet its refined form wins decisively. Unstable sort:
    // no allocation, and equal-score ties cannot change the outcome —
    // every survivor is refined and the winner needs a strictly higher
    // refined score.
    scored.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.dedup_by_key(|(_, d)| (d.x, d.y));
    let mut best = Displacement::new(0, 0, f64::NEG_INFINITY);
    let mut best_score = f64::NEG_INFINITY;
    for &(_, cand) in scored.iter().take(REFINE_CANDIDATES) {
        let refined = refine_ccf_centered(img_a, img_b, center_a, center_b, cand, kind);
        let score = candidate_score(width, height, refined.x, refined.y, refined.correlation);
        if score > best_score {
            best_score = score;
            best = refined;
        }
    }
    best
}

/// True when `(dx, dy)` is geometrically possible for the pair kind.
fn orientation_ok(kind: Option<PairKind>, dx: i64, dy: i64) -> bool {
    match kind {
        Some(PairKind::West) => dx >= 1,
        Some(PairKind::North) => dy >= 1,
        None => true,
    }
}

/// Hill-climbs the CCF over the 8-neighborhood of `d` until a local
/// maximum (bounded steps). Correlation peaks occasionally land a pixel or
/// two off the true displacement when the overlap is thin; the CCF
/// landscape around the truth is smooth, so a short greedy walk snaps the
/// answer onto it (the same translation refinement the NIST tool grew).
pub fn refine_ccf(img_a: &Image<u16>, img_b: &Image<u16>, d: Displacement) -> Displacement {
    refine_ccf_oriented(img_a, img_b, d, None)
}

/// [`refine_ccf`] constrained to the orientation's legal half-plane.
pub fn refine_ccf_oriented(
    img_a: &Image<u16>,
    img_b: &Image<u16>,
    d: Displacement,
    kind: Option<PairKind>,
) -> Displacement {
    refine_ccf_centered(img_a, img_b, img_a.mean(), img_b.mean(), d, kind)
}

/// [`refine_ccf_oriented`] with caller-supplied tile means (see
/// [`ccf_at_centered`]).
fn refine_ccf_centered(
    img_a: &Image<u16>,
    img_b: &Image<u16>,
    center_a: f64,
    center_b: f64,
    mut d: Displacement,
    kind: Option<PairKind>,
) -> Displacement {
    const MAX_STEPS: usize = 8;
    /// Search radius per step. Radius 2 jumps over the single-pixel
    /// saddles that trap a radius-1 climb on smooth content.
    const RADIUS: i64 = 2;
    let (w, h) = img_a.dims();
    let score = |disp: &Displacement| candidate_score(w, h, disp.x, disp.y, disp.correlation);
    let mut best_score = score(&d);
    for _ in 0..MAX_STEPS {
        // steepest ascent: score the whole window around the *fixed*
        // current center, then take the single best move — updating the
        // center mid-scan would shift the window away from uphill cells
        let center = d;
        let mut step_best = best_score;
        let mut step_disp = None;
        for sy in -RADIUS..=RADIUS {
            for sx in -RADIUS..=RADIUS {
                if sx == 0 && sy == 0 {
                    continue;
                }
                let (nx, ny) = (center.x + sx, center.y + sy);
                if !orientation_ok(kind, nx, ny) {
                    continue;
                }
                if let Some(c) = ccf_at_centered(img_a, img_b, center_a, center_b, nx, ny) {
                    let cand = Displacement::new(nx, ny, c);
                    let s = score(&cand);
                    if s > step_best {
                        step_best = s;
                        step_disp = Some(cand);
                    }
                }
            }
        }
        match step_disp {
            Some(next) => {
                d = next;
                best_score = step_best;
            }
            None => break,
        }
    }
    d
}

/// Significance score of a CCF candidate: the t-statistic of the Pearson
/// correlation, `ccf·√(n−2) / √(1−ccf²)`. This is the quantity that makes
/// a 0.79 correlation over a 120-pixel sliver lose to a 0.94 over a
/// 900-pixel strip (√n term) *without* dragging the choice toward larger
/// overlaps when correlations are near-equal (the `1−ccf²` term rewards
/// the sharply higher correlation at the exact alignment).
fn candidate_score(width: usize, height: usize, dx: i64, dy: i64, ccf: f64) -> f64 {
    let n = overlap_pixels(width, height, dx, dy) as f64;
    if n < 3.0 {
        return f64::NEG_INFINITY;
    }
    ccf * (n - 2.0).sqrt() / (1.0 - ccf * ccf).max(1e-9).sqrt()
}

/// Number of pixels two same-size tiles share at signed displacement
/// `(dx, dy)` (zero when disjoint).
pub fn overlap_pixels(width: usize, height: usize, dx: i64, dy: i64) -> i64 {
    let ow = width as i64 - dx.abs();
    let oh = height as i64 - dy.abs();
    if ow <= 0 || oh <= 0 {
        0
    } else {
        ow * oh
    }
}

/// Extracts up to `k` distinct maxima of `|data|`, strongest first,
/// merging maxima within a small Chebyshev radius. Single pass with a
/// small insertion buffer — O(n·k) worst case, and k is single digits.
pub fn top_peaks(data: &[C64], width: usize, k: usize) -> Vec<(usize, f64)> {
    let mut cand = Vec::new();
    let mut out = Vec::new();
    top_peaks_into(data, width, k, &mut cand, &mut out);
    out
}

/// Allocation-free core of [`top_peaks`]: `cand` is the gather buffer,
/// `out` receives the result (both cleared on entry; capacities persist
/// across calls, so reuse makes the steady state allocation-free).
pub(crate) fn top_peaks_into(
    data: &[C64],
    width: usize,
    k: usize,
    cand: &mut Vec<(usize, f64)>,
    out: &mut Vec<(usize, f64)>,
) {
    // Gather generously (peaks can shadow each other inside the
    // suppression radius), then suppress.
    let gather = (4 * k).max(16);
    cand.clear();
    cand.reserve(gather + 1);
    let mut floor = f64::MIN;
    for (i, v) in data.iter().enumerate() {
        let m = v.norm_sqr();
        if m <= floor {
            continue;
        }
        let pos = cand.partition_point(|&(_, cm)| cm >= m);
        cand.insert(pos, (i, m));
        if cand.len() > gather {
            cand.pop();
            floor = cand.last().unwrap().1;
        }
    }
    let r = PEAK_SUPPRESSION_RADIUS as i64;
    out.clear();
    out.reserve(k.min(gather));
    'cands: for &(i, m) in cand.iter() {
        let (x, y) = ((i % width) as i64, (i / width) as i64);
        for &(j, _) in out.iter() {
            let (px, py) = ((j % width) as i64, (j / width) as i64);
            if (x - px).abs() <= r && (y - py).abs() <= r {
                continue 'cands;
            }
        }
        out.push((i, m));
        if out.len() == k {
            break;
        }
    }
    for p in out.iter_mut() {
        p.1 = p.1.sqrt();
    }
}

/// The cross-correlation factor of Fig 3 evaluated at a *signed*
/// displacement: Pearson correlation of the pixels where tile `b`,
/// placed at offset `(dx, dy)` inside tile `a`'s frame, overlaps `a`.
/// `None` when the overlap is smaller than [`MIN_OVERLAP_PIXELS`].
pub fn ccf_at(img_a: &Image<u16>, img_b: &Image<u16>, dx: i64, dy: i64) -> Option<f64> {
    ccf_at_centered(img_a, img_b, img_a.mean(), img_b.mean(), dx, dy)
}

/// [`ccf_at`] with the whole-tile means supplied by the caller. The CCF
/// stage evaluates dozens of candidate offsets per pair; computing the
/// tile means once and shifting both tiles by them lets each evaluation
/// run in a single pass. (Shifting by *any* constant leaves the Pearson
/// coefficient of the overlap unchanged; shifting keeps the co-moment
/// accumulators small enough that `f64` stays exact for 16-bit pixels.)
pub fn ccf_at_centered(
    img_a: &Image<u16>,
    img_b: &Image<u16>,
    center_a: f64,
    center_b: f64,
    dx: i64,
    dy: i64,
) -> Option<f64> {
    let (w, h) = img_a.dims();
    assert_eq!(img_b.dims(), (w, h), "CCF requires same-size tiles");
    let (w, h) = (w as i64, h as i64);
    // overlap rectangle in a's coordinates
    let ax0 = dx.max(0);
    let ay0 = dy.max(0);
    let ax1 = (w + dx).min(w);
    let ay1 = (h + dy).min(h);
    let ow = ax1 - ax0;
    let oh = ay1 - ay0;
    if ow <= 0 || oh <= 0 || ow * oh < MIN_OVERLAP_PIXELS {
        return None;
    }
    // Per-row co-moments through the compute backend (the dominant cost
    // of the disambiguation stage — a five-accumulator reduction the
    // compiler cannot auto-vectorize from the sequential form). Rows are
    // summed in order, so the only backend-dependent rounding is the
    // within-row lane association.
    let backend = stitch_fft::backend::active();
    let mut sum_a = 0.0;
    let mut sum_b = 0.0;
    let mut sum_ab = 0.0;
    let mut sum_aa = 0.0;
    let mut sum_bb = 0.0;
    for ya in ay0..ay1 {
        let yb = (ya - dy) as usize;
        let row_a = &img_a.row(ya as usize)[ax0 as usize..ax1 as usize];
        let row_b = &img_b.row(yb)[(ax0 - dx) as usize..(ax1 - dx) as usize];
        let [ra, rb, rab, raa, rbb] = backend.comoment_u16(row_a, row_b, center_a, center_b);
        sum_a += ra;
        sum_b += rb;
        sum_ab += rab;
        sum_aa += raa;
        sum_bb += rbb;
    }
    let n = (ow * oh) as f64;
    let num = sum_ab - sum_a * sum_b / n;
    let den_a = sum_aa - sum_a * sum_a / n;
    let den_b = sum_bb - sum_b * sum_b / n;
    let den = (den_a * den_b).sqrt();
    Some(if den > 0.0 { num / den } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_image::{Scene, SceneParams};

    /// Renders two overlapping views of one scene, `b` offset by
    /// `(dx, dy)` plate pixels from `a`.
    fn scene_pair(w: usize, h: usize, dx: i64, dy: i64, noise: f64) -> (Image<u16>, Image<u16>) {
        let scene = Scene::generate(
            (w as f64) * 3.0,
            (h as f64) * 3.0,
            SceneParams {
                colony_count: 24,
                seed: 99,
                ..SceneParams::default()
            },
        );
        let base = (w as f64, h as f64); // start inside the scene
        let a = scene.render_region(base.0, base.1, w, h, 0.0, noise, 1);
        let b = scene.render_region(base.0 + dx as f64, base.1 + dy as f64, w, h, 0.0, noise, 2);
        (a, b)
    }

    fn ctx(w: usize, h: usize) -> PciamContext {
        PciamContext::new(&Planner::default(), w, h, OpCounters::new_shared())
    }

    #[test]
    fn recovers_known_shift_east() {
        let (w, h) = (96, 64);
        let (a, b) = scene_pair(w, h, 77, 3, 0.0);
        let d = ctx(w, h).pciam(&a, &b);
        assert_eq!((d.x, d.y), (77, 3), "corr={}", d.correlation);
        assert!(d.correlation > 0.8);
    }

    #[test]
    fn recovers_negative_jitter() {
        // west pair with the eastern tile slightly *above* — dy < 0, the
        // case the signed candidates exist for
        let (w, h) = (96, 64);
        let (a, b) = scene_pair(w, h, 76, -4, 0.0);
        let d = ctx(w, h).pciam(&a, &b);
        assert_eq!((d.x, d.y), (76, -4));
    }

    #[test]
    fn recovers_shift_south() {
        let (w, h) = (64, 96);
        let (a, b) = scene_pair(w, h, -2, 75, 0.0);
        let d = ctx(w, h).pciam(&a, &b);
        assert_eq!((d.x, d.y), (-2, 75));
    }

    #[test]
    fn robust_to_sensor_noise() {
        let (w, h) = (96, 64);
        let (a, b) = scene_pair(w, h, 75, 2, 80.0);
        let d = ctx(w, h).pciam(&a, &b);
        assert_eq!((d.x, d.y), (75, 2));
    }

    #[test]
    fn zero_shift_is_identity() {
        let (w, h) = (48, 48);
        let (a, b) = scene_pair(w, h, 0, 0, 0.0);
        let d = ctx(w, h).pciam(&a, &b);
        assert_eq!((d.x, d.y), (0, 0));
        assert!(d.correlation > 0.99);
    }

    #[test]
    fn candidates_cover_all_sign_combinations() {
        let c = peak_candidates(5 + 3 * 16, 16, 12); // x=5, y=3
        assert_eq!(c, [(5, 3), (-11, 3), (5, -9), (-11, -9)]);
    }

    #[test]
    fn ccf_perfect_correlation_on_identical_overlap() {
        let img = Image::from_fn(16, 16, |x, y| ((x * 7 + y * 13) % 97) as u16);
        assert!((ccf_at(&img, &img, 0, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ccf_detects_true_offset_better_than_wrong_one() {
        let (w, h) = (64, 48);
        let (a, b) = scene_pair(w, h, 50, 2, 0.0);
        let right = ccf_at(&a, &b, 50, 2).unwrap();
        let wrong = ccf_at(&a, &b, 30, 2).unwrap();
        assert!(right > wrong, "{right} vs {wrong}");
    }

    #[test]
    fn ccf_none_when_no_overlap() {
        let img = Image::from_fn(8, 8, |x, _| x as u16);
        assert!(ccf_at(&img, &img, 8, 0).is_none());
        assert!(ccf_at(&img, &img, 0, -8).is_none());
        assert!(
            ccf_at(&img, &img, 7, 7).is_none(),
            "1px overlap below minimum"
        );
    }

    #[test]
    fn ccf_constant_region_returns_zero() {
        let a = Image::filled(8, 8, 100u16);
        let b = Image::filled(8, 8, 200u16);
        assert_eq!(ccf_at(&a, &b, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn counters_count_fig2_steps() {
        let (w, h) = (32, 32);
        let counters = OpCounters::new_shared();
        let mut ctx = PciamContext::new(&Planner::default(), w, h, Arc::clone(&counters));
        let (a, b) = scene_pair(w, h, 20, 1, 0.0);
        ctx.pciam(&a, &b);
        let s = counters.snapshot();
        assert_eq!(s.forward_ffts, 2);
        assert_eq!(s.elementwise_mults, 1);
        assert_eq!(s.inverse_ffts, 1);
        assert_eq!(s.max_reductions, 1);
        assert_eq!(s.ccf_groups, 1);
    }

    #[test]
    fn works_on_awkward_tile_sizes() {
        // 58×42 → prime-ish factors, exercises Bluestein inside the 2-D FFT
        let (w, h) = (58, 41);
        let (a, b) = scene_pair(w, h, 43, 2, 0.0);
        let d = ctx(w, h).pciam(&a, &b);
        assert_eq!((d.x, d.y), (43, 2));
    }
}
