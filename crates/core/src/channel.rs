//! Multi-channel / z-stack workloads: register once, replay everywhere.
//!
//! Real high-content runs (Opera Phenix-style plates) acquire several
//! fluorescence channels at several focal planes per stage position. The
//! stage moves once, so every channel and plane shares one set of true
//! tile positions — registration therefore runs on a single *reference
//! channel* (optionally its max-z projection), and the solved frame is
//! replayed across all `(channel, plane)` compositions. Per-channel
//! illumination falloff is estimated from the tile stack
//! ([`stitch_image::flatfield`]) and divided out *before* registration:
//! the falloff is tile-fixed, so uncorrected it correlates between
//! overlapping tiles at zero displacement and drags phase-correlation
//! peaks toward the grid.
//!
//! [`MultiTileSource`] is the volumetric analog of [`TileSource`]; thin
//! adapter views ([`PlaneSource`], [`MaxZSource`], [`CorrectedSource`])
//! lower it back onto the existing single-grid machinery, so phases 1–3
//! run unchanged. [`ChannelPlan`] + [`ChannelSession`] hold the policy and
//! the estimated fields; [`run_channel_plan`] is the sequential driver
//! (the scheduler-backed one lives in `stitch-sched`).

use std::path::PathBuf;
use std::sync::Arc;

use stitch_image::{
    tiff, FlatField, FlatFieldEstimator, Image, MultiChannelPlate, MultiGridManifest,
};

use crate::compose::{Blend, Composer};
use crate::fault::{FailurePolicy, SourceError, StitchError};
use crate::global_opt::{AbsolutePositions, GlobalOptimizer};
use crate::grid::GridShape;
use crate::source::TileSource;
use crate::stitcher::{StitchResult, Stitcher};
use crate::types::TileId;

/// A multi-channel z-stack tile grid: `channels × z_planes` images per
/// stage position, all sharing one grid geometry.
pub trait MultiTileSource: Send + Sync {
    /// Grid dimensions (stage positions).
    fn shape(&self) -> GridShape;
    /// Tile dimensions `(width, height)` — uniform across the acquisition.
    fn tile_dims(&self) -> (usize, usize);
    /// Number of channels (≥ 1).
    fn channels(&self) -> usize;
    /// Number of focal planes per channel (≥ 1).
    fn z_planes(&self) -> usize;
    /// Loads the image of `(channel, plane)` at grid position `id`.
    fn load_plane(
        &self,
        channel: usize,
        plane: usize,
        id: TileId,
    ) -> Result<Image<u16>, SourceError>;
}

/// Images rendered on demand from a [`MultiChannelPlate`] (ground-truth
/// access for tests).
pub struct MultiSyntheticSource {
    plate: MultiChannelPlate,
}

impl MultiSyntheticSource {
    /// Wraps a synthetic multi-channel plate.
    pub fn new(plate: MultiChannelPlate) -> MultiSyntheticSource {
        MultiSyntheticSource { plate }
    }

    /// The underlying plate (ground truth access).
    pub fn plate(&self) -> &MultiChannelPlate {
        &self.plate
    }
}

impl MultiTileSource for MultiSyntheticSource {
    fn shape(&self) -> GridShape {
        GridShape::new(self.plate.base().grid_rows, self.plate.base().grid_cols)
    }

    fn tile_dims(&self) -> (usize, usize) {
        (self.plate.base().tile_width, self.plate.base().tile_height)
    }

    fn channels(&self) -> usize {
        self.plate.channels()
    }

    fn z_planes(&self) -> usize {
        self.plate.z_planes()
    }

    fn load_plane(
        &self,
        channel: usize,
        plane: usize,
        id: TileId,
    ) -> Result<Image<u16>, SourceError> {
        Ok(self.plate.render_tile(channel, plane, id.row, id.col))
    }
}

/// Images read from a multi-channel dataset directory (see
/// [`MultiChannelPlate::write_to_dir`]); also opens legacy single-channel
/// datasets as one channel × one plane. Missing files are reported up
/// front, all at once, like [`DirSource`](crate::source::DirSource).
pub struct MultiDirSource {
    shape: GridShape,
    dims: (usize, usize),
    channels: usize,
    z_planes: usize,
    files: Vec<PathBuf>,
    truth: Vec<(i64, i64)>,
}

impl MultiDirSource {
    /// Opens a dataset directory, validating that every listed image file
    /// exists.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<MultiDirSource, SourceError> {
        let m = MultiGridManifest::load(dir).map_err(|e| SourceError::Manifest {
            detail: e.to_string(),
        })?;
        if m.files.is_empty() {
            return Err(SourceError::EmptyGrid);
        }
        let missing: Vec<String> = m
            .files
            .iter()
            .filter(|f| !f.is_file())
            .map(|f| f.display().to_string())
            .collect();
        if !missing.is_empty() {
            return Err(SourceError::MissingTiles { files: missing });
        }
        Ok(MultiDirSource {
            shape: GridShape::new(m.rows, m.cols),
            dims: (m.tile_width, m.tile_height),
            channels: m.channels,
            z_planes: m.z_planes,
            files: m.files,
            truth: m.truth,
        })
    }

    /// Ground-truth stage positions from the manifest (empty when unknown).
    pub fn truth(&self) -> &[(i64, i64)] {
        &self.truth
    }
}

impl MultiTileSource for MultiDirSource {
    fn shape(&self) -> GridShape {
        self.shape
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.dims
    }

    fn channels(&self) -> usize {
        self.channels
    }

    fn z_planes(&self) -> usize {
        self.z_planes
    }

    fn load_plane(
        &self,
        channel: usize,
        plane: usize,
        id: TileId,
    ) -> Result<Image<u16>, SourceError> {
        let idx = ((channel * self.z_planes + plane) * self.shape.rows + id.row) * self.shape.cols
            + id.col;
        let path = &self.files[idx];
        tiff::read_tiff(path).map_err(|e| SourceError::Io {
            id,
            detail: format!("{}: {e}", path.display()),
        })
    }
}

/// One `(channel, plane)` of a [`MultiTileSource`] as a plain
/// [`TileSource`]. Loads delegate directly, so the view returns literally
/// identical images — the basis of the replay bit-identity guarantee.
#[derive(Clone)]
pub struct PlaneSource {
    inner: Arc<dyn MultiTileSource>,
    channel: usize,
    plane: usize,
}

impl PlaneSource {
    /// A view of `channel` at `plane`. Panics if either is out of range.
    pub fn new(inner: Arc<dyn MultiTileSource>, channel: usize, plane: usize) -> PlaneSource {
        assert!(channel < inner.channels(), "channel {channel} out of range");
        assert!(plane < inner.z_planes(), "plane {plane} out of range");
        PlaneSource {
            inner,
            channel,
            plane,
        }
    }
}

impl TileSource for PlaneSource {
    fn shape(&self) -> GridShape {
        self.inner.shape()
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.inner.tile_dims()
    }

    fn load(&self, id: TileId) -> Result<Image<u16>, SourceError> {
        self.inner.load_plane(self.channel, self.plane, id)
    }
}

/// Per-pixel maximum projection across all focal planes of one channel —
/// the standard way to get one well-focused 2-D image out of a z-stack
/// for registration or preview.
#[derive(Clone)]
pub struct MaxZSource {
    inner: Arc<dyn MultiTileSource>,
    channel: usize,
}

impl MaxZSource {
    /// A max-z projection view of `channel`. Panics if out of range.
    pub fn new(inner: Arc<dyn MultiTileSource>, channel: usize) -> MaxZSource {
        assert!(channel < inner.channels(), "channel {channel} out of range");
        MaxZSource { inner, channel }
    }
}

impl TileSource for MaxZSource {
    fn shape(&self) -> GridShape {
        self.inner.shape()
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.inner.tile_dims()
    }

    fn load(&self, id: TileId) -> Result<Image<u16>, SourceError> {
        let mut acc = self.inner.load_plane(self.channel, 0, id)?;
        for plane in 1..self.inner.z_planes() {
            let next = self.inner.load_plane(self.channel, plane, id)?;
            for (a, &b) in acc.pixels_mut().iter_mut().zip(next.pixels()) {
                *a = (*a).max(b);
            }
        }
        Ok(acc)
    }
}

/// A flat-field-corrected view of a [`TileSource`]: every loaded tile is
/// divided by the channel's estimated illumination gain. Wrapping with the
/// identity field is a bit-exact no-op.
#[derive(Clone)]
pub struct CorrectedSource {
    inner: Arc<dyn TileSource>,
    flat: Arc<FlatField>,
}

impl CorrectedSource {
    /// Wraps `inner`, correcting with `flat`. Panics if the field was
    /// estimated for different tile dimensions.
    pub fn new(inner: Arc<dyn TileSource>, flat: Arc<FlatField>) -> CorrectedSource {
        assert_eq!(
            flat.dims(),
            inner.tile_dims(),
            "flat field dims must match tile dims"
        );
        CorrectedSource { inner, flat }
    }
}

impl TileSource for CorrectedSource {
    fn shape(&self) -> GridShape {
        self.inner.shape()
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.inner.tile_dims()
    }

    fn load(&self, id: TileId) -> Result<Image<u16>, SourceError> {
        Ok(self.flat.apply(&self.inner.load(id)?))
    }
}

/// How the z dimension is handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZMode {
    /// Register on one focal plane of the reference channel; compose every
    /// `(channel, plane)` separately.
    Stack,
    /// Register on the max-z projection of the reference channel; compose
    /// one max-z mosaic per channel.
    MaxProject,
}

/// One composition output of a channel run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComposeUnit {
    /// Channel index.
    pub channel: usize,
    /// Focal plane, or `None` for the channel's max-z projection.
    pub plane: Option<usize>,
}

impl ComposeUnit {
    /// Stable name fragment for output files and job names (`c00_z02`,
    /// `c01_maxz`).
    pub fn label(&self) -> String {
        match self.plane {
            Some(z) => format!("c{:02}_z{z:02}", self.channel),
            None => format!("c{:02}_maxz", self.channel),
        }
    }
}

/// Policy for a multi-channel run: where to register, how to handle z,
/// whether to flat-field correct.
#[derive(Clone, Debug)]
pub struct ChannelPlan {
    /// Channel whose images drive registration.
    pub reference_channel: usize,
    /// z handling (see [`ZMode`]).
    pub z_mode: ZMode,
    /// Focal plane used for registration in [`ZMode::Stack`]; `None`
    /// picks the middle plane (least expected defocus).
    pub registration_plane: Option<usize>,
    /// Estimate per-channel flat fields from the tile stack and correct
    /// every image before registration and composition.
    pub correct_illumination: bool,
}

impl Default for ChannelPlan {
    fn default() -> Self {
        ChannelPlan {
            reference_channel: 0,
            z_mode: ZMode::Stack,
            registration_plane: None,
            correct_illumination: false,
        }
    }
}

impl ChannelPlan {
    /// The plane [`ZMode::Stack`] registration reads.
    pub fn effective_registration_plane(&self, z_planes: usize) -> usize {
        self.registration_plane.unwrap_or(z_planes / 2)
    }

    /// Checks the plan against an acquisition's geometry.
    pub fn validate(&self, source: &dyn MultiTileSource) -> Result<(), StitchError> {
        let bad = |detail: String| StitchError::Pipeline { detail };
        if self.reference_channel >= source.channels() {
            return Err(bad(format!(
                "reference channel {} out of range (acquisition has {})",
                self.reference_channel,
                source.channels()
            )));
        }
        if let Some(z) = self.registration_plane {
            if z >= source.z_planes() {
                return Err(bad(format!(
                    "registration plane {z} out of range (acquisition has {})",
                    source.z_planes()
                )));
            }
        }
        Ok(())
    }

    /// The compose units this plan produces for an acquisition.
    pub fn units(&self, channels: usize, z_planes: usize) -> Vec<ComposeUnit> {
        match self.z_mode {
            ZMode::Stack => (0..channels)
                .flat_map(|ch| {
                    (0..z_planes).map(move |z| ComposeUnit {
                        channel: ch,
                        plane: Some(z),
                    })
                })
                .collect(),
            ZMode::MaxProject => (0..channels)
                .map(|ch| ComposeUnit {
                    channel: ch,
                    plane: None,
                })
                .collect(),
        }
    }
}

/// Estimates the flat field of one channel from its full tile stack
/// (every plane at every grid position).
pub fn estimate_channel_flat_field(
    source: &dyn MultiTileSource,
    channel: usize,
) -> Result<FlatField, StitchError> {
    let (w, h) = source.tile_dims();
    let shape = source.shape();
    let mut est = FlatFieldEstimator::new(w, h);
    for plane in 0..source.z_planes() {
        for id in shape.ids() {
            let tile = source
                .load_plane(channel, plane, id)
                .map_err(|error| StitchError::Tile { id, error })?;
            est.add(&tile);
        }
    }
    Ok(est.finish())
}

/// A validated plan bound to an acquisition, with per-channel flat fields
/// estimated once up front (the identity when correction is off).
pub struct ChannelSession {
    source: Arc<dyn MultiTileSource>,
    plan: ChannelPlan,
    flats: Vec<Arc<FlatField>>,
}

impl ChannelSession {
    /// Validates the plan and estimates flat fields.
    pub fn new(
        source: Arc<dyn MultiTileSource>,
        plan: ChannelPlan,
    ) -> Result<ChannelSession, StitchError> {
        plan.validate(source.as_ref())?;
        let (w, h) = source.tile_dims();
        let mut flats = Vec::with_capacity(source.channels());
        for ch in 0..source.channels() {
            let flat = if plan.correct_illumination {
                estimate_channel_flat_field(source.as_ref(), ch)?
            } else {
                FlatField::identity(w, h)
            };
            flats.push(Arc::new(flat));
        }
        Ok(ChannelSession {
            source,
            plan,
            flats,
        })
    }

    /// The plan this session runs.
    pub fn plan(&self) -> &ChannelPlan {
        &self.plan
    }

    /// The acquisition.
    pub fn source(&self) -> &Arc<dyn MultiTileSource> {
        &self.source
    }

    /// The estimated flat field of a channel.
    pub fn flat(&self, channel: usize) -> &Arc<FlatField> {
        &self.flats[channel]
    }

    /// The compose units of this run.
    pub fn units(&self) -> Vec<ComposeUnit> {
        self.plan
            .units(self.source.channels(), self.source.z_planes())
    }

    /// The single-grid source registration reads: the reference channel's
    /// registration plane ([`ZMode::Stack`]) or max-z projection
    /// ([`ZMode::MaxProject`]), flat-field corrected per the plan.
    pub fn registration_source(&self) -> Arc<dyn TileSource> {
        let unit = match self.plan.z_mode {
            ZMode::Stack => ComposeUnit {
                channel: self.plan.reference_channel,
                plane: Some(
                    self.plan
                        .effective_registration_plane(self.source.z_planes()),
                ),
            },
            ZMode::MaxProject => ComposeUnit {
                channel: self.plan.reference_channel,
                plane: None,
            },
        };
        self.unit_source(unit)
    }

    /// The single-grid source composing `unit` reads (corrected per the
    /// plan). Correction applies to the projected tile in max-z units,
    /// matching the registration input exactly.
    pub fn unit_source(&self, unit: ComposeUnit) -> Arc<dyn TileSource> {
        let base: Arc<dyn TileSource> = match unit.plane {
            Some(z) => Arc::new(PlaneSource::new(Arc::clone(&self.source), unit.channel, z)),
            None => Arc::new(MaxZSource::new(Arc::clone(&self.source), unit.channel)),
        };
        let flat = &self.flats[unit.channel];
        if flat.is_identity() {
            base
        } else {
            Arc::new(CorrectedSource::new(base, Arc::clone(flat)))
        }
    }
}

/// The output of a channel run: the reference registration, the solved
/// frame, and one mosaic per compose unit — all sharing the same
/// positions.
pub struct ChannelRun {
    /// Phase-1 output on the registration source.
    pub registration: StitchResult,
    /// The solved frame every unit is composed with.
    pub positions: AbsolutePositions,
    /// One mosaic per compose unit, in [`ChannelSession::units`] order.
    pub mosaics: Vec<(ComposeUnit, Image<u16>)>,
}

/// Sequential driver: register once on the session's reference source,
/// solve, and replay the frame across every compose unit. The
/// scheduler-backed equivalent lives in `stitch-sched`; both produce
/// bit-identical mosaics (proved by `stitch_testkit`'s channel
/// differential).
pub fn run_channel_plan(
    session: &ChannelSession,
    stitcher: &dyn Stitcher,
    blend: Blend,
) -> Result<ChannelRun, StitchError> {
    let reg = session.registration_source();
    let registration =
        stitcher.try_compute_displacements(reg.as_ref(), &FailurePolicy::default())?;
    let positions = GlobalOptimizer::default().solve(&registration);
    let mut mosaics = Vec::new();
    for unit in session.units() {
        let src = session.unit_source(unit);
        let mosaic = Composer::new(positions.clone(), blend).compose(src.as_ref());
        mosaics.push((unit, mosaic));
    }
    Ok(ChannelRun {
        registration,
        positions,
        mosaics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_cpu::SimpleCpuStitcher;
    use stitch_image::{MultiScanConfig, ScanConfig};

    fn small_source() -> Arc<dyn MultiTileSource> {
        let cfg = MultiScanConfig::for_channels(
            ScanConfig {
                grid_rows: 2,
                grid_cols: 3,
                tile_width: 48,
                tile_height: 36,
                ..ScanConfig::default()
            },
            2,
            3,
        );
        Arc::new(MultiSyntheticSource::new(MultiChannelPlate::generate(cfg)))
    }

    #[test]
    fn plane_view_is_bit_identical_to_direct_load() {
        let src = small_source();
        let view = PlaneSource::new(Arc::clone(&src), 1, 2);
        let id = TileId::new(1, 1);
        assert_eq!(
            view.load(id).unwrap(),
            src.load_plane(1, 2, id).unwrap(),
            "plane view must delegate bit-for-bit"
        );
    }

    #[test]
    fn maxz_is_pixelwise_upper_bound_of_planes() {
        let src = small_source();
        let proj = MaxZSource::new(Arc::clone(&src), 0)
            .load(TileId::new(0, 0))
            .unwrap();
        let mut expected = src.load_plane(0, 0, TileId::new(0, 0)).unwrap();
        for z in 1..src.z_planes() {
            let p = src.load_plane(0, z, TileId::new(0, 0)).unwrap();
            for (a, &b) in expected.pixels_mut().iter_mut().zip(p.pixels()) {
                *a = (*a).max(b);
            }
        }
        assert_eq!(proj, expected);
    }

    #[test]
    fn identity_correction_is_noop_and_skipped() {
        let src = small_source();
        let session = ChannelSession::new(
            Arc::clone(&src),
            ChannelPlan {
                correct_illumination: false,
                ..ChannelPlan::default()
            },
        )
        .unwrap();
        assert!(session.flat(0).is_identity());
        let unit = ComposeUnit {
            channel: 0,
            plane: Some(0),
        };
        let id = TileId::new(0, 1);
        assert_eq!(
            session.unit_source(unit).load(id).unwrap(),
            src.load_plane(0, 0, id).unwrap()
        );
    }

    #[test]
    fn plan_validation_rejects_out_of_range() {
        let src = small_source();
        let bad_ch = ChannelPlan {
            reference_channel: 9,
            ..ChannelPlan::default()
        };
        assert!(bad_ch.validate(src.as_ref()).is_err());
        let bad_z = ChannelPlan {
            registration_plane: Some(7),
            ..ChannelPlan::default()
        };
        assert!(bad_z.validate(src.as_ref()).is_err());
    }

    #[test]
    fn units_enumerate_stack_and_maxz() {
        let plan = ChannelPlan::default();
        assert_eq!(plan.units(2, 3).len(), 6);
        let maxz = ChannelPlan {
            z_mode: ZMode::MaxProject,
            ..ChannelPlan::default()
        };
        let units = maxz.units(2, 3);
        assert_eq!(units.len(), 2);
        assert!(units.iter().all(|u| u.plane.is_none()));
        assert_eq!(units[1].label(), "c01_maxz");
    }

    #[test]
    fn run_replays_one_frame_across_all_units() {
        let src = small_source();
        let session = ChannelSession::new(Arc::clone(&src), ChannelPlan::default()).unwrap();
        let run =
            run_channel_plan(&session, &SimpleCpuStitcher::default(), Blend::Overlay).unwrap();
        assert_eq!(run.mosaics.len(), 6);
        // every unit's mosaic equals a solo compose with the same frame
        for (unit, mosaic) in &run.mosaics {
            let solo = Composer::new(run.positions.clone(), Blend::Overlay)
                .compose(session.unit_source(*unit).as_ref());
            assert_eq!(mosaic, &solo, "unit {} diverged", unit.label());
        }
    }
}
