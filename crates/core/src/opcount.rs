//! Operation counters validating the paper's Table I cost model.
//!
//! Table I gives, for an `n × m` grid of `h × w` tiles:
//!
//! | operation  | count            | per-op cost     |
//! |------------|------------------|-----------------|
//! | Read       | `n·m`            | `h·w`           |
//! | FFT-2D     | `n·m`            | `h·w·log(h·w)`  |
//! | ⊗ (NCC)    | `2nm − n − m`    | `h·w`           |
//! | FFT-2D⁻¹   | `2nm − n − m`    | `h·w·log(h·w)`  |
//! | /max       | `2nm − n − m`    | `h·w`           |
//! | CCF₁..₄    | `2nm − n − m`    | `h·w`           |
//!
//! Every stitcher implementation threads an [`OpCounters`] through its
//! kernels; integration tests assert the observed counts equal the
//! formulas (baselines that recompute transforms legitimately exceed the
//! FFT row — that surplus *is* their inefficiency, and the Table I bench
//! prints both).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe operation tally.
#[derive(Default, Debug)]
pub struct OpCounters {
    reads: AtomicU64,
    forward_ffts: AtomicU64,
    elementwise_mults: AtomicU64,
    inverse_ffts: AtomicU64,
    max_reductions: AtomicU64,
    ccf_groups: AtomicU64,
}

impl OpCounters {
    /// A fresh shared counter set.
    pub fn new_shared() -> Arc<OpCounters> {
        Arc::new(OpCounters::default())
    }

    /// Records a tile read.
    pub fn count_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a forward 2-D FFT.
    pub fn count_forward_fft(&self) {
        self.forward_ffts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one element-wise normalized conjugate multiply (⊗).
    pub fn count_elementwise(&self) {
        self.elementwise_mults.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an inverse 2-D FFT.
    pub fn count_inverse_fft(&self) {
        self.inverse_ffts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a max reduction.
    pub fn count_max_reduction(&self) {
        self.max_reductions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one CCF₁..₄ candidate-disambiguation group.
    pub fn count_ccf_group(&self) {
        self.ccf_groups.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> OpCounts {
        OpCounts {
            reads: self.reads.load(Ordering::Relaxed),
            forward_ffts: self.forward_ffts.load(Ordering::Relaxed),
            elementwise_mults: self.elementwise_mults.load(Ordering::Relaxed),
            inverse_ffts: self.inverse_ffts.load(Ordering::Relaxed),
            max_reductions: self.max_reductions.load(Ordering::Relaxed),
            ccf_groups: self.ccf_groups.load(Ordering::Relaxed),
        }
    }
}

/// Immutable counter snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Tile reads.
    pub reads: u64,
    /// Forward 2-D FFTs.
    pub forward_ffts: u64,
    /// Element-wise NCC multiplies.
    pub elementwise_mults: u64,
    /// Inverse 2-D FFTs.
    pub inverse_ffts: u64,
    /// Max reductions.
    pub max_reductions: u64,
    /// CCF candidate groups.
    pub ccf_groups: u64,
}

impl OpCounts {
    /// The Table I prediction for an `n × m` grid (minimal-work
    /// implementations: transforms computed once per tile).
    pub fn predicted(rows: usize, cols: usize) -> OpCounts {
        let nm = (rows * cols) as u64;
        let pairs = if rows == 0 || cols == 0 {
            0
        } else {
            (2 * rows * cols - rows - cols) as u64
        };
        OpCounts {
            reads: nm,
            forward_ffts: nm,
            elementwise_mults: pairs,
            inverse_ffts: pairs,
            max_reductions: pairs,
            ccf_groups: pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_matches_table1_formulas() {
        let p = OpCounts::predicted(42, 59);
        assert_eq!(p.reads, 42 * 59);
        assert_eq!(p.forward_ffts, 42 * 59);
        let pairs = 2 * 42 * 59 - 42 - 59;
        assert_eq!(p.elementwise_mults, pairs);
        assert_eq!(p.inverse_ffts, pairs);
        assert_eq!(p.max_reductions, pairs);
        assert_eq!(p.ccf_groups, pairs);
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let c = OpCounters::new_shared();
        let mut hs = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            hs.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    c.count_read();
                    c.count_forward_fft();
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.reads, 400);
        assert_eq!(s.forward_ffts, 400);
        assert_eq!(s.ccf_groups, 0);
    }
}
