//! Failure model: fallible tile sources, deterministic fault injection,
//! retry policies, and per-tile health reporting.
//!
//! The paper's pipelines assume every tile read succeeds; at the 59×42
//! grid scale of the real instrument that assumption breaks — a stitching
//! run is exactly the kind of hours-long, I/O-heavy batch job that hits
//! transient NFS hiccups and the occasional corrupt tile on disk. This
//! module is the shared vocabulary for handling that:
//!
//! * [`SourceError`] — why a tile read failed, and whether retrying can
//!   help ([`SourceError::is_retryable`]).
//! * [`RetryPolicy`] / [`FailurePolicy`] — bounded retry with exponential
//!   backoff, a per-tile read deadline, and the partial-mosaic switch.
//! * [`load_with_retry`] — the one retry loop every stitcher shares.
//! * [`FaultSpec`] / [`FaultySource`] — deterministic, seeded fault
//!   injection wrapped around any [`TileSource`], for tests and the
//!   `--fault-spec` CLI flag.
//! * [`HealthReport`] / [`TileStatus`] — the per-tile outcome record that
//!   rides on every `StitchResult`.
//! * [`StitchError`] — the error a stitcher returns when degradation is
//!   not allowed.
//! * [`FaultTracker`] — thread-safe health accumulation shared by the
//!   concurrent stitcher variants.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use stitch_image::Image;

use crate::grid::GridShape;
use crate::source::TileSource;
use crate::types::TileId;

// ---------------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------------

/// Why a tile read failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceError {
    /// A transient I/O failure (e.g. an NFS hiccup); retrying may succeed.
    Transient {
        /// The tile whose read failed.
        id: TileId,
        /// Human-readable detail.
        detail: String,
    },
    /// The tile's bytes are permanently damaged; retrying cannot help.
    Corrupt {
        /// The damaged tile.
        id: TileId,
        /// Human-readable detail.
        detail: String,
    },
    /// A non-transient I/O error (file missing, permission denied, bad
    /// header); retrying cannot help.
    Io {
        /// The tile whose read failed.
        id: TileId,
        /// Human-readable detail.
        detail: String,
    },
    /// The per-tile read deadline elapsed before a read succeeded.
    DeadlineExceeded {
        /// The tile whose read timed out.
        id: TileId,
        /// The deadline that was exceeded.
        deadline: Duration,
    },
    /// A source was constructed over zero tiles.
    EmptyGrid,
    /// A dataset manifest could not be loaded or is inconsistent.
    Manifest {
        /// Human-readable detail.
        detail: String,
    },
    /// A directory source's manifest names tiles that are not on disk.
    MissingTiles {
        /// Every missing file, reported up front in one pass.
        files: Vec<String>,
    },
}

impl SourceError {
    /// True when a retry has a chance of succeeding.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SourceError::Transient { .. })
    }

    /// The tile this error is about, when there is one.
    pub fn tile(&self) -> Option<TileId> {
        match self {
            SourceError::Transient { id, .. }
            | SourceError::Corrupt { id, .. }
            | SourceError::Io { id, .. }
            | SourceError::DeadlineExceeded { id, .. } => Some(*id),
            SourceError::EmptyGrid
            | SourceError::Manifest { .. }
            | SourceError::MissingTiles { .. } => None,
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient { id, detail } => {
                write!(f, "transient read failure on tile {id}: {detail}")
            }
            SourceError::Corrupt { id, detail } => write!(f, "corrupt tile {id}: {detail}"),
            SourceError::Io { id, detail } => write!(f, "i/o error on tile {id}: {detail}"),
            SourceError::DeadlineExceeded { id, deadline } => {
                write!(f, "tile {id} read exceeded deadline of {deadline:?}")
            }
            SourceError::EmptyGrid => write!(f, "tile source contains no tiles"),
            SourceError::Manifest { detail } => write!(f, "dataset manifest error: {detail}"),
            SourceError::MissingTiles { files } => {
                write!(
                    f,
                    "manifest names {} missing file(s): {}",
                    files.len(),
                    files.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for SourceError {}

/// The error a stitcher returns when it cannot (or may not) produce a
/// complete result.
#[derive(Clone, Debug)]
pub enum StitchError {
    /// A tile failed permanently and partial output was not allowed.
    Tile {
        /// The failed tile.
        id: TileId,
        /// The underlying read failure.
        error: SourceError,
    },
    /// The pipeline infrastructure itself failed (e.g. a stage panicked).
    Pipeline {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::Tile { id, error } => {
                write!(f, "tile {id} failed and --allow-partial is off: {error}")
            }
            StitchError::Pipeline { detail } => write!(f, "pipeline failure: {detail}"),
        }
    }
}

impl std::error::Error for StitchError {}

// ---------------------------------------------------------------------------
// retry policy
// ---------------------------------------------------------------------------

/// Bounded retry with exponential backoff and an optional per-tile
/// deadline.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (so `max_retries + 1`
    /// attempts total).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock budget for all attempts on one tile. `None` = unbounded.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(250),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (first failure is final).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `retry` (1-based), doubled each
    /// time and capped at [`max_backoff`](RetryPolicy::max_backoff).
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        (self.backoff * factor).min(self.max_backoff)
    }
}

/// How a stitcher behaves when tiles fail.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FailurePolicy {
    /// Retry behavior for transient read failures.
    pub retry: RetryPolicy,
    /// When true, permanently failed tiles degrade the result to a
    /// partial mosaic; when false (default), the stitcher returns
    /// [`StitchError::Tile`] on the first permanent failure.
    pub allow_partial: bool,
}

impl FailurePolicy {
    /// A policy that tolerates failed tiles (partial-mosaic mode).
    pub fn partial() -> FailurePolicy {
        FailurePolicy {
            allow_partial: true,
            ..FailurePolicy::default()
        }
    }
}

/// Loads one tile under a retry policy. Returns the image and the number
/// of attempts made (1 = first try succeeded). Retries only
/// [retryable](SourceError::is_retryable) errors, sleeping the policy's
/// exponential backoff between attempts and giving up when the per-tile
/// deadline elapses.
pub fn load_with_retry(
    source: &dyn TileSource,
    id: TileId,
    policy: &RetryPolicy,
) -> Result<(Image<u16>, u32), SourceError> {
    let t0 = Instant::now();
    let mut attempt = 1u32;
    loop {
        match source.load(id) {
            Ok(img) => return Ok((img, attempt)),
            Err(e) if !e.is_retryable() => return Err(e),
            Err(e) => {
                if attempt > policy.max_retries {
                    return Err(e);
                }
                let pause = policy.backoff_for(attempt);
                if let Some(deadline) = policy.deadline {
                    if t0.elapsed() + pause >= deadline {
                        return Err(SourceError::DeadlineExceeded { id, deadline });
                    }
                }
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                attempt += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// deterministic fault injection
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, high-quality hash for deterministic fault decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Maps a hash to [0, 1).
fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic fault-injection plan for a [`FaultySource`].
///
/// Parsed from the CLI `--fault-spec` string: comma-separated
/// `key=value` entries, e.g.
/// `seed=42,transient=0.2,latency-ms=5,corrupt=0.1+2.3`.
/// Corrupt tiles are `row.col` coordinates joined by `+`. Keys starting
/// with `gpu-` are ignored here (the GPU crate parses those).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Probability in [0, 1] that any single read attempt fails
    /// transiently. Decisions are per `(tile, attempt)`, so retries
    /// re-roll deterministically.
    pub transient_rate: f64,
    /// Tiles that always fail with [`SourceError::Corrupt`].
    pub corrupt: Vec<TileId>,
    /// Extra latency injected into every read.
    pub latency: Duration,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec {
            seed: 1,
            transient_rate: 0.0,
            corrupt: Vec::new(),
            latency: Duration::ZERO,
        }
    }
}

impl FaultSpec {
    /// Parses the `--fault-spec` syntax (see the type docs). Unknown
    /// non-`gpu-` keys are an error so typos fail loudly.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut out = FaultSpec::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-spec entry '{part}' is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key.starts_with("gpu-") {
                continue; // GPU-side keys: parsed by stitch-gpu
            }
            match key {
                "seed" => {
                    out.seed = value
                        .parse()
                        .map_err(|_| format!("fault-spec seed '{value}' is not a u64"))?;
                }
                "transient" => {
                    let rate: f64 = value
                        .parse()
                        .map_err(|_| format!("fault-spec transient '{value}' is not a number"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fault-spec transient {rate} outside [0, 1]"));
                    }
                    out.transient_rate = rate;
                }
                "latency-ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("fault-spec latency-ms '{value}' is not a u64"))?;
                    out.latency = Duration::from_millis(ms);
                }
                "corrupt" => {
                    for coord in value.split('+').filter(|c| !c.is_empty()) {
                        let (r, c) = coord.split_once('.').ok_or_else(|| {
                            format!("fault-spec corrupt tile '{coord}' is not row.col")
                        })?;
                        let row = r
                            .parse()
                            .map_err(|_| format!("corrupt tile row '{r}' is not a number"))?;
                        let col = c
                            .parse()
                            .map_err(|_| format!("corrupt tile col '{c}' is not a number"))?;
                        out.corrupt.push(TileId::new(row, col));
                    }
                }
                _ => return Err(format!("unknown fault-spec key '{key}'")),
            }
        }
        Ok(out)
    }

    /// True when the spec injects nothing.
    pub fn is_noop(&self) -> bool {
        self.transient_rate == 0.0 && self.corrupt.is_empty() && self.latency.is_zero()
    }

    /// Deterministic decision: does attempt number `attempt` (1-based) on
    /// `id` fail transiently?
    fn transient_hit(&self, id: TileId, attempt: u32) -> bool {
        if self.transient_rate <= 0.0 {
            return false;
        }
        let key = self
            .seed
            .wrapping_mul(0x100000001b3)
            .wrapping_add((id.row as u64) << 40)
            .wrapping_add((id.col as u64) << 20)
            .wrapping_add(attempt as u64);
        unit(splitmix64(key)) < self.transient_rate
    }
}

/// Counters published by a [`FaultySource`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads that were allowed through to the inner source.
    pub delivered: u64,
    /// Injected transient failures.
    pub transient: u64,
    /// Injected corrupt-tile failures.
    pub corrupt: u64,
}

/// Wraps any [`TileSource`] and injects deterministic faults per
/// [`FaultSpec`]. Failure decisions depend only on `(seed, tile,
/// attempt-number)`, so a run with retries enabled is reproducible
/// bit-for-bit: the same attempts fail, the same retries succeed.
pub struct FaultySource<S> {
    inner: S,
    spec: FaultSpec,
    attempts: Mutex<HashMap<TileId, u32>>,
    stats: Mutex<FaultStats>,
}

impl<S: TileSource> FaultySource<S> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: S, spec: FaultSpec) -> FaultySource<S> {
        FaultySource {
            inner,
            spec,
            attempts: Mutex::new(HashMap::new()),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock()
    }
}

impl<S: TileSource> TileSource for FaultySource<S> {
    fn shape(&self) -> GridShape {
        self.inner.shape()
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.inner.tile_dims()
    }

    fn load(&self, id: TileId) -> Result<Image<u16>, SourceError> {
        let attempt = {
            let mut attempts = self.attempts.lock();
            let n = attempts.entry(id).or_insert(0);
            *n += 1;
            *n
        };
        if !self.spec.latency.is_zero() {
            std::thread::sleep(self.spec.latency);
        }
        if self.spec.corrupt.contains(&id) {
            self.stats.lock().corrupt += 1;
            return Err(SourceError::Corrupt {
                id,
                detail: "injected: permanently corrupt tile".to_string(),
            });
        }
        if self.spec.transient_hit(id, attempt) {
            self.stats.lock().transient += 1;
            return Err(SourceError::Transient {
                id,
                detail: format!("injected: transient i/o failure (attempt {attempt})"),
            });
        }
        self.stats.lock().delivered += 1;
        self.inner.load(id)
    }
}

// ---------------------------------------------------------------------------
// health reporting
// ---------------------------------------------------------------------------

/// The outcome of reading one tile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TileStatus {
    /// Read succeeded on the first attempt.
    Ok,
    /// Read succeeded after `attempts` tries (≥ 2).
    Recovered {
        /// Total attempts including the successful one.
        attempts: u32,
    },
    /// The tile is permanently unavailable.
    Failed {
        /// Rendered [`SourceError`].
        error: String,
    },
}

/// Per-tile health of a stitching run, attached to every `StitchResult`.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthReport {
    /// The grid the statuses index into (row-major, like the grid).
    pub shape: GridShape,
    /// One status per tile, indexed by `shape.index(id)`.
    pub tiles: Vec<TileStatus>,
    /// Total retries spent across all tiles.
    pub total_retries: u64,
}

impl HealthReport {
    /// All-healthy report for a grid.
    pub fn new(shape: GridShape) -> HealthReport {
        HealthReport {
            shape,
            tiles: vec![TileStatus::Ok; shape.rows * shape.cols],
            total_retries: 0,
        }
    }

    /// Tiles that are permanently failed.
    pub fn failed_tiles(&self) -> Vec<TileId> {
        self.iter_status(|s| matches!(s, TileStatus::Failed { .. }))
    }

    /// Tiles that needed at least one retry.
    pub fn recovered_tiles(&self) -> Vec<TileId> {
        self.iter_status(|s| matches!(s, TileStatus::Recovered { .. }))
    }

    fn iter_status(&self, pred: impl Fn(&TileStatus) -> bool) -> Vec<TileId> {
        let mut out = Vec::new();
        for r in 0..self.shape.rows {
            for c in 0..self.shape.cols {
                let id = TileId::new(r, c);
                if pred(&self.tiles[self.shape.index(id)]) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// True when at least one tile failed permanently.
    pub fn is_degraded(&self) -> bool {
        self.tiles
            .iter()
            .any(|s| matches!(s, TileStatus::Failed { .. }))
    }

    /// Status of one tile.
    pub fn status(&self, id: TileId) -> &TileStatus {
        &self.tiles[self.shape.index(id)]
    }

    /// Machine-readable failure summary (hand-rolled JSON; the offline
    /// build has no serde).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        let failed: Vec<String> = self
            .failed_tiles()
            .into_iter()
            .map(|id| {
                let err = match self.status(id) {
                    TileStatus::Failed { error } => error.clone(),
                    _ => unreachable!(),
                };
                format!(
                    "{{\"row\": {}, \"col\": {}, \"error\": \"{}\"}}",
                    id.row,
                    id.col,
                    esc(&err)
                )
            })
            .collect();
        let recovered: Vec<String> = self
            .recovered_tiles()
            .into_iter()
            .map(|id| {
                let attempts = match self.status(id) {
                    TileStatus::Recovered { attempts } => *attempts,
                    _ => unreachable!(),
                };
                format!(
                    "{{\"row\": {}, \"col\": {}, \"attempts\": {attempts}}}",
                    id.row, id.col
                )
            })
            .collect();
        format!(
            "{{\"rows\": {}, \"cols\": {}, \"total_tiles\": {}, \"failed\": [{}], \"recovered\": [{}], \"total_retries\": {}}}",
            self.shape.rows,
            self.shape.cols,
            self.shape.rows * self.shape.cols,
            failed.join(", "),
            recovered.join(", "),
            self.total_retries
        )
    }
}

/// Thread-safe accumulator for a [`HealthReport`], shared by the worker
/// threads of the concurrent stitcher variants.
pub struct FaultTracker {
    shape: GridShape,
    inner: Mutex<TrackerInner>,
}

struct TrackerInner {
    report: HealthReport,
    first_error: Option<SourceError>,
}

impl FaultTracker {
    /// All-healthy tracker for a grid.
    pub fn new(shape: GridShape) -> FaultTracker {
        FaultTracker {
            shape,
            inner: Mutex::new(TrackerInner {
                report: HealthReport::new(shape),
                first_error: None,
            }),
        }
    }

    /// Loads a tile through [`load_with_retry`], recording the outcome.
    /// `None` means the tile failed permanently (already recorded).
    pub fn load(
        &self,
        source: &dyn TileSource,
        id: TileId,
        policy: &RetryPolicy,
    ) -> Option<Image<u16>> {
        match load_with_retry(source, id, policy) {
            Ok((img, attempts)) => {
                if attempts > 1 {
                    self.record_recovered(id, attempts);
                }
                Some(img)
            }
            Err(e) => {
                self.record_failure(id, e);
                None
            }
        }
    }

    /// Records a successful read that needed retries.
    pub fn record_recovered(&self, id: TileId, attempts: u32) {
        let mut inner = self.inner.lock();
        let slot = self.shape.index(id);
        // a re-read (ghost rows in Mt-CPU) must not downgrade Failed
        if !matches!(inner.report.tiles[slot], TileStatus::Failed { .. }) {
            inner.report.tiles[slot] = TileStatus::Recovered { attempts };
        }
        inner.report.total_retries += (attempts - 1) as u64;
    }

    /// Records a permanent failure; the first error is kept for the
    /// `StitchError` when partial output is not allowed.
    pub fn record_failure(&self, id: TileId, error: SourceError) {
        let mut inner = self.inner.lock();
        let slot = self.shape.index(id);
        if !matches!(inner.report.tiles[slot], TileStatus::Failed { .. }) {
            inner.report.tiles[slot] = TileStatus::Failed {
                error: error.to_string(),
            };
        }
        if inner.first_error.is_none() {
            inner.first_error = Some(error);
        }
    }

    /// True when any tile has failed so far.
    pub fn any_failed(&self) -> bool {
        self.inner.lock().report.is_degraded()
    }

    /// Is this specific tile recorded as failed?
    pub fn is_failed(&self, id: TileId) -> bool {
        let inner = self.inner.lock();
        matches!(
            inner.report.tiles[self.shape.index(id)],
            TileStatus::Failed { .. }
        )
    }

    /// Consumes the tracker. Returns the health report and, under a
    /// non-partial policy with failures, the error the stitcher must
    /// return.
    pub fn finish(self, policy: &FailurePolicy) -> Result<HealthReport, StitchError> {
        let inner = self.inner.into_inner();
        if !policy.allow_partial {
            if let Some(error) = inner.first_error {
                let id = error.tile().unwrap_or(TileId::new(0, 0));
                return Err(StitchError::Tile { id, error });
            }
        }
        Ok(inner.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MemorySource;

    fn tiny_source(rows: usize, cols: usize) -> MemorySource {
        let tiles: Vec<Image<u16>> = (0..rows * cols)
            .map(|i| Image::from_fn(8, 6, move |x, y| (i * 100 + x * 7 + y * 3) as u16))
            .collect();
        MemorySource::new(GridShape::new(rows, cols), tiles)
    }

    #[test]
    fn spec_parse_round_trip() {
        let spec = FaultSpec::parse("seed=7,transient=0.25,latency-ms=2,corrupt=0.1+2.3").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.transient_rate, 0.25);
        assert_eq!(spec.latency, Duration::from_millis(2));
        assert_eq!(spec.corrupt, vec![TileId::new(0, 1), TileId::new(2, 3)]);
    }

    #[test]
    fn spec_parse_ignores_gpu_keys_rejects_typos() {
        assert!(FaultSpec::parse("gpu-h2d=0.5,gpu-oom=0.1")
            .unwrap()
            .is_noop());
        assert!(FaultSpec::parse("transeint=0.5").is_err());
        assert!(FaultSpec::parse("transient=1.5").is_err());
        assert!(FaultSpec::parse("corrupt=12").is_err());
        assert!(FaultSpec::parse("").unwrap().is_noop());
    }

    #[test]
    fn transient_decisions_are_deterministic_per_attempt() {
        let spec = FaultSpec {
            seed: 42,
            transient_rate: 0.5,
            ..FaultSpec::default()
        };
        let id = TileId::new(1, 2);
        let first: Vec<bool> = (1..=8).map(|a| spec.transient_hit(id, a)).collect();
        let second: Vec<bool> = (1..=8).map(|a| spec.transient_hit(id, a)).collect();
        assert_eq!(first, second);
        assert!(
            first.iter().any(|&b| b),
            "rate 0.5 over 8 attempts should hit"
        );
        assert!(
            !first.iter().all(|&b| b),
            "rate 0.5 over 8 attempts should miss too"
        );
    }

    #[test]
    fn faulty_source_injects_and_recovers() {
        let spec = FaultSpec {
            seed: 3,
            transient_rate: 0.4,
            ..FaultSpec::default()
        };
        let src = FaultySource::new(tiny_source(2, 2), spec);
        let policy = RetryPolicy {
            max_retries: 16,
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        for r in 0..2 {
            for c in 0..2 {
                let (img, _) = load_with_retry(&src, TileId::new(r, c), &policy).unwrap();
                assert_eq!(img.width(), 8);
            }
        }
        let stats = src.stats();
        assert_eq!(stats.delivered, 4);
        assert!(stats.transient > 0, "rate 0.4 over 4 tiles should inject");
    }

    #[test]
    fn corrupt_tile_is_not_retried() {
        let spec = FaultSpec {
            corrupt: vec![TileId::new(0, 1)],
            ..FaultSpec::default()
        };
        let src = FaultySource::new(tiny_source(1, 2), spec);
        let err = load_with_retry(&src, TileId::new(0, 1), &RetryPolicy::default()).unwrap_err();
        assert!(matches!(err, SourceError::Corrupt { .. }));
        assert_eq!(src.stats().corrupt, 1, "exactly one attempt, no retries");
        assert!(load_with_retry(&src, TileId::new(0, 0), &RetryPolicy::default()).is_ok());
    }

    #[test]
    fn retry_budget_is_bounded() {
        let spec = FaultSpec {
            transient_rate: 1.0,
            ..FaultSpec::default()
        };
        let src = FaultySource::new(tiny_source(1, 1), spec);
        let policy = RetryPolicy {
            max_retries: 3,
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let err = load_with_retry(&src, TileId::new(0, 0), &policy).unwrap_err();
        assert!(err.is_retryable(), "last error is the transient one");
        assert_eq!(src.stats().transient, 4, "1 attempt + 3 retries");
    }

    #[test]
    fn deadline_cuts_retries_short() {
        let spec = FaultSpec {
            transient_rate: 1.0,
            ..FaultSpec::default()
        };
        let src = FaultySource::new(tiny_source(1, 1), spec);
        let policy = RetryPolicy {
            max_retries: 1000,
            backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(20),
            deadline: Some(Duration::from_millis(50)),
        };
        let t0 = Instant::now();
        let err = load_with_retry(&src, TileId::new(0, 0), &policy).unwrap_err();
        assert!(matches!(err, SourceError::DeadlineExceeded { .. }));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "deadline must bound time"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(6),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(1));
        assert_eq!(p.backoff_for(2), Duration::from_millis(2));
        assert_eq!(p.backoff_for(3), Duration::from_millis(4));
        assert_eq!(p.backoff_for(4), Duration::from_millis(6));
        assert_eq!(p.backoff_for(30), Duration::from_millis(6));
    }

    #[test]
    fn tracker_builds_report_and_first_error() {
        let shape = GridShape::new(2, 2);
        let tracker = FaultTracker::new(shape);
        tracker.record_recovered(TileId::new(0, 0), 3);
        tracker.record_failure(
            TileId::new(1, 1),
            SourceError::Corrupt {
                id: TileId::new(1, 1),
                detail: "bad".into(),
            },
        );
        assert!(tracker.any_failed());
        assert!(tracker.is_failed(TileId::new(1, 1)));
        assert!(!tracker.is_failed(TileId::new(0, 0)));

        // partial allowed → report comes back degraded
        let report = tracker.finish(&FailurePolicy::partial()).unwrap();
        assert!(report.is_degraded());
        assert_eq!(report.failed_tiles(), vec![TileId::new(1, 1)]);
        assert_eq!(report.recovered_tiles(), vec![TileId::new(0, 0)]);
        assert_eq!(report.total_retries, 2);
        let json = report.to_json();
        assert!(
            json.contains("\"failed\": [{\"row\": 1, \"col\": 1"),
            "{json}"
        );

        // partial not allowed → the error surfaces
        let strict = FaultTracker::new(shape);
        strict.record_failure(
            TileId::new(0, 1),
            SourceError::Io {
                id: TileId::new(0, 1),
                detail: "gone".into(),
            },
        );
        match strict.finish(&FailurePolicy::default()) {
            Err(StitchError::Tile { id, .. }) => assert_eq!(id, TileId::new(0, 1)),
            other => panic!("expected Tile error, got {other:?}"),
        }
    }

    #[test]
    fn healthy_report_json_is_clean() {
        let report = HealthReport::new(GridShape::new(1, 2));
        assert!(!report.is_degraded());
        assert!(report.to_json().contains("\"failed\": []"));
    }
}
