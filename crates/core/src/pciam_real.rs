//! Real-to-complex PCIAM — the paper's §VI-A optimization, implemented.
//!
//! "The second optimization (using real to complex FFTs) will further
//! improve performance by doing less work; it will also reduce the
//! computation's memory footprint."
//!
//! Microscopy tiles are real, so their spectra are Hermitian and only
//! `(w/2+1)·h` bins are independent. The whole of Fig 2 survives on the
//! half-spectrum:
//!
//! * forward transforms: r2c, half the memory, nearly half the work;
//! * NCC: the element-wise normalized product of two Hermitian spectra is
//!   itself Hermitian, so computing it on the half-spectrum loses nothing;
//! * inverse transform: a Hermitian spectrum inverts through c2r straight
//!   to the *real* correlation surface;
//! * peak search and CCF disambiguation proceed exactly as before.
//!
//! [`Correlator`] wraps the complex and real paths behind one interface so
//! the stitcher implementations can switch with a config flag.

use std::sync::Arc;

use stitch_fft::{Planner, RealFft2d, C64};
use stitch_image::Image;

use crate::hostpool::{PooledSpectrum, SpectrumPool};
use crate::opcount::OpCounters;
use crate::pciam::{resolve_peaks_oriented_into, PairScratch, PciamContext, DEFAULT_PEAK_COUNT};
use crate::pciam_padded::PaddedPciamContext;
use crate::types::{Displacement, PairKind};

/// Chebyshev radius for top-K peak suppression (kept in sync with the
/// complex path).
const PEAK_SUPPRESSION_RADIUS: i64 = 2;

/// Per-thread context for half-spectrum PCIAM computations.
pub struct RealPciamContext {
    width: usize,
    height: usize,
    fft: RealFft2d,
    /// NCC workspace: half-spectrum.
    work: Vec<C64>,
    /// Real correlation surface, `width × height`.
    surface: Vec<f64>,
    /// Reusable real-input staging for the r2c transform.
    real_in: Vec<f64>,
    pool: SpectrumPool,
    pair: PairScratch,
    counters: Arc<OpCounters>,
}

impl RealPciamContext {
    /// Builds a context for `width × height` tiles with a private
    /// spectrum pool.
    pub fn new(planner: &Planner, width: usize, height: usize, counters: Arc<OpCounters>) -> Self {
        let pool = SpectrumPool::new(stitch_fft::real::spectrum_len(width) * height);
        Self::with_pool(planner, width, height, counters, pool)
    }

    /// Like [`RealPciamContext::new`] but recycling half-spectra through
    /// a shared pool.
    pub fn with_pool(
        planner: &Planner,
        width: usize,
        height: usize,
        counters: Arc<OpCounters>,
        pool: SpectrumPool,
    ) -> Self {
        let fft = RealFft2d::new(planner, width, height);
        let spectrum_len = fft.spectrum_len();
        assert_eq!(pool.buf_len(), spectrum_len, "pool sized for other tiles");
        RealPciamContext {
            width,
            height,
            fft,
            work: vec![C64::ZERO; spectrum_len],
            surface: vec![0.0; width * height],
            real_in: vec![0.0; width * height],
            pool,
            pair: PairScratch::default(),
            counters,
        }
    }

    /// Tile width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Tile height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Length of the half-spectrum this context produces.
    pub fn spectrum_len(&self) -> usize {
        self.fft.spectrum_len()
    }

    /// The r2c forward transform of a tile — `(w/2+1)·h` complex bins,
    /// half the footprint of the complex path's `w·h`. The spectrum's
    /// storage is recycled through the context's pool.
    pub fn forward_fft(&mut self, img: &Image<u16>) -> PooledSpectrum {
        assert_eq!(img.dims(), (self.width, self.height), "tile dims mismatch");
        for (r, &p) in self.real_in.iter_mut().zip(img.pixels()) {
            *r = p as f64;
        }
        let mut spec = self.pool.acquire();
        self.fft.forward(&self.real_in, &mut spec);
        self.counters.count_forward_fft();
        spec
    }

    /// NCC on the half-spectrum, c2r inverse, top-`k` peak extraction over
    /// the real correlation surface. Peak indices address the full
    /// `width × height` surface, exactly like the complex path.
    pub fn correlation_peaks(&mut self, fa: &[C64], fb: &[C64], k: usize) -> Vec<(usize, f64)> {
        self.correlation_peaks_into(fa, fb, k);
        self.pair.peaks.clone()
    }

    /// Allocation-free core of [`RealPciamContext::correlation_peaks`]:
    /// the result lands in `self.pair.peaks`.
    fn correlation_peaks_into(&mut self, fa: &[C64], fb: &[C64], k: usize) {
        let sl = self.spectrum_len();
        assert_eq!(fa.len(), sl);
        assert_eq!(fb.len(), sl);
        // Unfused: the real path's column transform gathers/scatters
        // through the half-spectrum layout, so there is no cache-hot row
        // pass to fuse into. The NCC itself still goes through the
        // process-wide backend.
        stitch_fft::backend::active().ncc(fa, fb, &mut self.work);
        self.counters.count_elementwise();
        self.fft.inverse(&self.work, &mut self.surface);
        self.counters.count_inverse_fft();
        top_real_peaks_into(
            &self.surface,
            self.width,
            k,
            &mut self.pair.cand,
            &mut self.pair.peaks,
        );
        self.counters.count_max_reduction();
    }

    /// Full pair computation with the scan-geometry constraint (see
    /// [`PciamContext::displacement_oriented`]).
    pub fn displacement_oriented(
        &mut self,
        fa: &[C64],
        fb: &[C64],
        img_a: &Image<u16>,
        img_b: &Image<u16>,
        kind: Option<PairKind>,
    ) -> Displacement {
        self.correlation_peaks_into(fa, fb, DEFAULT_PEAK_COUNT);
        self.pair.indices.clear();
        self.pair
            .indices
            .extend(self.pair.peaks.iter().map(|&(i, _)| i));
        let d = resolve_peaks_oriented_into(
            &self.pair.indices,
            self.width,
            self.height,
            img_a,
            img_b,
            kind,
            &mut self.pair.scored,
        );
        self.counters.count_ccf_group();
        d
    }
}

/// Top-`k` |·| maxima of a real surface with Chebyshev suppression —
/// the f64 twin of the complex path's peak extraction. `cand`/`out` are
/// reusable buffers, cleared on entry.
fn top_real_peaks_into(
    data: &[f64],
    width: usize,
    k: usize,
    cand: &mut Vec<(usize, f64)>,
    out: &mut Vec<(usize, f64)>,
) {
    let gather = (4 * k).max(16);
    cand.clear();
    cand.reserve(gather + 1);
    let mut floor = f64::MIN;
    for (i, &v) in data.iter().enumerate() {
        let m = v.abs();
        if m <= floor {
            continue;
        }
        let pos = cand.partition_point(|&(_, cm)| cm >= m);
        cand.insert(pos, (i, m));
        if cand.len() > gather {
            cand.pop();
            floor = cand.last().unwrap().1;
        }
    }
    out.clear();
    out.reserve(k.min(gather));
    'cands: for &(i, m) in cand.iter() {
        let (x, y) = ((i % width) as i64, (i / width) as i64);
        for &(j, _) in out.iter() {
            let (px, py) = ((j % width) as i64, (j / width) as i64);
            if (x - px).abs() <= PEAK_SUPPRESSION_RADIUS
                && (y - py).abs() <= PEAK_SUPPRESSION_RADIUS
            {
                continue 'cands;
            }
        }
        out.push((i, m));
        if out.len() == k {
            break;
        }
    }
}

#[cfg(test)]
fn top_real_peaks(data: &[f64], width: usize, k: usize) -> Vec<(usize, f64)> {
    let mut cand = Vec::new();
    let mut out = Vec::new();
    top_real_peaks_into(data, width, k, &mut cand, &mut out);
    out
}

/// Which transform path phase 1 uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TransformKind {
    /// Full complex-to-complex transforms (the paper's implementation).
    #[default]
    Complex,
    /// Real-to-complex half-spectrum transforms (§VI-A future work).
    Real,
    /// Complex transforms on mean-padded 7-smooth tiles (§VI-A future
    /// work — faster radix schedules at a few % more pixels).
    PaddedComplex,
}

/// A transform-path-agnostic PCIAM context: the stitcher implementations
/// hold one of these and switch paths by configuration.
pub enum Correlator {
    /// Complex path.
    Complex(PciamContext),
    /// Half-spectrum path.
    Real(RealPciamContext),
    /// Padded-complex path.
    Padded(PaddedPciamContext),
}

impl Correlator {
    /// Builds the requested path with a private spectrum pool.
    pub fn new(
        kind: TransformKind,
        planner: &Planner,
        width: usize,
        height: usize,
        counters: Arc<OpCounters>,
    ) -> Correlator {
        let pool = Correlator::spectrum_pool(kind, width, height);
        Correlator::with_pool(kind, planner, width, height, counters, pool)
    }

    /// Builds the requested path over a shared [`SpectrumPool`] (sized by
    /// [`Correlator::spectrum_pool`] for the same kind and dims), so
    /// multiple per-thread correlators recycle one set of buffers.
    pub fn with_pool(
        kind: TransformKind,
        planner: &Planner,
        width: usize,
        height: usize,
        counters: Arc<OpCounters>,
        pool: SpectrumPool,
    ) -> Correlator {
        match kind {
            TransformKind::Complex => Correlator::Complex(PciamContext::with_pool(
                planner, width, height, counters, pool,
            )),
            TransformKind::Real => Correlator::Real(RealPciamContext::with_pool(
                planner, width, height, counters, pool,
            )),
            TransformKind::PaddedComplex => Correlator::Padded(PaddedPciamContext::with_pool(
                planner, width, height, counters, pool,
            )),
        }
    }

    /// A pool correctly sized for `kind`'s spectra over `width × height`
    /// tiles: full `w·h` bins for the complex path, the reduced
    /// `(w/2+1)·h` for the real path, the 7-smooth padded area for the
    /// padded path.
    pub fn spectrum_pool(kind: TransformKind, width: usize, height: usize) -> SpectrumPool {
        SpectrumPool::new(Correlator::spectrum_len(kind, width, height))
    }

    /// Element count of one spectrum buffer for `kind` over
    /// `width × height` tiles — the `buf_len` an externally owned
    /// [`SpectrumPool`] must be built with to be shareable with this
    /// correlator (the batch scheduler sizes per-job quota pools from
    /// this).
    pub fn spectrum_len(kind: TransformKind, width: usize, height: usize) -> usize {
        match kind {
            TransformKind::Complex => width * height,
            TransformKind::Real => stitch_fft::real::spectrum_len(width) * height,
            TransformKind::PaddedComplex => {
                let (pw, ph) = PaddedPciamContext::padded_dims_for(width, height);
                pw * ph
            }
        }
    }

    /// Forward transform of a tile (full or half spectrum by path). The
    /// returned buffer's storage recycles through the correlator's pool.
    pub fn forward_fft(&mut self, img: &Image<u16>) -> PooledSpectrum {
        match self {
            Correlator::Complex(c) => c.forward_fft(img),
            Correlator::Real(r) => r.forward_fft(img),
            Correlator::Padded(p) => p.forward_fft(img),
        }
    }

    /// Pair displacement with the scan-geometry constraint.
    pub fn displacement_oriented(
        &mut self,
        fa: &[C64],
        fb: &[C64],
        img_a: &Image<u16>,
        img_b: &Image<u16>,
        kind: Option<PairKind>,
    ) -> Displacement {
        match self {
            Correlator::Complex(c) => c.displacement_oriented(fa, fb, img_a, img_b, kind),
            Correlator::Real(r) => r.displacement_oriented(fa, fb, img_a, img_b, kind),
            Correlator::Padded(p) => p.displacement_oriented(fa, fb, img_a, img_b, kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_image::{Scene, SceneParams};

    fn scene_pair(w: usize, h: usize, dx: i64, dy: i64) -> (Image<u16>, Image<u16>) {
        let scene = Scene::generate(
            w as f64 * 3.0,
            h as f64 * 3.0,
            SceneParams {
                colony_count: 24,
                seed: 4242,
                ..SceneParams::default()
            },
        );
        let a = scene.render_region(w as f64, h as f64, w, h, 0.02, 30.0, 1);
        let b = scene.render_region(
            w as f64 + dx as f64,
            h as f64 + dy as f64,
            w,
            h,
            0.02,
            30.0,
            2,
        );
        (a, b)
    }

    #[test]
    fn real_path_recovers_shift() {
        let (w, h) = (96usize, 64usize);
        let (a, b) = scene_pair(w, h, 70, 3);
        let mut ctx = RealPciamContext::new(&Planner::default(), w, h, OpCounters::new_shared());
        let fa = ctx.forward_fft(&a);
        let fb = ctx.forward_fft(&b);
        let d = ctx.displacement_oriented(&fa, &fb, &a, &b, Some(PairKind::West));
        assert_eq!((d.x, d.y), (70, 3));
    }

    #[test]
    fn real_and_complex_paths_agree() {
        let (w, h) = (64usize, 48usize);
        let planner = Planner::default();
        for (dx, dy) in [(45i64, 2i64), (48, -3), (40, 0)] {
            let (a, b) = scene_pair(w, h, dx, dy);
            let mut cc = PciamContext::new(&planner, w, h, OpCounters::new_shared());
            let fa = cc.forward_fft(&a);
            let fb = cc.forward_fft(&b);
            let d_complex = cc.displacement_oriented(&fa, &fb, &a, &b, Some(PairKind::West));
            let mut rc = RealPciamContext::new(&planner, w, h, OpCounters::new_shared());
            let ra = rc.forward_fft(&a);
            let rb = rc.forward_fft(&b);
            let d_real = rc.displacement_oriented(&ra, &rb, &a, &b, Some(PairKind::West));
            assert_eq!(
                (d_real.x, d_real.y),
                (d_complex.x, d_complex.y),
                "({dx},{dy})"
            );
            assert!((d_real.correlation - d_complex.correlation).abs() < 1e-9);
        }
    }

    #[test]
    fn half_spectrum_is_smaller() {
        let ctx = RealPciamContext::new(&Planner::default(), 96, 64, OpCounters::new_shared());
        assert_eq!(ctx.spectrum_len(), (96 / 2 + 1) * 64);
        assert!(ctx.spectrum_len() < 96 * 64);
    }

    #[test]
    fn correlator_switches_paths() {
        let (w, h) = (64usize, 48usize);
        let (a, b) = scene_pair(w, h, 44, 1);
        let planner = Planner::default();
        let mut results = Vec::new();
        for kind in [TransformKind::Complex, TransformKind::Real] {
            let mut c = Correlator::new(kind, &planner, w, h, OpCounters::new_shared());
            let fa = c.forward_fft(&a);
            let fb = c.forward_fft(&b);
            results.push(c.displacement_oriented(&fa, &fb, &a, &b, Some(PairKind::West)));
        }
        assert_eq!((results[0].x, results[0].y), (results[1].x, results[1].y));
        assert_eq!((results[0].x, results[0].y), (44, 1));
    }

    #[test]
    fn top_real_peaks_suppression() {
        let mut data = vec![0.0; 100]; // 10x10
        data[5 * 10 + 5] = 10.0;
        data[5 * 10 + 6] = 9.0; // within radius — suppressed
        data[10 + 1] = 8.0;
        let peaks = top_real_peaks(&data, 10, 3);
        assert_eq!(peaks[0].0, 55);
        assert_eq!(peaks[1].0, 11);
    }
}
