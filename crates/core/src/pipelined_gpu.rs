//! Pipelined-GPU: the paper's contribution (§IV-B, Fig 8).
//!
//! One six-stage execution pipeline per GPU:
//!
//! ```text
//! Q01→[read]→Q12→[copier]→Q23→[FFT]→Q34→[BK]→Q45→[Disp]→Q56→[CCF ×N]
//! ```
//!
//! 1. **read** — one thread reads image tiles from the source;
//! 2. **copier** — one thread owns the *copy* stream: leases a transform
//!    buffer from the device pool (blocking — this is the back-pressure
//!    that keeps the pipeline inside GPU memory), uploads the tile
//!    asynchronously, runs the widening kernel, records an event;
//! 3. **FFT** — one thread owns the *fft* stream: waits on the copy event
//!    and launches the 2-D transform ("the pipeline architecture handles
//!    [Fermi's cuFFT serialization] by launching one such computation at a
//!    time" — our device enforces it with its FFT lock);
//! 4. **BK** — one bookkeeping thread resolves dependencies and advances
//!    ready pairs; it decrements per-tile reference counts and recycles
//!    device buffers at zero;
//! 5. **Disp** — one thread owns the *disp* stream: NCC kernel, inverse
//!    FFT, max reduction; only the reduction's scalar result crosses back
//!    to the host;
//! 6. **CCF** — `ccf_threads` host threads, *shared by every pipeline*
//!    (Fig 8 draws each pipeline's Q56 into one CCF stage), disambiguate
//!    the peak with cross-correlation factors and write the final
//!    displacement.
//!
//! Multiple GPUs: the grid is decomposed spatially into column bands, one
//! pipeline per device. A pipeline also reads and transforms the *ghost*
//! column just west of its band so boundary west-pairs need no
//! cross-device traffic (the paper defers peer-to-peer copies to future
//! work).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use stitch_fft::{Direction, C64};
use stitch_gpu::{Device, Event, PooledBuffer};
use stitch_image::Image;
use stitch_trace::TraceHandle;

use crate::fault::{FailurePolicy, FaultTracker, StitchError};
use crate::grid::{GridShape, Traversal};
use crate::opcount::OpCounters;
use crate::pciam::{resolve_peaks_oriented_into, DEFAULT_PEAK_COUNT};
use crate::source::TileSource;
use crate::stitcher::{StitchResult, Stitcher};
use crate::types::{PairKind, TileId};
use stitch_pipeline::Queue;

/// Configuration for the GPU pipeline.
#[derive(Clone, Debug)]
pub struct PipelinedGpuConfig {
    /// CCF (stage 6) host threads, shared across all pipelines ("based on
    /// the number of available CPU cores").
    pub ccf_threads: usize,
    /// Transform-pool buffers per device; `None` sizes from the grid
    /// partition.
    pub pool_size: Option<usize>,
    /// Traversal order within each partition.
    pub traversal: Traversal,
    /// How boundary-column transforms reach the neighboring pipeline in
    /// multi-GPU runs.
    pub ghost_mode: GhostMode,
}

/// Boundary handling between per-GPU column bands.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GhostMode {
    /// Each pipeline re-reads and re-transforms the column west of its
    /// band (simple, no cross-device traffic; one extra column of work
    /// per GPU).
    #[default]
    Recompute,
    /// The owning pipeline exports its boundary transforms and the
    /// eastern neighbor copies them device-to-device — the peer-to-peer
    /// scheme the paper lists as future work for >2-GPU machines (§VI-A:
    /// "extracting performance from such a machine will require
    /// peer-to-peer copies between the various cards").
    PeerToPeer,
}

impl Default for PipelinedGpuConfig {
    fn default() -> Self {
        PipelinedGpuConfig {
            ccf_threads: 4,
            pool_size: None,
            traversal: Traversal::ChainedDiagonal,
            ghost_mode: GhostMode::Recompute,
        }
    }
}

/// The multi-GPU pipelined stitcher.
pub struct PipelinedGpuStitcher {
    devices: Vec<Device>,
    config: PipelinedGpuConfig,
    trace: TraceHandle,
}

/// Stage 1 → 2 payload.
struct ReadTile {
    id: TileId,
    payload: ReadPayload,
}

enum ReadPayload {
    /// Freshly read pixels.
    Img(Arc<Image<u16>>),
    /// Peer-to-peer ghost tile: the copier fetches the image and the
    /// transform from the neighboring pipeline's export table.
    Import,
    /// The tile could not be read; downstream stages pass the notice on
    /// so bookkeeping can write its pairs off.
    Failed,
}

/// A boundary transform published for the eastern neighbor pipeline.
struct ExportedTile {
    img: Arc<Image<u16>>,
    buf: Arc<PooledBuffer<C64>>,
    transformed: Event,
}

/// Cross-pipeline hand-off of boundary-column transforms (peer-to-peer
/// ghost mode). Consumers block until the producer publishes. A `None`
/// slot means the owner failed to produce that tile — publishing the
/// failure (instead of nothing) is what keeps the importer from blocking
/// forever on a tile that will never exist.
#[derive(Default)]
struct ExportTable {
    slots: Mutex<HashMap<TileId, Option<ExportedTile>>>,
    cv: parking_lot::Condvar,
}

impl ExportTable {
    fn publish(&self, id: TileId, tile: Option<ExportedTile>) {
        self.slots.lock().insert(id, tile);
        self.cv.notify_all();
    }

    /// Blocking take: removes and returns the export for `id` (`None` if
    /// the owning pipeline could not read the tile).
    fn take(&self, id: TileId) -> Option<ExportedTile> {
        let mut slots = self.slots.lock();
        loop {
            if let Some(t) = slots.remove(&id) {
                return t;
            }
            self.cv.wait(&mut slots);
        }
    }
}

/// Stage 2 → 3 payload.
enum CopiedMsg {
    Tile(CopiedTile),
    Failed(TileId),
}

/// Stage 3 → 4 payload.
enum TransformedMsg {
    Tile(TransformedTile),
    Failed(TileId),
}

/// Tile resident on the device.
struct CopiedTile {
    id: TileId,
    img: Arc<Image<u16>>,
    buf: Arc<PooledBuffer<C64>>,
    copied: Event,
    /// True when the buffer already holds the *transform* (peer-to-peer
    /// ghost import) — stage 3 passes it through without another FFT.
    already_transformed: bool,
}

/// A tile whose forward transform is on the device.
struct TransformedTile {
    id: TileId,
    img: Arc<Image<u16>>,
    buf: Arc<PooledBuffer<C64>>,
    transformed: Event,
}

/// Stage 4 → 5 payload: both transforms ready.
struct PairTask {
    a: TransformedShare,
    b: TransformedShare,
    kind: PairKind,
    slot: usize,
}

#[derive(Clone)]
struct TransformedShare {
    img: Arc<Image<u16>>,
    buf: Arc<PooledBuffer<C64>>,
    transformed: Event,
}

/// Stage 5 → 6 payload: reduction scalars back on the host.
struct CcfTask {
    peaks: Vec<usize>,
    img_a: Arc<Image<u16>>,
    img_b: Arc<Image<u16>>,
    kind: PairKind,
    slot: usize,
}

struct BookEntry {
    share: TransformedShare,
    remaining: usize,
}

/// One device's slice of the grid: owned columns `[col_lo, col_hi)` plus
/// the ghost column `col_lo − 1` it must also transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Partition {
    col_lo: usize,
    col_hi: usize,
}

impl Partition {
    fn read_lo(&self) -> usize {
        self.col_lo.saturating_sub(1)
    }

    /// Tiles this pipeline reads/transforms (owned + ghost).
    fn reads(&self, id: TileId) -> bool {
        id.col >= self.read_lo() && id.col < self.col_hi
    }

    /// Pairs this pipeline computes: those whose *second* tile is owned.
    fn owns_pair(&self, b: TileId) -> bool {
        b.col >= self.col_lo && b.col < self.col_hi
    }

    /// Reference count of `id` within this pipeline: the number of owned
    /// pairs it participates in.
    fn refcount(&self, shape: GridShape, id: TileId) -> usize {
        let mut n = 0;
        // as the second tile of its own west/north pairs
        if self.owns_pair(id) {
            if shape.west(id).is_some() {
                n += 1;
            }
            if shape.north(id).is_some() {
                n += 1;
            }
        }
        // as the first tile of a pair owned here
        if let Some(east) = shape.east(id) {
            if self.owns_pair(east) {
                n += 1;
            }
        }
        if let Some(south) = shape.south(id) {
            if self.owns_pair(south) {
                n += 1;
            }
        }
        n
    }
}

/// Splits `cols` into `parts` contiguous bands.
fn column_bands(cols: usize, parts: usize) -> Vec<Partition> {
    let parts = parts.min(cols).max(1);
    let base = cols / parts;
    let extra = cols % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(Partition {
            col_lo: start,
            col_hi: start + len,
        });
        start += len;
    }
    out
}

impl PipelinedGpuStitcher {
    /// Creates a pipelined stitcher over `devices` (one pipeline each).
    pub fn new(devices: Vec<Device>, config: PipelinedGpuConfig) -> PipelinedGpuStitcher {
        assert!(!devices.is_empty(), "need at least one device");
        assert!(config.ccf_threads >= 1);
        PipelinedGpuStitcher {
            devices,
            config,
            trace: TraceHandle::disabled(),
        }
    }

    /// Single-device convenience.
    pub fn single(device: Device) -> PipelinedGpuStitcher {
        PipelinedGpuStitcher::new(vec![device], PipelinedGpuConfig::default())
    }

    /// Records host-side stage spans (tracks `"pipe{id}/read"` …
    /// `"pipe{id}/disp"`, CCF workers on `"ccf.{i}"`), per-queue
    /// occupancy stats, and — at the end of the run — each device
    /// profiler's H2D/D2H/kernel/sync spans on the same clock (tracks
    /// `"gpu{id}/{stream}"`).
    pub fn with_trace(mut self, trace: TraceHandle) -> PipelinedGpuStitcher {
        self.trace = trace;
        self
    }

    /// Number of pipelines (devices).
    pub fn gpu_count(&self) -> usize {
        self.devices.len()
    }

    #[allow(clippy::too_many_arguments)]
    fn run_pipeline<'scope, 'env>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        device: &'env Device,
        partition: Partition,
        source: &'env dyn TileSource,
        shape: GridShape,
        counters: &'env Arc<OpCounters>,
        live_peak: &'env AtomicUsize,
        tracker: &'env FaultTracker,
        policy: &'env FailurePolicy,
        import_table: Option<Arc<ExportTable>>,
        export_table: Option<Arc<ExportTable>>,
        q56: &Queue<CcfTask>,
    ) {
        let (w, h) = source.tile_dims();
        let n = w * h;
        let part_cols = partition.col_hi - partition.read_lo();
        let pool_size = self
            .config
            .pool_size
            .unwrap_or(2 * shape.rows.min(part_cols) + 4)
            .max(4);
        let pool = device
            .buffer_pool::<C64>(n, pool_size)
            .expect("transform pool fits device memory");
        // number of pairs this pipeline owns (for bookkeeping shutdown)
        let mut total_pairs = 0usize;
        let mut total_tiles = 0usize;
        for id in shape.ids() {
            if partition.reads(id) {
                total_tiles += 1;
            }
            if partition.owns_pair(id) {
                if shape.west(id).is_some() {
                    total_pairs += 1;
                }
                if shape.north(id).is_some() {
                    total_pairs += 1;
                }
            }
        }
        if total_tiles == 0 {
            return;
        }

        let q12: Queue<ReadTile> = Queue::new(4);
        let q23: Queue<CopiedMsg> = Queue::new(pool_size);
        let q34: Queue<TransformedMsg> = Queue::new(pool_size);
        let q45: Queue<PairTask> = Queue::new(8);

        // traversal over the partition's columns (ghost included)
        let sub_shape = GridShape::new(shape.rows, part_cols);
        let order: Vec<TileId> = self
            .config
            .traversal
            .order(sub_shape)
            .into_iter()
            .map(|t| TileId::new(t.row, t.col + partition.read_lo()))
            .collect();

        // Stage 1 — read. In peer-to-peer ghost mode the ghost column is
        // not read at all: the copier imports it from the neighbor.
        let dev_id = device.id();
        {
            let w12 = q12.writer();
            let counters = Arc::clone(counters);
            let p2p_ghosts = import_table.is_some();
            let trace = self.trace.clone();
            scope.spawn(move || {
                let track = format!("pipe{dev_id}/read");
                for id in order {
                    let payload = if p2p_ghosts && id.col < partition.col_lo {
                        ReadPayload::Import
                    } else {
                        let r0 = trace.now_ns();
                        let loaded = tracker.load(source, id, &policy.retry);
                        trace.record(
                            &track,
                            "io",
                            format!("read r{}c{}", id.row, id.col),
                            r0,
                            trace.now_ns(),
                        );
                        match loaded {
                            Some(img) => {
                                counters.count_read();
                                ReadPayload::Img(Arc::new(img))
                            }
                            None => ReadPayload::Failed,
                        }
                    };
                    if !w12.push(ReadTile { id, payload }) {
                        break;
                    }
                }
            });
        }

        // Stage 2 — copier (owns the copy stream and the buffer pool).
        {
            let q12 = q12.clone();
            let w23 = q23.writer();
            let stream = device.create_stream("copy");
            let staging = device.alloc::<u16>(n).expect("staging buffer");
            let import_table = import_table.clone();
            let trace = self.trace.clone();
            scope.spawn(move || {
                let track = format!("pipe{dev_id}/copy");
                loop {
                    let w0 = trace.now_ns();
                    let Some(t) = q12.pop() else { break };
                    trace.record(&track, "wait", "wait", w0, trace.now_ns());
                    let s0 = trace.now_ns();
                    let span_name = format!("copy r{}c{}", t.id.row, t.id.col);
                    let item = match t.payload {
                        ReadPayload::Img(img) => {
                            let buf = Arc::new(pool.acquire()); // back-pressure
                                                                // async upload + widen; the staging buffer is
                                                                // reused, which is safe because commands on one
                                                                // stream are ordered
                            stream.h2d(Arc::new(img.pixels().to_vec()), &staging);
                            stream.convert_u16_to_complex(&staging, buf.buffer());
                            let copied = stream.record_event();
                            CopiedMsg::Tile(CopiedTile {
                                id: t.id,
                                img,
                                buf,
                                copied,
                                already_transformed: false,
                            })
                        }
                        ReadPayload::Import => {
                            // peer-to-peer ghost import: block until the
                            // western pipeline publishes the transform,
                            // then copy device-to-device
                            let export = import_table
                                .as_ref()
                                .expect("ghost request implies import table")
                                .take(t.id);
                            match export {
                                Some(export) => {
                                    let buf = Arc::new(pool.acquire());
                                    stream.wait_event(&export.transformed);
                                    let src = Arc::clone(&export.buf);
                                    let dst = buf.buffer().clone();
                                    stream.launch("p2p_ghost_import", move |tok| {
                                        src.buffer().map(tok, |s| {
                                            dst.map(tok, |d| d.copy_from_slice(s));
                                        });
                                        // `src` drops here: the producer's buffer
                                        // may recycle only after the copy executed
                                    });
                                    let copied = stream.record_event();
                                    CopiedMsg::Tile(CopiedTile {
                                        id: t.id,
                                        img: export.img,
                                        buf,
                                        copied,
                                        already_transformed: true,
                                    })
                                }
                                // the neighbor never produced this tile
                                None => CopiedMsg::Failed(t.id),
                            }
                        }
                        ReadPayload::Failed => CopiedMsg::Failed(t.id),
                    };
                    trace.record(&track, "stage", span_name, s0, trace.now_ns());
                    if !w23.push(item) {
                        break;
                    }
                }
                q12.record_to_trace(&trace, &format!("gpu{dev_id}.q12"));
            });
        }

        // Stage 3 — FFT (owns the fft stream).
        {
            let q23 = q23.clone();
            let w34 = q34.writer();
            let stream = device.create_stream("fft");
            let scratch = device.alloc::<C64>(n).expect("fft scratch");
            let counters = Arc::clone(counters);
            let export_table = export_table.clone();
            let trace = self.trace.clone();
            scope.spawn(move || {
                let track = format!("pipe{dev_id}/fft");
                loop {
                    let w0 = trace.now_ns();
                    let Some(msg) = q23.pop() else { break };
                    trace.record(&track, "wait", "wait", w0, trace.now_ns());
                    let t = match msg {
                        CopiedMsg::Tile(t) => t,
                        CopiedMsg::Failed(id) => {
                            // the eastern neighbor may be waiting on this
                            // tile as its ghost: publish the failure so
                            // its copier doesn't block forever
                            if let Some(exports) = &export_table {
                                if id.col + 1 == partition.col_hi {
                                    exports.publish(id, None);
                                }
                            }
                            if !w34.push(TransformedMsg::Failed(id)) {
                                break;
                            }
                            continue;
                        }
                    };
                    let s0 = trace.now_ns();
                    let transformed = if t.already_transformed {
                        // ghost import: the buffer already holds a transform
                        t.copied
                    } else {
                        stream.wait_event(&t.copied);
                        stream.fft2d(w, h, Direction::Forward, t.buf.buffer(), &scratch);
                        counters.count_forward_fft();
                        stream.record_event()
                    };
                    trace.record(
                        &track,
                        "stage",
                        format!("fft r{}c{}", t.id.row, t.id.col),
                        s0,
                        trace.now_ns(),
                    );
                    // publish boundary-column transforms for the eastern
                    // neighbor's ghost imports
                    if let Some(exports) = &export_table {
                        if t.id.col + 1 == partition.col_hi {
                            exports.publish(
                                t.id,
                                Some(ExportedTile {
                                    img: Arc::clone(&t.img),
                                    buf: Arc::clone(&t.buf),
                                    transformed: transformed.clone(),
                                }),
                            );
                        }
                    }
                    if !w34.push(TransformedMsg::Tile(TransformedTile {
                        id: t.id,
                        img: t.img,
                        buf: t.buf,
                        transformed,
                    })) {
                        break;
                    }
                }
                q23.record_to_trace(&trace, &format!("gpu{dev_id}.q23"));
            });
        }

        // Stage 4 — bookkeeping.
        {
            let q34 = q34.clone();
            let w45 = q45.writer();
            let trace = self.trace.clone();
            scope.spawn(move || {
                let track = format!("pipe{dev_id}/bk");
                let mut book: HashMap<TileId, BookEntry> = HashMap::new();
                let mut failed: HashSet<TileId> = HashSet::new();
                // pairs written off because an endpoint never arrived,
                // keyed by (slot, kind) so a pair counts once even when
                // both of its endpoints fail
                let mut voided: HashSet<(usize, PairKind)> = HashSet::new();
                let mut seen = 0usize;
                let mut emitted = 0usize;
                loop {
                    let w0 = trace.now_ns();
                    let Some(msg) = q34.pop() else { break };
                    trace.record(&track, "wait", "wait", w0, trace.now_ns());
                    let s0 = trace.now_ns();
                    seen += 1;
                    match msg {
                        TransformedMsg::Failed(id) => {
                            failed.insert(id);
                            for (a, b, kind) in [
                                (shape.west(id), Some(id), PairKind::West),
                                (shape.north(id), Some(id), PairKind::North),
                                (Some(id), shape.east(id), PairKind::West),
                                (Some(id), shape.south(id), PairKind::North),
                            ] {
                                if let (Some(a), Some(b)) = (a, b) {
                                    if partition.owns_pair(b) {
                                        voided.insert((shape.index(b), kind));
                                        // the surviving endpoint's claim on
                                        // this pair is gone
                                        let other = if b == id { a } else { b };
                                        if let Some(e) = book.get_mut(&other) {
                                            e.remaining -= 1;
                                            if e.remaining == 0 {
                                                book.remove(&other); // recycle
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        TransformedMsg::Tile(t) => {
                            let id = t.id;
                            // neighbors already written off reduce this
                            // tile's reference count up front
                            let mut refcount = partition.refcount(shape, id);
                            for (a, b) in [
                                (shape.west(id), Some(id)),
                                (shape.north(id), Some(id)),
                                (Some(id), shape.east(id)),
                                (Some(id), shape.south(id)),
                            ] {
                                if let (Some(a), Some(b)) = (a, b) {
                                    let other = if b == id { a } else { b };
                                    if partition.owns_pair(b) && failed.contains(&other) {
                                        refcount -= 1;
                                    }
                                }
                            }
                            if refcount > 0 {
                                book.insert(
                                    id,
                                    BookEntry {
                                        share: TransformedShare {
                                            img: t.img,
                                            buf: t.buf,
                                            transformed: t.transformed,
                                        },
                                        remaining: refcount,
                                    },
                                );
                            }
                            live_peak.fetch_max(book.len(), Ordering::Relaxed);
                            let mut ready: Vec<(TileId, TileId, PairKind)> = Vec::with_capacity(4);
                            for (a, b, kind) in [
                                (shape.west(id), Some(id), PairKind::West),
                                (shape.north(id), Some(id), PairKind::North),
                                (Some(id), shape.east(id), PairKind::West),
                                (Some(id), shape.south(id), PairKind::North),
                            ] {
                                if let (Some(a), Some(b)) = (a, b) {
                                    if partition.owns_pair(b)
                                        && book.contains_key(&a)
                                        && book.contains_key(&b)
                                    {
                                        ready.push((a, b, kind));
                                    }
                                }
                            }
                            for (a, b, kind) in ready {
                                let task = PairTask {
                                    a: book[&a].share.clone(),
                                    b: book[&b].share.clone(),
                                    kind,
                                    slot: shape.index(b),
                                };
                                if !w45.push(task) {
                                    return;
                                }
                                emitted += 1;
                                for t in [a, b] {
                                    let e = book.get_mut(&t).expect("endpoint resident");
                                    e.remaining -= 1;
                                    if e.remaining == 0 {
                                        book.remove(&t); // recycle when pairs done
                                    }
                                }
                            }
                        }
                    }
                    trace.record(&track, "stage", "bookkeep", s0, trace.now_ns());
                    if seen == total_tiles && emitted + voided.len() == total_pairs {
                        break;
                    }
                }
                q34.record_to_trace(&trace, &format!("gpu{dev_id}.q34"));
            });
        }

        // Stage 5 — displacement (owns the disp stream).
        {
            let q45 = q45.clone();
            let w56 = q56.writer();
            let stream = device.create_stream("disp");
            let pair_buf = device.alloc::<C64>(n).expect("pair buffer");
            let scratch = device.alloc::<C64>(n).expect("disp scratch");
            let counters = Arc::clone(counters);
            let trace = self.trace.clone();
            scope.spawn(move || {
                let track = format!("pipe{dev_id}/disp");
                loop {
                    let w0 = trace.now_ns();
                    let Some(task) = q45.pop() else { break };
                    trace.record(&track, "wait", "wait", w0, trace.now_ns());
                    let s0 = trace.now_ns();
                    stream.wait_event(&task.a.transformed);
                    stream.wait_event(&task.b.transformed);
                    stream.ncc(task.a.buf.buffer(), task.b.buf.buffer(), &pair_buf, n);
                    counters.count_elementwise();
                    stream.fft2d(w, h, Direction::Inverse, &pair_buf, &scratch);
                    counters.count_inverse_fft();
                    let peaks = stream
                        .top_abs_peaks(&pair_buf, n, w, DEFAULT_PEAK_COUNT)
                        .wait();
                    counters.count_max_reduction();
                    // device buffers release here (Arc drop) — after the
                    // kernels that read them have executed
                    let ccf = CcfTask {
                        peaks: peaks.iter().map(|p| p.index).collect(),
                        img_a: task.a.img.clone(),
                        img_b: task.b.img.clone(),
                        kind: task.kind,
                        slot: task.slot,
                    };
                    let s1 = trace.now_ns();
                    trace.record(&track, "stage", format!("disp slot {}", ccf.slot), s0, s1);
                    if !w56.push(ccf) {
                        break;
                    }
                }
                q45.record_to_trace(&trace, &format!("gpu{dev_id}.q45"));
            });
        }
    }
}

impl Stitcher for PipelinedGpuStitcher {
    fn name(&self) -> String {
        format!(
            "Pipelined-GPU({} GPU{})",
            self.devices.len(),
            if self.devices.len() == 1 { "" } else { "s" }
        )
    }

    fn try_compute_displacements(
        &self,
        source: &dyn TileSource,
        policy: &FailurePolicy,
    ) -> Result<StitchResult, StitchError> {
        let t0 = Instant::now();
        let shape = source.shape();
        if shape.tiles() == 0 {
            return Ok(StitchResult::empty(shape));
        }
        let counters = OpCounters::new_shared();
        let tracker = FaultTracker::new(shape);
        let west = Mutex::new(vec![None; shape.tiles()]);
        let north = Mutex::new(vec![None; shape.tiles()]);
        let live_peak = AtomicUsize::new(0);
        let partitions = column_bands(shape.cols, self.devices.len());
        // one export table per internal boundary (peer-to-peer mode only)
        let tables: Vec<Arc<ExportTable>> = if self.config.ghost_mode == GhostMode::PeerToPeer {
            (0..partitions.len().saturating_sub(1))
                .map(|_| Arc::new(ExportTable::default()))
                .collect()
        } else {
            Vec::new()
        };

        // Stage 6 is *shared* across the per-GPU pipelines (Fig 8 shows
        // every pipeline's Q56 feeding one CCF worker group).
        let q56: Queue<CcfTask> = Queue::new(16 * self.devices.len());
        let (w, h) = source.tile_dims();

        // q56 gets a producer from each pipeline's stage 5. The queue
        // closes for good when its writer count hits zero, so hold a
        // guard writer until every pipeline has registered its own —
        // otherwise a fast early pipeline can finish and close the queue
        // before a later pipeline's writer exists.
        let w56_guard = q56.writer();
        std::thread::scope(|scope| {
            for (p, (device, partition)) in self.devices.iter().zip(&partitions).enumerate() {
                let import_table = (p > 0).then(|| tables.get(p - 1).cloned()).flatten();
                let export_table = tables.get(p).cloned();
                self.run_pipeline(
                    scope,
                    device,
                    *partition,
                    source,
                    shape,
                    &counters,
                    &live_peak,
                    &tracker,
                    policy,
                    import_table,
                    export_table,
                    &q56,
                );
            }
            // every pipeline's stage-5 writer is registered; release the
            // guard so q56 can close when the real producers finish
            drop(w56_guard);
            // Stage 6 — CCF workers (host), shared by all pipelines.
            for worker in 0..self.config.ccf_threads {
                let q56 = q56.clone();
                let counters = Arc::clone(&counters);
                let west = &west;
                let north = &north;
                let trace = self.trace.clone();
                scope.spawn(move || {
                    let track = format!("ccf.{worker}");
                    // per-worker CCF scratch, reused across pairs
                    let mut scored: Vec<(f64, crate::types::Displacement)> = Vec::new();
                    loop {
                        let w0 = trace.now_ns();
                        let Some(task) = q56.pop() else { break };
                        trace.record(&track, "wait", "wait", w0, trace.now_ns());
                        let s0 = trace.now_ns();
                        let d = resolve_peaks_oriented_into(
                            &task.peaks,
                            w,
                            h,
                            &task.img_a,
                            &task.img_b,
                            Some(task.kind),
                            &mut scored,
                        );
                        counters.count_ccf_group();
                        trace.record(
                            &track,
                            "compute",
                            format!("ccf slot {}", task.slot),
                            s0,
                            trace.now_ns(),
                        );
                        match task.kind {
                            PairKind::West => west.lock()[task.slot] = Some(d),
                            PairKind::North => north.lock()[task.slot] = Some(d),
                        }
                    }
                });
            }
        });
        q56.record_to_trace(&self.trace, "q56");
        for device in &self.devices {
            device
                .profiler()
                .export_to_trace(&self.trace, &format!("gpu{}", device.id()));
        }

        let mut result = StitchResult::empty(shape);
        result.west = west.into_inner();
        result.north = north.into_inner();
        result.elapsed = t0.elapsed();
        result.ops = counters.snapshot();
        result.peak_live_tiles = live_peak.load(Ordering::Relaxed);
        self.trace
            .set_gauge("peak_live_tiles", result.peak_live_tiles as f64);
        result.health = tracker.finish(policy)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_cpu::SimpleCpuStitcher;
    use crate::source::SyntheticSource;
    use crate::stitcher::truth_vectors;
    use stitch_gpu::DeviceConfig;
    use stitch_image::{ScanConfig, SyntheticPlate};

    fn source(rows: usize, cols: usize) -> SyntheticSource {
        SyntheticSource::new(SyntheticPlate::generate(ScanConfig {
            grid_rows: rows,
            grid_cols: cols,
            tile_width: 64,
            tile_height: 48,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 40.0,
            vignette: 0.03,
            seed: 83,
        }))
    }

    fn device(id: usize) -> Device {
        Device::new(id, DeviceConfig::small(256 << 20))
    }

    #[test]
    fn column_bands_cover_grid() {
        let bands = column_bands(10, 3);
        assert_eq!(bands.len(), 3);
        assert_eq!(
            bands[0],
            Partition {
                col_lo: 0,
                col_hi: 4
            }
        );
        assert_eq!(
            bands[2],
            Partition {
                col_lo: 7,
                col_hi: 10
            }
        );
    }

    #[test]
    fn partition_refcounts_sum_to_pair_endpoints() {
        let shape = GridShape::new(3, 7);
        for parts in 1..=3 {
            let bands = column_bands(shape.cols, parts);
            let total: usize = bands
                .iter()
                .flat_map(|p| {
                    shape
                        .ids()
                        .filter(|id| p.reads(*id))
                        .map(|id| p.refcount(shape, id))
                        .collect::<Vec<_>>()
                })
                .sum();
            assert_eq!(total, 2 * shape.pairs(), "parts={parts}");
        }
    }

    #[test]
    fn single_gpu_matches_cpu() {
        let src = source(3, 4);
        let cpu = SimpleCpuStitcher::default().compute_displacements(&src);
        let gpu = PipelinedGpuStitcher::single(device(0)).compute_displacements(&src);
        assert_eq!(gpu.west, cpu.west);
        assert_eq!(gpu.north, cpu.north);
    }

    #[test]
    fn two_gpus_match_one() {
        let src = source(3, 6);
        let one = PipelinedGpuStitcher::single(device(0)).compute_displacements(&src);
        let two =
            PipelinedGpuStitcher::new(vec![device(0), device(1)], PipelinedGpuConfig::default())
                .compute_displacements(&src);
        assert!(two.is_complete());
        assert_eq!(two.west, one.west);
        assert_eq!(two.north, one.north);
    }

    #[test]
    fn recovers_ground_truth() {
        let src = source(4, 4);
        let r = PipelinedGpuStitcher::single(device(0)).compute_displacements(&src);
        assert!(r.is_complete());
        let (tw, tn) = truth_vectors(src.plate());
        assert_eq!(r.count_errors(&tw, &tn, 0), 0);
    }

    #[test]
    fn overlapped_profile_is_denser_than_simple() {
        // the Fig 7 vs Fig 9 contrast needs transfer costs to hide: give
        // both devices the PCIe-like transfer model
        use crate::simple_gpu::SimpleGpuStitcher;
        let cfg = DeviceConfig {
            memory_bytes: 256 << 20,
            ..DeviceConfig::with_transfer_model()
        };
        // the paper profiles an 8×8 grid of full-size tiles (Figs 7, 9);
        // kernel time must dominate per-item overheads for the contrast to
        // show, so this test uses larger-than-default tiles
        let src = SyntheticSource::new(SyntheticPlate::generate(ScanConfig {
            grid_rows: 6,
            grid_cols: 6,
            tile_width: 160,
            tile_height: 120,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 40.0,
            vignette: 0.03,
            seed: 83,
        }));
        // full-run-window kernel density: gaps where the device sat idle
        // count against the schedule (the paper's Fig 7 vs Fig 9 metric)
        let dev_simple = Device::new(0, cfg.clone());
        SimpleGpuStitcher::new(dev_simple.clone()).compute_displacements(&src);
        let simple_density = dev_simple.profiler().kernel_density();
        let dev_pipe = Device::new(1, cfg);
        PipelinedGpuStitcher::single(dev_pipe.clone()).compute_displacements(&src);
        let pipe_density = dev_pipe.profiler().kernel_density();
        assert!(
            pipe_density > simple_density,
            "pipelined {pipe_density:.3} should beat simple {simple_density:.3}"
        );
    }

    #[test]
    fn peer_to_peer_ghosts_match_recompute() {
        let src = source(3, 7);
        let recompute = PipelinedGpuStitcher::new(
            vec![device(0), device(1), device(2)],
            PipelinedGpuConfig::default(),
        )
        .compute_displacements(&src);
        let p2p = PipelinedGpuStitcher::new(
            vec![device(0), device(1), device(2)],
            PipelinedGpuConfig {
                ghost_mode: GhostMode::PeerToPeer,
                ..PipelinedGpuConfig::default()
            },
        )
        .compute_displacements(&src);
        assert_eq!(p2p.west, recompute.west);
        assert_eq!(p2p.north, recompute.north);
        // p2p must not re-read or re-transform ghost columns: exactly one
        // read and one forward FFT per grid tile
        assert_eq!(p2p.ops.reads, 21);
        assert_eq!(p2p.ops.forward_ffts, 21);
        assert!(recompute.ops.forward_ffts > 21, "recompute pays ghost FFTs");
    }

    #[test]
    fn peer_to_peer_single_gpu_is_noop() {
        let src = source(2, 3);
        let r = PipelinedGpuStitcher::new(
            vec![device(0)],
            PipelinedGpuConfig {
                ghost_mode: GhostMode::PeerToPeer,
                ..PipelinedGpuConfig::default()
            },
        )
        .compute_displacements(&src);
        assert!(r.is_complete());
        assert_eq!(r.ops.forward_ffts, 6);
    }

    #[test]
    fn peer_to_peer_releases_all_device_memory() {
        let devs = vec![device(0), device(1)];
        let handles: Vec<Device> = devs.clone();
        let src = source(3, 6);
        PipelinedGpuStitcher::new(
            devs,
            PipelinedGpuConfig {
                ghost_mode: GhostMode::PeerToPeer,
                ..PipelinedGpuConfig::default()
            },
        )
        .compute_displacements(&src);
        for d in handles {
            assert_eq!(d.memory_used(), 0, "device {}", d.id());
        }
    }

    #[test]
    fn device_memory_fully_released() {
        let dev = device(0);
        let src = source(2, 3);
        PipelinedGpuStitcher::single(dev.clone()).compute_displacements(&src);
        assert_eq!(dev.memory_used(), 0);
    }
}
