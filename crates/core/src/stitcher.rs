//! The stitcher interface: phase 1 of the paper's computation — relative
//! displacements for every adjacent tile pair (Fig 4).

use std::time::Duration;

use crate::fault::{FailurePolicy, HealthReport, StitchError, TileStatus};
use crate::grid::GridShape;
use crate::opcount::OpCounts;
use crate::source::TileSource;
use crate::types::{Displacement, TileId};

/// Phase-1 output: per-pair relative displacements.
///
/// `west[i]` is the displacement of tile `i` relative to its **western**
/// neighbor (`position(i) − position(west(i))`, `None` in column 0);
/// `north[i]` relative to its **northern** neighbor (`None` in row 0).
#[derive(Clone, Debug)]
pub struct StitchResult {
    /// Grid dimensions.
    pub shape: GridShape,
    /// West-pair displacements, row-major.
    pub west: Vec<Option<Displacement>>,
    /// North-pair displacements, row-major.
    pub north: Vec<Option<Displacement>>,
    /// End-to-end wall time of the displacement computation.
    pub elapsed: Duration,
    /// Operation counts observed during the computation (Table I audit).
    pub ops: OpCounts,
    /// Peak number of simultaneously live tile transforms (memory
    /// management quality; bounded by the pool in pipelined versions).
    pub peak_live_tiles: usize,
    /// Per-tile read health: which tiles loaded cleanly, which needed
    /// retries, which failed permanently.
    pub health: HealthReport,
}

impl StitchResult {
    /// An empty result skeleton for `shape`.
    pub fn empty(shape: GridShape) -> StitchResult {
        StitchResult {
            shape,
            west: vec![None; shape.tiles()],
            north: vec![None; shape.tiles()],
            elapsed: Duration::ZERO,
            ops: OpCounts::default(),
            peak_live_tiles: 0,
            health: HealthReport::new(shape),
        }
    }

    /// West displacement of `id`, if computed.
    pub fn west_of(&self, id: TileId) -> Option<Displacement> {
        self.west[self.shape.index(id)]
    }

    /// North displacement of `id`, if computed.
    pub fn north_of(&self, id: TileId) -> Option<Displacement> {
        self.north[self.shape.index(id)]
    }

    /// True when every expected pair has a displacement.
    pub fn is_complete(&self) -> bool {
        for id in self.shape.ids().collect::<Vec<_>>() {
            let i = self.shape.index(id);
            if id.col > 0 && self.west[i].is_none() {
                return false;
            }
            if id.row > 0 && self.north[i].is_none() {
                return false;
            }
        }
        true
    }

    /// Like [`is_complete`](StitchResult::is_complete), but pairs that
    /// touch a permanently failed tile are excused: the degraded-but-done
    /// check for `--allow-partial` runs.
    pub fn is_complete_modulo_failures(&self) -> bool {
        let failed = |id: TileId| matches!(self.health.status(id), TileStatus::Failed { .. });
        for id in self.shape.ids().collect::<Vec<_>>() {
            let i = self.shape.index(id);
            if id.col > 0
                && self.west[i].is_none()
                && !failed(id)
                && !failed(TileId::new(id.row, id.col - 1))
            {
                return false;
            }
            if id.row > 0
                && self.north[i].is_none()
                && !failed(id)
                && !failed(TileId::new(id.row - 1, id.col))
            {
                return false;
            }
        }
        true
    }

    /// Number of pairs whose displacement differs from the given ground
    /// truth by more than `tol` pixels on either axis. Truth vectors are
    /// row-major `(dx, dy)` with the same orientation conventions.
    pub fn count_errors(
        &self,
        truth_west: &[Option<(i64, i64)>],
        truth_north: &[Option<(i64, i64)>],
        tol: i64,
    ) -> usize {
        let mut errors = 0;
        for i in 0..self.shape.tiles() {
            for (got, want) in [
                (self.west[i], truth_west[i]),
                (self.north[i], truth_north[i]),
            ] {
                match (got, want) {
                    (Some(d), Some((tx, ty))) => {
                        if (d.x - tx).abs() > tol || (d.y - ty).abs() > tol {
                            errors += 1;
                        }
                    }
                    (None, None) => {}
                    _ => errors += 1,
                }
            }
        }
        errors
    }
}

/// A phase-1 implementation. The paper evaluates six of these (Table II);
/// this workspace implements them all plus the Fiji-style baseline.
pub trait Stitcher {
    /// Implementation name as it appears in Table II.
    fn name(&self) -> String;

    /// Computes relative displacements for every adjacent pair in the
    /// grid under a failure policy: transient read errors are retried
    /// per `policy.retry`, and permanently failed tiles either degrade
    /// the result (`policy.allow_partial`, with the casualties listed in
    /// [`StitchResult::health`]) or abort it with [`StitchError::Tile`].
    fn try_compute_displacements(
        &self,
        source: &dyn TileSource,
        policy: &FailurePolicy,
    ) -> Result<StitchResult, StitchError>;

    /// Infallible convenience wrapper over
    /// [`try_compute_displacements`](Stitcher::try_compute_displacements)
    /// with the default policy (bounded retries, no partial output).
    /// Panics on permanent failure — reads from a healthy source keep
    /// the original behavior.
    fn compute_displacements(&self, source: &dyn TileSource) -> StitchResult {
        self.try_compute_displacements(source, &FailurePolicy::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", self.name()))
    }
}

/// Ground-truth displacement vectors, row-major, `None` where no pair
/// exists (column 0 for west, row 0 for north).
pub type TruthVector = Vec<Option<(i64, i64)>>;

/// Extracts ground-truth displacement vectors from a synthetic plate, in
/// the layout [`StitchResult::count_errors`] expects.
pub fn truth_vectors(plate: &stitch_image::SyntheticPlate) -> (TruthVector, TruthVector) {
    let rows = plate.config.grid_rows;
    let cols = plate.config.grid_cols;
    let mut west = vec![None; rows * cols];
    let mut north = vec![None; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            if c > 0 {
                west[r * cols + c] = Some(plate.true_west_displacement(r, c));
            }
            if r > 0 {
                north[r * cols + c] = Some(plate.true_north_displacement(r, c));
            }
        }
    }
    (west, north)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_result_shape() {
        let r = StitchResult::empty(GridShape::new(3, 4));
        assert_eq!(r.west.len(), 12);
        assert!(!r.is_complete(), "interior pairs missing");
        assert_eq!(r.west_of(TileId::new(0, 0)), None);
    }

    #[test]
    fn single_tile_grid_is_trivially_complete() {
        let r = StitchResult::empty(GridShape::new(1, 1));
        assert!(r.is_complete());
    }

    #[test]
    fn count_errors_tolerance() {
        let shape = GridShape::new(1, 2);
        let mut r = StitchResult::empty(shape);
        r.west[1] = Some(Displacement::new(50, 2, 0.9));
        let tw = vec![None, Some((51, 2))];
        let tn = vec![None, None];
        assert_eq!(r.count_errors(&tw, &tn, 0), 1);
        assert_eq!(r.count_errors(&tw, &tn, 1), 0);
    }
}
