//! Budgeted transform storage with disk spill — the Fig 5 substrate.
//!
//! §III: "A scalable parallel implementation must manage memory because
//! the problem does not fit into main memory ... It will have a highly
//! negative effect on performance when the program's working set exceeds
//! physical memory limits and the virtual memory subsystem starts paging
//! to disk." Fig 5 demonstrates the cliff with an application that "reads
//! tiles and computes their transforms without releasing any memory".
//!
//! [`SpillStore`] makes that failure mode reproducible in-process without
//! needing to exhaust the machine: buffers are kept in memory up to a
//! byte budget; beyond it, least-recently-used buffers spill to a backing
//! file and fault back in on access — real disk I/O, real cliff.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use stitch_fft::C64;

/// Handle to a stored buffer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BufferHandle(u64);

enum Slot {
    /// Resident in memory.
    Resident(Vec<C64>),
    /// Spilled to the backing file at (offset, len).
    Spilled { offset: u64, len: usize },
}

struct StoreState {
    slots: HashMap<u64, Slot>,
    /// LRU order of resident handles (front = coldest).
    lru: Vec<u64>,
    resident_bytes: usize,
    file: File,
    file_len: u64,
    /// Free regions in the spill file, (offset, byte_len).
    free_list: Vec<(u64, usize)>,
}

/// A byte-budgeted store for transform buffers with LRU disk spill.
pub struct SpillStore {
    budget_bytes: usize,
    path: PathBuf,
    state: Mutex<StoreState>,
    next_id: AtomicU64,
    spill_count: AtomicU64,
    fault_count: AtomicU64,
}

fn buf_bytes(len: usize) -> usize {
    len * std::mem::size_of::<C64>()
}

impl SpillStore {
    /// Creates a store holding at most `budget_bytes` resident, spilling
    /// into a temp file.
    pub fn new(budget_bytes: usize) -> std::io::Result<SpillStore> {
        let path = std::env::temp_dir().join(format!(
            "stitch_spill_{}_{:x}.bin",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
        ));
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(SpillStore {
            budget_bytes,
            path,
            state: Mutex::new(StoreState {
                slots: HashMap::new(),
                lru: Vec::new(),
                resident_bytes: 0,
                file,
                file_len: 0,
                free_list: Vec::new(),
            }),
            next_id: AtomicU64::new(0),
            spill_count: AtomicU64::new(0),
            fault_count: AtomicU64::new(0),
        })
    }

    /// Stores a buffer, spilling cold buffers if the budget overflows.
    pub fn insert(&self, data: Vec<C64>) -> BufferHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let bytes = buf_bytes(data.len());
        let mut st = self.state.lock();
        st.resident_bytes += bytes;
        st.slots.insert(id, Slot::Resident(data));
        st.lru.push(id);
        self.evict_to_budget(&mut st);
        BufferHandle(id)
    }

    /// Accesses a buffer, faulting it in from disk if it was spilled
    /// (possibly evicting others to make room).
    pub fn with<R>(&self, h: BufferHandle, f: impl FnOnce(&[C64]) -> R) -> R {
        let mut st = self.state.lock();
        // fault in if spilled
        let needs_fault = matches!(st.slots.get(&h.0), Some(Slot::Spilled { .. }));
        if needs_fault {
            let Some(Slot::Spilled { offset, len }) = st.slots.remove(&h.0) else {
                unreachable!()
            };
            let mut raw = vec![0u8; buf_bytes(len)];
            st.file
                .seek(SeekFrom::Start(offset))
                .expect("seek spill file");
            st.file.read_exact(&mut raw).expect("read spill file");
            st.free_list.push((offset, buf_bytes(len)));
            let mut data = vec![C64::ZERO; len];
            for (i, chunk) in raw.chunks_exact(16).enumerate() {
                data[i] = C64 {
                    re: f64::from_le_bytes(chunk[0..8].try_into().unwrap()),
                    im: f64::from_le_bytes(chunk[8..16].try_into().unwrap()),
                };
            }
            st.resident_bytes += buf_bytes(len);
            st.slots.insert(h.0, Slot::Resident(data));
            st.lru.push(h.0);
            self.fault_count.fetch_add(1, Ordering::Relaxed);
            self.evict_to_budget_except(&mut st, h.0);
        } else {
            // refresh LRU position
            if let Some(pos) = st.lru.iter().position(|&x| x == h.0) {
                st.lru.remove(pos);
                st.lru.push(h.0);
            }
        }
        match st.slots.get(&h.0) {
            Some(Slot::Resident(data)) => f(data),
            _ => panic!("buffer handle not found"),
        }
    }

    /// Removes a buffer entirely.
    pub fn remove(&self, h: BufferHandle) {
        let mut st = self.state.lock();
        match st.slots.remove(&h.0) {
            Some(Slot::Resident(data)) => {
                st.resident_bytes -= buf_bytes(data.len());
                if let Some(pos) = st.lru.iter().position(|&x| x == h.0) {
                    st.lru.remove(pos);
                }
            }
            Some(Slot::Spilled { offset, len }) => {
                st.free_list.push((offset, buf_bytes(len)));
            }
            None => {}
        }
    }

    /// Bytes currently resident in memory.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().resident_bytes
    }

    /// Number of buffers spilled to disk so far.
    pub fn spill_count(&self) -> u64 {
        self.spill_count.load(Ordering::Relaxed)
    }

    /// Number of faults (spilled buffers read back) so far.
    pub fn fault_count(&self) -> u64 {
        self.fault_count.load(Ordering::Relaxed)
    }

    fn evict_to_budget(&self, st: &mut StoreState) {
        self.evict_to_budget_except(st, u64::MAX);
    }

    fn evict_to_budget_except(&self, st: &mut StoreState, keep: u64) {
        while st.resident_bytes > self.budget_bytes {
            // coldest resident handle that isn't the protected one
            let Some(pos) = st.lru.iter().position(|&x| x != keep) else {
                break;
            };
            let victim = st.lru.remove(pos);
            let Some(Slot::Resident(data)) = st.slots.remove(&victim) else {
                continue;
            };
            let bytes = buf_bytes(data.len());
            // find or grow file space
            let offset = if let Some(i) = st.free_list.iter().position(|&(_, l)| l >= bytes) {
                let (off, l) = st.free_list.remove(i);
                if l > bytes {
                    st.free_list.push((off + bytes as u64, l - bytes));
                }
                off
            } else {
                let off = st.file_len;
                st.file_len += bytes as u64;
                off
            };
            let mut raw = Vec::with_capacity(bytes);
            for v in &data {
                raw.extend_from_slice(&v.re.to_le_bytes());
                raw.extend_from_slice(&v.im.to_le_bytes());
            }
            st.file
                .seek(SeekFrom::Start(offset))
                .expect("seek spill file");
            st.file.write_all(&raw).expect("write spill file");
            st.slots.insert(
                victim,
                Slot::Spilled {
                    offset,
                    len: data.len(),
                },
            );
            st.resident_bytes -= bytes;
            self.spill_count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_fft::c64;

    fn buf(seed: usize, len: usize) -> Vec<C64> {
        (0..len)
            .map(|i| c64((seed * 1000 + i) as f64, -(i as f64)))
            .collect()
    }

    #[test]
    fn round_trip_without_spill() {
        let store = SpillStore::new(1 << 20).unwrap();
        let h = store.insert(buf(1, 100));
        store.with(h, |d| {
            assert_eq!(d.len(), 100);
            assert_eq!(d[3].re, 1003.0);
        });
        assert_eq!(store.spill_count(), 0);
    }

    #[test]
    fn spills_beyond_budget_and_faults_back() {
        // budget of 2 buffers à 1600 B
        let store = SpillStore::new(2 * 1600).unwrap();
        let h1 = store.insert(buf(1, 100));
        let h2 = store.insert(buf(2, 100));
        let h3 = store.insert(buf(3, 100)); // evicts h1 (coldest)
        assert_eq!(store.spill_count(), 1);
        assert!(store.resident_bytes() <= 2 * 1600);
        // h1 faults back intact
        store.with(h1, |d| assert_eq!(d[0].re, 1000.0));
        assert_eq!(store.fault_count(), 1);
        // everyone still intact
        store.with(h2, |d| assert_eq!(d[0].re, 2000.0));
        store.with(h3, |d| assert_eq!(d[0].re, 3000.0));
    }

    #[test]
    fn lru_access_protects_hot_buffers() {
        let store = SpillStore::new(2 * 1600).unwrap();
        let h1 = store.insert(buf(1, 100));
        let _h2 = store.insert(buf(2, 100));
        // touch h1 so h2 becomes the eviction victim
        store.with(h1, |_| {});
        let _h3 = store.insert(buf(3, 100));
        // h1 should still be resident: accessing it must not fault
        let faults_before = store.fault_count();
        store.with(h1, |_| {});
        assert_eq!(store.fault_count(), faults_before);
    }

    #[test]
    fn remove_frees_budget() {
        let store = SpillStore::new(1600).unwrap();
        let h1 = store.insert(buf(1, 100));
        store.remove(h1);
        assert_eq!(store.resident_bytes(), 0);
        let h2 = store.insert(buf(2, 100));
        assert_eq!(store.spill_count(), 0, "no eviction needed after remove");
        store.with(h2, |d| assert_eq!(d[0].re, 2000.0));
    }

    #[test]
    fn spill_file_space_is_reused() {
        let store = SpillStore::new(1600).unwrap();
        let hs: Vec<BufferHandle> = (0..6).map(|i| store.insert(buf(i, 100))).collect();
        // 5 spills happened; faulting one back frees its file region, the
        // next spill should reuse it rather than grow the file
        assert_eq!(store.spill_count(), 5);
        store.with(hs[0], |_| {});
        let len_after = store.state.lock().file_len;
        store.with(hs[1], |_| {}); // causes another spill into the free slot
        assert_eq!(store.state.lock().file_len, len_after);
    }

    #[test]
    fn many_buffers_survive_heavy_thrash() {
        let store = SpillStore::new(3 * 1600).unwrap();
        let hs: Vec<BufferHandle> = (0..20).map(|i| store.insert(buf(i, 100))).collect();
        for (i, &h) in hs.iter().enumerate().rev() {
            store.with(h, |d| assert_eq!(d[0].re, (i * 1000) as f64));
        }
        assert!(store.fault_count() > 0);
    }
}
