//! Budgeted transform storage with disk spill — the Fig 5 substrate.
//!
//! §III: "A scalable parallel implementation must manage memory because
//! the problem does not fit into main memory ... It will have a highly
//! negative effect on performance when the program's working set exceeds
//! physical memory limits and the virtual memory subsystem starts paging
//! to disk." Fig 5 demonstrates the cliff with an application that "reads
//! tiles and computes their transforms without releasing any memory".
//!
//! [`SpillStore`] makes that failure mode reproducible in-process without
//! needing to exhaust the machine: buffers are kept in memory up to a
//! byte budget; beyond it, least-recently-used buffers spill to a backing
//! file and fault back in on access — real disk I/O, real cliff.
//!
//! Internals are sized for stores with many live handles: the LRU order
//! is an intrusive doubly-linked list over a hash map (O(1) touch,
//! unlink, and victim selection — no `Vec` scans), the spill-file free
//! list is an offset-ordered map that coalesces adjacent regions on free
//! and trims the file when the tail becomes free, and a single reusable
//! scratch buffer serves every spill/fault serialization.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use stitch_fft::C64;

/// Handle to a stored buffer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BufferHandle(u64);

enum Slot {
    /// Resident in memory.
    Resident(Vec<C64>),
    /// Spilled to the backing file at (offset, len).
    Spilled { offset: u64, len: usize },
}

/// Intrusive LRU order over resident handles: a doubly-linked list whose
/// links live in a hash map, so touch / unlink / victim selection are all
/// O(1) (amortized) regardless of how many buffers are resident.
#[derive(Default)]
struct LruList {
    /// id → (prev, next); `prev` is colder, `next` is hotter.
    links: HashMap<u64, (Option<u64>, Option<u64>)>,
    /// Coldest resident handle.
    head: Option<u64>,
    /// Hottest resident handle.
    tail: Option<u64>,
}

impl LruList {
    /// Appends `id` at the hot end. Must not already be linked.
    fn push_hot(&mut self, id: u64) {
        debug_assert!(!self.links.contains_key(&id));
        let old_tail = self.tail;
        self.links.insert(id, (old_tail, None));
        match old_tail {
            Some(t) => self.links.get_mut(&t).expect("tail linked").1 = Some(id),
            None => self.head = Some(id),
        }
        self.tail = Some(id);
    }

    /// Detaches `id` if present; returns whether it was linked.
    fn unlink(&mut self, id: u64) -> bool {
        let Some((prev, next)) = self.links.remove(&id) else {
            return false;
        };
        match prev {
            Some(p) => self.links.get_mut(&p).expect("prev linked").1 = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.links.get_mut(&n).expect("next linked").0 = prev,
            None => self.tail = prev,
        }
        true
    }

    /// Moves `id` to the hot end (no-op if it isn't resident).
    fn touch(&mut self, id: u64) {
        if self.unlink(id) {
            self.push_hot(id);
        }
    }

    /// The coldest resident handle that isn't `keep`.
    fn coldest_except(&self, keep: u64) -> Option<u64> {
        match self.head {
            Some(h) if h != keep => Some(h),
            Some(h) => self.links.get(&h).expect("head linked").1,
            None => None,
        }
    }
}

struct StoreState {
    slots: HashMap<u64, Slot>,
    lru: LruList,
    resident_bytes: usize,
    file: File,
    file_len: u64,
    /// Free regions in the spill file, offset → byte length. Keyed by
    /// offset so adjacent regions coalesce on free (predecessor and
    /// successor lookups are range queries).
    free_map: BTreeMap<u64, u64>,
    /// Reusable serialization scratch for spill writes and fault reads.
    io_buf: Vec<u8>,
}

impl StoreState {
    /// Returns a file region of exactly `bytes`, reusing (and splitting)
    /// a free region when one is large enough, growing the file otherwise.
    fn alloc_region(&mut self, bytes: u64) -> u64 {
        let fit = self
            .free_map
            .iter()
            .find(|&(_, &len)| len >= bytes)
            .map(|(&off, &len)| (off, len));
        match fit {
            Some((off, len)) => {
                self.free_map.remove(&off);
                if len > bytes {
                    self.free_map.insert(off + bytes, len - bytes);
                }
                off
            }
            None => {
                let off = self.file_len;
                self.file_len += bytes;
                off
            }
        }
    }

    /// Returns a region to the free list, merging with adjacent free
    /// regions; a region that ends up at the tail of the file shrinks the
    /// file instead of lingering in the free list, so repeated
    /// spill/remove cycles cannot grow the file without bound.
    fn free_region(&mut self, offset: u64, bytes: u64) {
        let mut off = offset;
        let mut len = bytes;
        if let Some((&poff, &plen)) = self.free_map.range(..off).next_back() {
            if poff + plen == off {
                self.free_map.remove(&poff);
                off = poff;
                len += plen;
            }
        }
        if let Some(&slen) = self.free_map.get(&(off + len)) {
            self.free_map.remove(&(off + len));
            len += slen;
        }
        if off + len == self.file_len {
            self.file_len = off;
            let _ = self.file.set_len(off);
        } else {
            self.free_map.insert(off, len);
        }
    }
}

/// A byte-budgeted store for transform buffers with LRU disk spill.
pub struct SpillStore {
    budget_bytes: usize,
    path: PathBuf,
    state: Mutex<StoreState>,
    next_id: AtomicU64,
    spill_count: AtomicU64,
    fault_count: AtomicU64,
}

fn buf_bytes(len: usize) -> usize {
    len * std::mem::size_of::<C64>()
}

/// Process-global sequence for spill-file names: unique within the
/// process by construction, and `create_new` below rejects any collision
/// with a file left behind by another process.
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillStore {
    /// Creates a store holding at most `budget_bytes` resident, spilling
    /// into a freshly created temp file (never an existing one).
    pub fn new(budget_bytes: usize) -> std::io::Result<SpillStore> {
        let (file, path) = loop {
            let seq = SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "stitch_spill_{}_{}.bin",
                std::process::id(),
                seq
            ));
            match OpenOptions::new()
                .create_new(true)
                .read(true)
                .write(true)
                .open(&path)
            {
                Ok(file) => break (file, path),
                Err(e) if e.kind() == ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        };
        Ok(SpillStore {
            budget_bytes,
            path,
            state: Mutex::new(StoreState {
                slots: HashMap::new(),
                lru: LruList::default(),
                resident_bytes: 0,
                file,
                file_len: 0,
                free_map: BTreeMap::new(),
                io_buf: Vec::new(),
            }),
            next_id: AtomicU64::new(0),
            spill_count: AtomicU64::new(0),
            fault_count: AtomicU64::new(0),
        })
    }

    /// Stores a buffer, spilling cold buffers if the budget overflows.
    pub fn insert(&self, data: Vec<C64>) -> BufferHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let bytes = buf_bytes(data.len());
        let mut st = self.state.lock();
        st.resident_bytes += bytes;
        st.slots.insert(id, Slot::Resident(data));
        st.lru.push_hot(id);
        self.evict_to_budget(&mut st);
        BufferHandle(id)
    }

    /// Accesses a buffer, faulting it in from disk if it was spilled
    /// (possibly evicting others to make room).
    pub fn with<R>(&self, h: BufferHandle, f: impl FnOnce(&[C64]) -> R) -> R {
        let mut st = self.state.lock();
        // fault in if spilled
        let needs_fault = matches!(st.slots.get(&h.0), Some(Slot::Spilled { .. }));
        if needs_fault {
            let Some(Slot::Spilled { offset, len }) = st.slots.remove(&h.0) else {
                unreachable!()
            };
            let bytes = buf_bytes(len);
            let mut io = std::mem::take(&mut st.io_buf);
            io.resize(bytes, 0);
            st.file
                .seek(SeekFrom::Start(offset))
                .expect("seek spill file");
            st.file.read_exact(&mut io).expect("read spill file");
            st.free_region(offset, bytes as u64);
            let mut data = Vec::with_capacity(len);
            for chunk in io.chunks_exact(16) {
                data.push(C64 {
                    re: f64::from_le_bytes(chunk[0..8].try_into().unwrap()),
                    im: f64::from_le_bytes(chunk[8..16].try_into().unwrap()),
                });
            }
            st.io_buf = io;
            st.resident_bytes += bytes;
            st.slots.insert(h.0, Slot::Resident(data));
            st.lru.push_hot(h.0);
            self.fault_count.fetch_add(1, Ordering::Relaxed);
            self.evict_to_budget_except(&mut st, h.0);
        } else {
            st.lru.touch(h.0);
        }
        match st.slots.get(&h.0) {
            Some(Slot::Resident(data)) => f(data),
            _ => panic!("buffer handle not found"),
        }
    }

    /// Removes a buffer entirely.
    pub fn remove(&self, h: BufferHandle) {
        let mut st = self.state.lock();
        match st.slots.remove(&h.0) {
            Some(Slot::Resident(data)) => {
                st.resident_bytes -= buf_bytes(data.len());
                st.lru.unlink(h.0);
            }
            Some(Slot::Spilled { offset, len }) => {
                st.free_region(offset, buf_bytes(len) as u64);
            }
            None => {}
        }
    }

    /// Bytes currently resident in memory.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().resident_bytes
    }

    /// Number of buffers spilled to disk so far.
    pub fn spill_count(&self) -> u64 {
        self.spill_count.load(Ordering::Relaxed)
    }

    /// Number of faults (spilled buffers read back) so far.
    pub fn fault_count(&self) -> u64 {
        self.fault_count.load(Ordering::Relaxed)
    }

    fn evict_to_budget(&self, st: &mut StoreState) {
        self.evict_to_budget_except(st, u64::MAX);
    }

    fn evict_to_budget_except(&self, st: &mut StoreState, keep: u64) {
        while st.resident_bytes > self.budget_bytes {
            // coldest resident handle that isn't the protected one
            let Some(victim) = st.lru.coldest_except(keep) else {
                break;
            };
            st.lru.unlink(victim);
            let Some(Slot::Resident(data)) = st.slots.remove(&victim) else {
                continue;
            };
            let bytes = buf_bytes(data.len());
            let offset = st.alloc_region(bytes as u64);
            let mut io = std::mem::take(&mut st.io_buf);
            io.clear();
            io.reserve(bytes);
            for v in &data {
                io.extend_from_slice(&v.re.to_le_bytes());
                io.extend_from_slice(&v.im.to_le_bytes());
            }
            st.file
                .seek(SeekFrom::Start(offset))
                .expect("seek spill file");
            st.file.write_all(&io).expect("write spill file");
            st.io_buf = io;
            st.slots.insert(
                victim,
                Slot::Spilled {
                    offset,
                    len: data.len(),
                },
            );
            st.resident_bytes -= bytes;
            self.spill_count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_fft::c64;

    fn buf(seed: usize, len: usize) -> Vec<C64> {
        (0..len)
            .map(|i| c64((seed * 1000 + i) as f64, -(i as f64)))
            .collect()
    }

    #[test]
    fn round_trip_without_spill() {
        let store = SpillStore::new(1 << 20).unwrap();
        let h = store.insert(buf(1, 100));
        store.with(h, |d| {
            assert_eq!(d.len(), 100);
            assert_eq!(d[3].re, 1003.0);
        });
        assert_eq!(store.spill_count(), 0);
    }

    #[test]
    fn spills_beyond_budget_and_faults_back() {
        // budget of 2 buffers à 1600 B
        let store = SpillStore::new(2 * 1600).unwrap();
        let h1 = store.insert(buf(1, 100));
        let h2 = store.insert(buf(2, 100));
        let h3 = store.insert(buf(3, 100)); // evicts h1 (coldest)
        assert_eq!(store.spill_count(), 1);
        assert!(store.resident_bytes() <= 2 * 1600);
        // h1 faults back intact
        store.with(h1, |d| assert_eq!(d[0].re, 1000.0));
        assert_eq!(store.fault_count(), 1);
        // everyone still intact
        store.with(h2, |d| assert_eq!(d[0].re, 2000.0));
        store.with(h3, |d| assert_eq!(d[0].re, 3000.0));
    }

    #[test]
    fn lru_access_protects_hot_buffers() {
        let store = SpillStore::new(2 * 1600).unwrap();
        let h1 = store.insert(buf(1, 100));
        let _h2 = store.insert(buf(2, 100));
        // touch h1 so h2 becomes the eviction victim
        store.with(h1, |_| {});
        let _h3 = store.insert(buf(3, 100));
        // h1 should still be resident: accessing it must not fault
        let faults_before = store.fault_count();
        store.with(h1, |_| {});
        assert_eq!(store.fault_count(), faults_before);
    }

    #[test]
    fn remove_frees_budget() {
        let store = SpillStore::new(1600).unwrap();
        let h1 = store.insert(buf(1, 100));
        store.remove(h1);
        assert_eq!(store.resident_bytes(), 0);
        let h2 = store.insert(buf(2, 100));
        assert_eq!(store.spill_count(), 0, "no eviction needed after remove");
        store.with(h2, |d| assert_eq!(d[0].re, 2000.0));
    }

    #[test]
    fn spill_file_space_is_reused() {
        let store = SpillStore::new(1600).unwrap();
        let hs: Vec<BufferHandle> = (0..6).map(|i| store.insert(buf(i, 100))).collect();
        // 5 spills happened; faulting one back frees its file region, the
        // next spill should reuse it rather than grow the file
        assert_eq!(store.spill_count(), 5);
        store.with(hs[0], |_| {});
        let len_after = store.state.lock().file_len;
        store.with(hs[1], |_| {}); // causes another spill into the free slot
        assert_eq!(store.state.lock().file_len, len_after);
    }

    #[test]
    fn many_buffers_survive_heavy_thrash() {
        let store = SpillStore::new(3 * 1600).unwrap();
        let hs: Vec<BufferHandle> = (0..20).map(|i| store.insert(buf(i, 100))).collect();
        for (i, &h) in hs.iter().enumerate().rev() {
            store.with(h, |d| assert_eq!(d[0].re, (i * 1000) as f64));
        }
        assert!(store.fault_count() > 0);
    }

    #[test]
    fn store_paths_are_unique() {
        let a = SpillStore::new(1 << 20).unwrap();
        let b = SpillStore::new(1 << 20).unwrap();
        assert_ne!(a.path, b.path);
    }

    #[test]
    fn coalescing_bounds_file_growth_under_spill_remove_cycles() {
        // budget 0: every buffer spills immediately. Mixed sizes fragment
        // a free list that doesn't coalesce — adjacent freed regions must
        // merge so later (larger) buffers fit into reclaimed space and
        // file_len stays bounded instead of growing every round.
        let store = SpillStore::new(0).unwrap();
        let sizes = [100usize, 37, 260, 64];
        let round_bytes: u64 = sizes.iter().map(|&s| buf_bytes(s) as u64).sum();
        let mut max_len = 0u64;
        for round in 0..50 {
            let hs: Vec<BufferHandle> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| store.insert(buf(round * 10 + i, s)))
                .collect();
            for &h in &hs {
                store.remove(h);
            }
            max_len = max_len.max(store.state.lock().file_len);
        }
        // one round's worth of bytes is the steady-state working set;
        // allow one extra round of slack for transient fragmentation
        assert!(
            max_len <= 2 * round_bytes,
            "file grew to {max_len} B (round = {round_bytes} B): free list is fragmenting"
        );
        // everything was removed: the trailing trim must reclaim the file
        assert_eq!(store.state.lock().file_len, 0, "file not trimmed");
        assert!(store.state.lock().free_map.is_empty(), "stale free regions");
    }

    #[test]
    fn adjacent_free_regions_merge() {
        // spill three equal buffers, remove all three while spilled, and
        // check the free map collapses (here: to nothing, via the trim)
        let store = SpillStore::new(0).unwrap();
        let hs: Vec<BufferHandle> = (0..3).map(|i| store.insert(buf(i, 50))).collect();
        assert_eq!(store.spill_count(), 3);
        // remove the middle one first so its region can't trim, then the
        // edges — predecessor and successor merges both get exercised
        store.remove(hs[1]);
        assert_eq!(store.state.lock().free_map.len(), 1);
        store.remove(hs[0]);
        assert_eq!(store.state.lock().free_map.len(), 1, "did not merge");
        store.remove(hs[2]);
        assert_eq!(store.state.lock().file_len, 0);
        assert!(store.state.lock().free_map.is_empty());
    }
}
