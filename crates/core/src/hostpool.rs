//! Host-side spectrum buffer pool (paper §IV-A memory discipline).
//!
//! The GPU side already recycles device buffers through
//! `stitch_gpu::memory`'s pool; this module is the host mirror. Tile
//! spectra are the dominant host allocation of the CPU stitchers — one
//! `Vec<C64>` of `width × height` (or the reduced/padded equivalent) per
//! forward transform — and each is dropped as soon as the pair refcount
//! hits zero. [`SpectrumPool`] keeps those buffers on a free list
//! instead: a [`PooledSpectrum`] hands its storage back to the pool on
//! drop, so at steady state the hot path performs **zero** heap
//! allocations (asserted by the counting allocator in the conformance
//! suite).
//!
//! The pool is *elastic*: `acquire` never blocks, it allocates when the
//! free list is empty. Backpressure is not this layer's job — the
//! pipelined stitchers already bound in-flight tiles with a semaphore,
//! so the pool's population converges to that bound after warmup.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use stitch_fft::C64;

struct PoolShared {
    buf_len: usize,
    free: Mutex<Vec<Vec<C64>>>,
    created: AtomicU64,
    reused: AtomicU64,
}

/// A shareable pool of equal-length `Vec<C64>` spectrum buffers.
/// Cloning is cheap and yields a handle to the same pool; the stitcher
/// variants create one pool per run and hand clones to every worker.
#[derive(Clone)]
pub struct SpectrumPool {
    shared: Arc<PoolShared>,
}

impl SpectrumPool {
    /// Creates an empty pool of length-`buf_len` buffers.
    pub fn new(buf_len: usize) -> SpectrumPool {
        SpectrumPool {
            shared: Arc::new(PoolShared {
                buf_len,
                free: Mutex::new(Vec::new()),
                created: AtomicU64::new(0),
                reused: AtomicU64::new(0),
            }),
        }
    }

    /// The fixed element count of every buffer in this pool.
    pub fn buf_len(&self) -> usize {
        self.shared.buf_len
    }

    /// Takes a buffer from the free list, or allocates one when the list
    /// is empty (the pool never blocks). The contents are **unspecified**
    /// — producers must overwrite every element, which every
    /// `forward_fft` path does.
    pub fn acquire(&self) -> PooledSpectrum {
        let recycled = self.shared.free.lock().unwrap().pop();
        let data = match recycled {
            Some(buf) => {
                debug_assert_eq!(buf.len(), self.shared.buf_len);
                self.shared.reused.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.shared.created.fetch_add(1, Ordering::Relaxed);
                vec![C64::ZERO; self.shared.buf_len]
            }
        };
        PooledSpectrum {
            data,
            pool: Arc::clone(&self.shared),
        }
    }

    /// Pre-populates the free list so even the first `n` acquisitions
    /// come from the pool.
    pub fn preallocate(&self, n: usize) {
        let mut free = self.shared.free.lock().unwrap();
        while free.len() < n {
            self.shared.created.fetch_add(1, Ordering::Relaxed);
            free.push(vec![C64::ZERO; self.shared.buf_len]);
        }
    }

    /// How many buffers the pool has allocated over its lifetime — the
    /// pool's high-water population, and the number the paper's
    /// allocate-once discipline says should stop growing after warmup.
    pub fn created(&self) -> u64 {
        self.shared.created.load(Ordering::Relaxed)
    }

    /// How many acquisitions were served from the free list.
    pub fn reused(&self) -> u64 {
        self.shared.reused.load(Ordering::Relaxed)
    }

    /// Buffers currently sitting on the free list.
    pub fn idle(&self) -> usize {
        self.shared.free.lock().unwrap().len()
    }
}

/// A spectrum buffer on loan from a [`SpectrumPool`]. Dereferences to
/// `[C64]`; the storage returns to the pool's free list on drop.
pub struct PooledSpectrum {
    /// Invariant: `data.len() == pool.buf_len` except transiently inside
    /// `drop`/`into_vec`, where it is taken and replaced by an empty vec.
    data: Vec<C64>,
    pool: Arc<PoolShared>,
}

impl PooledSpectrum {
    /// Detaches the buffer from the pool, e.g. to hand it to an owner
    /// with its own storage discipline (`SpillStore::insert`). The pool
    /// simply never sees this buffer again.
    pub fn into_vec(mut self) -> Vec<C64> {
        std::mem::take(&mut self.data)
    }
}

impl Deref for PooledSpectrum {
    type Target = [C64];
    fn deref(&self) -> &[C64] {
        &self.data
    }
}

impl DerefMut for PooledSpectrum {
    fn deref_mut(&mut self) -> &mut [C64] {
        &mut self.data
    }
}

impl Drop for PooledSpectrum {
    fn drop(&mut self) {
        let data = std::mem::take(&mut self.data);
        // Empty after into_vec — nothing to return.
        if data.len() == self.pool.buf_len {
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_fft::c64;

    #[test]
    fn drop_returns_storage_to_pool() {
        let pool = SpectrumPool::new(16);
        let ptr = {
            let mut b = pool.acquire();
            b[0] = c64(1.0, 0.0);
            b.as_ptr() as usize
        };
        assert_eq!(pool.idle(), 1);
        let b2 = pool.acquire();
        assert_eq!(b2.as_ptr() as usize, ptr, "storage must be recycled");
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn concurrent_acquires_get_distinct_buffers() {
        let pool = SpectrumPool::new(8);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_ne!(a.as_ptr(), b.as_ptr());
        assert_eq!(pool.created(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn into_vec_detaches_from_pool() {
        let pool = SpectrumPool::new(4);
        let v = pool.acquire().into_vec();
        assert_eq!(v.len(), 4);
        assert_eq!(pool.idle(), 0, "detached buffer must not return");
    }

    #[test]
    fn preallocate_populates_free_list() {
        let pool = SpectrumPool::new(4);
        pool.preallocate(3);
        assert_eq!(pool.idle(), 3);
        assert_eq!(pool.created(), 3);
        let _a = pool.acquire();
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn pool_is_shared_across_clones() {
        let pool = SpectrumPool::new(4);
        let clone = pool.clone();
        drop(clone.acquire());
        assert_eq!(pool.idle(), 1);
    }
}
