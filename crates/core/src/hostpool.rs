//! Host-side spectrum buffer pool (paper §IV-A memory discipline).
//!
//! The GPU side already recycles device buffers through
//! `stitch_gpu::memory`'s pool; this module is the host mirror. Tile
//! spectra are the dominant host allocation of the CPU stitchers — one
//! `Vec<C64>` of `width × height` (or the reduced/padded equivalent) per
//! forward transform — and each is dropped as soon as the pair refcount
//! hits zero. [`SpectrumPool`] keeps those buffers on a free list
//! instead: a [`PooledSpectrum`] hands its storage back to the pool on
//! drop, so at steady state the hot path performs **zero** heap
//! allocations (asserted by the counting allocator in the conformance
//! suite).
//!
//! Pools come in two flavours:
//!
//! * **Elastic** ([`SpectrumPool::new`]): `acquire` never blocks, it
//!   allocates when the free list is empty. Backpressure is not this
//!   layer's job — the pipelined stitchers already bound in-flight tiles
//!   with a semaphore, so the pool's population converges to that bound
//!   after warmup.
//! * **Bounded** ([`SpectrumPool::bounded`]): the population (buffers on
//!   the free list plus buffers on loan) never exceeds a hard cap;
//!   `acquire` blocks until a lease is returned once the cap is reached.
//!   This is the enforcement point for the batch scheduler's per-job
//!   memory quotas — a job simply *cannot* allocate past its lease
//!   budget, no matter how its stages interleave.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use stitch_fft::C64;

struct PoolState {
    free: Vec<Vec<C64>>,
    /// Buffers in existence: free-list entries plus outstanding leases.
    /// Detaching a buffer with `into_vec` removes it from the population
    /// (and, in a bounded pool, frees its cap slot).
    population: usize,
}

struct PoolShared {
    buf_len: usize,
    cap: Option<usize>,
    state: Mutex<PoolState>,
    returned: Condvar,
    created: AtomicU64,
    reused: AtomicU64,
}

impl PoolShared {
    /// Poison-tolerant lock: a worker that panicked while holding the
    /// pool lock must not cascade into every sibling's buffer drop.
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A shareable pool of equal-length `Vec<C64>` spectrum buffers.
/// Cloning is cheap and yields a handle to the same pool; the stitcher
/// variants create one pool per run and hand clones to every worker.
#[derive(Clone)]
pub struct SpectrumPool {
    shared: Arc<PoolShared>,
}

impl SpectrumPool {
    /// Creates an empty *elastic* pool of length-`buf_len` buffers:
    /// `acquire` never blocks.
    pub fn new(buf_len: usize) -> SpectrumPool {
        SpectrumPool::build(buf_len, None)
    }

    /// Creates an empty *bounded* pool: at most `cap` buffers ever exist
    /// and [`SpectrumPool::acquire`] blocks once all of them are on loan.
    ///
    /// # Panics
    /// `cap` must be ≥ 1 — a zero-capacity pool would deadlock the first
    /// acquisition.
    pub fn bounded(buf_len: usize, cap: usize) -> SpectrumPool {
        assert!(cap >= 1, "bounded pool needs cap >= 1");
        SpectrumPool::build(buf_len, Some(cap))
    }

    fn build(buf_len: usize, cap: Option<usize>) -> SpectrumPool {
        SpectrumPool {
            shared: Arc::new(PoolShared {
                buf_len,
                cap,
                state: Mutex::new(PoolState {
                    free: Vec::new(),
                    population: 0,
                }),
                returned: Condvar::new(),
                created: AtomicU64::new(0),
                reused: AtomicU64::new(0),
            }),
        }
    }

    /// The fixed element count of every buffer in this pool.
    pub fn buf_len(&self) -> usize {
        self.shared.buf_len
    }

    /// The population cap, or `None` for an elastic pool.
    pub fn cap(&self) -> Option<usize> {
        self.shared.cap
    }

    /// Takes a buffer from the free list, or allocates one when the list
    /// is empty. An elastic pool never blocks; a bounded pool at its cap
    /// blocks until a lease is returned. The contents are **unspecified**
    /// — producers must overwrite every element, which every
    /// `forward_fft` path does.
    pub fn acquire(&self) -> PooledSpectrum {
        let mut state = self.shared.lock();
        loop {
            if let Some(buf) = state.free.pop() {
                debug_assert_eq!(buf.len(), self.shared.buf_len);
                self.shared.reused.fetch_add(1, Ordering::Relaxed);
                return self.wrap(buf);
            }
            match self.shared.cap {
                Some(cap) if state.population >= cap => {
                    state = self
                        .shared
                        .returned
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => {
                    state.population += 1;
                    drop(state);
                    self.shared.created.fetch_add(1, Ordering::Relaxed);
                    return self.wrap(vec![C64::ZERO; self.shared.buf_len]);
                }
            }
        }
    }

    /// Non-blocking [`SpectrumPool::acquire`]: returns `None` when a
    /// bounded pool is at its cap with nothing free.
    pub fn try_acquire(&self) -> Option<PooledSpectrum> {
        let mut state = self.shared.lock();
        if let Some(buf) = state.free.pop() {
            debug_assert_eq!(buf.len(), self.shared.buf_len);
            self.shared.reused.fetch_add(1, Ordering::Relaxed);
            return Some(self.wrap(buf));
        }
        match self.shared.cap {
            Some(cap) if state.population >= cap => None,
            _ => {
                state.population += 1;
                drop(state);
                self.shared.created.fetch_add(1, Ordering::Relaxed);
                Some(self.wrap(vec![C64::ZERO; self.shared.buf_len]))
            }
        }
    }

    fn wrap(&self, data: Vec<C64>) -> PooledSpectrum {
        PooledSpectrum {
            data,
            pool: Arc::clone(&self.shared),
        }
    }

    /// Pre-populates the free list so even the first `n` acquisitions
    /// come from the pool. A bounded pool pre-populates at most up to its
    /// cap.
    pub fn preallocate(&self, n: usize) {
        let mut state = self.shared.lock();
        let target = match self.shared.cap {
            Some(cap) => n.min(cap.saturating_sub(state.population - state.free.len())),
            None => n,
        };
        while state.free.len() < target {
            self.shared.created.fetch_add(1, Ordering::Relaxed);
            state.population += 1;
            let buf = vec![C64::ZERO; self.shared.buf_len];
            state.free.push(buf);
        }
    }

    /// How many buffers the pool has allocated over its lifetime — the
    /// pool's high-water population, and the number the paper's
    /// allocate-once discipline says should stop growing after warmup.
    pub fn created(&self) -> u64 {
        self.shared.created.load(Ordering::Relaxed)
    }

    /// How many acquisitions were served from the free list.
    pub fn reused(&self) -> u64 {
        self.shared.reused.load(Ordering::Relaxed)
    }

    /// Buffers currently sitting on the free list.
    pub fn idle(&self) -> usize {
        self.shared.lock().free.len()
    }

    /// Buffers currently on loan (acquired and not yet returned or
    /// detached). The scheduler's cancellation test asserts this drains
    /// to zero when a job is torn down.
    pub fn leased(&self) -> usize {
        let state = self.shared.lock();
        state.population - state.free.len()
    }

    /// Buffers currently in existence (free + leased). In a bounded pool
    /// this never exceeds [`SpectrumPool::cap`].
    pub fn population(&self) -> usize {
        self.shared.lock().population
    }
}

/// A spectrum buffer on loan from a [`SpectrumPool`]. Dereferences to
/// `[C64]`; the storage returns to the pool's free list on drop.
pub struct PooledSpectrum {
    /// Invariant: `data.len() == pool.buf_len` except transiently inside
    /// `drop`/`into_vec`, where it is taken and replaced by an empty vec.
    data: Vec<C64>,
    pool: Arc<PoolShared>,
}

impl PooledSpectrum {
    /// Detaches the buffer from the pool, e.g. to hand it to an owner
    /// with its own storage discipline (`SpillStore::insert`). The pool
    /// never sees this buffer again; in a bounded pool its cap slot is
    /// freed so a replacement can be allocated.
    pub fn into_vec(mut self) -> Vec<C64> {
        std::mem::take(&mut self.data)
    }
}

impl Deref for PooledSpectrum {
    type Target = [C64];
    fn deref(&self) -> &[C64] {
        &self.data
    }
}

impl DerefMut for PooledSpectrum {
    fn deref_mut(&mut self) -> &mut [C64] {
        &mut self.data
    }
}

impl Drop for PooledSpectrum {
    fn drop(&mut self) {
        let data = std::mem::take(&mut self.data);
        let mut state = self.pool.lock();
        if data.len() == self.pool.buf_len {
            state.free.push(data);
        } else {
            // Detached via into_vec — the buffer leaves the population
            // so a bounded pool can allocate a replacement.
            state.population = state.population.saturating_sub(1);
        }
        drop(state);
        self.pool.returned.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_fft::c64;

    #[test]
    fn drop_returns_storage_to_pool() {
        let pool = SpectrumPool::new(16);
        let ptr = {
            let mut b = pool.acquire();
            b[0] = c64(1.0, 0.0);
            b.as_ptr() as usize
        };
        assert_eq!(pool.idle(), 1);
        let b2 = pool.acquire();
        assert_eq!(b2.as_ptr() as usize, ptr, "storage must be recycled");
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn concurrent_acquires_get_distinct_buffers() {
        let pool = SpectrumPool::new(8);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_ne!(a.as_ptr(), b.as_ptr());
        assert_eq!(pool.created(), 2);
        assert_eq!(pool.leased(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.leased(), 0);
    }

    #[test]
    fn into_vec_detaches_from_pool() {
        let pool = SpectrumPool::new(4);
        let v = pool.acquire().into_vec();
        assert_eq!(v.len(), 4);
        assert_eq!(pool.idle(), 0, "detached buffer must not return");
        assert_eq!(pool.population(), 0, "detached buffer leaves population");
    }

    #[test]
    fn preallocate_populates_free_list() {
        let pool = SpectrumPool::new(4);
        pool.preallocate(3);
        assert_eq!(pool.idle(), 3);
        assert_eq!(pool.created(), 3);
        let _a = pool.acquire();
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn pool_is_shared_across_clones() {
        let pool = SpectrumPool::new(4);
        let clone = pool.clone();
        drop(clone.acquire());
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn bounded_pool_never_exceeds_cap() {
        let pool = SpectrumPool::bounded(8, 2);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.population(), 2);
        assert!(pool.try_acquire().is_none(), "cap reached: must not grow");
        drop(a);
        let c = pool.try_acquire().expect("freed lease must be reusable");
        assert_eq!(pool.population(), 2);
        assert_eq!(pool.created(), 2, "no allocation past the cap");
        drop(b);
        drop(c);
        assert_eq!(pool.leased(), 0);
    }

    #[test]
    fn bounded_acquire_blocks_until_return() {
        let pool = SpectrumPool::bounded(4, 1);
        let held = pool.acquire();
        let p2 = pool.clone();
        let waiter = std::thread::spawn(move || {
            let b = p2.acquire(); // blocks until `held` drops
            b.len()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "acquire must block at the cap");
        drop(held);
        assert_eq!(waiter.join().unwrap(), 4);
        assert_eq!(pool.created(), 1, "the blocked acquire reused storage");
    }

    #[test]
    fn bounded_into_vec_frees_a_cap_slot() {
        let pool = SpectrumPool::bounded(4, 1);
        let v = pool.acquire().into_vec();
        assert_eq!(v.len(), 4);
        // The cap slot came back even though the storage never will.
        let _b = pool.try_acquire().expect("detached lease frees its slot");
        assert_eq!(pool.created(), 2);
    }

    #[test]
    fn bounded_preallocate_respects_cap() {
        let pool = SpectrumPool::bounded(4, 3);
        pool.preallocate(10);
        assert_eq!(pool.idle(), 3);
        assert_eq!(pool.created(), 3);
    }

    #[test]
    fn unbounded_burst_regression_elastic_vs_bounded() {
        // Regression for the scheduler quota fix: a burst of concurrent
        // acquisitions grows an elastic pool without limit, but a bounded
        // pool's population stays pinned at the cap.
        let burst = 16;
        let elastic = SpectrumPool::new(4);
        let held: Vec<_> = (0..burst).map(|_| elastic.acquire()).collect();
        assert_eq!(elastic.population(), burst);
        drop(held);

        let bounded = SpectrumPool::bounded(4, 5);
        let mut held = Vec::new();
        for _ in 0..burst {
            match bounded.try_acquire() {
                Some(b) => held.push(b),
                None => break,
            }
        }
        assert_eq!(held.len(), 5);
        assert_eq!(bounded.population(), 5, "burst must not grow past cap");
        assert_eq!(bounded.created(), 5);
    }
}
