//! Simple-CPU: the sequential reference implementation (paper §IV-A).
//!
//! One thread walks the grid in a configurable traversal order, computes
//! each tile's forward transform once, and frees it "as soon as the
//! relative displacements of its eastern, southern, western, and northern
//! neighbors were computed" — the early-release strategy whose
//! effectiveness depends on the traversal order (chained-diagonal wins,
//! and became the default).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use stitch_fft::{PlanMode, Planner};
use stitch_image::Image;
use stitch_trace::TraceHandle;

use crate::fault::{FailurePolicy, FaultTracker, StitchError};
use crate::grid::Traversal;
use crate::hostpool::PooledSpectrum;
use crate::opcount::OpCounters;
use crate::pciam_real::{Correlator, TransformKind};
use crate::source::TileSource;
use crate::stitcher::{StitchResult, Stitcher};
use crate::types::TileId;

/// Sequential single-threaded stitcher.
pub struct SimpleCpuStitcher {
    traversal: Traversal,
    plan_mode: PlanMode,
    transform: TransformKind,
    trace: TraceHandle,
}

impl Default for SimpleCpuStitcher {
    fn default() -> Self {
        SimpleCpuStitcher::new(Traversal::ChainedDiagonal, PlanMode::Estimate)
    }
}

/// A tile resident in memory: its pixels (needed by the CCF stage) and
/// its forward transform, plus the outstanding-pair reference count.
/// When the count hits zero the `PooledSpectrum` drops and its storage
/// returns to the correlator's pool for the next tile (§IV-A recycling).
struct LiveTile {
    img: Arc<Image<u16>>,
    fft: Arc<PooledSpectrum>,
    remaining: usize,
}

impl SimpleCpuStitcher {
    /// Creates a sequential stitcher with the given traversal order and
    /// FFT planning effort.
    pub fn new(traversal: Traversal, plan_mode: PlanMode) -> SimpleCpuStitcher {
        SimpleCpuStitcher {
            traversal,
            plan_mode,
            transform: TransformKind::Complex,
            trace: TraceHandle::disabled(),
        }
    }

    /// Switches phase 1 to the requested transform path (the §VI-A
    /// real-to-complex optimization when [`TransformKind::Real`]).
    pub fn with_transform(mut self, transform: TransformKind) -> SimpleCpuStitcher {
        self.transform = transform;
        self
    }

    /// Records read/FFT/CCF spans into `trace` (track `"cpu/main"`).
    pub fn with_trace(mut self, trace: TraceHandle) -> SimpleCpuStitcher {
        self.trace = trace;
        self
    }

    /// The traversal order in use.
    pub fn traversal(&self) -> Traversal {
        self.traversal
    }
}

impl Stitcher for SimpleCpuStitcher {
    fn name(&self) -> String {
        "Simple-CPU".to_string()
    }

    fn try_compute_displacements(
        &self,
        source: &dyn TileSource,
        policy: &FailurePolicy,
    ) -> Result<StitchResult, StitchError> {
        let t0 = Instant::now();
        let shape = source.shape();
        let (w, h) = source.tile_dims();
        let counters = OpCounters::new_shared();
        let planner = Planner::new(self.plan_mode);
        let mut ctx = Correlator::new(self.transform, &planner, w, h, Arc::clone(&counters));
        let mut result = StitchResult::empty(shape);
        let tracker = FaultTracker::new(shape);
        let mut live: HashMap<TileId, LiveTile> = HashMap::new();
        let mut peak_live = 0usize;
        let neighbors = |id: TileId| {
            [
                shape.west(id),
                shape.north(id),
                shape.east(id),
                shape.south(id),
            ]
            .into_iter()
            .flatten()
        };

        for id in self.traversal.order(shape) {
            let r0 = self.trace.now_ns();
            let loaded = tracker.load(source, id, &policy.retry);
            self.trace.record(
                "cpu/main",
                "io",
                format!("read r{}c{}", id.row, id.col),
                r0,
                self.trace.now_ns(),
            );
            let img = match loaded {
                Some(img) => Arc::new(img),
                None => {
                    // the tile is gone: every pair it participates in is
                    // void, so release resident neighbors waiting on it
                    for n in neighbors(id) {
                        if let Some(entry) = live.get_mut(&n) {
                            entry.remaining -= 1;
                            if entry.remaining == 0 {
                                live.remove(&n);
                            }
                        }
                    }
                    continue;
                }
            };
            counters.count_read();
            let f0 = self.trace.now_ns();
            let fft = Arc::new(ctx.forward_fft(&img));
            self.trace.record(
                "cpu/main",
                "compute",
                format!("fft r{}c{}", id.row, id.col),
                f0,
                self.trace.now_ns(),
            );
            // pairs to already-failed neighbors will never complete;
            // inserting with remaining == 0 would leak the transform
            let voided = neighbors(id).filter(|n| tracker.is_failed(*n)).count();
            let remaining = shape.degree(id) - voided;
            if remaining > 0 {
                live.insert(
                    id,
                    LiveTile {
                        img,
                        fft,
                        remaining,
                    },
                );
            }
            peak_live = peak_live.max(live.len());

            // complete every pair whose other endpoint is already resident
            let mut done_pairs: Vec<(TileId, TileId, bool)> = Vec::with_capacity(4);
            if let Some(west) = shape.west(id) {
                if live.contains_key(&west) {
                    done_pairs.push((west, id, true));
                }
            }
            if let Some(north) = shape.north(id) {
                if live.contains_key(&north) {
                    done_pairs.push((north, id, false));
                }
            }
            if let Some(east) = shape.east(id) {
                if live.contains_key(&east) {
                    done_pairs.push((id, east, true));
                }
            }
            if let Some(south) = shape.south(id) {
                if live.contains_key(&south) {
                    done_pairs.push((id, south, false));
                }
            }
            for (a, b, is_west_pair) in done_pairs {
                let (fa, fb, ia, ib) = {
                    let ta = &live[&a];
                    let tb = &live[&b];
                    (
                        Arc::clone(&ta.fft),
                        Arc::clone(&tb.fft),
                        Arc::clone(&ta.img),
                        Arc::clone(&tb.img),
                    )
                };
                let kind = if is_west_pair {
                    crate::types::PairKind::West
                } else {
                    crate::types::PairKind::North
                };
                let c0 = self.trace.now_ns();
                let d = ctx.displacement_oriented(&fa, &fb, &ia, &ib, Some(kind));
                self.trace.record(
                    "cpu/main",
                    "compute",
                    format!("ccf r{}c{}-r{}c{}", a.row, a.col, b.row, b.col),
                    c0,
                    self.trace.now_ns(),
                );
                let slot = shape.index(b);
                if is_west_pair {
                    result.west[slot] = Some(d);
                } else {
                    result.north[slot] = Some(d);
                }
                // decrement both endpoints; free at zero (the paper's
                // early-release policy)
                for t in [a, b] {
                    let entry = live.get_mut(&t).expect("endpoint resident");
                    entry.remaining -= 1;
                    if entry.remaining == 0 {
                        live.remove(&t);
                    }
                }
            }
        }
        debug_assert!(live.is_empty(), "all transforms must be released");
        result.elapsed = t0.elapsed();
        result.ops = counters.snapshot();
        result.peak_live_tiles = peak_live;
        self.trace.set_gauge("peak_live_tiles", peak_live as f64);
        result.health = tracker.finish(policy)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SyntheticSource;
    use crate::stitcher::truth_vectors;
    use stitch_image::{ScanConfig, SyntheticPlate};

    pub(crate) fn test_plate(rows: usize, cols: usize) -> SyntheticPlate {
        SyntheticPlate::generate(ScanConfig {
            grid_rows: rows,
            grid_cols: cols,
            tile_width: 64,
            tile_height: 48,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 40.0,
            vignette: 0.03,
            // picked so every grid shape used by these tests has texture in
            // all overlaps (exact phase-1 recovery, no featureless pairs)
            seed: 14,
        })
    }

    #[test]
    fn recovers_ground_truth_exactly() {
        let plate = test_plate(3, 4);
        let src = SyntheticSource::new(plate);
        let result = SimpleCpuStitcher::default().compute_displacements(&src);
        assert!(result.is_complete());
        let (tw, tn) = truth_vectors(src.plate());
        assert_eq!(
            result.count_errors(&tw, &tn, 0),
            0,
            "west={:?}",
            result.west
        );
    }

    #[test]
    fn op_counts_match_table1() {
        let plate = test_plate(3, 3);
        let src = SyntheticSource::new(plate);
        let result = SimpleCpuStitcher::default().compute_displacements(&src);
        let predicted = crate::opcount::OpCounts::predicted(3, 3);
        assert_eq!(result.ops, predicted);
    }

    #[test]
    fn all_traversals_agree() {
        let plate = test_plate(3, 3);
        let src = SyntheticSource::new(plate);
        let reference =
            SimpleCpuStitcher::new(Traversal::Row, PlanMode::Estimate).compute_displacements(&src);
        for t in Traversal::ALL {
            let r = SimpleCpuStitcher::new(t, PlanMode::Estimate).compute_displacements(&src);
            assert_eq!(r.west, reference.west, "{t:?}");
            assert_eq!(r.north, reference.north, "{t:?}");
        }
    }

    #[test]
    fn chained_diagonal_bounds_memory() {
        let plate = test_plate(4, 6);
        let src = SyntheticSource::new(plate);
        let r = SimpleCpuStitcher::new(Traversal::ChainedDiagonal, PlanMode::Estimate)
            .compute_displacements(&src);
        // peak live tiles should stay near the smaller grid dimension
        assert!(r.peak_live_tiles <= 2 * 4 + 2, "peak {}", r.peak_live_tiles);
        let row =
            SimpleCpuStitcher::new(Traversal::Row, PlanMode::Estimate).compute_displacements(&src);
        assert!(r.peak_live_tiles <= row.peak_live_tiles);
    }

    #[test]
    fn real_transform_path_matches_complex() {
        use crate::pciam_real::TransformKind;
        let plate = test_plate(3, 4);
        let src = SyntheticSource::new(plate);
        let complex = SimpleCpuStitcher::default().compute_displacements(&src);
        let real = SimpleCpuStitcher::default()
            .with_transform(TransformKind::Real)
            .compute_displacements(&src);
        assert_eq!(real.west, complex.west);
        assert_eq!(real.north, complex.north);
        assert_eq!(real.ops, complex.ops, "same op counts, half the memory");
    }

    #[test]
    fn padded_transform_path_matches_complex() {
        use crate::pciam_real::TransformKind;
        let plate = test_plate(3, 3);
        let src = SyntheticSource::new(plate);
        let complex = SimpleCpuStitcher::default().compute_displacements(&src);
        let padded = SimpleCpuStitcher::default()
            .with_transform(TransformKind::PaddedComplex)
            .compute_displacements(&src);
        assert_eq!(padded.west, complex.west);
        assert_eq!(padded.north, complex.north);
    }

    #[test]
    fn single_row_grid() {
        let plate = test_plate(1, 5);
        let src = SyntheticSource::new(plate);
        let r = SimpleCpuStitcher::default().compute_displacements(&src);
        assert!(r.is_complete());
        assert!(r.north.iter().all(|d| d.is_none()));
        assert_eq!(r.west.iter().filter(|d| d.is_some()).count(), 4);
    }
}
