//! Tile sources: where the pipeline's *read* stage gets its images.
//!
//! The paper's system reads TIFF tiles from disk; tests and benches also
//! want in-memory and procedurally generated grids. All three are hidden
//! behind [`TileSource`], which every stitcher implementation consumes.
//!
//! Reads are fallible: [`TileSource::load`] returns a
//! [`SourceError`] instead of panicking, so the stitchers can retry
//! transient failures and degrade gracefully on permanent ones (see the
//! [`fault`](crate::fault) module).

use std::path::PathBuf;
use std::sync::Arc;

use stitch_image::{tiff, GridManifest, Image, SyntheticPlate};

use crate::fault::SourceError;
use crate::grid::GridShape;
use crate::types::TileId;

/// A grid of tiles the stitchers can pull from. Implementations must be
/// thread-safe: the pipelined stitchers read from multiple threads.
pub trait TileSource: Send + Sync {
    /// Grid dimensions.
    fn shape(&self) -> GridShape;
    /// Tile dimensions `(width, height)` — uniform across the grid.
    fn tile_dims(&self) -> (usize, usize);
    /// Loads (reads, renders, or clones) one tile. Errors are per-read:
    /// a [transient](SourceError::is_retryable) failure may succeed on a
    /// later call for the same tile.
    fn load(&self, id: TileId) -> Result<Image<u16>, SourceError>;
}

/// Tiles held in memory, row-major.
#[derive(Debug)]
pub struct MemorySource {
    shape: GridShape,
    dims: (usize, usize),
    tiles: Vec<Arc<Image<u16>>>,
}

impl MemorySource {
    /// Wraps a row-major tile vector. Panics on an empty grid or a
    /// count/dimension mismatch; use [`try_new`](MemorySource::try_new)
    /// for the error-returning form.
    pub fn new(shape: GridShape, tiles: Vec<Image<u16>>) -> MemorySource {
        MemorySource::try_new(shape, tiles).unwrap_or_else(|e| panic!("invalid MemorySource: {e}"))
    }

    /// Wraps a row-major tile vector, rejecting an empty grid (which
    /// would otherwise masquerade as a 0×0-tile source) and mismatched
    /// dimensions.
    pub fn try_new(shape: GridShape, tiles: Vec<Image<u16>>) -> Result<MemorySource, SourceError> {
        if tiles.is_empty() {
            return Err(SourceError::EmptyGrid);
        }
        if tiles.len() != shape.tiles() {
            return Err(SourceError::Manifest {
                detail: format!(
                    "tile count mismatch: {} tiles for a {}x{} grid",
                    tiles.len(),
                    shape.rows,
                    shape.cols
                ),
            });
        }
        let dims = tiles[0].dims();
        for (i, t) in tiles.iter().enumerate() {
            if t.dims() != dims {
                return Err(SourceError::Manifest {
                    detail: format!(
                        "tiles must share dimensions: tile 0 is {}x{} but tile {i} is {}x{}",
                        dims.0,
                        dims.1,
                        t.dims().0,
                        t.dims().1
                    ),
                });
            }
        }
        Ok(MemorySource {
            shape,
            dims,
            tiles: tiles.into_iter().map(Arc::new).collect(),
        })
    }
}

impl TileSource for MemorySource {
    fn shape(&self) -> GridShape {
        self.shape
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.dims
    }

    fn load(&self, id: TileId) -> Result<Image<u16>, SourceError> {
        Ok((*self.tiles[self.shape.index(id)]).clone())
    }
}

/// Tiles rendered on demand from a [`SyntheticPlate`] (no disk I/O; used
/// by correctness tests that check against the plate's ground truth).
pub struct SyntheticSource {
    plate: SyntheticPlate,
}

impl SyntheticSource {
    /// Wraps a synthetic plate.
    pub fn new(plate: SyntheticPlate) -> SyntheticSource {
        SyntheticSource { plate }
    }

    /// The underlying plate (ground truth access).
    pub fn plate(&self) -> &SyntheticPlate {
        &self.plate
    }
}

impl TileSource for SyntheticSource {
    fn shape(&self) -> GridShape {
        GridShape::new(self.plate.config.grid_rows, self.plate.config.grid_cols)
    }

    fn tile_dims(&self) -> (usize, usize) {
        (self.plate.config.tile_width, self.plate.config.tile_height)
    }

    fn load(&self, id: TileId) -> Result<Image<u16>, SourceError> {
        Ok(self.plate.render_tile(id.row, id.col))
    }
}

/// A rectangular window onto another source: tile `(r, c)` of the view
/// is tile `(r + row0, c + col0)` of the inner source. Loads delegate
/// directly, so a view returns *literally identical* images to the full
/// source — the foundation of the sharded stitcher's bit-identity
/// guarantee (shard-local pair registrations see the same pixels the
/// unsharded run sees).
#[derive(Clone)]
pub struct SubgridSource {
    inner: Arc<dyn TileSource>,
    row0: usize,
    col0: usize,
    shape: GridShape,
}

impl SubgridSource {
    /// Creates a view of `shape` tiles whose top-left tile is
    /// `(row0, col0)` of `inner`. Panics if the window does not fit
    /// inside the inner grid.
    pub fn new(inner: Arc<dyn TileSource>, row0: usize, col0: usize, shape: GridShape) -> Self {
        let full = inner.shape();
        assert!(
            row0 + shape.rows <= full.rows && col0 + shape.cols <= full.cols,
            "subgrid {}x{} at ({row0},{col0}) exceeds {}x{} grid",
            shape.rows,
            shape.cols,
            full.rows,
            full.cols
        );
        SubgridSource {
            inner,
            row0,
            col0,
            shape,
        }
    }

    /// The view's top-left tile in inner-grid coordinates.
    pub fn origin(&self) -> (usize, usize) {
        (self.row0, self.col0)
    }
}

impl TileSource for SubgridSource {
    fn shape(&self) -> GridShape {
        self.shape
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.inner.tile_dims()
    }

    fn load(&self, id: TileId) -> Result<Image<u16>, SourceError> {
        self.inner
            .load(TileId::new(id.row + self.row0, id.col + self.col0))
    }
}

/// Tiles read from TIFF files on disk, as listed by a dataset manifest —
/// the configuration the paper's end-to-end timings use (6.68 GB of tiles
/// on disk, read by the pipeline's dedicated reader thread).
#[derive(Debug)]
pub struct DirSource {
    shape: GridShape,
    dims: (usize, usize),
    files: Vec<PathBuf>,
}

impl DirSource {
    /// Opens a dataset directory (see
    /// [`SyntheticPlate::write_to_dir`](stitch_image::SyntheticPlate::write_to_dir)).
    ///
    /// Validates the manifest against the directory before returning:
    /// every listed tile file must exist on disk, and *all* missing
    /// files are reported in one [`SourceError::MissingTiles`] — a
    /// multi-hour stitching run should not discover absences one tile at
    /// a time.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<DirSource, SourceError> {
        let m = GridManifest::load(dir).map_err(|e| SourceError::Manifest {
            detail: e.to_string(),
        })?;
        if m.files.is_empty() {
            return Err(SourceError::EmptyGrid);
        }
        let missing: Vec<String> = m
            .files
            .iter()
            .filter(|f| !f.is_file())
            .map(|f| f.display().to_string())
            .collect();
        if !missing.is_empty() {
            return Err(SourceError::MissingTiles { files: missing });
        }
        Ok(DirSource {
            shape: GridShape::new(m.rows, m.cols),
            dims: (m.tile_width, m.tile_height),
            files: m.files,
        })
    }
}

impl TileSource for DirSource {
    fn shape(&self) -> GridShape {
        self.shape
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.dims
    }

    fn load(&self, id: TileId) -> Result<Image<u16>, SourceError> {
        let path = &self.files[self.shape.index(id)];
        tiff::read_tiff(path).map_err(|e| SourceError::Io {
            id,
            detail: format!("{}: {e}", path.display()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_image::ScanConfig;

    #[test]
    fn memory_source_round_trip() {
        let shape = GridShape::new(2, 2);
        let tiles: Vec<Image<u16>> = (0..4).map(|i| Image::filled(8, 6, i as u16)).collect();
        let src = MemorySource::new(shape, tiles);
        assert_eq!(src.tile_dims(), (8, 6));
        assert_eq!(src.load(TileId::new(1, 0)).unwrap().pixels()[0], 2);
    }

    #[test]
    #[should_panic]
    fn memory_source_rejects_mixed_dims() {
        MemorySource::new(
            GridShape::new(1, 2),
            vec![Image::new(4, 4), Image::new(5, 4)],
        );
    }

    #[test]
    fn memory_source_rejects_empty_grid() {
        let err = MemorySource::try_new(GridShape::new(0, 0), Vec::new()).unwrap_err();
        assert_eq!(err, SourceError::EmptyGrid);
        // count mismatch gets its own descriptive error, not a panic
        let err = MemorySource::try_new(GridShape::new(2, 2), vec![Image::new(4, 4)]).unwrap_err();
        assert!(matches!(err, SourceError::Manifest { .. }), "{err}");
        assert!(err.to_string().contains("2x2"), "{err}");
    }

    #[test]
    fn synthetic_source_dims() {
        let cfg = ScanConfig {
            grid_rows: 2,
            grid_cols: 3,
            tile_width: 32,
            tile_height: 24,
            ..ScanConfig::default()
        };
        let src = SyntheticSource::new(SyntheticPlate::generate(cfg));
        assert_eq!(src.shape(), GridShape::new(2, 3));
        assert_eq!(src.tile_dims(), (32, 24));
        let t = src.load(TileId::new(1, 2)).unwrap();
        assert_eq!(t.dims(), (32, 24));
    }

    #[test]
    fn subgrid_view_returns_identical_tiles() {
        let cfg = ScanConfig {
            grid_rows: 3,
            grid_cols: 4,
            tile_width: 16,
            tile_height: 12,
            ..ScanConfig::default()
        };
        let full: Arc<dyn TileSource> =
            Arc::new(SyntheticSource::new(SyntheticPlate::generate(cfg)));
        let view = SubgridSource::new(Arc::clone(&full), 1, 2, GridShape::new(2, 2));
        assert_eq!(view.shape(), GridShape::new(2, 2));
        assert_eq!(view.tile_dims(), (16, 12));
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(
                    view.load(TileId::new(r, c)).unwrap(),
                    full.load(TileId::new(r + 1, c + 2)).unwrap(),
                    "view tile ({r},{c}) must be bit-identical to full tile"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn subgrid_view_rejects_out_of_bounds_window() {
        let cfg = ScanConfig {
            grid_rows: 2,
            grid_cols: 2,
            tile_width: 8,
            tile_height: 8,
            ..ScanConfig::default()
        };
        let full: Arc<dyn TileSource> =
            Arc::new(SyntheticSource::new(SyntheticPlate::generate(cfg)));
        SubgridSource::new(full, 1, 1, GridShape::new(2, 2));
    }

    #[test]
    fn dir_source_reads_back_tiles() {
        let dir = std::env::temp_dir().join("stitch_dirsource_test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ScanConfig {
            grid_rows: 2,
            grid_cols: 2,
            tile_width: 16,
            tile_height: 12,
            ..ScanConfig::default()
        };
        let plate = SyntheticPlate::generate(cfg);
        plate.write_to_dir(&dir).unwrap();
        let src = DirSource::open(&dir).unwrap();
        assert_eq!(src.shape(), GridShape::new(2, 2));
        assert_eq!(
            src.load(TileId::new(0, 1)).unwrap(),
            plate.render_tile(0, 1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_source_reports_all_missing_tiles_up_front() {
        let dir = std::env::temp_dir().join("stitch_dirsource_missing_test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ScanConfig {
            grid_rows: 2,
            grid_cols: 3,
            tile_width: 16,
            tile_height: 12,
            ..ScanConfig::default()
        };
        SyntheticPlate::generate(cfg).write_to_dir(&dir).unwrap();
        // delete two tiles: open must name both, not fail on the first
        let victims: Vec<PathBuf> = {
            let src = DirSource::open(&dir).unwrap();
            let shape = src.shape();
            [TileId::new(0, 1), TileId::new(1, 2)]
                .iter()
                .map(|id| src.files[shape.index(*id)].clone())
                .collect()
        };
        for v in &victims {
            std::fs::remove_file(v).unwrap();
        }
        match DirSource::open(&dir) {
            Err(SourceError::MissingTiles { files }) => {
                assert_eq!(files.len(), 2, "{files:?}");
                for v in &victims {
                    assert!(
                        files.iter().any(|f| f == &v.display().to_string()),
                        "{files:?}"
                    );
                }
            }
            other => panic!("expected MissingTiles, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
