//! Tile sources: where the pipeline's *read* stage gets its images.
//!
//! The paper's system reads TIFF tiles from disk; tests and benches also
//! want in-memory and procedurally generated grids. All three are hidden
//! behind [`TileSource`], which every stitcher implementation consumes.

use std::path::PathBuf;
use std::sync::Arc;

use stitch_image::{tiff, GridManifest, Image, SyntheticPlate};

use crate::grid::GridShape;
use crate::types::TileId;

/// A grid of tiles the stitchers can pull from. Implementations must be
/// thread-safe: the pipelined stitchers read from multiple threads.
pub trait TileSource: Send + Sync {
    /// Grid dimensions.
    fn shape(&self) -> GridShape;
    /// Tile dimensions `(width, height)` — uniform across the grid.
    fn tile_dims(&self) -> (usize, usize);
    /// Loads (reads, renders, or clones) one tile.
    fn load(&self, id: TileId) -> Image<u16>;
}

/// Tiles held in memory, row-major.
pub struct MemorySource {
    shape: GridShape,
    dims: (usize, usize),
    tiles: Vec<Arc<Image<u16>>>,
}

impl MemorySource {
    /// Wraps a row-major tile vector. Panics on count/dimension mismatch.
    pub fn new(shape: GridShape, tiles: Vec<Image<u16>>) -> MemorySource {
        assert_eq!(tiles.len(), shape.tiles(), "tile count mismatch");
        let dims = tiles.first().map(|t| t.dims()).unwrap_or((0, 0));
        for t in &tiles {
            assert_eq!(t.dims(), dims, "tiles must share dimensions");
        }
        MemorySource {
            shape,
            dims,
            tiles: tiles.into_iter().map(Arc::new).collect(),
        }
    }
}

impl TileSource for MemorySource {
    fn shape(&self) -> GridShape {
        self.shape
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.dims
    }

    fn load(&self, id: TileId) -> Image<u16> {
        (*self.tiles[self.shape.index(id)]).clone()
    }
}

/// Tiles rendered on demand from a [`SyntheticPlate`] (no disk I/O; used
/// by correctness tests that check against the plate's ground truth).
pub struct SyntheticSource {
    plate: SyntheticPlate,
}

impl SyntheticSource {
    /// Wraps a synthetic plate.
    pub fn new(plate: SyntheticPlate) -> SyntheticSource {
        SyntheticSource { plate }
    }

    /// The underlying plate (ground truth access).
    pub fn plate(&self) -> &SyntheticPlate {
        &self.plate
    }
}

impl TileSource for SyntheticSource {
    fn shape(&self) -> GridShape {
        GridShape::new(self.plate.config.grid_rows, self.plate.config.grid_cols)
    }

    fn tile_dims(&self) -> (usize, usize) {
        (self.plate.config.tile_width, self.plate.config.tile_height)
    }

    fn load(&self, id: TileId) -> Image<u16> {
        self.plate.render_tile(id.row, id.col)
    }
}

/// Tiles read from TIFF files on disk, as listed by a dataset manifest —
/// the configuration the paper's end-to-end timings use (6.68 GB of tiles
/// on disk, read by the pipeline's dedicated reader thread).
pub struct DirSource {
    shape: GridShape,
    dims: (usize, usize),
    files: Vec<PathBuf>,
}

impl DirSource {
    /// Opens a dataset directory (see
    /// [`SyntheticPlate::write_to_dir`](stitch_image::SyntheticPlate::write_to_dir)).
    pub fn open(dir: impl AsRef<std::path::Path>) -> stitch_image::Result<DirSource> {
        let m = GridManifest::load(dir)?;
        Ok(DirSource {
            shape: GridShape::new(m.rows, m.cols),
            dims: (m.tile_width, m.tile_height),
            files: m.files,
        })
    }
}

impl TileSource for DirSource {
    fn shape(&self) -> GridShape {
        self.shape
    }

    fn tile_dims(&self) -> (usize, usize) {
        self.dims
    }

    fn load(&self, id: TileId) -> Image<u16> {
        let path = &self.files[self.shape.index(id)];
        tiff::read_tiff(path)
            .unwrap_or_else(|e| panic!("failed to read tile {id} from {path:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_image::ScanConfig;

    #[test]
    fn memory_source_round_trip() {
        let shape = GridShape::new(2, 2);
        let tiles: Vec<Image<u16>> = (0..4)
            .map(|i| Image::filled(8, 6, i as u16))
            .collect();
        let src = MemorySource::new(shape, tiles);
        assert_eq!(src.tile_dims(), (8, 6));
        assert_eq!(src.load(TileId::new(1, 0)).pixels()[0], 2);
    }

    #[test]
    #[should_panic]
    fn memory_source_rejects_mixed_dims() {
        MemorySource::new(
            GridShape::new(1, 2),
            vec![Image::new(4, 4), Image::new(5, 4)],
        );
    }

    #[test]
    fn synthetic_source_dims() {
        let cfg = ScanConfig {
            grid_rows: 2,
            grid_cols: 3,
            tile_width: 32,
            tile_height: 24,
            ..ScanConfig::default()
        };
        let src = SyntheticSource::new(SyntheticPlate::generate(cfg));
        assert_eq!(src.shape(), GridShape::new(2, 3));
        assert_eq!(src.tile_dims(), (32, 24));
        let t = src.load(TileId::new(1, 2));
        assert_eq!(t.dims(), (32, 24));
    }

    #[test]
    fn dir_source_reads_back_tiles() {
        let dir = std::env::temp_dir().join("stitch_dirsource_test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ScanConfig {
            grid_rows: 2,
            grid_cols: 2,
            tile_width: 16,
            tile_height: 12,
            ..ScanConfig::default()
        };
        let plate = SyntheticPlate::generate(cfg);
        plate.write_to_dir(&dir).unwrap();
        let src = DirSource::open(&dir).unwrap();
        assert_eq!(src.shape(), GridShape::new(2, 2));
        assert_eq!(src.load(TileId::new(0, 1)), plate.render_tile(0, 1));
        std::fs::remove_dir_all(&dir).ok();
    }
}
