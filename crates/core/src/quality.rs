//! Post-stitch quality metrics.
//!
//! The paper's motivation is *computational steering*: a biologist looks
//! at a freshly stitched plate and decides whether to intervene. That
//! only works if the stitch itself can be trusted, so the production tool
//! this paper became (MIST) reports quality statistics alongside the
//! mosaic. This module provides the same observability:
//!
//! * [`correlation_stats`] — distribution of the per-pair correlation
//!   factors from phase 1 (low tail ⇒ featureless or failed overlaps);
//! * [`seam_error`] — RMS pixel disagreement inside every overlap region
//!   under the final absolute positions (the ground-truth-free check that
//!   phase 2 produced a geometrically consistent mosaic);
//! * [`coverage`] — fraction of the mosaic bounding box covered by at
//!   least one tile (gaps ⇒ a tile was placed wildly wrong).

use crate::global_opt::AbsolutePositions;
use crate::source::TileSource;
use crate::stitcher::StitchResult;

/// Summary statistics of the phase-1 pair correlations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrelationStats {
    /// Number of pairs with a computed displacement.
    pub pairs: usize,
    /// Lowest correlation.
    pub min: f64,
    /// Highest correlation.
    pub max: f64,
    /// Mean correlation.
    pub mean: f64,
    /// Median correlation.
    pub median: f64,
    /// Pairs below 0.5 — the suspicious tail phase 2 must referee.
    pub weak_pairs: usize,
}

/// Computes [`CorrelationStats`] from a phase-1 result.
pub fn correlation_stats(result: &StitchResult) -> CorrelationStats {
    let mut cs: Vec<f64> = result
        .west
        .iter()
        .chain(result.north.iter())
        .flatten()
        .map(|d| d.correlation)
        .collect();
    if cs.is_empty() {
        return CorrelationStats {
            pairs: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            median: 0.0,
            weak_pairs: 0,
        };
    }
    cs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = cs.len();
    CorrelationStats {
        pairs: n,
        min: cs[0],
        max: cs[n - 1],
        mean: cs.iter().sum::<f64>() / n as f64,
        median: cs[n / 2],
        weak_pairs: cs.iter().filter(|&&c| c < 0.5).count(),
    }
}

/// Seam disagreement between two placed tiles sharing an overlap, plus
/// aggregate statistics across the grid.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeamError {
    /// Number of overlapping adjacent pairs evaluated.
    pub seams: usize,
    /// Mean of the per-seam RMS pixel differences.
    pub mean_rms: f64,
    /// Worst per-seam RMS.
    pub max_rms: f64,
}

/// Measures pixel disagreement in every adjacent overlap under
/// `positions`. With correct positions this is sensor noise plus
/// vignetting; a misplaced tile shows up as an outlier seam.
pub fn seam_error(source: &dyn TileSource, positions: &AbsolutePositions) -> SeamError {
    let shape = positions.shape;
    let (tw, th) = source.tile_dims();
    let mut rms_values: Vec<f64> = Vec::new();
    for id in shape.ids() {
        // unreadable tiles simply contribute no seams
        let Ok(img) = source.load(id) else {
            continue;
        };
        let (px, py) = positions.get(id);
        for nb in [shape.west(id), shape.north(id)].into_iter().flatten() {
            let Ok(nb_img) = source.load(nb) else {
                continue;
            };
            let (qx, qy) = positions.get(nb);
            // overlap rectangle in plate coordinates
            let x0 = px.max(qx);
            let y0 = py.max(qy);
            let x1 = (px + tw as i64).min(qx + tw as i64);
            let y1 = (py + th as i64).min(qy + th as i64);
            if x0 >= x1 || y0 >= y1 {
                continue;
            }
            let mut sum_sq = 0.0f64;
            let mut n = 0usize;
            for gy in y0..y1 {
                for gx in x0..x1 {
                    let a = img.get((gx - px) as usize, (gy - py) as usize) as f64;
                    let b = nb_img.get((gx - qx) as usize, (gy - qy) as usize) as f64;
                    sum_sq += (a - b) * (a - b);
                    n += 1;
                }
            }
            if n > 0 {
                rms_values.push((sum_sq / n as f64).sqrt());
            }
        }
    }
    if rms_values.is_empty() {
        return SeamError::default();
    }
    SeamError {
        seams: rms_values.len(),
        mean_rms: rms_values.iter().sum::<f64>() / rms_values.len() as f64,
        max_rms: rms_values.iter().fold(0.0, |a, &b| a.max(b)),
    }
}

/// Fraction of the mosaic bounding box covered by at least one tile.
pub fn coverage(source: &dyn TileSource, positions: &AbsolutePositions) -> f64 {
    let (tw, th) = source.tile_dims();
    let (mw, mh) = positions.mosaic_dims(tw, th);
    if mw == 0 || mh == 0 {
        return 0.0;
    }
    // coarse grid-of-flags coverage at 1/4 resolution (exact enough for a
    // gap detector, cheap at any mosaic size)
    let step = 4usize;
    let gw = mw.div_ceil(step);
    let gh = mh.div_ceil(step);
    let mut covered = vec![false; gw * gh];
    for id in positions.shape.ids() {
        let (px, py) = positions.get(id);
        let gx0 = px as usize / step;
        let gy0 = py as usize / step;
        let gx1 = ((px as usize + tw).div_ceil(step)).min(gw);
        let gy1 = ((py as usize + th).div_ceil(step)).min(gh);
        for gy in gy0..gy1 {
            for gx in gx0..gx1 {
                covered[gy * gw + gx] = true;
            }
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / (gw * gh) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_opt::GlobalOptimizer;
    use crate::prelude::*;
    use stitch_image::{ScanConfig, SyntheticPlate};

    fn setup() -> (SyntheticSource, StitchResult, AbsolutePositions) {
        let plate = SyntheticPlate::generate(ScanConfig {
            grid_rows: 3,
            grid_cols: 3,
            tile_width: 64,
            tile_height: 48,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 30.0,
            vignette: 0.0,
            seed: 99,
        });
        let src = SyntheticSource::new(plate);
        let result = SimpleCpuStitcher::default().compute_displacements(&src);
        let positions = GlobalOptimizer::default().solve(&result);
        (src, result, positions)
    }

    #[test]
    fn correlations_high_on_good_stitch() {
        let (_, result, _) = setup();
        let stats = correlation_stats(&result);
        assert_eq!(stats.pairs, 12);
        assert!(stats.median > 0.8, "median {}", stats.median);
        assert!(stats.min > 0.5, "min {}", stats.min);
        assert_eq!(stats.weak_pairs, 0);
        assert!(stats.mean <= stats.max && stats.mean >= stats.min);
    }

    #[test]
    fn seam_error_small_when_placed_correctly() {
        let (src, _, positions) = setup();
        let seams = seam_error(&src, &positions);
        assert_eq!(seams.seams, 12);
        // overlap disagreement ≈ independent sensor noise: √2·30 ≈ 42
        assert!(seams.mean_rms < 80.0, "mean rms {}", seams.mean_rms);
        assert!(seams.max_rms < 120.0, "max rms {}", seams.max_rms);
    }

    #[test]
    fn misplacement_inflates_seam_error() {
        let (src, _, mut positions) = setup();
        let good = seam_error(&src, &positions).mean_rms;
        // shove one tile 10 px off
        let idx = positions.shape.index(TileId::new(1, 1));
        positions.positions[idx].0 += 10;
        let bad = seam_error(&src, &positions).mean_rms;
        assert!(bad > good * 2.0, "good {good} bad {bad}");
    }

    #[test]
    fn coverage_near_one_for_valid_grid() {
        let (src, _, positions) = setup();
        let c = coverage(&src, &positions);
        assert!(c > 0.97, "coverage {c}");
    }

    #[test]
    fn coverage_detects_runaway_tile() {
        let (src, _, mut positions) = setup();
        // a tile flung far away stretches the bounding box → coverage dives
        let idx = positions.shape.index(TileId::new(2, 2));
        positions.positions[idx] = (1000, 1000);
        let c = coverage(&src, &positions);
        assert!(c < 0.5, "coverage {c}");
    }

    #[test]
    fn empty_result_stats() {
        let stats = correlation_stats(&StitchResult::empty(GridShape::new(1, 1)));
        assert_eq!(stats.pairs, 0);
    }
}
