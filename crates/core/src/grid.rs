//! Grid topology and traversal orders.
//!
//! The reference implementation "supported multiple traversal orders of
//! the grid (row, column, diagonal, and their chained counterparts)" and
//! found that "the chained-diagonal traversal order gave the best
//! performance because it allowed memory to be freed earlier" (§IV-A).
//! The same order drives GPU buffer recycling in the pipelined
//! implementation: "the minimum pool size must exceed the smallest
//! dimension of the image grid; using the chained diagonal grid traversal
//! ensures that the system starts recycling GPU buffers as early as
//! possible" (§IV-B).

use crate::types::TileId;

/// Grid dimensions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GridShape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl GridShape {
    /// Constructs a shape.
    pub fn new(rows: usize, cols: usize) -> GridShape {
        GridShape { rows, cols }
    }

    /// Total tile count.
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of adjacent pairs: `rows·(cols−1)` west + `(rows−1)·cols`
    /// north = `2·n·m − n − m` (Table I's operation count for ⊗, the
    /// inverse FFT, and the reductions).
    pub fn pairs(&self) -> usize {
        if self.rows == 0 || self.cols == 0 {
            return 0;
        }
        self.rows * (self.cols - 1) + (self.rows - 1) * self.cols
    }

    /// Flat row-major index of a tile.
    pub fn index(&self, id: TileId) -> usize {
        debug_assert!(id.row < self.rows && id.col < self.cols);
        id.row * self.cols + id.col
    }

    /// The western neighbor, if any.
    pub fn west(&self, id: TileId) -> Option<TileId> {
        (id.col > 0).then(|| TileId::new(id.row, id.col - 1))
    }

    /// The northern neighbor, if any.
    pub fn north(&self, id: TileId) -> Option<TileId> {
        (id.row > 0).then(|| TileId::new(id.row - 1, id.col))
    }

    /// The eastern neighbor, if any.
    pub fn east(&self, id: TileId) -> Option<TileId> {
        (id.col + 1 < self.cols).then(|| TileId::new(id.row, id.col + 1))
    }

    /// The southern neighbor, if any.
    pub fn south(&self, id: TileId) -> Option<TileId> {
        (id.row + 1 < self.rows).then(|| TileId::new(id.row + 1, id.col))
    }

    /// Number of displacement computations tile `id` participates in
    /// (its degree in the adjacency graph) — the initial reference count
    /// for transform recycling.
    pub fn degree(&self, id: TileId) -> usize {
        [self.west(id), self.north(id), self.east(id), self.south(id)]
            .iter()
            .flatten()
            .count()
    }

    /// All tile ids in row-major order.
    pub fn ids(&self) -> impl Iterator<Item = TileId> + '_ {
        let cols = self.cols;
        (0..self.tiles()).map(move |i| TileId::new(i / cols, i % cols))
    }
}

/// Order in which tiles are visited (and their transforms produced).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Traversal {
    /// Row by row, each row left→right.
    Row,
    /// Column by column, each column top→bottom.
    Column,
    /// Anti-diagonals (constant `row+col`), restarting at the top edge
    /// each time.
    Diagonal,
    /// Anti-diagonals traversed in alternating (boustrophedon) direction —
    /// the paper's best performer and the default.
    #[default]
    ChainedDiagonal,
    /// Rows in alternating direction (serpentine).
    ChainedRow,
}

impl Traversal {
    /// All traversal orders, for sweeps.
    pub const ALL: [Traversal; 5] = [
        Traversal::Row,
        Traversal::Column,
        Traversal::Diagonal,
        Traversal::ChainedDiagonal,
        Traversal::ChainedRow,
    ];

    /// The visit order over `shape`: every tile exactly once.
    pub fn order(&self, shape: GridShape) -> Vec<TileId> {
        let (r, c) = (shape.rows, shape.cols);
        let mut out = Vec::with_capacity(shape.tiles());
        match self {
            Traversal::Row => {
                for row in 0..r {
                    for col in 0..c {
                        out.push(TileId::new(row, col));
                    }
                }
            }
            Traversal::ChainedRow => {
                for row in 0..r {
                    if row % 2 == 0 {
                        for col in 0..c {
                            out.push(TileId::new(row, col));
                        }
                    } else {
                        for col in (0..c).rev() {
                            out.push(TileId::new(row, col));
                        }
                    }
                }
            }
            Traversal::Column => {
                for col in 0..c {
                    for row in 0..r {
                        out.push(TileId::new(row, col));
                    }
                }
            }
            Traversal::Diagonal | Traversal::ChainedDiagonal => {
                let chained = *self == Traversal::ChainedDiagonal;
                if r == 0 || c == 0 {
                    return out;
                }
                for d in 0..(r + c - 1) {
                    let row_start = d.saturating_sub(c - 1);
                    let row_end = d.min(r - 1);
                    let cells: Vec<TileId> = (row_start..=row_end)
                        .map(|row| TileId::new(row, d - row))
                        .collect();
                    if chained && d % 2 == 1 {
                        out.extend(cells.into_iter().rev());
                    } else {
                        out.extend(cells);
                    }
                }
            }
        }
        out
    }

    /// Peak number of simultaneously "live" tiles when transforms are
    /// freed as soon as all of a tile's pair computations are done and
    /// pairs are computed as early as the order allows. This is the metric
    /// that makes chained-diagonal the right default (it bounds the GPU
    /// pool size, §IV-B).
    pub fn peak_live(&self, shape: GridShape) -> usize {
        let order = self.order(shape);
        let mut remaining: Vec<usize> = shape.ids().map(|id| shape.degree(id)).collect();
        let mut arrived = vec![false; shape.tiles()];
        let mut live = 0usize;
        let mut peak = 0usize;
        for id in order {
            arrived[shape.index(id)] = true;
            live += 1;
            // both endpoints must be resident while their pair computes,
            // so the peak is observed before any completion frees them
            peak = peak.max(live);
            // complete every pair whose two endpoints have both arrived
            for (a, b) in [
                (Some(id), shape.west(id)),
                (Some(id), shape.north(id)),
                (shape.east(id), Some(id)),
                (shape.south(id), Some(id)),
            ] {
                if let (Some(a), Some(b)) = (a, b) {
                    if arrived[shape.index(a)] && arrived[shape.index(b)] {
                        for t in [a, b] {
                            let i = shape.index(t);
                            remaining[i] -= 1;
                            if remaining[i] == 0 {
                                live -= 1;
                            }
                        }
                    }
                }
            }
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shape_counts_match_table1() {
        // Table I: (2nm − n − m) pair operations for an n×m grid.
        let s = GridShape::new(42, 59);
        assert_eq!(s.tiles(), 2478);
        assert_eq!(s.pairs(), 2 * 42 * 59 - 42 - 59);
    }

    #[test]
    fn neighbors_and_degree() {
        let s = GridShape::new(3, 3);
        let corner = TileId::new(0, 0);
        assert_eq!(s.west(corner), None);
        assert_eq!(s.north(corner), None);
        assert_eq!(s.degree(corner), 2);
        let center = TileId::new(1, 1);
        assert_eq!(s.degree(center), 4);
        assert_eq!(s.west(center), Some(TileId::new(1, 0)));
        assert_eq!(s.north(center), Some(TileId::new(0, 1)));
    }

    #[test]
    fn every_traversal_is_a_permutation() {
        for shape in [
            GridShape::new(1, 1),
            GridShape::new(4, 7),
            GridShape::new(6, 3),
        ] {
            for t in Traversal::ALL {
                let order = t.order(shape);
                assert_eq!(order.len(), shape.tiles(), "{t:?}");
                let set: HashSet<TileId> = order.iter().copied().collect();
                assert_eq!(set.len(), shape.tiles(), "{t:?} revisits a tile");
                for id in &order {
                    assert!(id.row < shape.rows && id.col < shape.cols);
                }
            }
        }
    }

    #[test]
    fn diagonal_order_groups_antidiagonals() {
        let order = Traversal::Diagonal.order(GridShape::new(3, 3));
        let sums: Vec<usize> = order.iter().map(|t| t.row + t.col).collect();
        let mut sorted = sums.clone();
        sorted.sort_unstable();
        assert_eq!(sums, sorted, "anti-diagonal index must be non-decreasing");
    }

    #[test]
    fn chained_diagonal_minimizes_peak_live() {
        // §IV-A: chained-diagonal frees memory earlier than row order.
        let shape = GridShape::new(8, 12);
        let chained = Traversal::ChainedDiagonal.peak_live(shape);
        let row = Traversal::Row.peak_live(shape);
        assert!(
            chained <= row,
            "chained-diagonal ({chained}) should not be worse than row ({row})"
        );
        // pool-size rule of thumb: peak live stays near the smaller grid
        // dimension for chained-diagonal
        assert!(
            chained <= 2 * shape.rows.min(shape.cols) + 2,
            "peak {chained}"
        );
    }

    #[test]
    fn peak_live_single_row() {
        // a 1×n grid only ever needs 2 live tiles under row order
        assert_eq!(Traversal::Row.peak_live(GridShape::new(1, 10)), 2);
    }

    #[test]
    fn empty_grid() {
        let s = GridShape::new(0, 0);
        assert_eq!(s.tiles(), 0);
        assert_eq!(s.pairs(), 0);
        assert!(Traversal::ChainedDiagonal.order(s).is_empty());
    }
}
