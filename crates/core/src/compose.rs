//! Phase 3: composing the stitched mosaic (§III, §VI-A, Figs 13–14).
//!
//! "The third phase uses the absolute displacements to compose the
//! stitched image"; the paper renders its 17k×22k result with an *overlay*
//! blend (Fig 13) and a variant with highlighted tile borders (Fig 14),
//! and prototypes a visualization tool that renders "at varying
//! resolutions" (image pyramids). Composition is region-based so it can
//! run on demand — "the third phase can be carried out on demand as part
//! of visualizing the stitched image."

use std::collections::HashMap;

use stitch_image::Image;
use stitch_trace::TraceHandle;

use crate::global_opt::AbsolutePositions;
use crate::source::TileSource;
use crate::types::TileId;

/// How overlapping pixels are resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Blend {
    /// Later tiles (row-major order) overwrite earlier ones — the paper's
    /// Fig 13 overlay blend.
    #[default]
    Overlay,
    /// The first tile to cover a pixel wins.
    First,
    /// Unweighted mean of every tile covering the pixel.
    Average,
    /// Distance-to-edge feathered mean (smooth seams).
    Linear,
}

/// Mosaic composer: absolute positions + blend mode.
pub struct Composer {
    positions: AbsolutePositions,
    blend: Blend,
    /// Draw 1-px tile borders at full intensity (Fig 14's highlighted
    /// tiles). Borders *override* the blend: a border pixel renders at
    /// full intensity even where `Average`/`Linear` would otherwise mix
    /// it down with overlapping interiors.
    pub highlight_tiles: bool,
    trace: TraceHandle,
    /// Cached at construction (positions are immutable afterwards), so
    /// per-region composition doesn't rescan every position.
    origin: (i64, i64),
}

impl Composer {
    /// Creates a composer.
    pub fn new(positions: AbsolutePositions, blend: Blend) -> Composer {
        let ox = positions.positions.iter().map(|p| p.0).min().unwrap_or(0);
        let oy = positions.positions.iter().map(|p| p.1).min().unwrap_or(0);
        Composer {
            positions,
            blend,
            highlight_tiles: false,
            trace: TraceHandle::disabled(),
            origin: (ox, oy),
        }
    }

    /// Records tile reads (cat `"io"`) and the blend loop (cat
    /// `"compute"`) of each composition call on track `"compose"`.
    pub fn with_trace(mut self, trace: TraceHandle) -> Composer {
        self.trace = trace;
        self
    }

    /// The blend mode.
    pub fn blend(&self) -> Blend {
        self.blend
    }

    /// The absolute positions in use.
    pub fn positions(&self) -> &AbsolutePositions {
        &self.positions
    }

    /// The mosaic origin: the minimum placed coordinate on each axis.
    /// [`GlobalOptimizer::solve`](crate::global_opt::GlobalOptimizer::solve)
    /// normalizes positions so this is `(0, 0)`, but hand-built or
    /// partially-updated position sets may legitimately place tiles at
    /// negative coordinates; every composition method translates by this
    /// origin so such sets render correctly instead of wrapping through an
    /// unsigned cast. The origin is computed once at construction.
    pub fn origin(&self) -> (i64, i64) {
        self.origin
    }

    /// Full mosaic dimensions for `source`'s tile size (origin-translated
    /// bounding box of every tile).
    pub fn mosaic_dims(&self, source: &dyn TileSource) -> (usize, usize) {
        let (tw, th) = source.tile_dims();
        let (ox, oy) = self.origin;
        let max_x = self.positions.positions.iter().map(|p| p.0).max();
        let max_y = self.positions.positions.iter().map(|p| p.1).max();
        match (max_x, max_y) {
            (Some(mx), Some(my)) => ((mx - ox) as usize + tw, (my - oy) as usize + th),
            _ => (0, 0),
        }
    }

    /// Composes the whole mosaic.
    pub fn compose(&self, source: &dyn TileSource) -> Image<u16> {
        let (mw, mh) = self.mosaic_dims(source);
        self.compose_region(source, 0, 0, mw, mh)
    }

    /// Composes only the `w × h` window at `(x0, y0)` of the mosaic —
    /// the on-demand path used for interactive visualization. Window
    /// coordinates are origin-translated mosaic coordinates: `(0, 0)` is
    /// the top-left of the bounding box, i.e. [`Composer::origin`].
    pub fn compose_region(
        &self,
        source: &dyn TileSource,
        x0: usize,
        y0: usize,
        w: usize,
        h: usize,
    ) -> Image<u16> {
        self.compose_region_cached(source, x0, y0, w, h, None)
    }

    /// [`Composer::compose_region`] with an optional cross-call tile
    /// cache: cached tiles are blended without re-reading the source (and
    /// without re-recording an `io` trace span). Failed reads are not
    /// cached, so a hole in one region is still retried by the next.
    fn compose_region_cached(
        &self,
        source: &dyn TileSource,
        x0: usize,
        y0: usize,
        w: usize,
        h: usize,
        mut cache: Option<&mut HashMap<TileId, Image<u16>>>,
    ) -> Image<u16> {
        let (tw, th) = source.tile_dims();
        let (ox, oy) = self.origin;
        let shape = self.positions.shape;
        let mut acc = vec![0.0f64; w * h];
        let mut weight = vec![0.0f64; w * h];
        // borders beat the blend: marked here, stamped after resolution
        let mut border_mask = self.highlight_tiles.then(|| vec![false; w * h]);
        let (rx0, ry0, rx1, ry1) = (x0 as i64, y0 as i64, (x0 + w) as i64, (y0 + h) as i64);
        let _span = self
            .trace
            .scope("compose", "compute", format!("region {w}x{h}@({x0},{y0})"));
        for id in shape.ids() {
            let (px, py) = self.positions.get(id);
            let (px, py) = (px - ox, py - oy);
            // intersect tile rectangle with the requested window
            let ix0 = px.max(rx0);
            let iy0 = py.max(ry0);
            let ix1 = (px + tw as i64).min(rx1);
            let iy1 = (py + th as i64).min(ry1);
            if ix0 >= ix1 || iy0 >= iy1 {
                continue;
            }
            // a tile that can't be read leaves a hole in the mosaic
            // rather than aborting the whole composition
            let mut owned = None;
            let tile: &Image<u16> = match cache.as_deref_mut() {
                Some(tiles) => {
                    if let std::collections::hash_map::Entry::Vacant(slot) = tiles.entry(id) {
                        let Ok(loaded) = self.traced_load(source, id) else {
                            continue;
                        };
                        slot.insert(loaded);
                    }
                    &tiles[&id]
                }
                None => {
                    let Ok(loaded) = self.traced_load(source, id) else {
                        continue;
                    };
                    owned.insert(loaded)
                }
            };
            for gy in iy0..iy1 {
                let ty = (gy - py) as usize;
                let row = tile.row(ty);
                let out_row = (gy - ry0) as usize * w;
                for gx in ix0..ix1 {
                    let tx = (gx - px) as usize;
                    let v = row[tx] as f64;
                    let oi = out_row + (gx - rx0) as usize;
                    if let Some(mask) = border_mask.as_deref_mut() {
                        if tx == 0 || ty == 0 || tx == tw - 1 || ty == th - 1 {
                            mask[oi] = true;
                        }
                    }
                    match self.blend {
                        Blend::Overlay => {
                            acc[oi] = v;
                            weight[oi] = 1.0;
                        }
                        Blend::First => {
                            if weight[oi] == 0.0 {
                                acc[oi] = v;
                                weight[oi] = 1.0;
                            }
                        }
                        Blend::Average => {
                            acc[oi] += v;
                            weight[oi] += 1.0;
                        }
                        Blend::Linear => {
                            // weight by distance to the nearest tile edge
                            let dxe = (tx.min(tw - 1 - tx) + 1) as f64;
                            let dye = (ty.min(th - 1 - ty) + 1) as f64;
                            let wgt = dxe * dye;
                            acc[oi] += v * wgt;
                            weight[oi] += wgt;
                        }
                    }
                }
            }
        }
        let mut pixels: Vec<u16> = acc
            .into_iter()
            .zip(weight)
            .map(|(a, wt)| {
                if wt > 0.0 {
                    (a / wt).clamp(0.0, 65535.0).round() as u16
                } else {
                    0
                }
            })
            .collect();
        if let Some(mask) = border_mask {
            for (px, is_border) in pixels.iter_mut().zip(mask) {
                if is_border {
                    *px = 65535;
                }
            }
        }
        Image::from_vec(w, h, pixels)
    }

    fn traced_load(&self, source: &dyn TileSource, id: TileId) -> Result<Image<u16>, ()> {
        let r0 = self.trace.now_ns();
        let loaded = source.load(id);
        self.trace.record(
            "compose",
            "io",
            format!("read r{}c{}", id.row, id.col),
            r0,
            self.trace.now_ns(),
        );
        loaded.map_err(|_| ())
    }

    /// Composes the mosaic as a sequence of full-width horizontal bands
    /// of at most `band_rows` pixel rows, calling `sink(y0, band)` for
    /// each band from top to bottom. Every blend mode resolves a pixel
    /// from the tiles covering *that pixel* alone, so the stacked bands
    /// are bit-identical to [`Composer::compose`] while peak memory is
    /// one band plus the row of tiles it intersects, instead of the whole
    /// mosaic — the out-of-core composition path used by the sharded
    /// stitcher.
    ///
    /// Tiles spanning several bands are read once and kept in a cache
    /// until the bands have moved past their footprint (they used to be
    /// re-read ⌈tile_h / band_rows⌉ times); the `compose` trace records
    /// exactly one `io` span per tile actually read.
    pub fn compose_bands(
        &self,
        source: &dyn TileSource,
        band_rows: usize,
        sink: &mut dyn FnMut(usize, Image<u16>),
    ) {
        let band_rows = band_rows.max(1);
        let (mw, mh) = self.mosaic_dims(source);
        let (_, th) = source.tile_dims();
        let (_, oy) = self.origin;
        let mut cache: HashMap<TileId, Image<u16>> = HashMap::new();
        let mut y = 0;
        while y < mh {
            let h = band_rows.min(mh - y);
            let band = self.compose_region_cached(source, 0, y, mw, h, Some(&mut cache));
            sink(y, band);
            y += h;
            // evict tiles whose footprint lies fully above the next band
            cache.retain(|id, _| self.positions.get(*id).1 - oy + th as i64 > y as i64);
        }
    }

    /// Renders the tile at grid position `id` into mosaic coordinates —
    /// convenience for spot checks. Positions are translated by
    /// [`Composer::origin`] first, so a tile legitimately placed at a
    /// negative coordinate renders its window instead of wrapping to a
    /// huge offset.
    pub fn tile_window(&self, source: &dyn TileSource, id: TileId) -> Image<u16> {
        let (tw, th) = source.tile_dims();
        let (x, y) = self.positions.get(id);
        let (ox, oy) = self.origin();
        self.compose_region(source, (x - ox) as usize, (y - oy) as usize, tw, th)
    }
}

/// Builds an image pyramid: level 0 is `base`, each further level halves
/// both dimensions by 2×2 averaging (the §VI-A visualization prototype
/// "generates image pyramids ... and renders a stitched image at varying
/// resolutions").
///
/// Averages are rounded to the nearest integer (ties round up), not
/// floored — flooring would darken every level by up to 0.75 intensity
/// units and the bias would compound across levels. When a dimension is
/// odd, the trailing edge row/column has no 2×2 partner and is dropped
/// (each level is exactly `(w / 2, h / 2)`); levels stop early once either
/// dimension reaches 1.
pub fn pyramid(base: Image<u16>, levels: usize) -> Vec<Image<u16>> {
    let mut out = Vec::with_capacity(levels + 1);
    out.push(base);
    for _ in 0..levels {
        let prev = out.last().unwrap();
        let (w, h) = prev.dims();
        if w <= 1 || h <= 1 {
            break;
        }
        let (nw, nh) = (w / 2, h / 2);
        let next = Image::from_fn(nw, nh, |x, y| {
            let s = prev.get(2 * x, 2 * y) as u32
                + prev.get(2 * x + 1, 2 * y) as u32
                + prev.get(2 * x, 2 * y + 1) as u32
                + prev.get(2 * x + 1, 2 * y + 1) as u32;
            ((s + 2) / 4) as u16
        });
        out.push(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_opt::AbsolutePositions;
    use crate::grid::GridShape;
    use crate::source::MemorySource;
    use crate::stitcher::Stitcher;

    fn simple_setup() -> (MemorySource, AbsolutePositions) {
        // 1×2 grid of 8×8 tiles overlapping by 3 px
        let shape = GridShape::new(1, 2);
        let a = Image::filled(8, 8, 100u16);
        let b = Image::filled(8, 8, 300u16);
        let src = MemorySource::new(shape, vec![a, b]);
        let pos = AbsolutePositions {
            shape,
            positions: vec![(0, 0), (5, 0)],
        };
        (src, pos)
    }

    #[test]
    fn mosaic_dims() {
        let (src, pos) = simple_setup();
        let c = Composer::new(pos, Blend::Overlay);
        assert_eq!(c.mosaic_dims(&src), (13, 8));
    }

    #[test]
    fn overlay_last_tile_wins() {
        let (src, pos) = simple_setup();
        let m = Composer::new(pos, Blend::Overlay).compose(&src);
        assert_eq!(m.get(2, 4), 100);
        assert_eq!(m.get(6, 4), 300, "overlap region owned by tile b");
        assert_eq!(m.get(12, 4), 300);
    }

    #[test]
    fn banded_composition_is_bit_identical_to_full() {
        use stitch_image::{ScanConfig, SyntheticPlate};
        let cfg = ScanConfig {
            grid_rows: 2,
            grid_cols: 3,
            tile_width: 24,
            tile_height: 18,
            ..ScanConfig::default()
        };
        let src = crate::source::SyntheticSource::new(SyntheticPlate::generate(cfg));
        let result = crate::simple_cpu::SimpleCpuStitcher::default().compute_displacements(&src);
        let pos = crate::global_opt::GlobalOptimizer::default().solve(&result);
        for blend in [Blend::Overlay, Blend::Average, Blend::Linear] {
            let c = Composer::new(pos.clone(), blend);
            let full = c.compose(&src);
            // odd band height that does not divide the mosaic: exercises
            // the remainder band
            for band_rows in [1usize, 7, 1000] {
                let (mw, mh) = c.mosaic_dims(&src);
                let mut stacked = Vec::with_capacity(mw * mh);
                let mut next_y = 0;
                c.compose_bands(&src, band_rows, &mut |y0, band| {
                    assert_eq!(y0, next_y, "bands must arrive in order");
                    assert_eq!(band.width(), mw);
                    stacked.extend_from_slice(band.pixels());
                    next_y += band.height();
                });
                assert_eq!(next_y, mh, "bands must cover the mosaic");
                assert_eq!(
                    stacked,
                    full.pixels(),
                    "band_rows={band_rows} blend={blend:?} must stack to the full compose"
                );
            }
        }
    }

    #[test]
    fn first_blend_keeps_first_tile() {
        let (src, pos) = simple_setup();
        let m = Composer::new(pos, Blend::First).compose(&src);
        assert_eq!(m.get(6, 4), 100, "overlap region owned by tile a");
    }

    #[test]
    fn average_blend_midpoint_in_overlap() {
        let (src, pos) = simple_setup();
        let m = Composer::new(pos, Blend::Average).compose(&src);
        assert_eq!(m.get(6, 4), 200);
        assert_eq!(m.get(1, 1), 100);
        assert_eq!(m.get(12, 7), 300);
    }

    #[test]
    fn linear_blend_bounded_by_inputs() {
        let (src, pos) = simple_setup();
        let m = Composer::new(pos, Blend::Linear).compose(&src);
        let v = m.get(6, 4);
        assert!((100..=300).contains(&v), "{v}");
    }

    #[test]
    fn uncovered_pixels_are_black() {
        let shape = GridShape::new(1, 2);
        let src = MemorySource::new(shape, vec![Image::filled(4, 4, 9u16); 2]);
        let pos = AbsolutePositions {
            shape,
            positions: vec![(0, 0), (10, 0)], // gap between tiles
        };
        let m = Composer::new(pos, Blend::Overlay).compose(&src);
        assert_eq!(m.get(6, 2), 0);
        assert_eq!(m.get(1, 1), 9);
        assert_eq!(m.get(11, 1), 9);
    }

    #[test]
    fn region_matches_full_compose() {
        let (src, pos) = simple_setup();
        let c = Composer::new(pos, Blend::Average);
        let full = c.compose(&src);
        let region = c.compose_region(&src, 4, 2, 6, 4);
        for y in 0..4 {
            for x in 0..6 {
                assert_eq!(region.get(x, y), full.get(x + 4, y + 2));
            }
        }
    }

    #[test]
    fn highlight_draws_borders() {
        let (src, pos) = simple_setup();
        let mut c = Composer::new(pos, Blend::Overlay);
        c.highlight_tiles = true;
        let m = c.compose(&src);
        assert_eq!(m.get(0, 0), 65535);
        assert_eq!(m.get(12, 7), 65535);
        assert_eq!(m.get(2, 4), 100, "interior untouched");
    }

    #[test]
    fn banded_compose_reads_each_tile_once() {
        use stitch_image::{ScanConfig, SyntheticPlate};
        let cfg = ScanConfig {
            grid_rows: 3,
            grid_cols: 4,
            tile_width: 24,
            tile_height: 18,
            ..ScanConfig::default()
        };
        let src = crate::source::SyntheticSource::new(SyntheticPlate::generate(cfg));
        let result = crate::simple_cpu::SimpleCpuStitcher::default().compute_displacements(&src);
        let pos = crate::global_opt::GlobalOptimizer::default().solve(&result);
        // band_rows far below tile_height: every tile spans several bands
        // and used to be re-read once per band it intersected
        for band_rows in [1usize, 5] {
            let trace = stitch_trace::TraceHandle::new();
            let c = Composer::new(pos.clone(), Blend::Average).with_trace(trace.clone());
            c.compose_bands(&src, band_rows, &mut |_, _| {});
            let reads = trace.spans().iter().filter(|s| s.cat == "io").count();
            assert_eq!(
                reads,
                pos.shape.tiles(),
                "band_rows={band_rows}: each tile must be read exactly once"
            );
        }
    }

    #[test]
    fn highlight_borders_override_blend_in_overlaps() {
        // Regression: border pixels used to enter the Average/Linear
        // accumulators like any other sample, so a border crossing an
        // overlap was mixed down (e.g. (65535 + 300) / 2) and Fig-14
        // style tile outlines dimmed or vanished. Borders must override.
        let (src, pos) = simple_setup();
        for blend in [Blend::Overlay, Blend::First, Blend::Average, Blend::Linear] {
            let mut c = Composer::new(pos.clone(), blend);
            c.highlight_tiles = true;
            let m = c.compose(&src);
            // tile a's right border (x=7) and tile b's left border (x=5)
            // both sit inside the overlap x∈[5,8)
            assert_eq!(m.get(7, 4), 65535, "{blend:?}: a's border must show");
            assert_eq!(m.get(5, 4), 65535, "{blend:?}: b's border must show");
            assert_eq!(m.get(0, 0), 65535, "{blend:?}: outer border");
            assert_eq!(m.get(2, 4), 100, "{blend:?}: interior untouched");
        }
        // non-border overlap pixels still blend normally
        let mut c = Composer::new(pos, Blend::Average);
        c.highlight_tiles = true;
        assert_eq!(c.compose(&src).get(6, 2), 200);
    }

    #[test]
    fn negative_positions_translate_instead_of_wrap() {
        // tile a hand-placed at (-5, -3): before origin translation this
        // wrapped through `as usize` into a huge offset
        let shape = GridShape::new(1, 2);
        let a = Image::filled(8, 8, 100u16);
        let b = Image::filled(8, 8, 300u16);
        let src = MemorySource::new(shape, vec![a, b]);
        let pos = AbsolutePositions {
            shape,
            positions: vec![(-5, -3), (0, 0)],
        };
        let c = Composer::new(pos, Blend::Overlay);
        assert_eq!(c.origin(), (-5, -3));
        // bounding box: x spans [-5, 8), y spans [-3, 8) → 13 × 11
        assert_eq!(c.mosaic_dims(&src), (13, 11));
        let m = c.compose(&src);
        assert_eq!(m.get(0, 0), 100, "tile a renders at the origin");
        assert_eq!(m.get(12, 10), 300, "tile b at its translated offset");
        assert_eq!(m.get(12, 0), 0, "corner covered by neither tile");
        // identical to composing the same layout shifted to min (0,0)
        let norm = Composer::new(
            AbsolutePositions {
                shape,
                positions: vec![(0, 0), (5, 3)],
            },
            Blend::Overlay,
        )
        .compose(&src);
        assert_eq!(m.pixels(), norm.pixels());
    }

    #[test]
    fn tile_window_handles_negative_positions() {
        let shape = GridShape::new(1, 2);
        let a = Image::filled(8, 8, 100u16);
        let b = Image::filled(8, 8, 300u16);
        let src = MemorySource::new(shape, vec![a, b]);
        let pos = AbsolutePositions {
            shape,
            positions: vec![(-5, -3), (0, 0)],
        };
        let c = Composer::new(pos, Blend::First);
        let wa = c.tile_window(&src, TileId { row: 0, col: 0 });
        assert_eq!(wa.dims(), (8, 8));
        assert_eq!(wa.get(0, 0), 100);
        let wb = c.tile_window(&src, TileId { row: 0, col: 1 });
        assert_eq!(wb.dims(), (8, 8));
        // tile a (First blend) still owns the overlapping corner of b's window
        assert_eq!(wb.get(0, 0), 100);
        assert_eq!(wb.get(7, 7), 300);
    }

    #[test]
    fn traced_compose_records_read_and_blend_spans() {
        let (src, pos) = simple_setup();
        let trace = stitch_trace::TraceHandle::new();
        Composer::new(pos, Blend::Overlay)
            .with_trace(trace.clone())
            .compose(&src);
        let spans = trace.spans();
        assert!(spans.iter().any(|s| s.cat == "io" && s.name == "read r0c0"));
        assert!(spans
            .iter()
            .any(|s| s.cat == "compute" && s.name.starts_with("region ")));
    }

    #[test]
    fn pyramid_rounds_to_nearest_not_floor() {
        // 2×2 block (1,2,3,5): mean 2.75 → rounds to 3 (flooring gave 2)
        let base = Image::from_vec(2, 2, vec![1u16, 2, 3, 5]);
        let pyr = pyramid(base, 1);
        assert_eq!(pyr[1].dims(), (1, 1));
        assert_eq!(pyr[1].get(0, 0), 3);
        // saturation-safe at the top of the range
        let bright = Image::filled(2, 2, 65535u16);
        assert_eq!(pyramid(bright, 1)[1].get(0, 0), 65535);
    }

    #[test]
    fn pyramid_level1_pins_values_and_drops_odd_edges() {
        // 5×3 base: only the 4×2 even region participates in level 1;
        // column 4 and row 2 are dropped (documented edge behavior)
        let base = Image::from_fn(5, 3, |x, y| (10 * y + x) as u16);
        // rows: [0 1 2 3 4] [10 11 12 13 14] [20 21 22 23 24]
        let pyr = pyramid(base, 1);
        assert_eq!(pyr[1].dims(), (2, 1));
        // (0,0): avg(0,1,10,11) = 5.5 → 6; (1,0): avg(2,3,12,13) = 7.5 → 8
        assert_eq!(pyr[1].get(0, 0), 6);
        assert_eq!(pyr[1].get(1, 0), 8);
    }

    #[test]
    fn pyramid_halves_dimensions() {
        let base = Image::from_fn(16, 12, |x, y| (x * y) as u16);
        let pyr = pyramid(base, 3);
        assert_eq!(pyr.len(), 4);
        assert_eq!(pyr[1].dims(), (8, 6));
        assert_eq!(pyr[2].dims(), (4, 3));
        assert_eq!(pyr[3].dims(), (2, 1));
    }

    #[test]
    fn pyramid_preserves_mean_roughly() {
        let base = Image::filled(32, 32, 500u16);
        let pyr = pyramid(base, 2);
        assert_eq!(pyr[2].pixels().iter().copied().max(), Some(500));
        assert_eq!(pyr[2].pixels().iter().copied().min(), Some(500));
    }
}
