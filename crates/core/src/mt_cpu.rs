//! MT-CPU: spatial-domain-decomposition SPMD stitcher (paper §IV-A).
//!
//! "We used the Simple-CPU implementation to develop a simple
//! multi-threaded implementation MT CPU. This implementation uses spatial
//! domain decomposition and a thread-variant of the SPMD approach to
//! handle coarse-grained parallelism." — the grid is split into contiguous
//! row bands, one worker per band. Each worker streams through its band
//! row-major keeping only two rows of transforms live; the band's first
//! row additionally recomputes the transforms of the row above it (the
//! classic ghost-row cost of spatial decomposition, a `cols`-per-boundary
//! overhead that vanishes as bands grow).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use stitch_fft::{PlanMode, Planner};
use stitch_image::Image;
use stitch_trace::TraceHandle;

use crate::fault::{FailurePolicy, FaultTracker, StitchError};
use crate::hostpool::{PooledSpectrum, SpectrumPool};
use crate::opcount::OpCounters;
use crate::pciam::PciamContext;
use crate::source::TileSource;
use crate::stitcher::{StitchResult, Stitcher};
use crate::types::{Displacement, TileId};

/// A cached tile: pixels for the CCF stage, transform for the NCC stage.
/// Dropping the spectrum returns its storage to the shared pool.
type CachedTile = (Arc<Image<u16>>, Arc<PooledSpectrum>);

/// SPMD multi-threaded stitcher.
pub struct MtCpuStitcher {
    threads: usize,
    plan_mode: PlanMode,
    trace: TraceHandle,
}

impl MtCpuStitcher {
    /// Creates an SPMD stitcher with `threads` workers.
    pub fn new(threads: usize) -> MtCpuStitcher {
        assert!(threads >= 1);
        MtCpuStitcher {
            threads,
            plan_mode: PlanMode::Estimate,
            trace: TraceHandle::disabled(),
        }
    }

    /// Records each band worker's read/FFT/CCF spans into `trace` (track
    /// `"band{i}"`).
    pub fn with_trace(mut self, trace: TraceHandle) -> MtCpuStitcher {
        self.trace = trace;
        self
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Splits `rows` into at most `parts` contiguous bands of near-equal size.
fn row_bands(rows: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.min(rows).max(1);
    let base = rows / parts;
    let extra = rows % parts;
    let mut bands = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        bands.push((start, start + len));
        start += len;
    }
    bands
}

impl Stitcher for MtCpuStitcher {
    fn name(&self) -> String {
        format!("MT-CPU({})", self.threads)
    }

    fn try_compute_displacements(
        &self,
        source: &dyn TileSource,
        policy: &FailurePolicy,
    ) -> Result<StitchResult, StitchError> {
        let t0 = Instant::now();
        let shape = source.shape();
        let (w, h) = source.tile_dims();
        if shape.tiles() == 0 {
            return Ok(StitchResult::empty(shape));
        }
        let counters = OpCounters::new_shared();
        let planner = Planner::new(self.plan_mode);
        let tracker = FaultTracker::new(shape);
        let west: Mutex<Vec<Option<Displacement>>> = Mutex::new(vec![None; shape.tiles()]);
        let north: Mutex<Vec<Option<Displacement>>> = Mutex::new(vec![None; shape.tiles()]);
        let bands = row_bands(shape.rows, self.threads);
        // one pool shared by all band workers: transforms released by one
        // band are recycled by whichever band acquires next
        let pool = SpectrumPool::new(w * h);

        std::thread::scope(|scope| {
            for (band, &(r0, r1)) in bands.iter().enumerate() {
                let counters = Arc::clone(&counters);
                let planner = &planner;
                let west = &west;
                let north = &north;
                let tracker = &tracker;
                let trace = self.trace.clone();
                let pool = pool.clone();
                scope.spawn(move || {
                    let track = format!("band{band}");
                    let mut ctx = PciamContext::with_pool(planner, w, h, counters.clone(), pool);
                    // rolling cache: the row above the current one
                    let mut prev_row: Vec<Option<CachedTile>> = vec![None; shape.cols];
                    // ghost row: recompute the transforms of row r0−1 so the
                    // band's first north pairs can be computed locally
                    let ghost_start = r0.saturating_sub(1);
                    for r in ghost_start..r1 {
                        let ghost = r < r0;
                        let mut prev_in_row: Option<CachedTile> = None;
                        #[allow(clippy::needless_range_loop)] // c builds TileIds too
                        for c in 0..shape.cols {
                            let id = TileId::new(r, c);
                            // a failed tile leaves an empty cache slot: the
                            // pairs that needed it are skipped, the rest of
                            // the band streams on
                            let l0 = trace.now_ns();
                            let loaded = tracker.load(source, id, &policy.retry);
                            trace.record(
                                &track,
                                "io",
                                format!("read r{r}c{c}"),
                                l0,
                                trace.now_ns(),
                            );
                            let cached: Option<CachedTile> = loaded.map(|img| {
                                counters.count_read();
                                let img = Arc::new(img);
                                let f0 = trace.now_ns();
                                let fft = Arc::new(ctx.forward_fft(&img));
                                trace.record(
                                    &track,
                                    "compute",
                                    format!("fft r{r}c{c}"),
                                    f0,
                                    trace.now_ns(),
                                );
                                (img, fft)
                            });
                            if !ghost {
                                if let Some((img, fft)) = &cached {
                                    if let Some((pimg, pfft)) = &prev_in_row {
                                        let c0 = trace.now_ns();
                                        let d = ctx.displacement_oriented(
                                            pfft,
                                            fft,
                                            pimg,
                                            img,
                                            Some(crate::types::PairKind::West),
                                        );
                                        trace.record(
                                            &track,
                                            "compute",
                                            format!("ccf-w r{r}c{c}"),
                                            c0,
                                            trace.now_ns(),
                                        );
                                        west.lock()[shape.index(id)] = Some(d);
                                    }
                                    if let Some((nimg, nfft)) = &prev_row[c] {
                                        let c0 = trace.now_ns();
                                        let d = ctx.displacement_oriented(
                                            nfft,
                                            fft,
                                            nimg,
                                            img,
                                            Some(crate::types::PairKind::North),
                                        );
                                        trace.record(
                                            &track,
                                            "compute",
                                            format!("ccf-n r{r}c{c}"),
                                            c0,
                                            trace.now_ns(),
                                        );
                                        north.lock()[shape.index(id)] = Some(d);
                                    }
                                }
                            }
                            prev_in_row = cached.clone();
                            prev_row[c] = cached;
                        }
                    }
                });
            }
        });

        let mut result = StitchResult::empty(shape);
        result.west = west.into_inner();
        result.north = north.into_inner();
        result.elapsed = t0.elapsed();
        result.ops = counters.snapshot();
        // each worker keeps ≤ 2 rows (+1 in-flight tile) live
        result.peak_live_tiles = bands.len() * (2 * shape.cols + 1).min(shape.tiles());
        result.health = tracker.finish(policy)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_cpu::SimpleCpuStitcher;
    use crate::source::SyntheticSource;
    use crate::stitcher::truth_vectors;
    use stitch_image::{ScanConfig, SyntheticPlate};

    fn plate(rows: usize, cols: usize) -> SyntheticPlate {
        SyntheticPlate::generate(ScanConfig {
            grid_rows: rows,
            grid_cols: cols,
            tile_width: 64,
            tile_height: 48,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 40.0,
            vignette: 0.03,
            seed: 23,
        })
    }

    #[test]
    fn bands_partition_rows() {
        assert_eq!(row_bands(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(row_bands(2, 8), vec![(0, 1), (1, 2)]);
        assert_eq!(row_bands(5, 1), vec![(0, 5)]);
    }

    #[test]
    fn matches_sequential_results() {
        let src = SyntheticSource::new(plate(4, 4));
        let seq = SimpleCpuStitcher::default().compute_displacements(&src);
        for threads in [1, 2, 3, 4] {
            let mt = MtCpuStitcher::new(threads).compute_displacements(&src);
            assert_eq!(mt.west, seq.west, "threads={threads}");
            assert_eq!(mt.north, seq.north, "threads={threads}");
        }
    }

    #[test]
    fn recovers_ground_truth() {
        let src = SyntheticSource::new(plate(3, 5));
        let r = MtCpuStitcher::new(3).compute_displacements(&src);
        assert!(r.is_complete());
        let (tw, tn) = truth_vectors(src.plate());
        assert_eq!(r.count_errors(&tw, &tn, 0), 0);
    }

    #[test]
    fn ghost_rows_add_bounded_fft_overhead() {
        let src = SyntheticSource::new(plate(4, 4));
        let r = MtCpuStitcher::new(4).compute_displacements(&src);
        // 4 bands of 1 row: 3 ghost rows → 16 + 12 forward FFTs
        assert_eq!(r.ops.forward_ffts, 16 + 12);
        // pair work is never duplicated
        assert_eq!(r.ops.inverse_ffts, (2 * 16 - 4 - 4) as u64);
    }

    #[test]
    fn more_threads_than_rows() {
        let src = SyntheticSource::new(plate(2, 3));
        let r = MtCpuStitcher::new(16).compute_displacements(&src);
        assert!(r.is_complete());
    }
}
