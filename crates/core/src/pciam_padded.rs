//! Padded PCIAM — §VI-A's other transform optimization, implemented.
//!
//! "Padding image tiles (or trimming them) to have smaller prime factors
//! (e.g., 1536 × 1536) is known to enhance the performance of FFTW and
//! cuFFT ... We expect to see performance benefits when computing the
//! forward and inverse FFTs of padded images."
//!
//! Tiles are embedded into the smallest 7-smooth rectangle and padded with
//! the tile mean (mean padding keeps the DC bin honest and avoids the hard
//! zero-edge discontinuity that would inject spurious axis correlations).
//! The correlation peak then lives on the padded torus, so candidate
//! displacements come from the *padded* periodicity — but the CCF
//! disambiguation still scores candidates against the original, unpadded
//! pixels, so the final displacement is identical to the exact path's
//! whenever both find the truth.

use std::sync::Arc;

use stitch_fft::{c64, factor::next_smooth, Direction, Fft2d, Planner, C64};
use stitch_image::Image;

use crate::hostpool::{PooledSpectrum, SpectrumPool};
use crate::opcount::OpCounters;
use crate::pciam::{resolve_peaks_oriented_into, top_peaks_into, PairScratch, DEFAULT_PEAK_COUNT};
use crate::types::{Displacement, PairKind};

/// Per-thread context computing PCIAM on mean-padded 7-smooth tiles.
pub struct PaddedPciamContext {
    /// Original tile width.
    width: usize,
    /// Original tile height.
    height: usize,
    /// Padded (7-smooth) width.
    padded_w: usize,
    /// Padded (7-smooth) height.
    padded_h: usize,
    forward: Fft2d,
    inverse: Fft2d,
    scratch: Vec<C64>,
    work: Vec<C64>,
    pool: SpectrumPool,
    pair: PairScratch,
    counters: Arc<OpCounters>,
}

impl PaddedPciamContext {
    /// Builds a context for `width × height` tiles, padding to the next
    /// 7-smooth sizes, with a private spectrum pool.
    pub fn new(planner: &Planner, width: usize, height: usize, counters: Arc<OpCounters>) -> Self {
        let (pw, ph) = Self::padded_dims_for(width, height);
        let pool = SpectrumPool::new(pw * ph);
        Self::with_pool(planner, width, height, counters, pool)
    }

    /// Like [`PaddedPciamContext::new`] but recycling padded spectra
    /// through a shared pool (sized `padded_w × padded_h`).
    pub fn with_pool(
        planner: &Planner,
        width: usize,
        height: usize,
        counters: Arc<OpCounters>,
        pool: SpectrumPool,
    ) -> Self {
        let (padded_w, padded_h) = Self::padded_dims_for(width, height);
        let n = padded_w * padded_h;
        assert_eq!(pool.buf_len(), n, "pool sized for other tiles");
        PaddedPciamContext {
            width,
            height,
            padded_w,
            padded_h,
            forward: Fft2d::new(planner, padded_w, padded_h, Direction::Forward),
            inverse: Fft2d::new(planner, padded_w, padded_h, Direction::Inverse),
            scratch: vec![C64::ZERO; n],
            work: vec![C64::ZERO; n],
            pool,
            pair: PairScratch::default(),
            counters,
        }
    }

    /// The 7-smooth dims a `width × height` tile pads to.
    pub fn padded_dims_for(width: usize, height: usize) -> (usize, usize) {
        (next_smooth(width), next_smooth(height))
    }

    /// Original tile width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Original tile height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The padded transform dimensions `(w, h)`.
    pub fn padded_dims(&self) -> (usize, usize) {
        (self.padded_w, self.padded_h)
    }

    /// Forward transform of a mean-padded tile. The spectrum has
    /// `padded_w × padded_h` bins; its storage recycles through the
    /// context's pool.
    pub fn forward_fft(&mut self, img: &Image<u16>) -> PooledSpectrum {
        assert_eq!(img.dims(), (self.width, self.height), "tile dims mismatch");
        let mean = img.mean();
        let mut data = self.pool.acquire();
        data.fill(c64(mean, 0.0));
        for y in 0..self.height {
            let row = img.row(y);
            let dst = &mut data[y * self.padded_w..y * self.padded_w + self.width];
            for (d, &p) in dst.iter_mut().zip(row) {
                *d = c64(p as f64, 0.0);
            }
        }
        self.forward.process(&mut data, &mut self.scratch);
        self.counters.count_forward_fft();
        data
    }

    /// NCC + inverse FFT + top-`k` peaks on the padded torus.
    pub fn correlation_peaks(&mut self, fa: &[C64], fb: &[C64], k: usize) -> Vec<(usize, f64)> {
        self.correlation_peaks_into(fa, fb, k);
        self.pair.peaks.clone()
    }

    /// Allocation-free core of [`PaddedPciamContext::correlation_peaks`]:
    /// the result lands in `self.pair.peaks`.
    fn correlation_peaks_into(&mut self, fa: &[C64], fb: &[C64], k: usize) {
        let n = self.padded_w * self.padded_h;
        assert_eq!(fa.len(), n);
        assert_eq!(fb.len(), n);
        // Fused NCC → row-FFT pass through the process-wide backend, as
        // in the unpadded context.
        let backend = stitch_fft::backend::active();
        self.inverse
            .process_ncc_fused(backend, fa, fb, &mut self.work, &mut self.scratch);
        self.counters.count_elementwise();
        self.counters.count_inverse_fft();
        top_peaks_into(
            &self.work,
            self.padded_w,
            k,
            &mut self.pair.cand,
            &mut self.pair.peaks,
        );
        self.counters.count_max_reduction();
        let scale = 1.0 / n as f64;
        for p in &mut self.pair.peaks {
            p.1 *= scale;
        }
    }

    /// Full pair computation: peaks from the padded torus, CCF against the
    /// original pixels.
    pub fn displacement_oriented(
        &mut self,
        fa: &[C64],
        fb: &[C64],
        img_a: &Image<u16>,
        img_b: &Image<u16>,
        kind: Option<PairKind>,
    ) -> Displacement {
        self.correlation_peaks_into(fa, fb, DEFAULT_PEAK_COUNT);
        self.pair.indices.clear();
        self.pair
            .indices
            .extend(self.pair.peaks.iter().map(|&(i, _)| i));
        // candidates use the *padded* periodicity; the CCF and refinement
        // inside resolve see the original images (their own dims)
        let d = resolve_peaks_oriented_into(
            &self.pair.indices,
            self.padded_w,
            self.padded_h,
            img_a,
            img_b,
            kind,
            &mut self.pair.scored,
        );
        self.counters.count_ccf_group();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pciam::PciamContext;
    use stitch_image::{Scene, SceneParams};

    fn scene_pair(w: usize, h: usize, dx: i64, dy: i64) -> (Image<u16>, Image<u16>) {
        let scene = Scene::generate(
            w as f64 * 3.0,
            h as f64 * 3.0,
            SceneParams {
                colony_count: 20,
                seed: 777,
                ..SceneParams::default()
            },
        );
        let a = scene.render_region(w as f64, h as f64, w, h, 0.02, 30.0, 1);
        let b = scene.render_region(
            w as f64 + dx as f64,
            h as f64 + dy as f64,
            w,
            h,
            0.02,
            30.0,
            2,
        );
        (a, b)
    }

    #[test]
    fn pads_to_seven_smooth() {
        // 87 = 3·29 (29-smooth), 58 = 2·29 — awkward on purpose
        let ctx = PaddedPciamContext::new(&Planner::default(), 87, 58, OpCounters::new_shared());
        let (pw, ph) = ctx.padded_dims();
        assert_eq!((pw, ph), (90, 60)); // 2·3²·5 and 2²·3·5
        assert!(pw >= 87 && ph >= 58);
    }

    #[test]
    fn recovers_shift_on_awkward_sizes() {
        let (w, h) = (87usize, 58usize);
        let (a, b) = scene_pair(w, h, 64, 2);
        let mut ctx = PaddedPciamContext::new(&Planner::default(), w, h, OpCounters::new_shared());
        let fa = ctx.forward_fft(&a);
        let fb = ctx.forward_fft(&b);
        let d = ctx.displacement_oriented(&fa, &fb, &a, &b, Some(PairKind::West));
        assert_eq!((d.x, d.y), (64, 2));
    }

    #[test]
    fn agrees_with_exact_path() {
        let (w, h) = (87usize, 58usize);
        let planner = Planner::default();
        for (dx, dy) in [(60i64, 3i64), (66, -2), (58, 0)] {
            let (a, b) = scene_pair(w, h, dx, dy);
            let mut exact = PciamContext::new(&planner, w, h, OpCounters::new_shared());
            let ea = exact.forward_fft(&a);
            let eb = exact.forward_fft(&b);
            let de = exact.displacement_oriented(&ea, &eb, &a, &b, Some(PairKind::West));
            let mut padded = PaddedPciamContext::new(&planner, w, h, OpCounters::new_shared());
            let pa = padded.forward_fft(&a);
            let pb = padded.forward_fft(&b);
            let dp = padded.displacement_oriented(&pa, &pb, &a, &b, Some(PairKind::West));
            assert_eq!((dp.x, dp.y), (de.x, de.y), "({dx},{dy})");
        }
    }

    #[test]
    fn already_smooth_sizes_pad_to_themselves() {
        let ctx = PaddedPciamContext::new(&Planner::default(), 96, 64, OpCounters::new_shared());
        assert_eq!(ctx.padded_dims(), (96, 64));
    }
}
