//! # stitch-core — hybrid CPU-GPU image stitching (ICPP 2014)
//!
//! The paper's contribution: Fourier-based (phase-correlation) stitching
//! of microscopy tile grids, organized as pipelines that overlap disk
//! I/O, host↔device transfers and compute while staying inside strict
//! memory limits.
//!
//! ## The three phases (§III)
//!
//! 1. **Relative displacements** — [`pciam`] implements Fig 1/2/3 (FFT →
//!    NCC → inverse FFT → max → CCF disambiguation); the [`Stitcher`]
//!    implementations compute it for every adjacent pair:
//!    * [`SimpleCpuStitcher`] — sequential reference (§IV-A);
//!    * [`MtCpuStitcher`] — SPMD spatial decomposition (§IV-A);
//!    * [`PipelinedCpuStitcher`] — 3-stage CPU pipeline (§IV-B);
//!    * [`SimpleGpuStitcher`] — synchronous single-stream GPU port (§IV-A);
//!    * [`PipelinedGpuStitcher`] — the paper's six-stage multi-GPU
//!      pipeline (§IV-B, Fig 8);
//!    * [`FijiStyleStitcher`] — ImageJ/Fiji-plugin-style baseline (§V).
//! 2. **Global optimization** — [`GlobalOptimizer`] resolves the
//!    over-constrained displacement graph (spanning tree or weighted
//!    least squares) into absolute positions.
//! 3. **Composition** — [`Composer`] renders the mosaic (overlay /
//!    average / feathered blends, on-demand regions, pyramids).
//!
//! ```no_run
//! use stitch_core::prelude::*;
//! use stitch_image::{ScanConfig, SyntheticPlate};
//!
//! let plate = SyntheticPlate::generate(ScanConfig::default());
//! let source = SyntheticSource::new(plate);
//! let result = SimpleCpuStitcher::default().compute_displacements(&source);
//! let positions = GlobalOptimizer::default().solve(&result);
//! let mosaic = Composer::new(positions, Blend::Overlay).compose(&source);
//! println!("stitched {}x{} pixels", mosaic.width(), mosaic.height());
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod channel;
pub mod compose;
pub mod fault;
pub mod global_opt;
pub mod grid;
pub mod hostpool;
pub mod memlimit;
pub mod mt_cpu;
pub mod opcount;
pub mod pciam;
pub mod pciam_padded;
pub mod pciam_real;
pub mod pipelined_cpu;
pub mod pipelined_gpu;
pub mod quality;
pub mod simple_cpu;
pub mod simple_gpu;
pub mod source;
pub mod stitcher;
pub mod subpixel;
pub mod types;

pub use baseline::FijiStyleStitcher;
pub use channel::{
    estimate_channel_flat_field, run_channel_plan, ChannelPlan, ChannelRun, ChannelSession,
    ComposeUnit, CorrectedSource, MaxZSource, MultiDirSource, MultiSyntheticSource,
    MultiTileSource, PlaneSource, ZMode,
};
pub use compose::{pyramid, Blend, Composer};
pub use fault::{
    load_with_retry, FailurePolicy, FaultSpec, FaultTracker, FaultySource, HealthReport,
    RetryPolicy, SourceError, StitchError, TileStatus,
};
pub use global_opt::{AbsolutePositions, GlobalOptimizer, Method};
pub use grid::{GridShape, Traversal};
pub use hostpool::{PooledSpectrum, SpectrumPool};
pub use mt_cpu::MtCpuStitcher;
pub use opcount::{OpCounters, OpCounts};
pub use pciam::PciamContext;
pub use pciam_padded::PaddedPciamContext;
pub use pciam_real::{Correlator, RealPciamContext, TransformKind};
pub use pipelined_cpu::{PipelinedCpuConfig, PipelinedCpuStitcher};
pub use pipelined_gpu::{GhostMode, PipelinedGpuConfig, PipelinedGpuStitcher};
pub use quality::{correlation_stats, coverage, seam_error, CorrelationStats, SeamError};
pub use simple_cpu::SimpleCpuStitcher;
pub use simple_gpu::SimpleGpuStitcher;
pub use source::{DirSource, MemorySource, SubgridSource, SyntheticSource, TileSource};
pub use stitcher::{truth_vectors, StitchResult, Stitcher, TruthVector};
pub use subpixel::{refine_subpixel, SubpixelDisplacement};
pub use types::{Displacement, PairKind, TileId};

/// Convenience re-exports for application code.
pub mod prelude {
    pub use crate::channel::{
        run_channel_plan, ChannelPlan, ChannelSession, ComposeUnit, MultiDirSource,
        MultiSyntheticSource, MultiTileSource, ZMode,
    };
    pub use crate::compose::{Blend, Composer};
    pub use crate::fault::{
        FailurePolicy, FaultSpec, FaultySource, HealthReport, RetryPolicy, SourceError,
        StitchError, TileStatus,
    };
    pub use crate::global_opt::{AbsolutePositions, GlobalOptimizer, Method};
    pub use crate::grid::{GridShape, Traversal};
    pub use crate::source::{DirSource, MemorySource, SubgridSource, SyntheticSource, TileSource};
    pub use crate::stitcher::{truth_vectors, StitchResult, Stitcher};
    pub use crate::types::{Displacement, PairKind, TileId};
    pub use crate::{
        FijiStyleStitcher, MtCpuStitcher, PipelinedCpuStitcher, PipelinedGpuStitcher,
        SimpleCpuStitcher, SimpleGpuStitcher,
    };
}
