//! Fiji-plugin-style baseline stitcher.
//!
//! Models the *cost structure* of the ImageJ/Fiji stitching plugin the
//! paper benchmarks against (Preibisch et al., multi-threaded, same
//! mathematical operators, §II/§V): every adjacent pair is processed
//! independently — both tiles are re-read and both forward transforms
//! recomputed per pair, with no transform caching across pairs. That
//! redundancy (≈2× the FFTs, ≈2× the reads) is the algorithmic half of
//! the gap in Table II; the rest (JVM, boxed pixels) is not reproduced
//! here, so the measured ratio understates the paper's 261x but preserves
//! the ordering. Spectrum *storage* still recycles through the shared
//! host pool — the modeled cost is the redundant reads and FFTs, not
//! allocator churn.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use stitch_fft::{PlanMode, Planner};
use stitch_trace::TraceHandle;

use crate::fault::{FailurePolicy, FaultTracker, StitchError};
use crate::hostpool::SpectrumPool;
use crate::opcount::OpCounters;
use crate::pciam::PciamContext;
use crate::source::TileSource;
use crate::stitcher::{StitchResult, Stitcher};
use crate::types::{Displacement, PairKind, TileId};

/// Per-pair-recomputation baseline, optionally multi-threaded (the plugin
/// is "fully multithreaded taking advantage of multi-core CPUs").
pub struct FijiStyleStitcher {
    threads: usize,
    trace: TraceHandle,
}

impl FijiStyleStitcher {
    /// Creates the baseline with `threads` workers.
    pub fn new(threads: usize) -> FijiStyleStitcher {
        assert!(threads >= 1);
        FijiStyleStitcher {
            threads,
            trace: TraceHandle::disabled(),
        }
    }

    /// Records each worker's per-pair read/compute spans into `trace`
    /// (track `"pair{i}"`).
    pub fn with_trace(mut self, trace: TraceHandle) -> FijiStyleStitcher {
        self.trace = trace;
        self
    }
}

impl Stitcher for FijiStyleStitcher {
    fn name(&self) -> String {
        format!("Fiji-style({})", self.threads)
    }

    fn try_compute_displacements(
        &self,
        source: &dyn TileSource,
        policy: &FailurePolicy,
    ) -> Result<StitchResult, StitchError> {
        let t0 = Instant::now();
        let shape = source.shape();
        let (w, h) = source.tile_dims();
        let counters = OpCounters::new_shared();
        let tracker = FaultTracker::new(shape);
        // enumerate all pairs: (a, b, kind) with a west/north of b
        let mut pairs: Vec<(TileId, TileId, PairKind)> = Vec::with_capacity(shape.pairs());
        for id in shape.ids() {
            if let Some(west) = shape.west(id) {
                pairs.push((west, id, PairKind::West));
            }
            if let Some(north) = shape.north(id) {
                pairs.push((north, id, PairKind::North));
            }
        }
        let west: Mutex<Vec<Option<Displacement>>> = Mutex::new(vec![None; shape.tiles()]);
        let north: Mutex<Vec<Option<Displacement>>> = Mutex::new(vec![None; shape.tiles()]);
        let cursor = AtomicUsize::new(0);
        let planner = Planner::new(PlanMode::Estimate);
        let pool = SpectrumPool::new(w * h);

        std::thread::scope(|scope| {
            for worker in 0..self.threads.min(pairs.len()).max(1) {
                let counters = Arc::clone(&counters);
                let pairs = &pairs;
                let cursor = &cursor;
                let planner = &planner;
                let west = &west;
                let north = &north;
                let tracker = &tracker;
                let trace = self.trace.clone();
                let pool = pool.clone();
                scope.spawn(move || {
                    let track = format!("pair{worker}");
                    // a fresh context per worker; no *transform* caching
                    // across pairs (the modeled redundancy), but spectrum
                    // storage recycles through the shared pool
                    let mut ctx = PciamContext::with_pool(planner, w, h, counters.clone(), pool);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= pairs.len() {
                            break;
                        }
                        let (a, b, kind) = pairs[i];
                        // per-pair re-read and re-transform: the plugin's
                        // redundancy, on purpose. Either read failing
                        // voids just this pair.
                        let r0 = trace.now_ns();
                        let Some(img_a) = tracker.load(source, a, &policy.retry) else {
                            continue;
                        };
                        counters.count_read();
                        let Some(img_b) = tracker.load(source, b, &policy.retry) else {
                            continue;
                        };
                        counters.count_read();
                        trace.record(&track, "io", format!("read pair {i}"), r0, trace.now_ns());
                        let c0 = trace.now_ns();
                        let fa = ctx.forward_fft(&img_a);
                        let fb = ctx.forward_fft(&img_b);
                        let d = ctx.displacement_oriented(&fa, &fb, &img_a, &img_b, Some(kind));
                        trace.record(&track, "compute", format!("pair {i}"), c0, trace.now_ns());
                        let slot = shape.index(b);
                        match kind {
                            PairKind::West => west.lock()[slot] = Some(d),
                            PairKind::North => north.lock()[slot] = Some(d),
                        }
                    }
                });
            }
        });

        let mut result = StitchResult::empty(shape);
        result.west = west.into_inner();
        result.north = north.into_inner();
        result.elapsed = t0.elapsed();
        result.ops = counters.snapshot();
        result.peak_live_tiles = 2 * self.threads;
        result.health = tracker.finish(policy)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_cpu::SimpleCpuStitcher;
    use crate::source::SyntheticSource;
    use stitch_image::{ScanConfig, SyntheticPlate};

    fn source() -> SyntheticSource {
        SyntheticSource::new(SyntheticPlate::generate(ScanConfig {
            grid_rows: 3,
            grid_cols: 3,
            tile_width: 64,
            tile_height: 48,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 40.0,
            vignette: 0.03,
            seed: 37,
        }))
    }

    #[test]
    fn same_displacements_as_simple_cpu() {
        let src = source();
        let simple = SimpleCpuStitcher::default().compute_displacements(&src);
        let fiji = FijiStyleStitcher::new(2).compute_displacements(&src);
        assert_eq!(fiji.west, simple.west);
        assert_eq!(fiji.north, simple.north);
    }

    #[test]
    fn does_double_the_transform_work() {
        let src = source();
        let r = FijiStyleStitcher::new(1).compute_displacements(&src);
        let pairs = (2 * 9 - 3 - 3) as u64;
        // 2 reads and 2 forward FFTs per pair instead of 1 per tile
        assert_eq!(r.ops.reads, 2 * pairs);
        assert_eq!(r.ops.forward_ffts, 2 * pairs);
        assert_eq!(r.ops.inverse_ffts, pairs);
        // vs the minimal-work prediction
        let predicted = crate::opcount::OpCounts::predicted(3, 3);
        assert!(r.ops.forward_ffts > predicted.forward_ffts);
    }
}
