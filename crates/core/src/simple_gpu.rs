//! Simple-GPU: the direct port of Simple-CPU onto the device (§IV-A).
//!
//! "The reference GPU implementation is single threaded on the CPU,
//! executes CUDA memory copies synchronously, and invokes all kernels on
//! the default stream." Each operation is followed by a stream
//! synchronize, so nothing overlaps — the profile this produces (Fig 7)
//! shows one kernel at a time with gaps for host work in between. It still
//! carries all of the paper's §IV-A mitigations: transforms computed once
//! and kept in device memory, a pre-allocated buffer pool with
//! reference-count recycling, and only reduction scalars copied back.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use stitch_fft::{Direction, C64};
use stitch_gpu::{Device, PooledBuffer};
use stitch_image::Image;
use stitch_trace::TraceHandle;

use crate::fault::{FailurePolicy, FaultTracker, StitchError};
use crate::grid::Traversal;
use crate::opcount::OpCounters;
use crate::pciam::{resolve_peaks_oriented_into, DEFAULT_PEAK_COUNT};
use crate::source::TileSource;
use crate::stitcher::{StitchResult, Stitcher};
use crate::types::{Displacement, PairKind, TileId};

/// The synchronous single-stream GPU stitcher.
pub struct SimpleGpuStitcher {
    device: Device,
    traversal: Traversal,
    /// Device buffers in the transform pool; `None` sizes from the grid.
    pool_size: Option<usize>,
    trace: TraceHandle,
}

struct DeviceTile {
    img: Arc<Image<u16>>,
    buf: PooledBuffer<C64>,
    remaining: usize,
}

impl SimpleGpuStitcher {
    /// Creates a Simple-GPU stitcher on `device`.
    pub fn new(device: Device) -> SimpleGpuStitcher {
        SimpleGpuStitcher {
            device,
            traversal: Traversal::ChainedDiagonal,
            pool_size: None,
            trace: TraceHandle::disabled(),
        }
    }

    /// Overrides the device buffer-pool size.
    pub fn with_pool_size(mut self, pool_size: usize) -> SimpleGpuStitcher {
        self.pool_size = Some(pool_size);
        self
    }

    /// Records host read spans into `trace` and, at the end of the run,
    /// exports the device profiler's spans onto the same clock (tracks
    /// `"gpu{id}/{stream}"`).
    pub fn with_trace(mut self, trace: TraceHandle) -> SimpleGpuStitcher {
        self.trace = trace;
        self
    }
}

impl Stitcher for SimpleGpuStitcher {
    fn name(&self) -> String {
        "Simple-GPU".to_string()
    }

    fn try_compute_displacements(
        &self,
        source: &dyn TileSource,
        policy: &FailurePolicy,
    ) -> Result<StitchResult, StitchError> {
        let t0 = Instant::now();
        let shape = source.shape();
        let (w, h) = source.tile_dims();
        if shape.tiles() == 0 {
            return Ok(StitchResult::empty(shape));
        }
        let n = w * h;
        let counters = OpCounters::new_shared();
        let tracker = FaultTracker::new(shape);
        let mut result = StitchResult::empty(shape);

        // §IV-A: "allocates a pool of buffers in GPU memory for FFT
        // transforms ... to help manage the limited memory available"
        let pool_size = self
            .pool_size
            .unwrap_or(2 * shape.rows.min(shape.cols) + 4)
            .max(4);
        let pool = self
            .device
            .buffer_pool::<C64>(n, pool_size)
            .expect("transform pool fits device memory");
        let stream = self.device.create_stream("default");
        let staging = self.device.alloc::<u16>(n).expect("staging buffer");
        let scratch = self.device.alloc::<C64>(n).expect("fft scratch");
        let pair_buf = self.device.alloc::<C64>(n).expect("pair buffer");

        let mut live: HashMap<TileId, DeviceTile> = HashMap::new();
        let mut peak_live = 0usize;
        // host-side scratch reused across the whole run: the synchronous
        // h2d below means the upload buffer is unique again right after
        // each synchronize, so one allocation serves every tile
        let mut upload: Arc<Vec<u16>> = Arc::new(vec![0u16; n]);
        let mut indices: Vec<usize> = Vec::with_capacity(DEFAULT_PEAK_COUNT);
        let mut scored: Vec<(f64, Displacement)> = Vec::new();

        let neighbors = |id: TileId| {
            [
                shape.west(id),
                shape.north(id),
                shape.east(id),
                shape.south(id),
            ]
            .into_iter()
            .flatten()
        };
        for id in self.traversal.order(shape) {
            // read tile (host), copy synchronously, transform
            let r0 = self.trace.now_ns();
            let loaded = tracker.load(source, id, &policy.retry);
            self.trace.record(
                "cpu/main",
                "io",
                format!("read r{}c{}", id.row, id.col),
                r0,
                self.trace.now_ns(),
            );
            let img = match loaded {
                Some(img) => Arc::new(img),
                None => {
                    // release resident neighbors whose pair with this
                    // tile will never complete
                    for nb in neighbors(id) {
                        if let Some(e) = live.get_mut(&nb) {
                            e.remaining -= 1;
                            if e.remaining == 0 {
                                live.remove(&nb); // recycles the device buffer
                            }
                        }
                    }
                    continue;
                }
            };
            counters.count_read();
            let buf = pool.acquire();
            match Arc::get_mut(&mut upload) {
                Some(host) => host.copy_from_slice(img.pixels()),
                None => upload = Arc::new(img.pixels().to_vec()),
            }
            stream.h2d(Arc::clone(&upload), &staging);
            stream.synchronize(); // synchronous cudaMemcpy
            stream.convert_u16_to_complex(&staging, &buf);
            stream.synchronize();
            stream.fft2d(w, h, Direction::Forward, &buf, &scratch);
            stream.synchronize();
            counters.count_forward_fft();
            let voided = neighbors(id).filter(|nb| tracker.is_failed(*nb)).count();
            let remaining = shape.degree(id) - voided;
            if remaining > 0 {
                live.insert(
                    id,
                    DeviceTile {
                        img,
                        buf,
                        remaining,
                    },
                );
            }
            peak_live = peak_live.max(live.len());

            // complete ready pairs, one fully synchronous op at a time
            let mut ready: Vec<(TileId, TileId, PairKind)> = Vec::with_capacity(4);
            for (a, b, kind) in [
                (shape.west(id), Some(id), PairKind::West),
                (shape.north(id), Some(id), PairKind::North),
                (Some(id), shape.east(id), PairKind::West),
                (Some(id), shape.south(id), PairKind::North),
            ] {
                if let (Some(a), Some(b)) = (a, b) {
                    if live.contains_key(&a) && live.contains_key(&b) {
                        ready.push((a, b, kind));
                    }
                }
            }
            for (a, b, kind) in ready {
                {
                    let ta = &live[&a];
                    let tb = &live[&b];
                    stream.ncc(ta.buf.buffer(), tb.buf.buffer(), &pair_buf, n);
                    stream.synchronize();
                    counters.count_elementwise();
                    stream.fft2d(w, h, Direction::Inverse, &pair_buf, &scratch);
                    stream.synchronize();
                    counters.count_inverse_fft();
                    let peaks = stream
                        .top_abs_peaks(&pair_buf, n, w, DEFAULT_PEAK_COUNT)
                        .wait();
                    counters.count_max_reduction();
                    // CCF disambiguation on the CPU (host images)
                    indices.clear();
                    indices.extend(peaks.iter().map(|p| p.index));
                    let d = resolve_peaks_oriented_into(
                        &indices,
                        w,
                        h,
                        &ta.img,
                        &tb.img,
                        Some(kind),
                        &mut scored,
                    );
                    counters.count_ccf_group();
                    let slot = shape.index(b);
                    match kind {
                        PairKind::West => result.west[slot] = Some(d),
                        PairKind::North => result.north[slot] = Some(d),
                    }
                }
                for t in [a, b] {
                    let e = live.get_mut(&t).expect("endpoint resident");
                    e.remaining -= 1;
                    if e.remaining == 0 {
                        live.remove(&t); // recycles the device buffer
                    }
                }
            }
        }
        stream.synchronize();
        debug_assert!(live.is_empty(), "all device tiles must be recycled");
        result.elapsed = t0.elapsed();
        result.ops = counters.snapshot();
        result.peak_live_tiles = peak_live;
        self.trace.set_gauge("peak_live_tiles", peak_live as f64);
        self.device
            .profiler()
            .export_to_trace(&self.trace, &format!("gpu{}", self.device.id()));
        result.health = tracker.finish(policy)?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_cpu::SimpleCpuStitcher;
    use crate::source::SyntheticSource;
    use crate::stitcher::truth_vectors;
    use stitch_gpu::DeviceConfig;
    use stitch_image::{ScanConfig, SyntheticPlate};

    fn source(rows: usize, cols: usize) -> SyntheticSource {
        SyntheticSource::new(SyntheticPlate::generate(ScanConfig {
            grid_rows: rows,
            grid_cols: cols,
            tile_width: 64,
            tile_height: 48,
            overlap: 0.25,
            stage_jitter: 2.0,
            backlash_x: 1.0,
            noise_sigma: 40.0,
            vignette: 0.03,
            seed: 71,
        }))
    }

    fn device() -> Device {
        Device::new(0, DeviceConfig::small(256 << 20))
    }

    #[test]
    fn matches_cpu_results() {
        let src = source(3, 4);
        let cpu = SimpleCpuStitcher::default().compute_displacements(&src);
        let gpu = SimpleGpuStitcher::new(device()).compute_displacements(&src);
        assert_eq!(gpu.west, cpu.west);
        assert_eq!(gpu.north, cpu.north);
    }

    #[test]
    fn recovers_ground_truth() {
        let src = source(3, 3);
        let r = SimpleGpuStitcher::new(device()).compute_displacements(&src);
        assert!(r.is_complete());
        let (tw, tn) = truth_vectors(src.plate());
        assert_eq!(r.count_errors(&tw, &tn, 0), 0);
    }

    #[test]
    fn releases_all_device_memory() {
        let dev = device();
        let src = source(2, 3);
        let before = dev.memory_used();
        SimpleGpuStitcher::new(dev.clone()).compute_displacements(&src);
        assert_eq!(dev.memory_used(), before, "pool and buffers must be freed");
    }

    #[test]
    fn serialized_profile_has_gaps() {
        // Fig 7's signature: one kernel at a time on the default stream
        let dev = device();
        let src = source(2, 3);
        SimpleGpuStitcher::new(dev.clone()).compute_displacements(&src);
        assert_eq!(
            dev.profiler()
                .peak_concurrency(stitch_gpu::SpanKind::Kernel),
            1
        );
    }

    #[test]
    fn tiny_pool_still_completes() {
        let src = source(2, 4);
        let r = SimpleGpuStitcher::new(device())
            .with_pool_size(6)
            .compute_displacements(&src);
        assert!(r.is_complete());
        assert!(r.peak_live_tiles <= 6);
    }
}
