//! Shared value types of the stitching computation.

use std::fmt;

/// Identifies one tile by its grid coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TileId {
    /// Grid row (0 at the top).
    pub row: usize,
    /// Grid column (0 at the left).
    pub col: usize,
}

impl TileId {
    /// Constructs a tile id.
    pub fn new(row: usize, col: usize) -> TileId {
        TileId { row, col }
    }

    /// Row-major flat index within an `rows × cols` grid.
    pub fn index(&self, cols: usize) -> usize {
        self.row * cols + self.col
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// Which neighbor a pairwise displacement relates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PairKind {
    /// Tile vs its western neighbor (same row, col−1).
    West,
    /// Tile vs its northern neighbor (row−1, same col).
    North,
}

/// A relative displacement between two adjacent tiles, with the
/// cross-correlation quality that selected it (paper Fig 2 output tuple:
/// max correlation, x-disp, y-disp).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Displacement {
    /// Signed x displacement in pixels.
    pub x: i64,
    /// Signed y displacement in pixels.
    pub y: i64,
    /// Normalized cross-correlation factor of the winning interpretation,
    /// in `[-1, 1]`.
    pub correlation: f64,
}

impl Displacement {
    /// Constructs a displacement.
    pub fn new(x: i64, y: i64, correlation: f64) -> Displacement {
        Displacement { x, y, correlation }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_id_index() {
        assert_eq!(TileId::new(0, 0).index(10), 0);
        assert_eq!(TileId::new(2, 3).index(10), 23);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TileId::new(4, 7).to_string(), "(4,7)");
    }
}
