//! Phase 2: resolving the over-constrained displacement system (§III).
//!
//! "These displacements form an over-constrained system that one can
//! represent as a directed graph where vertices are images and edges
//! relate adjacent images. ... The second phase resolves the
//! over-constraint in the system and computes absolute displacements. It
//! selects a subset of the relative displacements or uses a global
//! optimization approach to adjust them to a path invariant state."
//!
//! Both strategies the paper names are implemented:
//!
//! * [`Method::SpanningTree`] — keep the highest-correlation spanning
//!   subset of edges (a maximum spanning tree), which is trivially path
//!   invariant;
//! * [`Method::LeastSquares`] — adjust *all* edges at once by minimizing
//!   `Σ wᵢⱼ ‖pⱼ − pᵢ − dᵢⱼ‖²` (correlation-weighted), solved per axis by
//!   conjugate gradient on the weighted graph Laplacian with tile (0,0)
//!   pinned as the gauge.
//!
//! Low-correlation edges (outliers from featureless overlaps) are
//! down-weighted or dropped before solving; this is what lets phase 2
//! repair the occasional phase-1 outlier.

use crate::grid::GridShape;
use crate::stitcher::StitchResult;
use crate::types::TileId;

/// Over-constraint resolution strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Method {
    /// Maximum-correlation spanning tree ("selects a subset").
    SpanningTree,
    /// Correlation-weighted least squares ("global optimization").
    #[default]
    LeastSquares,
}

/// Phase-2 configuration.
#[derive(Clone, Debug)]
pub struct GlobalOptimizer {
    /// Resolution strategy.
    pub method: Method,
    /// Edges with correlation below this are discarded entirely (they
    /// carry no information; typical featureless-overlap correlations
    /// hover near zero).
    pub min_correlation: f64,
    /// Conjugate-gradient iteration cap (least squares only).
    pub max_iterations: usize,
    /// Conjugate-gradient residual tolerance.
    pub tolerance: f64,
    /// After a least-squares solve, edges whose residual exceeds this many
    /// pixels are discarded and the system re-solved (up to
    /// [`GlobalOptimizer::refilter_rounds`] times). This is what catches
    /// *confident* outliers — a wrong displacement with a high correlation
    /// passes the correlation filter but cannot be reconciled with the
    /// redundant constraints around it. `None` disables refiltering.
    pub residual_filter_px: Option<f64>,
    /// Maximum residual-refilter rounds.
    pub refilter_rounds: usize,
}

impl Default for GlobalOptimizer {
    fn default() -> Self {
        GlobalOptimizer {
            method: Method::LeastSquares,
            min_correlation: 0.3,
            max_iterations: 1000,
            tolerance: 1e-9,
            residual_filter_px: Some(3.0),
            refilter_rounds: 2,
        }
    }
}

/// Absolute tile positions (phase-2 output), normalized so the minimum
/// coordinate on each axis is zero. `PartialEq`/`Eq` support the
/// cross-variant differential oracle (`stitch-testkit`), which asserts
/// bit-identical phase-2 output across all implementation variants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbsolutePositions {
    /// Grid dimensions.
    pub shape: GridShape,
    /// Top-left plate coordinate of each tile, row-major.
    pub positions: Vec<(i64, i64)>,
}

impl AbsolutePositions {
    /// Position of one tile.
    pub fn get(&self, id: TileId) -> (i64, i64) {
        self.positions[self.shape.index(id)]
    }

    /// Bounding-box size of the mosaic given the tile dimensions.
    pub fn mosaic_dims(&self, tile_w: usize, tile_h: usize) -> (usize, usize) {
        let max_x = self.positions.iter().map(|p| p.0).max().unwrap_or(0);
        let max_y = self.positions.iter().map(|p| p.1).max().unwrap_or(0);
        (max_x as usize + tile_w, max_y as usize + tile_h)
    }

    /// Maximum per-axis deviation from another solution after aligning
    /// gauges (useful for comparing against ground truth).
    pub fn max_deviation(&self, truth: &[(i64, i64)]) -> (i64, i64) {
        assert_eq!(truth.len(), self.positions.len());
        // align gauges on tile 0
        let (gx, gy) = (
            self.positions[0].0 - truth[0].0,
            self.positions[0].1 - truth[0].1,
        );
        let mut dev = (0i64, 0i64);
        for (p, t) in self.positions.iter().zip(truth) {
            dev.0 = dev.0.max((p.0 - t.0 - gx).abs());
            dev.1 = dev.1.max((p.1 - t.1 - gy).abs());
        }
        dev
    }
}

/// One usable edge of the displacement graph: `to = from + (dx, dy)`.
struct Edge {
    from: usize,
    to: usize,
    dx: f64,
    dy: f64,
    /// Current solve weight (mutated by IRLS).
    weight: f64,
    /// Correlation-derived weight the IRLS rounds rescale from.
    base_weight: f64,
}

impl GlobalOptimizer {
    /// Resolves a phase-1 result into absolute positions.
    pub fn solve(&self, result: &StitchResult) -> AbsolutePositions {
        let shape = result.shape;
        let n = shape.tiles();
        if n == 0 {
            return AbsolutePositions {
                shape,
                positions: Vec::new(),
            };
        }
        let mut edges = self.collect_edges(result);
        let mut positions = match self.method {
            Method::SpanningTree => self.solve_mst(shape, &edges),
            Method::LeastSquares => self.solve_least_squares(shape, &edges),
        };
        // robust refinement (least squares only: a spanning tree has no
        // redundancy to expose outliers). Plain hard thresholding is
        // unstable — an outlier drags its neighbors' residuals over the
        // limit and good edges get cut with it — so the solve is refined
        // by IRLS (a Cauchy-style robust loss that progressively mutes
        // high-residual edges) and only then trimmed and re-solved.
        if self.method == Method::LeastSquares {
            if let Some(limit) = self.residual_filter_px {
                let residual = |e: &Edge, pos: &[(f64, f64)]| -> f64 {
                    let (fx, fy) = pos[e.from];
                    let (tx, ty) = pos[e.to];
                    (tx - fx - e.dx).abs().max((ty - fy - e.dy).abs())
                };
                for _ in 0..self.refilter_rounds.max(2) {
                    for e in edges.iter_mut() {
                        let r = residual(e, &positions) / limit;
                        e.weight = e.base_weight / (1.0 + r * r);
                    }
                    positions = self.solve_least_squares(shape, &edges);
                }
                // final hard trim: by now outlier residuals stand out
                edges.retain(|e| residual(e, &positions) <= limit);
                for e in edges.iter_mut() {
                    e.weight = e.base_weight;
                }
                positions = self.solve_least_squares(shape, &edges);
            }
        }
        // normalize: min coordinate → 0
        let min_x = positions.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let min_y = positions.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        AbsolutePositions {
            shape,
            positions: positions
                .into_iter()
                .map(|(x, y)| ((x - min_x).round() as i64, (y - min_y).round() as i64))
                .collect(),
        }
    }

    fn collect_edges(&self, result: &StitchResult) -> Vec<Edge> {
        let shape = result.shape;
        let mut edges = Vec::with_capacity(shape.pairs());
        for id in shape.ids() {
            let i = shape.index(id);
            if let (Some(w), Some(d)) = (shape.west(id), result.west[i]) {
                if d.correlation >= self.min_correlation {
                    edges.push(Edge {
                        from: shape.index(w),
                        to: i,
                        dx: d.x as f64,
                        dy: d.y as f64,
                        weight: d.correlation.max(1e-3),
                        base_weight: d.correlation.max(1e-3),
                    });
                }
            }
            if let (Some(nn), Some(d)) = (shape.north(id), result.north[i]) {
                if d.correlation >= self.min_correlation {
                    edges.push(Edge {
                        from: shape.index(nn),
                        to: i,
                        dx: d.x as f64,
                        dy: d.y as f64,
                        weight: d.correlation.max(1e-3),
                        base_weight: d.correlation.max(1e-3),
                    });
                }
            }
        }
        edges
    }

    /// Maximum-correlation spanning tree + BFS placement. Unreachable
    /// tiles (possible when many edges were filtered) fall back to the
    /// position of their nearest placed neighbor plus the median step.
    fn solve_mst(&self, shape: GridShape, edges: &[Edge]) -> Vec<(f64, f64)> {
        let n = shape.tiles();
        // Kruskal with union-find, highest weight first.
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_by(|&a, &b| {
            edges[b]
                .weight
                .partial_cmp(&edges[a].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut adj: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new(); n];
        for &ei in &order {
            let e = &edges[ei];
            let (ra, rb) = (find(&mut parent, e.from), find(&mut parent, e.to));
            if ra != rb {
                parent[ra] = rb;
                adj[e.from].push((e.to, e.dx, e.dy));
                adj[e.to].push((e.from, -e.dx, -e.dy));
            }
        }
        // BFS from node 0
        let mut pos = vec![(0.0f64, 0.0f64); n];
        let mut placed = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        placed[0] = true;
        queue.push_back(0usize);
        while let Some(u) = queue.pop_front() {
            for &(v, dx, dy) in &adj[u] {
                if !placed[v] {
                    placed[v] = true;
                    pos[v] = (pos[u].0 + dx, pos[u].1 + dy);
                    queue.push_back(v);
                }
            }
        }
        self.place_orphans(shape, &mut pos, &mut placed, edges);
        pos
    }

    /// Weighted least squares via conjugate gradient on the graph
    /// Laplacian (node 0 pinned to the origin), solved per axis.
    fn solve_least_squares(&self, shape: GridShape, edges: &[Edge]) -> Vec<(f64, f64)> {
        let n = shape.tiles();
        if n == 1 {
            return vec![(0.0, 0.0)];
        }
        // assemble L (sparse, CSR-ish adjacency) over nodes 1..n
        let mut diag = vec![0.0f64; n];
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut rhs_x = vec![0.0f64; n];
        let mut rhs_y = vec![0.0f64; n];
        for e in edges {
            diag[e.from] += e.weight;
            diag[e.to] += e.weight;
            adj[e.from].push((e.to, e.weight));
            adj[e.to].push((e.from, e.weight));
            rhs_x[e.to] += e.weight * e.dx;
            rhs_x[e.from] -= e.weight * e.dx;
            rhs_y[e.to] += e.weight * e.dy;
            rhs_y[e.from] -= e.weight * e.dy;
        }
        let apply = |p: &[f64], out: &mut [f64]| {
            // L·p over the reduced system (node 0 clamped to 0)
            for i in 1..n {
                let mut v = diag[i] * p[i];
                for &(j, w) in &adj[i] {
                    if j != 0 {
                        v -= w * p[j];
                    }
                }
                out[i] = v;
            }
        };
        let solve_axis = |rhs: &[f64]| -> Vec<f64> {
            let mut x = vec![0.0f64; n];
            let mut r = rhs.to_vec();
            r[0] = 0.0;
            let mut p = r.clone();
            let mut ap = vec![0.0f64; n];
            let mut rs: f64 = r[1..].iter().map(|v| v * v).sum();
            if rs == 0.0 {
                return x;
            }
            for _ in 0..self.max_iterations {
                apply(&p, &mut ap);
                ap[0] = 0.0;
                let p_ap: f64 = p[1..].iter().zip(&ap[1..]).map(|(a, b)| a * b).sum();
                if p_ap.abs() < 1e-300 {
                    break;
                }
                let alpha = rs / p_ap;
                for i in 1..n {
                    x[i] += alpha * p[i];
                    r[i] -= alpha * ap[i];
                }
                let rs_new: f64 = r[1..].iter().map(|v| v * v).sum();
                if rs_new.sqrt() < self.tolerance {
                    break;
                }
                let beta = rs_new / rs;
                rs = rs_new;
                for i in 1..n {
                    p[i] = r[i] + beta * p[i];
                }
            }
            x
        };
        let xs = solve_axis(&rhs_x);
        let ys = solve_axis(&rhs_y);
        let mut pos: Vec<(f64, f64)> = xs.into_iter().zip(ys).collect();
        // disconnected components (all their edges filtered) stay at the
        // origin in the CG solution; place them heuristically
        let mut placed = self.reachability(n, edges);
        self.place_orphans(shape, &mut pos, &mut placed, edges);
        pos
    }

    fn reachability(&self, n: usize, edges: &[Edge]) -> Vec<bool> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in edges {
            adj[e.from].push(e.to);
            adj[e.to].push(e.from);
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Positions tiles that ended up with no usable edges: infer the
    /// median grid step from placed neighbors and extrapolate.
    fn place_orphans(
        &self,
        shape: GridShape,
        pos: &mut [(f64, f64)],
        placed: &mut [bool],
        edges: &[Edge],
    ) {
        if placed.iter().all(|&p| p) {
            return;
        }
        // median horizontal/vertical steps from the edges we do trust
        let mut hx: Vec<f64> = Vec::new();
        let mut vy: Vec<f64> = Vec::new();
        for e in edges {
            // A horizontal (west) edge joins adjacent indices *within one
            // row*. The index-difference test alone misclassifies north
            // edges on single-column grids, where vertical neighbors also
            // differ by exactly one index.
            let same_row = e.to / shape.cols == e.from / shape.cols;
            if e.to == e.from + 1 && same_row {
                hx.push(e.dx);
            } else {
                vy.push(e.dy);
            }
        }
        let median = |v: &mut Vec<f64>, default: f64| -> f64 {
            if v.is_empty() {
                return default;
            }
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let step_x = median(&mut hx, 0.0);
        let step_y = median(&mut vy, 0.0);
        // iterate until fixed point: place each orphan next to any placed
        // neighbor using the median steps
        let mut changed = true;
        while changed {
            changed = false;
            for id in shape.ids() {
                let i = shape.index(id);
                if placed[i] {
                    continue;
                }
                for (n_id, sx, sy) in [
                    (shape.west(id), step_x, 0.0),
                    (shape.east(id), -step_x, 0.0),
                    (shape.north(id), 0.0, step_y),
                    (shape.south(id), 0.0, -step_y),
                ] {
                    if let Some(nb) = n_id {
                        let j = shape.index(nb);
                        if placed[j] {
                            pos[i] = (pos[j].0 + sx, pos[j].1 + sy);
                            placed[i] = true;
                            changed = true;
                            break;
                        }
                    }
                }
            }
        }
        // a fully disconnected grid (no edges at all): nominal raster
        for id in shape.ids() {
            let i = shape.index(id);
            if !placed[i] {
                pos[i] = (id.col as f64 * step_x, id.row as f64 * step_y);
                placed[i] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stitcher::StitchResult;
    use crate::types::Displacement;

    /// Builds a StitchResult from exact truth positions.
    fn exact_result(shape: GridShape, truth: &[(i64, i64)]) -> StitchResult {
        let mut r = StitchResult::empty(shape);
        for id in shape.ids() {
            let i = shape.index(id);
            if let Some(w) = shape.west(id) {
                let (x0, y0) = truth[shape.index(w)];
                let (x1, y1) = truth[i];
                r.west[i] = Some(Displacement::new(x1 - x0, y1 - y0, 0.95));
            }
            if let Some(nn) = shape.north(id) {
                let (x0, y0) = truth[shape.index(nn)];
                let (x1, y1) = truth[i];
                r.north[i] = Some(Displacement::new(x1 - x0, y1 - y0, 0.95));
            }
        }
        r
    }

    fn grid_truth(shape: GridShape, step_x: i64, step_y: i64, jitter: i64) -> Vec<(i64, i64)> {
        shape
            .ids()
            .map(|id| {
                let j =
                    ((id.row * 7 + id.col * 13) % (2 * jitter.max(1) as usize + 1)) as i64 - jitter;
                (id.col as i64 * step_x + j, id.row as i64 * step_y - j)
            })
            .collect()
    }

    #[test]
    fn both_methods_recover_consistent_system_exactly() {
        let shape = GridShape::new(4, 5);
        let truth = grid_truth(shape, 50, 40, 3);
        let r = exact_result(shape, &truth);
        for method in [Method::SpanningTree, Method::LeastSquares] {
            let opt = GlobalOptimizer {
                method,
                ..GlobalOptimizer::default()
            };
            let sol = opt.solve(&r);
            assert_eq!(sol.max_deviation(&truth), (0, 0), "{method:?}");
        }
    }

    #[test]
    fn single_column_orphan_uses_vertical_step() {
        // Regression: on a single-column grid every north edge joins
        // adjacent indices, so the old horizontal/vertical classifier
        // (`e.to == e.from + 1`) filed them all as horizontal steps and
        // extrapolated orphans with a vertical step of 0. A sharded run
        // routinely produces 1-column sub-grids, so this must hold.
        let shape = GridShape::new(4, 1);
        let truth: Vec<(i64, i64)> = (0..4).map(|r| (0, r * 40)).collect();
        let mut r = exact_result(shape, &truth);
        // sever the last tile: low correlation gets the edge filtered
        let i = shape.index(TileId::new(3, 0));
        r.north[i] = Some(Displacement::new(0, 40, 0.01));
        let sol = GlobalOptimizer::default().solve(&r);
        assert_eq!(
            sol.max_deviation(&truth),
            (0, 0),
            "orphan on a 1-column grid must extrapolate the 40 px vertical step: {:?}",
            sol.positions
        );
    }

    #[test]
    fn single_row_orphan_uses_horizontal_step() {
        let shape = GridShape::new(1, 4);
        let truth: Vec<(i64, i64)> = (0..4).map(|c| (c * 50, 0)).collect();
        let mut r = exact_result(shape, &truth);
        let i = shape.index(TileId::new(0, 3));
        r.west[i] = Some(Displacement::new(50, 0, 0.01));
        let sol = GlobalOptimizer::default().solve(&r);
        assert_eq!(
            sol.max_deviation(&truth),
            (0, 0),
            "orphan on a 1-row grid must extrapolate the 50 px horizontal step: {:?}",
            sol.positions
        );
    }

    #[test]
    fn least_squares_repairs_single_outlier() {
        let shape = GridShape::new(3, 4);
        let truth = grid_truth(shape, 50, 40, 2);
        let mut r = exact_result(shape, &truth);
        // corrupt one edge badly but with telltale low correlation
        let i = shape.index(TileId::new(1, 2));
        r.west[i] = Some(Displacement::new(-30, 90, 0.05));
        let sol = GlobalOptimizer::default().solve(&r);
        let dev = sol.max_deviation(&truth);
        assert_eq!(dev, (0, 0), "outlier must be filtered and bridged");
    }

    #[test]
    fn both_methods_repair_injected_outlier_identically() {
        // Seeded grids with one injected outlier edge: the outlier's
        // telltale low correlation puts it below `min_correlation`, so
        // *both* strategies must discard it and land exactly on the
        // ground-truth positions — and therefore on each other.
        for seed in [3u64, 17, 92] {
            let shape = GridShape::new(4, 4);
            let truth = grid_truth(shape, 50, 40, (seed % 4) as i64 + 1);
            let mut r = exact_result(shape, &truth);
            // pick the corrupted edge from the seed (any interior west edge)
            let row = 1 + (seed as usize % (shape.rows - 1));
            let col = 1 + (seed as usize / 3 % (shape.cols - 1));
            let i = shape.index(TileId::new(row, col));
            r.west[i] = Some(Displacement::new(-120, 75, 0.08));
            let mut solutions = Vec::new();
            for method in [Method::SpanningTree, Method::LeastSquares] {
                let opt = GlobalOptimizer {
                    method,
                    ..GlobalOptimizer::default()
                };
                let sol = opt.solve(&r);
                assert_eq!(
                    sol.max_deviation(&truth),
                    (0, 0),
                    "seed={seed} {method:?} must repair the outlier to truth"
                );
                solutions.push(sol);
            }
            assert_eq!(
                solutions[0], solutions[1],
                "seed={seed}: the two methods must agree bit-identically"
            );
        }
    }

    #[test]
    fn cg_converges_within_documented_tolerance() {
        // A consistent 8×8 system: conjugate gradient at the documented
        // default tolerance (1e-9) and iteration cap must reproduce the
        // integer truth exactly after rounding — which requires the CG
        // residual to actually reach well below half a pixel. A sharper
        // check: tightening the tolerance further must not change the
        // rounded solution, i.e. the default already converged.
        let shape = GridShape::new(8, 8);
        let truth = grid_truth(shape, 55, 43, 3);
        let r = exact_result(shape, &truth);
        let defaults = GlobalOptimizer::default();
        assert_eq!(defaults.tolerance, 1e-9, "documented default tolerance");
        assert!(defaults.max_iterations >= shape.tiles());
        let sol = defaults.solve(&r);
        assert_eq!(sol.max_deviation(&truth), (0, 0));
        let tighter = GlobalOptimizer {
            tolerance: 1e-12,
            max_iterations: 10_000,
            ..GlobalOptimizer::default()
        };
        assert_eq!(
            sol,
            tighter.solve(&r),
            "default tolerance must already be converged"
        );
    }

    #[test]
    fn mst_ignores_low_correlation_edges() {
        let shape = GridShape::new(3, 3);
        let truth = grid_truth(shape, 50, 40, 2);
        let mut r = exact_result(shape, &truth);
        let i = shape.index(TileId::new(2, 2));
        r.west[i] = Some(Displacement::new(999, -999, 0.02));
        let opt = GlobalOptimizer {
            method: Method::SpanningTree,
            ..GlobalOptimizer::default()
        };
        let sol = opt.solve(&r);
        assert_eq!(sol.max_deviation(&truth), (0, 0));
    }

    #[test]
    fn least_squares_averages_inconsistent_edges() {
        // 1×3 strip with a disagreeing pair of constraints around the loop:
        // LS must land between them, weighted by correlation
        let shape = GridShape::new(2, 2);
        let mut r = StitchResult::empty(shape);
        // square: west edges say dx=50, north edges say dy=40, but one west
        // edge is off by 4 px with equal weight — the loop cannot close
        r.west[1] = Some(Displacement::new(50, 0, 0.9));
        r.west[3] = Some(Displacement::new(54, 0, 0.9));
        r.north[2] = Some(Displacement::new(0, 40, 0.9));
        r.north[3] = Some(Displacement::new(0, 40, 0.9));
        let sol = GlobalOptimizer::default().solve(&r);
        let dx_top = sol.positions[1].0 - sol.positions[0].0;
        let dx_bot = sol.positions[3].0 - sol.positions[2].0;
        // the disagreement splits: both rows end up strictly between 50 and 54
        assert!((50..=54).contains(&dx_top), "dx_top={dx_top}");
        assert!((50..=54).contains(&dx_bot), "dx_bot={dx_bot}");
        assert!(dx_bot >= dx_top);
    }

    #[test]
    fn positions_are_normalized_non_negative() {
        let shape = GridShape::new(2, 3);
        let truth = grid_truth(shape, 50, 40, 2);
        let r = exact_result(shape, &truth);
        let sol = GlobalOptimizer::default().solve(&r);
        assert!(sol.positions.iter().all(|&(x, y)| x >= 0 && y >= 0));
        assert!(sol.positions.iter().any(|&(x, _)| x == 0));
        assert!(sol.positions.iter().any(|&(_, y)| y == 0));
    }

    #[test]
    fn mosaic_dims_cover_all_tiles() {
        let shape = GridShape::new(2, 2);
        let truth = vec![(0, 0), (45, 2), (1, 38), (46, 41)];
        let r = exact_result(shape, &truth);
        let sol = GlobalOptimizer::default().solve(&r);
        let (mw, mh) = sol.mosaic_dims(64, 48);
        assert_eq!((mw, mh), (46 + 64, 41 + 48));
    }

    #[test]
    fn fully_filtered_grid_falls_back_to_raster() {
        let shape = GridShape::new(2, 2);
        let mut r = StitchResult::empty(shape);
        for d in r.west.iter_mut().chain(r.north.iter_mut()) {
            *d = Some(Displacement::new(50, 1, 0.01)); // all below threshold
        }
        let sol = GlobalOptimizer::default().solve(&r);
        assert_eq!(sol.positions.len(), 4);
        // degenerate but well-defined: everything at the origin
        assert!(sol.positions.iter().all(|&(x, y)| x == 0 && y == 0));
    }

    #[test]
    fn single_tile() {
        let shape = GridShape::new(1, 1);
        let r = StitchResult::empty(shape);
        let sol = GlobalOptimizer::default().solve(&r);
        assert_eq!(sol.positions, vec![(0, 0)]);
    }
}
