//! Sub-pixel displacement refinement.
//!
//! The paper's displacements are integer pixels — sufficient for overlay
//! composition — but the production lineage of this system (MIST) grew
//! sub-pixel output for downstream quantitative analysis. The standard
//! technique: the CCF surface near the true displacement is locally
//! quadratic, so fitting a parabola through the correlation at the integer
//! peak and its neighbors on each axis puts the vertex at the fractional
//! offset.
//!
//! The refinement is pure post-processing over [`ccf_at`]-style
//! evaluations: no change to phase 1.

use stitch_image::Image;

use crate::pciam::ccf_at;
use crate::types::Displacement;

/// A displacement with fractional precision.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SubpixelDisplacement {
    /// x displacement in pixels (fractional).
    pub x: f64,
    /// y displacement in pixels (fractional).
    pub y: f64,
    /// Correlation at the integer peak the fit was anchored on.
    pub correlation: f64,
}

/// Vertex offset of the parabola through `(-1, l)`, `(0, c)`, `(1, r)`,
/// clamped to `(-0.5, 0.5)`. Returns 0 when the points do not bend
/// downward (degenerate/flat neighborhood) or when any sample is
/// non-finite.
fn parabola_vertex(l: f64, c: f64, r: f64) -> f64 {
    let denom = l - 2.0 * c + r;
    // The finiteness guard runs first: a NaN correlation sample —
    // zero-variance overlap, saturated sensor — makes `denom` NaN, and a
    // plateau (l == c == r) makes it 0; neither may leak a NaN vertex
    // through `0.5·(l−r)/denom`.
    if !denom.is_finite() || !(l - r).is_finite() || denom >= 0.0 {
        // not a maximum — flat, bending up, or unusable samples; stay on
        // the integer peak
        return 0.0;
    }
    let v = 0.5 * (l - r) / denom;
    v.clamp(-0.5, 0.5)
}

/// Refines an integer displacement to sub-pixel precision by fitting
/// per-axis parabolas to the CCF around it. Falls back to the integer
/// value on any axis whose neighbors fall outside a usable overlap.
pub fn refine_subpixel(
    img_a: &Image<u16>,
    img_b: &Image<u16>,
    d: Displacement,
) -> SubpixelDisplacement {
    // No usable CCF at the center means no parabola to fit: `d.correlation`
    // is an NCC peak magnitude, not a CCF-surface sample, and anchoring the
    // fit on it while the neighbors come from the CCF surface mixes two
    // incompatible scales — the vertex can swing a full half-pixel on
    // garbage. Return the integer displacement unchanged instead.
    let Some(c) = ccf_at(img_a, img_b, d.x, d.y) else {
        return SubpixelDisplacement {
            x: d.x as f64,
            y: d.y as f64,
            correlation: d.correlation,
        };
    };
    let dx = match (
        ccf_at(img_a, img_b, d.x - 1, d.y),
        ccf_at(img_a, img_b, d.x + 1, d.y),
    ) {
        (Some(l), Some(r)) => parabola_vertex(l, c, r),
        _ => 0.0,
    };
    let dy = match (
        ccf_at(img_a, img_b, d.x, d.y - 1),
        ccf_at(img_a, img_b, d.x, d.y + 1),
    ) {
        (Some(u), Some(v)) => parabola_vertex(u, c, v),
        _ => 0.0,
    };
    SubpixelDisplacement {
        x: d.x as f64 + dx,
        y: d.y as f64 + dy,
        correlation: c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcount::OpCounters;
    use crate::pciam::PciamContext;
    use crate::types::PairKind;
    use stitch_fft::Planner;
    use stitch_image::{Scene, SceneParams};

    #[test]
    fn vertex_math() {
        // symmetric peak → vertex at 0
        assert_eq!(parabola_vertex(0.5, 1.0, 0.5), 0.0);
        // leaning right → positive fraction
        let v = parabola_vertex(0.4, 1.0, 0.8);
        assert!(v > 0.0 && v < 0.5, "{v}");
        // leaning left → negative
        let v = parabola_vertex(0.8, 1.0, 0.4);
        assert!(v < 0.0 && v > -0.5, "{v}");
        // flat / non-peak → 0
        assert_eq!(parabola_vertex(1.0, 1.0, 1.0), 0.0);
        assert_eq!(parabola_vertex(0.0, 0.5, 1.0), 0.0);
    }

    #[test]
    fn vertex_degenerate_neighborhoods_return_integer_peak() {
        // exact plateau at every level, including zero: the fit must stay
        // on the integer peak, never divide by the zero curvature
        for v in [0.0, 0.25, 1.0, -3.5] {
            let out = parabola_vertex(v, v, v);
            assert_eq!(out, 0.0, "plateau at {v} must return 0, got {out}");
        }
        // NaN correlation samples (zero-variance overlap) must not
        // propagate: the vertex stays finite and on the integer peak
        for (l, c, r) in [
            (f64::NAN, 1.0, 0.5),
            (0.5, f64::NAN, 0.4),
            (0.5, 1.0, f64::NAN),
            (f64::NAN, f64::NAN, f64::NAN),
        ] {
            let out = parabola_vertex(l, c, r);
            assert_eq!(out, 0.0, "({l},{c},{r}) must fall back to 0, got {out}");
        }
        // infinite samples are equally unusable
        assert_eq!(parabola_vertex(f64::INFINITY, 1.0, 0.0), 0.0);
        assert_eq!(parabola_vertex(f64::NEG_INFINITY, 1.0, 0.0), 0.0);
    }

    #[test]
    fn refine_on_flat_images_returns_integer_displacement() {
        // constant images: every CCF sample has zero variance, so the
        // correlation samples are all the degenerate 0.0 — refinement must
        // return the integer displacement unchanged, with no NaN
        let a = Image::from_fn(16, 16, |_, _| 500u16);
        let b = a.clone();
        let d = Displacement::new(3, 2, 0.0);
        let s = refine_subpixel(&a, &b, d);
        assert!(s.x.is_finite() && s.y.is_finite());
        assert_eq!((s.x, s.y), (3.0, 2.0));
    }

    /// Renders two views of a smooth (cells-only) scene offset by a
    /// *fractional* plate displacement, recovers it to < 0.35 px.
    #[test]
    fn recovers_fractional_shift() {
        let (w, h) = (96usize, 64usize);
        let scene = Scene::generate(
            w as f64 * 3.0,
            h as f64 * 3.0,
            SceneParams {
                colony_count: 60,
                cells_per_colony: (10, 30),
                cell_sigma: (3.0, 8.0),
                texture_amplitude: 0.0, // pixel-locked texture can't shift fractionally
                illumination_amplitude: 0.0,
                seed: 30,
                ..SceneParams::default()
            },
        );
        // generous overlap: this test targets sub-pixel precision, not
        // thin-overlap peak robustness (covered elsewhere)
        for true_dx in [48.3f64, 48.5, 47.8] {
            let a = scene.render_region(96.0, 64.0, w, h, 0.0, 0.0, 1);
            let b = scene.render_region(96.0 + true_dx, 64.0 + 2.0, w, h, 0.0, 0.0, 2);
            let mut ctx = PciamContext::new(&Planner::default(), w, h, OpCounters::new_shared());
            let fa = ctx.forward_fft(&a);
            let fb = ctx.forward_fft(&b);
            let d = ctx.displacement_oriented(&fa, &fb, &a, &b, Some(PairKind::West));
            assert!(
                (d.x as f64 - true_dx).abs() <= 1.0,
                "integer peak off: {} vs {true_dx}",
                d.x
            );
            let s = refine_subpixel(&a, &b, d);
            assert!(
                (s.x - true_dx).abs() < 0.35,
                "subpixel {} vs true {true_dx}",
                s.x
            );
            assert!((s.y - 2.0).abs() < 0.35, "subpixel y {}", s.y);
        }
    }

    #[test]
    fn integer_shift_stays_near_integer() {
        let (w, h) = (64usize, 48usize);
        let scene = Scene::generate(
            w as f64 * 3.0,
            h as f64 * 3.0,
            SceneParams {
                texture_amplitude: 0.0,
                illumination_amplitude: 0.0,
                colony_count: 40,
                seed: 32,
                ..SceneParams::default()
            },
        );
        let a = scene.render_region(64.0, 48.0, w, h, 0.0, 0.0, 1);
        let b = scene.render_region(64.0 + 45.0, 48.0, w, h, 0.0, 0.0, 2);
        let d = Displacement::new(45, 0, 0.99);
        let s = refine_subpixel(&a, &b, d);
        assert!((s.x - 45.0).abs() < 0.2, "{}", s.x);
        assert!(s.y.abs() < 0.2, "{}", s.y);
    }

    #[test]
    fn center_without_overlap_returns_integer_displacement() {
        // a (7, 7) displacement on 8×8 tiles leaves a single overlapping
        // pixel — below MIN_OVERLAP_PIXELS, so the center CCF sample is
        // unavailable. The refinement must return the integer displacement
        // verbatim (no parabola anchored on the NCC peak magnitude, which
        // lives on a different scale than CCF-surface samples) and pass
        // the peak correlation through untouched.
        let a = Image::from_fn(8, 8, |x, y| ((x * 13 + y * 7) % 50) as u16);
        let b = a.clone();
        let d = Displacement::new(7, 7, 0.5);
        assert!(ccf_at(&a, &b, d.x, d.y).is_none(), "center must be missing");
        let s = refine_subpixel(&a, &b, d);
        assert_eq!((s.x, s.y), (7.0, 7.0));
        assert_eq!(s.correlation, 0.5);
    }

    #[test]
    fn falls_back_at_borders() {
        // displacement at the very edge: one neighbor has no overlap
        let a = Image::from_fn(8, 8, |x, y| ((x * 13 + y * 7) % 50) as u16);
        let b = a.clone();
        let d = Displacement::new(7, 0, 0.5);
        let s = refine_subpixel(&a, &b, d);
        assert_eq!(s.x, 7.0, "x axis must fall back to integer");
    }
}
