//! Criterion microbenches for the pipeline and device substrates: queue
//! throughput, buffer-pool churn, stream command overhead, and the
//! end-to-end stitchers at small scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use stitch_gpu::{Device, DeviceConfig};
use stitch_pipeline::{Pipeline, Queue};

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group.bench_function("push_pop_uncontended", |b| {
        let q: Queue<u64> = Queue::new(1024);
        b.iter(|| {
            q.push(1);
            q.try_pop()
        });
    });
    group.sample_size(20);
    group.bench_function("spsc_10k_items", |b| {
        b.iter(|| {
            let q: Queue<u64> = Queue::new(256);
            let mut pl = Pipeline::new();
            let w = q.writer();
            pl.add_source("src", move || {
                for i in 0..10_000u64 {
                    w.push(i);
                }
            });
            let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let s2 = Arc::clone(&sum);
            pl.add_stage("sink", 1, q.clone(), move |v| {
                s2.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
            });
            pl.join().unwrap();
            sum.load(std::sync::atomic::Ordering::Relaxed)
        });
    });
    group.finish();
}

fn bench_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("device");
    group.sample_size(20);
    let dev = Device::new(0, DeviceConfig::small(64 << 20));
    group.bench_function("pool_acquire_release", |b| {
        let pool = dev.buffer_pool::<u8>(4096, 8).unwrap();
        b.iter(|| {
            let a = pool.acquire();
            drop(a);
        });
    });
    group.bench_function("kernel_launch_sync", |b| {
        let s = dev.create_stream("bench");
        b.iter(|| {
            s.launch("noop", |_| {});
            s.synchronize();
        });
    });
    group.bench_function("h2d_64k", |b| {
        let s = dev.create_stream("copy");
        let buf = dev.alloc::<u8>(65536).unwrap();
        let host = Arc::new(vec![0u8; 65536]);
        b.iter(|| {
            s.h2d(Arc::clone(&host), &buf);
            s.synchronize();
        });
    });
    group.finish();
}

fn bench_stitchers(c: &mut Criterion) {
    use stitch_core::prelude::*;
    use stitch_image::{ScanConfig, SyntheticPlate};
    let src = SyntheticSource::new(SyntheticPlate::generate(ScanConfig {
        grid_rows: 3,
        grid_cols: 3,
        tile_width: 64,
        tile_height: 48,
        overlap: 0.25,
        ..ScanConfig::default()
    }));
    let mut group = c.benchmark_group("stitchers_3x3");
    group.sample_size(10);
    group.bench_function("simple_cpu", |b| {
        b.iter(|| SimpleCpuStitcher::default().compute_displacements(&src))
    });
    group.bench_function("pipelined_cpu_2t", |b| {
        b.iter(|| PipelinedCpuStitcher::new(2).compute_displacements(&src))
    });
    group.bench_function("pipelined_gpu", |b| {
        b.iter(|| {
            let dev = Device::new(0, DeviceConfig::small(128 << 20));
            PipelinedGpuStitcher::single(dev).compute_displacements(&src)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queue, bench_device, bench_stitchers);
criterion_main!(benches);
