//! Criterion microbenches for the FFT substrate: 1-D sizes (including the
//! paper's awkward tile dimensions and their padded variants), 2-D
//! transforms, planning modes, and real-vs-complex.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stitch_fft::{c64, Fft2d, PlanMode, Planner, RealFft2d, C64};

fn bench_fft_1d(c: &mut Criterion) {
    let planner = Planner::default();
    let mut group = c.benchmark_group("fft_1d");
    // the paper's tile dims (1392 = 2^4·3·29, 1040 = 2^4·5·13), padded
    // 7-smooth variants, a power of two, and a prime (Bluestein)
    for n in [256usize, 348, 350, 1024, 1040, 1050, 1392, 1400, 1021] {
        let plan = planner.plan(n, stitch_fft::Direction::Forward);
        let input: Vec<C64> = (0..n).map(|k| c64((k % 101) as f64, 0.0)).collect();
        let mut output = vec![C64::ZERO; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan.process(&input, &mut output));
        });
    }
    group.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let planner = Planner::default();
    let mut group = c.benchmark_group("fft_2d");
    group.sample_size(20);
    for (w, h) in [(174usize, 130usize), (348, 260), (350, 256)] {
        let fft = Fft2d::new(&planner, w, h, stitch_fft::Direction::Forward);
        let mut data: Vec<C64> = (0..w * h).map(|k| c64((k % 211) as f64, 0.0)).collect();
        let mut scratch = vec![C64::ZERO; w * h];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &(w, h),
            |b, _| {
                b.iter(|| fft.process(&mut data, &mut scratch));
            },
        );
    }
    group.finish();
}

fn bench_planning_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_planning");
    group.sample_size(20);
    let n = 1392;
    for (name, mode) in [
        ("estimate", PlanMode::Estimate),
        ("measure", PlanMode::Measure),
        ("patient", PlanMode::Patient),
    ] {
        let planner = Planner::new(mode);
        let plan = planner.plan(n, stitch_fft::Direction::Forward);
        let input: Vec<C64> = (0..n).map(|k| c64((k % 101) as f64, 0.0)).collect();
        let mut output = vec![C64::ZERO; n];
        group.bench_function(name, |b| b.iter(|| plan.process(&input, &mut output)));
    }
    group.finish();
}

fn bench_real_vs_complex(c: &mut Criterion) {
    let planner = Planner::default();
    let mut group = c.benchmark_group("fft_real_vs_complex");
    group.sample_size(20);
    let (w, h) = (348usize, 260usize);
    {
        let fft = Fft2d::new(&planner, w, h, stitch_fft::Direction::Forward);
        let mut data: Vec<C64> = (0..w * h).map(|k| c64((k % 211) as f64, 0.0)).collect();
        let mut scratch = vec![C64::ZERO; w * h];
        group.bench_function("c2c_348x260", |b| {
            b.iter(|| fft.process(&mut data, &mut scratch))
        });
    }
    {
        let real = RealFft2d::new(&planner, w, h);
        let input: Vec<f64> = (0..w * h).map(|k| (k % 211) as f64).collect();
        let mut spec = vec![C64::ZERO; real.spectrum_len()];
        group.bench_function("r2c_348x260", |b| {
            b.iter(|| real.forward(&input, &mut spec))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fft_1d,
    bench_fft_2d,
    bench_planning_modes,
    bench_real_vs_complex
);
criterion_main!(benches);
