//! Criterion microbenches for the PCIAM kernels: forward transform,
//! correlation peak (NCC + inverse FFT + reduction), CCF disambiguation,
//! and the end-to-end pair displacement.

use criterion::{criterion_group, criterion_main, Criterion};
use stitch_core::opcount::OpCounters;
use stitch_core::pciam::{ccf_at, PciamContext};
use stitch_core::types::PairKind;
use stitch_fft::Planner;
use stitch_image::{Image, Scene, SceneParams};

fn pair(w: usize, h: usize) -> (Image<u16>, Image<u16>) {
    let scene = Scene::generate(w as f64 * 2.0, h as f64 * 2.0, SceneParams::default());
    let a = scene.render_region(0.0, 0.0, w, h, 0.02, 40.0, 1);
    let b = scene.render_region(w as f64 * 0.75, 2.0, w, h, 0.02, 40.0, 2);
    (a, b)
}

fn bench_pciam(c: &mut Criterion) {
    let (w, h) = (174usize, 130usize); // 1/8-scale paper tile
    let (a, b) = pair(w, h);
    let planner = Planner::default();
    let mut ctx = PciamContext::new(&planner, w, h, OpCounters::new_shared());
    let fa = ctx.forward_fft(&a);
    let fb = ctx.forward_fft(&b);

    let mut group = c.benchmark_group("pciam");
    group.sample_size(20);
    group.bench_function("forward_fft", |bch| b_iter_fft(bch, &mut ctx, &a));
    group.bench_function("correlation_peaks", |bch| {
        bch.iter(|| ctx.correlation_peaks(&fa, &fb, stitch_core::pciam::DEFAULT_PEAK_COUNT))
    });
    group.bench_function("ccf_single", |bch| {
        bch.iter(|| ccf_at(&a, &b, (w as i64 * 3) / 4, 2))
    });
    group.bench_function("pair_displacement", |bch| {
        bch.iter(|| ctx.displacement_oriented(&fa, &fb, &a, &b, Some(PairKind::West)))
    });
    group.finish();
}

fn b_iter_fft(bch: &mut criterion::Bencher, ctx: &mut PciamContext, img: &Image<u16>) {
    bch.iter(|| ctx.forward_fft(img));
}

fn bench_compose(c: &mut Criterion) {
    use stitch_core::prelude::*;
    use stitch_image::{ScanConfig, SyntheticPlate};
    let src = SyntheticSource::new(SyntheticPlate::generate(ScanConfig {
        grid_rows: 3,
        grid_cols: 4,
        tile_width: 96,
        tile_height: 72,
        overlap: 0.25,
        ..ScanConfig::default()
    }));
    let result = SimpleCpuStitcher::default().compute_displacements(&src);
    let positions = GlobalOptimizer::default().solve(&result);

    let mut group = c.benchmark_group("phases");
    group.sample_size(10);
    group.bench_function("global_opt_least_squares", |b| {
        b.iter(|| GlobalOptimizer::default().solve(&result))
    });
    let composer = Composer::new(positions, Blend::Linear);
    group.bench_function("compose_linear", |b| b.iter(|| composer.compose(&src)));
    group.finish();
}

criterion_group!(benches, bench_pciam, bench_compose);
criterion_main!(benches);
