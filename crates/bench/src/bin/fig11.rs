//! Fig 11 — strong scaling of Pipelined-CPU, threads 1–16.
//!
//! Virtual time at paper scale: time and speedup per thread count. The
//! shape to reproduce: "the speedup is almost linear as the thread count
//! increases up to 8, the number of physical cores; the speedup curve
//! changes to another linear slope between 9 and 16."
//!
//! ```text
//! cargo run --release -p stitch-bench --bin fig11
//! ```

use stitch_bench::{fmt_ns, ResultTable};
use stitch_core::grid::GridShape;
use stitch_sim::{pipelined_cpu_ns, CostModel, MachineSpec};

fn main() {
    let shape = GridShape::new(42, 59);
    let cost = CostModel::paper_c2070();
    let machine = MachineSpec::paper_testbed();
    let t1 = pipelined_cpu_ns(shape, &cost, &machine, 1);

    let mut t = ResultTable::new(
        "fig11",
        "Pipelined-CPU strong scaling, 42x59 grid (virtual testbed: 8 cores / 16 HT)",
        &["threads", "virtual time", "speedup", "bar"],
    );
    for threads in 1..=16usize {
        let ns = pipelined_cpu_ns(shape, &cost, &machine, threads);
        let speedup = t1 as f64 / ns as f64;
        t.row(
            threads,
            &[
                fmt_ns(ns),
                format!("{speedup:.2}"),
                "#".repeat(speedup.round() as usize),
            ],
        );
    }
    t.note("near-linear to 8 threads (physical cores), flatter slope 9-16 (hyper-threads)");
    t.note("paper: 16 threads ran the grid in 1.4min with speedup ~7.5 over 1 thread");
    t.emit();
}
