//! Fig 12 — Pipelined-CPU speedup surface: threads 1–16 × tiles 128–1024.
//!
//! Virtual time at paper scale. The paper's point: the scaling behaviour
//! of Fig 11 "is consistent across varying grid sizes (128 to 1024 tiles
//! per grid)".
//!
//! ```text
//! cargo run --release -p stitch-bench --bin fig12
//! ```

use stitch_bench::ResultTable;
use stitch_core::grid::GridShape;
use stitch_sim::{pipelined_cpu_ns, CostModel, MachineSpec};

fn main() {
    let cost = CostModel::paper_c2070();
    let machine = MachineSpec::paper_testbed();
    // square-ish grids with the listed tile totals
    let grids: [(usize, usize); 8] = [
        (8, 16),  // 128
        (16, 16), // 256
        (16, 24), // 384
        (16, 32), // 512
        (20, 32), // 640
        (24, 32), // 768
        (28, 32), // 896
        (32, 32), // 1024
    ];
    let threads = [1usize, 2, 4, 6, 8, 10, 12, 14, 16];

    let mut t = ResultTable::new(
        "fig12",
        "Pipelined-CPU speedup surface: threads x tiles (virtual testbed)",
        &[
            "tiles", "t=1", "t=2", "t=4", "t=6", "t=8", "t=10", "t=12", "t=14", "t=16",
        ],
    );
    for (rows, cols) in grids {
        let shape = GridShape::new(rows, cols);
        let t1 = pipelined_cpu_ns(shape, &cost, &machine, 1);
        let vals: Vec<String> = threads
            .iter()
            .map(|&th| {
                format!(
                    "{:.2}",
                    t1 as f64 / pipelined_cpu_ns(shape, &cost, &machine, th) as f64
                )
            })
            .collect();
        t.row(rows * cols, &vals);
    }
    t.note("speedup relative to 1 thread for each grid size");
    t.note("the surface is flat along the tile axis: scaling is consistent across grid sizes");
    t.emit();
}
