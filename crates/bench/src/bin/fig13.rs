//! Figs 13 & 14 — the composed stitched mosaic.
//!
//! Stitches a 42×59-shaped synthetic plate end-to-end (phase 1 → 2 → 3)
//! and writes the composed image twice: the Fig 13 overlay blend and the
//! Fig 14 variant with highlighted tile borders, plus a 3-level image
//! pyramid (the §VI-A visualization prototype).
//!
//! ```text
//! cargo run --release -p stitch-bench --bin fig13 [-- --full]
//! ```

use std::time::Instant;

use stitch_bench::{full_scale, scaled_scan, synthetic_source, ResultTable};
use stitch_core::compose::pyramid;
use stitch_core::prelude::*;
use stitch_image::{pgm, tiff};

fn main() {
    let (rows, cols, tw, th) = if full_scale() {
        (42, 59, 256, 192)
    } else {
        (14, 20, 96, 72)
    };
    let src = synthetic_source(scaled_scan(rows, cols, tw, th));
    let out_dir = std::env::temp_dir().join("stitch_fig13");
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let mut t = ResultTable::new(
        "fig13",
        &format!("composed mosaic, {rows}x{cols} grid of {tw}x{th} tiles"),
        &["step", "result"],
    );

    let t0 = Instant::now();
    let result = PipelinedCpuStitcher::new(2).compute_displacements(&src);
    t.row(
        "phase 1 (displacements)",
        &[format!("{:.2?}", t0.elapsed())],
    );

    let t1 = Instant::now();
    let positions = GlobalOptimizer::default().solve(&result);
    t.row(
        "phase 2 (global optimization)",
        &[format!("{:.2?}", t1.elapsed())],
    );

    let t2 = Instant::now();
    let composer = Composer::new(positions.clone(), Blend::Overlay);
    let mosaic = composer.compose(&src);
    t.row(
        "phase 3 (compose, overlay)",
        &[format!(
            "{}x{} px in {:.2?}",
            mosaic.width(),
            mosaic.height(),
            t2.elapsed()
        )],
    );

    let fig13_pgm = out_dir.join("fig13_overlay.pgm");
    pgm::write_pgm(&fig13_pgm, &mosaic).expect("write fig13 pgm");
    let fig13_tif = out_dir.join("fig13_overlay.tif");
    tiff::write_tiff(&fig13_tif, &mosaic).expect("write fig13 tiff");
    t.row("fig13 output", &[fig13_pgm.display().to_string()]);

    // Fig 14: highlighted tile borders
    let mut highlighter = Composer::new(positions, Blend::Overlay);
    highlighter.highlight_tiles = true;
    let highlighted = highlighter.compose(&src);
    let fig14 = out_dir.join("fig14_highlighted.pgm");
    pgm::write_pgm(&fig14, &highlighted).expect("write fig14");
    t.row("fig14 output", &[fig14.display().to_string()]);

    // §VI-A visualization prototype: image pyramid
    let levels = pyramid(mosaic, 3);
    for (i, level) in levels.iter().enumerate().skip(1) {
        let p = out_dir.join(format!("fig13_pyramid_L{i}.pgm"));
        pgm::write_pgm(&p, level).expect("write pyramid level");
        t.row(
            format!("pyramid level {i}"),
            &[format!("{}x{} px", level.width(), level.height())],
        );
    }
    t.note("paper's full-scale output: 17k x 22k px (~1cm x 1.4cm of plate)");
    t.emit();
}
