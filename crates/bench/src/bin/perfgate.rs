//! perfgate — the repo's performance regression gate.
//!
//! Runs the standard synthetic workloads through all six stitcher
//! variants with warmup + repeats and reports, per variant:
//!
//! * wall-clock **median** and **MAD** (median absolute deviation —
//!   robust against scheduler noise on shared runners),
//! * the run's `OpCounters` snapshot (FFTs, multiplies, CCF groups),
//! * **heap allocation counts**, measured by installing
//!   [`stitch_testkit::alloc::CountingAllocator`] as the global
//!   allocator of this binary.
//!
//! Results are written as machine-readable JSON (`BENCH_PR<k>.json` at
//! the repo root is the committed convention). Because absolute times
//! are machine-dependent, every report embeds a `calibration_ns`
//! measurement of a fixed single-thread stitch; the `--check` gate
//! compares *calibration-normalized* medians so a slower CI runner does
//! not read as a regression.
//!
//! ```text
//! perfgate [--quick] [--out PATH] [--before PATH] [--check BASELINE]
//! perfgate --batch
//! ```
//!
//! * `--quick` — measure only the quick preset (CI smoke).
//! * `--out PATH` — write the JSON report to PATH.
//! * `--before P` — embed the `"after"` section of a previous report P
//!   as this report's `"before"` (before/after in one committed file).
//! * `--check P` — after measuring, compare against the committed
//!   baseline P: exit non-zero if any variant's normalized median
//!   regressed by more than [`TOLERANCE`]×, or if P fails schema
//!   validation.
//! * `--batch` — self-checking scheduler-throughput gate: runs
//!   [`BATCH_JOBS`] identical single-threaded quick jobs through
//!   `stitch-sched` serially (1 worker) and concurrently
//!   ([`BATCH_JOBS`] workers) and exits non-zero unless concurrent
//!   throughput is at least [`BATCH_SPEEDUP_FLOOR`]× serial.

use std::fmt::Write as _;
use std::time::Instant;

use stitch_bench::{fmt_ns, scaled_scan, synthetic_source};
use stitch_core::prelude::*;
use stitch_core::{Correlator, OpCounters, OpCounts, TransformKind};
use stitch_fft::backend;
use stitch_fft::{BackendChoice, PlanMode, Planner};
use stitch_gpu::{Device, DeviceConfig};
use stitch_image::{Scene, SceneParams};
use stitch_testkit::alloc::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Schema marker; bump when the JSON layout changes incompatibly.
const SCHEMA: &str = "stitch-perfgate-v1";

/// `--check` fails when `median/calibration` exceeds the baseline's by
/// this factor. Deliberately loose: the gate exists to catch accidental
/// O(n) slips and allocation storms, not 10 % jitter.
const TOLERANCE: f64 = 2.0;

/// Worker-thread count for the threaded variants.
const THREADS: usize = 4;

/// Jobs in the `--batch` scheduler gate.
const BATCH_JOBS: usize = 4;

/// `--batch` fails unless concurrent throughput reaches this multiple of
/// serial throughput (best of [`BATCH_ROUNDS`] rounds — robust against a
/// noisy neighbor on shared CI runners).
const BATCH_SPEEDUP_FLOOR: f64 = 1.3;

/// Measurement rounds for the `--batch` gate.
const BATCH_ROUNDS: usize = 3;

/// Tile size for the per-backend pair bench. Deliberately larger than
/// the quick preset's 64×48 tiles: down there the per-call cost of the
/// backend boundary (dyn dispatch, feature re-check) is a visible
/// fraction of each kernel invocation and the bench would measure the
/// boundary, not the kernels. 256×192 keeps a full run under a few
/// seconds while approaching the regime of the paper's 1392×1040
/// tiles, where the hot loops dominate.
const PAIR_TILE_W: usize = 256;
const PAIR_TILE_H: usize = 192;

/// Phase-1 pair computations per measured repeat of the per-backend
/// bench (two forward FFTs + NCC + inverse FFT + peaks + CCF each).
const PAIR_BATCH: usize = 4;

/// Warmup and measured rounds for the per-backend bench. Each round
/// times every backend back-to-back (round-robin) so slow drift on a
/// time-shared runner — frequency scaling, steal time — lands on all
/// backends equally instead of biasing whichever ran last.
const PAIR_WARMUP: usize = 1;
const PAIR_REPEATS: usize = 7;

/// The per-backend gate fails unless the `auto` backend completes the
/// pair bench at least this much faster than the `scalar` reference.
/// The ratio is min-over-min: both run in the same process on the same
/// data, and on a time-shared runner interference is strictly additive,
/// so each backend's minimum round is the tightest estimate of its true
/// cost. The target is 2×; the committed floor leaves headroom for
/// throttled CI runners.
const BACKEND_SPEEDUP_FLOOR: f64 = 1.5;

struct Preset {
    name: &'static str,
    rows: usize,
    cols: usize,
    tile_w: usize,
    tile_h: usize,
    warmup: usize,
    repeats: usize,
}

const QUICK: Preset = Preset {
    name: "quick",
    rows: 6,
    cols: 8,
    tile_w: 64,
    tile_h: 48,
    warmup: 1,
    repeats: 3,
};

/// The standard workload: table2's scaled 42×59-shaped grid.
const STANDARD: Preset = Preset {
    name: "standard",
    rows: 14,
    cols: 20,
    tile_w: 96,
    tile_h: 72,
    warmup: 1,
    repeats: 5,
};

struct VariantStats {
    name: String,
    median_ns: u64,
    mad_ns: u64,
    min_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
    ops: OpCounts,
    pair_errors: usize,
}

struct PresetReport {
    preset: &'static Preset,
    variants: Vec<VariantStats>,
}

fn variant_builders() -> Vec<Box<dyn Fn() -> Box<dyn Stitcher>>> {
    let gpu = || Device::new(0, DeviceConfig::small(128 << 20));
    vec![
        Box::new(|| Box::new(SimpleCpuStitcher::default()) as Box<dyn Stitcher>),
        Box::new(|| Box::new(MtCpuStitcher::new(THREADS)) as Box<dyn Stitcher>),
        Box::new(|| Box::new(PipelinedCpuStitcher::new(THREADS)) as Box<dyn Stitcher>),
        Box::new(move || Box::new(SimpleGpuStitcher::new(gpu())) as Box<dyn Stitcher>),
        Box::new(move || Box::new(PipelinedGpuStitcher::single(gpu())) as Box<dyn Stitcher>),
        Box::new(|| Box::new(FijiStyleStitcher::new(THREADS)) as Box<dyn Stitcher>),
    ]
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    let n = xs.len();
    if n == 0 {
        return 0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2
    }
}

fn mad(xs: &[u64], med: u64) -> u64 {
    let mut devs: Vec<u64> = xs.iter().map(|&x| x.abs_diff(med)).collect();
    median(&mut devs)
}

fn run_preset(preset: &'static Preset) -> PresetReport {
    eprintln!(
        "[perfgate] preset {}: {}x{} grid of {}x{} tiles, {} warmup + {} repeats",
        preset.name,
        preset.rows,
        preset.cols,
        preset.tile_w,
        preset.tile_h,
        preset.warmup,
        preset.repeats
    );
    let source = synthetic_source(scaled_scan(
        preset.rows,
        preset.cols,
        preset.tile_w,
        preset.tile_h,
    ));
    let (tw, tn) = truth_vectors(source.plate());

    let mut variants = Vec::new();
    for build in variant_builders() {
        let name = build().name();
        let mut walls = Vec::with_capacity(preset.repeats);
        let mut allocs = Vec::with_capacity(preset.repeats);
        let mut bytes = Vec::with_capacity(preset.repeats);
        let mut last: Option<StitchResult> = None;
        for rep in 0..preset.warmup + preset.repeats {
            let stitcher = build();
            let a0 = CountingAllocator::allocations();
            let b0 = CountingAllocator::bytes_allocated();
            let t0 = Instant::now();
            let res = stitcher.compute_displacements(&source);
            let wall = t0.elapsed().as_nanos() as u64;
            if rep >= preset.warmup {
                walls.push(wall);
                allocs.push(CountingAllocator::allocations() - a0);
                bytes.push(CountingAllocator::bytes_allocated() - b0);
                last = Some(res);
            }
        }
        let res = last.expect("at least one measured repeat");
        let med = median(&mut walls);
        let stats = VariantStats {
            name: name.clone(),
            median_ns: med,
            mad_ns: mad(&walls, med),
            min_ns: walls.iter().copied().min().unwrap_or(0),
            allocs: median(&mut allocs),
            alloc_bytes: median(&mut bytes),
            ops: res.ops,
            pair_errors: res.count_errors(&tw, &tn, 0),
        };
        eprintln!(
            "[perfgate]   {:<22} median {:>8}  mad {:>7}  allocs {:>9}",
            stats.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.mad_ns),
            stats.allocs
        );
        variants.push(stats);
    }
    PresetReport { preset, variants }
}

struct BackendStats {
    /// The `--backend` choice name measured.
    choice: &'static str,
    /// What that choice resolves to on this host.
    resolved: &'static str,
    median_ns: u64,
    mad_ns: u64,
    min_ns: u64,
    allocs: u64,
}

/// Times the phase-1 pair computation (two forward FFTs + NCC + inverse
/// FFT + peak extraction + CCF disambiguation) under every compute
/// backend. Same pixels, same process, interleaved rounds — the only
/// variable is the selected backend, so the scalar/auto ratio is a
/// direct measure of the SIMD kernels.
fn run_backend_bench() -> Vec<BackendStats> {
    const CHOICES: [BackendChoice; 4] = [
        BackendChoice::Scalar,
        BackendChoice::Portable,
        BackendChoice::Simd,
        BackendChoice::Auto,
    ];
    let (w, h) = (PAIR_TILE_W, PAIR_TILE_H);
    eprintln!(
        "[perfgate] backend bench: {PAIR_BATCH} pair computes x {PAIR_REPEATS} interleaved \
         rounds per backend on {w}x{h} tiles"
    );
    let scene = Scene::generate(
        w as f64 * 3.0,
        h as f64 * 3.0,
        SceneParams {
            colony_count: 20,
            seed: 99,
            ..SceneParams::default()
        },
    );
    let a = scene.render_region(w as f64, h as f64, w, h, 0.02, 30.0, 1);
    let b = scene.render_region(w as f64 * 1.75, h as f64 + 2.0, w, h, 0.02, 30.0, 2);
    let planner = Planner::new(PlanMode::Estimate);

    // One long-lived context per choice, allocated before any timing so
    // the measured loops stay allocation-free.
    let mut ctxs: Vec<Correlator> = CHOICES
        .iter()
        .map(|_| {
            Correlator::new(
                TransformKind::Complex,
                &planner,
                w,
                h,
                OpCounters::new_shared(),
            )
        })
        .collect();
    let mut walls = vec![Vec::with_capacity(PAIR_REPEATS); CHOICES.len()];
    let mut allocs = vec![Vec::with_capacity(PAIR_REPEATS); CHOICES.len()];
    let mut results = vec![Vec::with_capacity(PAIR_WARMUP + PAIR_REPEATS); CHOICES.len()];
    for rep in 0..PAIR_WARMUP + PAIR_REPEATS {
        for (ci, &choice) in CHOICES.iter().enumerate() {
            backend::select(choice);
            let ctx = &mut ctxs[ci];
            let a0 = CountingAllocator::allocations();
            let t0 = Instant::now();
            let mut last = None;
            for _ in 0..PAIR_BATCH {
                let fa = ctx.forward_fft(&a);
                let fb = ctx.forward_fft(&b);
                last = Some(ctx.displacement_oriented(&fa, &fb, &a, &b, Some(PairKind::West)));
            }
            let wall = t0.elapsed().as_nanos() as u64;
            results[ci].push(last.expect("PAIR_BATCH > 0"));
            if rep >= PAIR_WARMUP {
                walls[ci].push(wall);
                allocs[ci].push(CountingAllocator::allocations() - a0);
            }
        }
    }

    let mut stats = Vec::new();
    for (ci, choice) in CHOICES.into_iter().enumerate() {
        assert!(
            results[ci].windows(2).all(|p| p[0] == p[1]),
            "backend {}: unstable pair result",
            backend::resolved_name(choice)
        );
        let med = median(&mut walls[ci]);
        let s = BackendStats {
            choice: match choice {
                BackendChoice::Auto => "auto",
                BackendChoice::Scalar => "scalar",
                BackendChoice::Portable => "portable",
                BackendChoice::Simd => "simd",
            },
            resolved: backend::resolved_name(choice),
            median_ns: med,
            mad_ns: mad(&walls[ci], med),
            min_ns: walls[ci].iter().copied().min().unwrap_or(0),
            allocs: median(&mut allocs[ci]),
        };
        eprintln!(
            "[perfgate]   backend {:<8} (-> {:<8}) median {:>8}  mad {:>7}  min {:>8}  allocs {:>6}",
            s.choice,
            s.resolved,
            fmt_ns(s.median_ns),
            fmt_ns(s.mad_ns),
            fmt_ns(s.min_ns),
            s.allocs
        );
        stats.push(s);
    }
    backend::select(BackendChoice::Auto);
    stats
}

/// The committed perf claim: `auto` at least [`BACKEND_SPEEDUP_FLOOR`]×
/// faster than `scalar` on the pair bench (min over min — see the
/// constant's doc for why the minimum round is the right statistic on a
/// time-shared runner).
fn backend_gate(stats: &[BackendStats]) -> Result<f64, String> {
    let best = |name: &str| {
        stats
            .iter()
            .find(|s| s.choice == name)
            .map(|s| s.min_ns)
            .filter(|&m| m > 0)
            .ok_or_else(|| format!("backend bench missing {name:?}"))
    };
    let speedup = best("scalar")? as f64 / best("auto")? as f64;
    if speedup >= BACKEND_SPEEDUP_FLOOR {
        Ok(speedup)
    } else {
        Err(format!(
            "auto backend only x{speedup:.2} over scalar on the pair bench \
             (floor x{BACKEND_SPEEDUP_FLOOR})"
        ))
    }
}

/// A fixed single-thread stitch whose median time normalizes this
/// machine's speed: `--check` compares `median/calibration` ratios, so
/// a uniformly slower runner does not trip the gate.
fn calibrate() -> u64 {
    let source = synthetic_source(scaled_scan(3, 3, 64, 48));
    let mut walls = Vec::with_capacity(5);
    for _ in 0..6 {
        let t0 = Instant::now();
        let res = SimpleCpuStitcher::default().compute_displacements(&source);
        assert!(res.ops.forward_ffts > 0, "calibration stitch did no work");
        walls.push(t0.elapsed().as_nanos() as u64);
    }
    walls.remove(0); // warmup
    median(&mut walls)
}

// ---------------------------------------------------------------------------
// JSON emission (hand-rolled; the offline build has no serde)
// ---------------------------------------------------------------------------

fn emit_report(
    pr: &str,
    calibration_ns: u64,
    presets: &[PresetReport],
    backends: &[BackendStats],
    before_section: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"pr\": \"{pr}\",");
    let _ = writeln!(out, "  \"tolerance\": {TOLERANCE},");
    if let Some(before) = before_section {
        let _ = writeln!(out, "  \"before\": {},", reindent(before, "  "));
    }
    let _ = writeln!(
        out,
        "  \"after\": {}",
        after_section(calibration_ns, presets, backends)
    );
    out.push_str("}\n");
    out
}

fn backends_section(backends: &[BackendStats]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "      \"workload\": {{\"tile_width\": {}, \"tile_height\": {}, \
         \"pairs_per_repeat\": {PAIR_BATCH}, \"warmup\": {PAIR_WARMUP}, \
         \"repeats\": {PAIR_REPEATS}}},",
        PAIR_TILE_W, PAIR_TILE_H
    );
    let _ = writeln!(s, "      \"speedup_floor\": {BACKEND_SPEEDUP_FLOOR},");
    for (i, b) in backends.iter().enumerate() {
        let comma = if i + 1 < backends.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      \"{}\": {{\"resolved\": \"{}\", \"median_ns\": {}, \"mad_ns\": {}, \
             \"min_ns\": {}, \"allocs\": {}}}{comma}",
            b.choice, b.resolved, b.median_ns, b.mad_ns, b.min_ns, b.allocs
        );
    }
    s.push_str("    }");
    s
}

fn after_section(
    calibration_ns: u64,
    presets: &[PresetReport],
    backends: &[BackendStats],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "    \"calibration_ns\": {calibration_ns},");
    let _ = writeln!(s, "    \"backends\": {},", backends_section(backends));
    s.push_str("    \"presets\": {\n");
    for (pi, p) in presets.iter().enumerate() {
        let w = p.preset;
        let _ = writeln!(s, "      \"{}\": {{", w.name);
        let _ = writeln!(
            s,
            "        \"workload\": {{\"rows\": {}, \"cols\": {}, \"tile_width\": {}, \"tile_height\": {}, \"warmup\": {}, \"repeats\": {}}},",
            w.rows, w.cols, w.tile_w, w.tile_h, w.warmup, w.repeats
        );
        s.push_str("        \"variants\": {\n");
        for (vi, v) in p.variants.iter().enumerate() {
            let _ = writeln!(s, "          \"{}\": {{", v.name);
            let _ = writeln!(s, "            \"median_ns\": {},", v.median_ns);
            let _ = writeln!(s, "            \"mad_ns\": {},", v.mad_ns);
            let _ = writeln!(s, "            \"min_ns\": {},", v.min_ns);
            let _ = writeln!(s, "            \"allocs\": {},", v.allocs);
            let _ = writeln!(s, "            \"alloc_bytes\": {},", v.alloc_bytes);
            let _ = writeln!(s, "            \"reads\": {},", v.ops.reads);
            let _ = writeln!(s, "            \"forward_ffts\": {},", v.ops.forward_ffts);
            let _ = writeln!(s, "            \"inverse_ffts\": {},", v.ops.inverse_ffts);
            let _ = writeln!(
                s,
                "            \"elementwise_mults\": {},",
                v.ops.elementwise_mults
            );
            let _ = writeln!(s, "            \"ccf_groups\": {},", v.ops.ccf_groups);
            let _ = writeln!(s, "            \"pair_errors\": {}", v.pair_errors);
            let comma = if vi + 1 < p.variants.len() { "," } else { "" };
            let _ = writeln!(s, "          }}{comma}");
        }
        s.push_str("        }\n");
        let comma = if pi + 1 < presets.len() { "," } else { "" };
        let _ = writeln!(s, "      }}{comma}");
    }
    s.push_str("    }\n  }");
    s
}

/// Re-indents an extracted JSON object so it nests prettily at `pad`.
fn reindent(obj: &str, pad: &str) -> String {
    let mut out = String::with_capacity(obj.len());
    for (i, line) in obj.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(pad);
        }
        out.push_str(line);
    }
    out
}

// ---------------------------------------------------------------------------
// JSON extraction (string-scanning; enough for our own schema)
// ---------------------------------------------------------------------------

/// Returns the `{...}` object slice that follows `"key":`, honoring
/// nesting and strings. Finds the *first* occurrence of the key.
fn extract_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(pos) = json[from..].find(&needle) {
        let rest = &json[from + pos + needle.len()..];
        let rest_trim = rest.trim_start();
        if let Some(after_colon) = rest_trim.strip_prefix(':') {
            let body = after_colon.trim_start();
            if body.starts_with('{') {
                let start = json.len() - body.len();
                let mut depth = 0usize;
                let mut in_str = false;
                let mut escape = false;
                for (i, c) in json[start..].char_indices() {
                    if escape {
                        escape = false;
                        continue;
                    }
                    match c {
                        '\\' if in_str => escape = true,
                        '"' => in_str = !in_str,
                        '{' if !in_str => depth += 1,
                        '}' if !in_str => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(&json[start..start + i + 1]);
                            }
                        }
                        _ => {}
                    }
                }
                return None; // unbalanced
            }
        }
        from += pos + needle.len();
    }
    None
}

/// Reads the first `"key": <integer>` in `json`.
fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let pos = json.find(&needle)?;
    let rest = json[pos + needle.len()..].trim_start().strip_prefix(':')?;
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// The --check gate
// ---------------------------------------------------------------------------

fn check_against(
    baseline: &str,
    calibration_ns: u64,
    presets: &[PresetReport],
    backends: &[BackendStats],
) -> Result<(), String> {
    if !baseline.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("baseline missing schema marker {SCHEMA:?}"));
    }
    let after = extract_object(baseline, "after").ok_or("baseline has no \"after\" section")?;
    let base_cal = extract_u64(after, "calibration_ns")
        .filter(|&c| c > 0)
        .ok_or("baseline has no positive calibration_ns")?;
    let base_presets = extract_object(after, "presets").ok_or("baseline has no presets")?;

    let mut failures = Vec::new();
    // Per-backend columns: compare normalized pair-bench medians when the
    // baseline has them (pre-backend baselines simply skip this block).
    if let Some(base_backends) = extract_object(after, "backends") {
        for b in backends {
            let Some(bb) = extract_object(base_backends, b.choice) else {
                continue;
            };
            let Some(base_med) = extract_u64(bb, "median_ns").filter(|&m| m > 0) else {
                continue;
            };
            let base_norm = base_med as f64 / base_cal as f64;
            let cur_norm = b.median_ns as f64 / calibration_ns as f64;
            let ratio = cur_norm / base_norm;
            eprintln!(
                "[perfgate] check backends/{:<8} {:>8} vs baseline {:>8}  normalized x{:.2}",
                b.choice,
                fmt_ns(b.median_ns),
                fmt_ns(base_med),
                ratio
            );
            if ratio > TOLERANCE {
                failures.push(format!(
                    "backends/{}: normalized pair-bench median regressed x{ratio:.2} \
                     (> x{TOLERANCE}): {} now vs {} at baseline",
                    b.choice,
                    fmt_ns(b.median_ns),
                    fmt_ns(base_med),
                ));
            }
        }
    }
    for p in presets {
        let bp = extract_object(base_presets, p.preset.name)
            .ok_or_else(|| format!("baseline lacks preset {:?}", p.preset.name))?;
        let bvars = extract_object(bp, "variants")
            .ok_or_else(|| format!("baseline preset {:?} lacks variants", p.preset.name))?;
        for v in &p.variants {
            let bv = extract_object(bvars, &v.name)
                .ok_or_else(|| format!("baseline lacks variant {:?}", v.name))?;
            let base_med = extract_u64(bv, "median_ns")
                .filter(|&m| m > 0)
                .ok_or_else(|| format!("baseline variant {:?} has no positive median", v.name))?;
            let base_norm = base_med as f64 / base_cal as f64;
            let cur_norm = v.median_ns as f64 / calibration_ns as f64;
            let ratio = cur_norm / base_norm;
            eprintln!(
                "[perfgate] check {}/{:<22} {:>8} vs baseline {:>8}  normalized x{:.2}",
                p.preset.name,
                v.name,
                fmt_ns(v.median_ns),
                fmt_ns(base_med),
                ratio
            );
            if ratio > TOLERANCE {
                failures.push(format!(
                    "{}/{}: normalized median regressed x{:.2} (> x{TOLERANCE}): \
                     {} now vs {} at baseline (calibration {} vs {})",
                    p.preset.name,
                    v.name,
                    ratio,
                    fmt_ns(v.median_ns),
                    fmt_ns(base_med),
                    fmt_ns(calibration_ns),
                    fmt_ns(base_cal),
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

// ---------------------------------------------------------------------------
// The --batch scheduler-throughput gate
// ---------------------------------------------------------------------------

/// The `--batch` workload: [`BATCH_JOBS`] identical quick jobs on the
/// *shared* simulated device, with the PCIe transfer-time model slowed
/// so each job spends a meaningful fraction of its run stalled in
/// simulated H2D/D2H waits. That is exactly the regime where a multi-job
/// scheduler pays off — one job's transfer stall overlaps another's
/// compute — and, unlike CPU-parallel speedup, it shows up on
/// single-core CI runners too.
fn batch_jobs() -> Vec<stitch_sched::StitchJob> {
    (0..BATCH_JOBS)
        .map(|i| {
            stitch_sched::StitchJob::new(
                format!("quick{i}"),
                stitch_image::ScanConfig::for_grid(
                    QUICK.rows,
                    QUICK.cols,
                    QUICK.tile_w,
                    QUICK.tile_h,
                    0.25,
                    2014 + i as u64,
                ),
            )
            .variant(stitch_sched::JobVariant::SimpleGpu)
            .compose(false)
        })
        .collect()
}

/// The gate's shared device: Kepler-style concurrent kernels (no
/// device-wide FFT serialization, which would defeat cross-job overlap)
/// and deliberately slow simulated transfers.
fn batch_device() -> stitch_gpu::Device {
    stitch_gpu::Device::new(
        0,
        stitch_gpu::DeviceConfig {
            h2d_bytes_per_sec: Some(1.2e6),
            d2h_bytes_per_sec: Some(1.2e6),
            ..stitch_gpu::DeviceConfig::kepler_gk110()
        },
    )
}

fn run_batch_with_workers(workers: usize) -> std::time::Duration {
    let report = stitch_sched::run_batch(
        batch_jobs(),
        &stitch_sched::BatchOptions {
            workers,
            memory_budget: 256 << 20,
            device: Some(batch_device()),
            ..stitch_sched::BatchOptions::default()
        },
    );
    assert!(report.rejected.is_empty(), "gate jobs must all be admitted");
    for out in &report.outcomes {
        assert_eq!(
            out.status,
            stitch_sched::JobStatus::Completed,
            "gate job {} did not complete",
            out.name
        );
    }
    report.elapsed
}

fn batch_gate() -> Result<f64, String> {
    eprintln!(
        "[perfgate] batch gate: {BATCH_JOBS} single-threaded quick jobs, \
         serial (1 worker) vs concurrent ({BATCH_JOBS} workers)"
    );
    // warmup: fault in plan caches, page in the binary
    let _ = run_batch_with_workers(BATCH_JOBS);
    let mut best = 0f64;
    for round in 0..BATCH_ROUNDS {
        let serial = run_batch_with_workers(1);
        let concurrent = run_batch_with_workers(BATCH_JOBS);
        let speedup = serial.as_secs_f64() / concurrent.as_secs_f64();
        eprintln!(
            "[perfgate]   round {round}: serial {serial:.2?}, concurrent {concurrent:.2?} \
             -> x{speedup:.2}"
        );
        best = best.max(speedup);
    }
    if best >= BATCH_SPEEDUP_FLOOR {
        Ok(best)
    } else {
        Err(format!(
            "concurrent batch throughput only x{best:.2} of serial \
             (floor x{BATCH_SPEEDUP_FLOOR})"
        ))
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--batch") {
        match batch_gate() {
            Ok(speedup) => {
                eprintln!(
                    "[perfgate] batch gate OK: x{speedup:.2} \
                     (floor x{BATCH_SPEEDUP_FLOOR})"
                );
                return;
            }
            Err(msg) => {
                eprintln!("[perfgate] batch gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    let quick_only = args.iter().any(|a| a == "--quick");
    let out_path = arg_value(&args, "--out");
    let before_path = arg_value(&args, "--before");
    let check_path = arg_value(&args, "--check");

    let before_section = before_path.map(|p| {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {p}: {e}"));
        extract_object(&text, "after")
            .unwrap_or_else(|| panic!("{p} has no \"after\" section to use as before"))
            .to_string()
    });

    eprintln!("[perfgate] calibrating (single-thread 3x3 stitch)...");
    let calibration_ns = calibrate();
    eprintln!("[perfgate] calibration: {}", fmt_ns(calibration_ns));

    let backends = run_backend_bench();
    let mut presets = vec![run_preset(&QUICK)];
    if !quick_only {
        presets.push(run_preset(&STANDARD));
    }

    let report = emit_report(
        "PR7",
        calibration_ns,
        &presets,
        &backends,
        before_section.as_deref(),
    );
    match &out_path {
        Some(p) => {
            std::fs::write(p, &report).unwrap_or_else(|e| panic!("write {p}: {e}"));
            eprintln!("[perfgate] wrote {p}");
        }
        None => println!("{report}"),
    }

    // Self-checking speedup ratchet: runs on every invocation — it needs
    // no baseline, only this process's own scalar/auto ratio.
    match backend_gate(&backends) {
        Ok(speedup) => eprintln!(
            "[perfgate] backend gate OK: auto x{speedup:.2} over scalar \
             (floor x{BACKEND_SPEEDUP_FLOOR})"
        ),
        Err(msg) => {
            eprintln!("[perfgate] backend gate FAILED: {msg}");
            std::process::exit(1);
        }
    }

    if let Some(p) = check_path {
        let baseline = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {p}: {e}"));
        match check_against(&baseline, calibration_ns, &presets, &backends) {
            Ok(()) => eprintln!("[perfgate] check vs {p}: OK (tolerance x{TOLERANCE})"),
            Err(msg) => {
                eprintln!("[perfgate] check vs {p} FAILED:\n{msg}");
                std::process::exit(1);
            }
        }
    }
}
