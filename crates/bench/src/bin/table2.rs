//! Table II — run times and speedups for the 42×59 grid, all seven
//! configurations.
//!
//! Two tables come out:
//!
//! 1. **virtual time, paper scale** — the discrete-event simulator runs
//!    each architecture's task graph on the paper's virtual testbed (2×
//!    quad-core HT Xeon, 2 GPUs) with costs back-derived from the paper;
//!    the paper's own numbers are printed alongside;
//! 2. **real wall-clock, scaled workload** — every real implementation
//!    runs on this host over a scaled 42×59-shaped dataset on disk.
//!    (This machine has one CPU core, so real times mostly measure total
//!    work, not parallel speedup — that is exactly why table 1 exists.)
//!
//! ```text
//! cargo run --release -p stitch-bench --bin table2 [-- --preset laptop]
//!     [--costs calibrated] [--full]
//! ```

use stitch_bench::{fmt_ns, full_scale, scaled_scan, ResultTable};
use stitch_core::prelude::*;
use stitch_gpu::{Device, DeviceConfig};
use stitch_image::SyntheticPlate;
use stitch_sim::{
    fiji_ns, mt_cpu_ns, pipelined_cpu_ns, pipelined_gpu_ns, simple_cpu_ns, simple_gpu_ns,
    CostModel, MachineSpec, FIJI_OVERHEAD_FACTOR,
};

fn main() {
    let laptop =
        std::env::args().any(|a| a == "--preset") && std::env::args().any(|a| a == "laptop");
    let machine = if laptop {
        MachineSpec::paper_laptop()
    } else {
        MachineSpec::paper_testbed()
    };
    let shape = GridShape::new(42, 59);
    // --costs calibrated: measure this host's real kernels at full tile
    // size and predict what the virtual testbed would do with *these*
    // kernels instead of the paper's 2012 ones
    let calibrated = std::env::args().any(|a| a == "calibrated");
    let cost = if calibrated {
        eprintln!("(calibrating kernel costs on this host at 1392x1040...)");
        CostModel::calibrated(1392, 1040, 1)
    } else {
        CostModel::paper_c2070()
    };

    // ---- virtual time at paper scale ----
    let simple = simple_cpu_ns(shape, &cost);
    let rows: Vec<(&str, u64, &str)> = vec![
        (
            "ImageJ/Fiji",
            fiji_ns(shape, &cost, &machine, 6, FIJI_OVERHEAD_FACTOR),
            "3.6h",
        ),
        ("Simple-CPU", simple, "10.6min"),
        (
            "MT-CPU (16t)",
            mt_cpu_ns(shape, &cost, &machine, 16),
            "1.6min",
        ),
        (
            "Pipelined-CPU (16t)",
            pipelined_cpu_ns(shape, &cost, &machine, 16),
            "1.4min",
        ),
        ("Simple-GPU", simple_gpu_ns(shape, &cost), "9.3min"),
        (
            "Pipelined-GPU (1 GPU)",
            pipelined_gpu_ns(shape, &cost, &machine, 1, 4),
            "49.7s",
        ),
        (
            "Pipelined-GPU (2 GPUs)",
            pipelined_gpu_ns(shape, &cost, &machine, 2, 4),
            "26.6s",
        ),
    ];
    let mut t =
        ResultTable::new(
            "table2_virtual",
            &format!(
            "run times & speedups, 42x59 grid of 1392x1040 tiles (virtual {} machine, {} costs)",
            if laptop { "laptop" } else { "testbed" },
            if calibrated { "host-calibrated" } else { "paper-derived" }
        ),
            &["implementation", "virtual time", "S/CPU", "paper time"],
        );
    for (name, ns, paper) in &rows {
        t.row(
            name,
            &[
                fmt_ns(*ns),
                format!("{:.1}", simple as f64 / *ns as f64),
                paper.to_string(),
            ],
        );
    }
    t.note("virtual time: discrete-event simulation of each architecture's task graph");
    t.note("costs back-derived from the paper (CostModel::paper_c2070); see stitch-sim docs");
    t.note("S/CPU = speedup relative to Simple-CPU, as in the paper's Table II");
    t.emit();

    // ---- real wall-clock at reduced scale ----
    let (tile_w, tile_h) = if full_scale() { (1392, 1040) } else { (96, 72) };
    let (rows_g, cols_g) = if full_scale() { (42, 59) } else { (14, 20) };
    let dir = std::env::temp_dir().join("stitch_table2_dataset");
    let _ = std::fs::remove_dir_all(&dir);
    let plate = SyntheticPlate::generate(scaled_scan(rows_g, cols_g, tile_w, tile_h));
    plate.write_to_dir(&dir).expect("write dataset");
    let source = DirSource::open(&dir).expect("open dataset");
    let (tw, tn) = truth_vectors(&plate);

    let gpu = |id| Device::new(id, DeviceConfig::default());
    let stitchers: Vec<Box<dyn Stitcher>> = vec![
        Box::new(FijiStyleStitcher::new(2)),
        Box::new(SimpleCpuStitcher::default()),
        Box::new(MtCpuStitcher::new(4)),
        Box::new(PipelinedCpuStitcher::new(4)),
        Box::new(SimpleGpuStitcher::new(gpu(0))),
        Box::new(PipelinedGpuStitcher::single(gpu(0))),
        Box::new(PipelinedGpuStitcher::new(
            vec![gpu(0), gpu(1)],
            Default::default(),
        )),
    ];
    let mut r = ResultTable::new(
        "table2_real",
        &format!("real wall-clock, {rows_g}x{cols_g} grid of {tile_w}x{tile_h} tiles on this host"),
        &["implementation", "time", "S/CPU", "pair errors", "fwd FFTs"],
    );
    let mut measured: Vec<(String, u64, usize, u64)> = Vec::new();
    for s in stitchers {
        let res = s.compute_displacements(&source);
        measured.push((
            s.name(),
            res.elapsed.as_nanos() as u64,
            res.count_errors(&tw, &tn, 0),
            res.ops.forward_ffts,
        ));
    }
    let simple_real = measured
        .iter()
        .find(|(n, ..)| n == "Simple-CPU")
        .map(|&(_, ns, ..)| ns)
        .unwrap_or(1);
    for (name, ns, errors, ffts) in measured {
        r.row(
            name,
            &[
                fmt_ns(ns),
                format!("{:.2}", simple_real as f64 / ns as f64),
                errors.to_string(),
                ffts.to_string(),
            ],
        );
    }
    r.note(format!(
        "this host has {} CPU core(s) — real speedups are bounded by that; \
         the virtual table above carries the scaling result",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    r.emit();
    let _ = std::fs::remove_dir_all(&dir);
}
