//! Figs 7 & 9 — device-profile timelines, Simple-GPU vs Pipelined-GPU.
//!
//! Runs both implementations over the paper's 8×8 profile grid on the
//! simulated device with the PCIe transfer model, renders both timelines,
//! and prints the kernel-density numbers the paper reads off its
//! profiler screenshots ("much higher kernel execution density ... does
//! not have the gaps").
//!
//! ```text
//! cargo run --release -p stitch-bench --bin fig7_9
//! ```

use stitch_bench::{scaled_scan, synthetic_source, ResultTable};
use stitch_core::prelude::*;
use stitch_gpu::{Device, DeviceConfig, SpanKind};
use stitch_trace::{RunReport, TraceHandle};

fn main() {
    let src = synthetic_source(scaled_scan(8, 8, 128, 96));
    let cfg = DeviceConfig {
        memory_bytes: 512 << 20,
        ..DeviceConfig::with_transfer_model()
    };

    // each run records a merged host+device timeline; the density and
    // overlap metrics below come from that timeline, not the raw device
    // profiler, so host gaps count against the schedule
    let trace_simple = TraceHandle::new();
    let dev_simple = Device::new(0, cfg.clone());
    let r_simple = SimpleGpuStitcher::new(dev_simple.clone())
        .with_trace(trace_simple.clone())
        .compute_displacements(&src);
    println!("-- Fig 7: Simple-GPU profile (8x8 grid) --");
    print!("{}", dev_simple.profiler().render_timeline(110));

    let trace_pipe = TraceHandle::new();
    let dev_pipe = Device::new(1, cfg);
    let r_pipe = PipelinedGpuStitcher::single(dev_pipe.clone())
        .with_trace(trace_pipe.clone())
        .compute_displacements(&src);
    println!("\n-- Fig 9: Pipelined-GPU profile (8x8 grid) --");
    print!("{}", dev_pipe.profiler().render_timeline(110));
    println!("\nlegend: '>' H2D copy, '<' D2H copy, '#' kernel, '.' sync, ' ' idle\n");

    let rep_simple = RunReport::from_trace(&trace_simple);
    let rep_pipe = RunReport::from_trace(&trace_pipe);

    let mut t = ResultTable::new(
        "fig7_9",
        "profile metrics: Simple-GPU (Fig 7) vs Pipelined-GPU (Fig 9)",
        &["metric", "Simple-GPU", "Pipelined-GPU"],
    );
    t.row(
        "kernel density (merged timeline)",
        &[
            format!("{:.3}", rep_simple.kernel_density),
            format!("{:.3}", rep_pipe.kernel_density),
        ],
    );
    t.row(
        "copy/compute overlap",
        &[
            format!("{:.3}", rep_simple.copy_compute_overlap),
            format!("{:.3}", rep_pipe.copy_compute_overlap),
        ],
    );
    t.row(
        "peak kernel concurrency",
        &[
            dev_simple
                .profiler()
                .peak_concurrency(SpanKind::Kernel)
                .to_string(),
            dev_pipe
                .profiler()
                .peak_concurrency(SpanKind::Kernel)
                .to_string(),
        ],
    );
    t.row(
        "kernel spans",
        &[
            dev_simple
                .profiler()
                .spans()
                .iter()
                .filter(|s| s.kind == SpanKind::Kernel)
                .count()
                .to_string(),
            dev_pipe
                .profiler()
                .spans()
                .iter()
                .filter(|s| s.kind == SpanKind::Kernel)
                .count()
                .to_string(),
        ],
    );
    t.row(
        "elapsed (this host)",
        &[
            format!("{:.2?}", r_simple.elapsed),
            format!("{:.2?}", r_pipe.elapsed),
        ],
    );
    t.note("the paper's contrast: the pipelined profile is dense and overlapped,");
    t.note("the simple profile serialized (one kernel at a time, gaps between)");
    t.emit();

    // with --json DIR, also dump raw span CSVs and the merged Chrome
    // traces for external plotting / chrome://tracing
    if let Some(dir) = stitch_bench::json_dir() {
        std::fs::create_dir_all(&dir).expect("create json dir");
        std::fs::write(
            dir.join("fig7_simple_gpu_spans.csv"),
            dev_simple.profiler().to_csv(),
        )
        .expect("write fig7 csv");
        std::fs::write(
            dir.join("fig9_pipelined_gpu_spans.csv"),
            dev_pipe.profiler().to_csv(),
        )
        .expect("write fig9 csv");
        std::fs::write(
            dir.join("fig7_simple_gpu_trace.json"),
            trace_simple.to_chrome_json(),
        )
        .expect("write fig7 trace");
        std::fs::write(
            dir.join("fig9_pipelined_gpu_trace.json"),
            trace_pipe.to_chrome_json(),
        )
        .expect("write fig9 trace");
        eprintln!("(wrote span CSVs and Chrome traces to {})", dir.display());
    }
}
