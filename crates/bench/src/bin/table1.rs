//! Table I — operation counts and complexities.
//!
//! Prints the paper's cost model for a grid (counts, per-op complexity,
//! operand sizes) and validates the counts against the instrumented
//! counters of a real run.
//!
//! ```text
//! cargo run --release -p stitch-bench --bin table1 [-- --full]
//! ```

use stitch_bench::{full_scale, scaled_scan, synthetic_source, ResultTable};
use stitch_core::opcount::OpCounts;
use stitch_core::prelude::*;

fn main() {
    // the analytic table for the paper's full-scale grid
    let (n, m) = (42usize, 59usize);
    let (h, w) = (1040usize, 1392usize);
    let nm = n * m;
    let pairs = 2 * nm - n - m;
    let hw = h * w;
    let mut t = ResultTable::new(
        "table1",
        &format!("operation counts & complexities ({n}x{m} grid of {w}x{h} tiles)"),
        &["operation", "count", "per-op cost", "operand bytes"],
    );
    let log = (hw as f64).log2();
    t.row(
        "Read",
        &[
            nm.to_string(),
            format!("h*w = {hw}"),
            format!("2hw = {}", 2 * hw),
        ],
    );
    t.row(
        "FFT-2D",
        &[
            nm.to_string(),
            format!("hw*log(hw) = {:.0}", hw as f64 * log),
            format!("16hw = {}", 16 * hw),
        ],
    );
    t.row(
        "NCC (elt-wise)",
        &[
            pairs.to_string(),
            format!("h*w = {hw}"),
            format!("16hw = {}", 16 * hw),
        ],
    );
    t.row(
        "FFT-2D^-1",
        &[
            pairs.to_string(),
            format!("hw*log(hw) = {:.0}", hw as f64 * log),
            format!("16hw = {}", 16 * hw),
        ],
    );
    t.row(
        "max reduce",
        &[
            pairs.to_string(),
            format!("h*w = {hw}"),
            format!("16hw = {}", 16 * hw),
        ],
    );
    t.row(
        "CCF 1..4",
        &[
            pairs.to_string(),
            format!("h*w = {hw}"),
            format!("4hw = {}", 4 * hw),
        ],
    );
    t.note("counts: nm tiles, 2nm-n-m adjacent pairs (Table I formulas)");
    t.emit();

    // validate against a real instrumented run
    let (rows, cols) = if full_scale() { (12, 16) } else { (5, 7) };
    let src = synthetic_source(scaled_scan(rows, cols, 64, 48));
    let mut v = ResultTable::new(
        "table1_validation",
        &format!("instrumented counts of a real run ({rows}x{cols} grid)"),
        &[
            "operation",
            "predicted",
            "Simple-CPU",
            "Pipelined-CPU",
            "Fiji-style",
        ],
    );
    let predicted = OpCounts::predicted(rows, cols);
    let simple = SimpleCpuStitcher::default().compute_displacements(&src).ops;
    let pipelined = PipelinedCpuStitcher::new(2).compute_displacements(&src).ops;
    let fiji = FijiStyleStitcher::new(2).compute_displacements(&src).ops;
    type Getter = fn(&OpCounts) -> u64;
    let rows_data: [(&str, Getter); 6] = [
        ("Read", |o| o.reads),
        ("FFT-2D", |o| o.forward_ffts),
        ("NCC", |o| o.elementwise_mults),
        ("FFT-2D^-1", |o| o.inverse_ffts),
        ("max reduce", |o| o.max_reductions),
        ("CCF 1..4", |o| o.ccf_groups),
    ];
    for (name, get) in rows_data {
        v.row(
            name,
            &[
                get(&predicted).to_string(),
                get(&simple).to_string(),
                get(&pipelined).to_string(),
                get(&fiji).to_string(),
            ],
        );
    }
    v.note("Simple/Pipelined match the minimal-work prediction exactly");
    v.note("Fiji-style does 2x reads and 2x forward FFTs per pair — its inefficiency, by design");
    v.emit();
}
