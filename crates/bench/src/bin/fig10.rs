//! Fig 10 — Pipelined-GPU (2 GPUs) run time vs CCF thread count.
//!
//! Virtual time at paper scale (the paper's curve drops from ~42 s at one
//! CCF thread to ~29 s at two and stays flat after — "performance is
//! limited by GPU computations"), plus a real small-scale sweep on this
//! host for reference.
//!
//! ```text
//! cargo run --release -p stitch-bench --bin fig10
//! ```

use stitch_bench::{fmt_ns, scaled_scan, synthetic_source, ResultTable};
use stitch_core::pipelined_gpu::{PipelinedGpuConfig, PipelinedGpuStitcher};
use stitch_core::prelude::*;
use stitch_gpu::{Device, DeviceConfig};
use stitch_sim::{pipelined_gpu_ns, CostModel, MachineSpec};

fn main() {
    let shape = GridShape::new(42, 59);
    let cost = CostModel::paper_c2070();
    let machine = MachineSpec::paper_testbed();

    let mut t = ResultTable::new(
        "fig10",
        "Pipelined-GPU (2 GPUs) vs CCF threads, 42x59 grid (virtual testbed)",
        &["ccf threads", "virtual time"],
    );
    for threads in 1..=16usize {
        let ns = pipelined_gpu_ns(shape, &cost, &machine, 2, threads);
        t.row(threads, &[fmt_ns(ns)]);
    }
    t.note("paper: ~42s at 1 thread, ~29s at 2, minimal impact beyond 2");
    t.note("(stage 6 stops being the bottleneck; the per-pipeline readers are)");
    t.emit();

    // real sweep at reduced scale on this host
    let src = synthetic_source(scaled_scan(8, 12, 96, 72));
    let mut r = ResultTable::new(
        "fig10_real",
        "real sweep on this host (8x12 grid of 96x72 tiles, 2 simulated GPUs)",
        &["ccf threads", "time"],
    );
    for threads in [1usize, 2, 4, 8] {
        let devices = vec![
            Device::new(0, DeviceConfig::default()),
            Device::new(1, DeviceConfig::default()),
        ];
        let cfg = PipelinedGpuConfig {
            ccf_threads: threads,
            ..Default::default()
        };
        let res = PipelinedGpuStitcher::new(devices, cfg).compute_displacements(&src);
        r.row(threads, &[format!("{:.2?}", res.elapsed)]);
    }
    r.note("single-core host: thread sweeps cannot speed up real wall-clock here");
    r.emit();
}
