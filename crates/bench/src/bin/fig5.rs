//! Fig 5 — the virtual-memory performance cliff.
//!
//! Speedup of the "compute FFTs without releasing memory" workload over
//! tiles ∈ {512..1024} × threads ∈ {1..16} on the 24 GB virtual machine,
//! reproducing the cliff between 832 and 864 tiles. A second section
//! demonstrates the same effect *for real* with the in-process
//! [`SpillStore`](stitch_core::memlimit::SpillStore) under a small budget.
//!
//! ```text
//! cargo run --release -p stitch-bench --bin fig5
//! ```

use std::sync::Arc;
use std::time::Instant;

use stitch_bench::ResultTable;
use stitch_core::memlimit::SpillStore;
use stitch_core::opcount::OpCounters;
use stitch_core::pciam::PciamContext;
use stitch_fft::Planner;
use stitch_image::{Scene, SceneParams};
use stitch_sim::{fig5_compute_fft_ns, CostModel, MachineSpec};

fn main() {
    let cost = CostModel::paper_c2070();
    let machine = MachineSpec::fig5_machine();
    let tile_counts = [512usize, 576, 640, 704, 768, 832, 864, 896, 960, 1024];
    let threads = [1usize, 2, 4, 8, 12, 16];

    let mut t = ResultTable::new(
        "fig5",
        "compute-FFT speedup vs tiles (virtual 24 GB machine) — the VM cliff",
        &[
            "tiles",
            "t=1",
            "t=2",
            "t=4",
            "t=8",
            "t=12",
            "t=16",
            "working set",
        ],
    );
    for &tiles in &tile_counts {
        let base = fig5_compute_fft_ns(tiles, &cost, &machine, 1);
        let mut vals: Vec<String> = threads
            .iter()
            .map(|&th| {
                let ns = fig5_compute_fft_ns(tiles, &cost, &machine, th);
                format!("{:.2}", base as f64 / ns as f64)
            })
            .collect();
        let ws_gb = tiles as f64 * (cost.transform_bytes as f64 * 1.125) / 1e9;
        vals.push(format!("{ws_gb:.1} GB"));
        t.row(tiles, &vals);
    }
    t.note("cliff: speedup collapses for every thread count once the working set");
    t.note("exceeds physical memory and transform buffers page through one disk");
    t.emit();

    // ---- real, in-process demonstration with the spill store ----
    let (w, h) = (64usize, 48usize);
    let transform_bytes = w * h * 16;
    let budget_tiles = 48usize;
    let store = SpillStore::new(budget_tiles * transform_bytes).expect("spill store");
    let planner = Planner::default();
    let mut ctx = PciamContext::new(&planner, w, h, OpCounters::new_shared());
    let scene = Scene::generate(4096.0, 4096.0, SceneParams::default());

    let mut r = ResultTable::new(
        "fig5_real",
        &format!("real spill-store demonstration (budget = {budget_tiles} transforms of {w}x{h})"),
        &["tiles", "time/tile", "spills", "faults"],
    );
    for &tiles in &[16usize, 32, 48, 64, 96] {
        let store2 = SpillStore::new(budget_tiles * transform_bytes).expect("spill store");
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for i in 0..tiles {
            let img =
                scene.render_region((i * 40) as f64, (i * 24) as f64, w, h, 0.0, 30.0, i as u64);
            let fft = ctx.forward_fft(&img);
            handles.push(store2.insert(fft.into_vec()));
        }
        // revisit all transforms once (what the pair computations would do)
        for &hd in &handles {
            store2.with(hd, |d| std::hint::black_box(d[0]));
        }
        let per = t0.elapsed().as_micros() as u64 / tiles as u64;
        r.row(
            tiles,
            &[
                format!("{per} us"),
                store2.spill_count().to_string(),
                store2.fault_count().to_string(),
            ],
        );
    }
    drop(store);
    let _ = Arc::new(()); // keep Arc import meaningful if optimized out
    r.note("past the 48-tile budget, spills/faults appear and time per tile jumps");
    r.emit();
}
