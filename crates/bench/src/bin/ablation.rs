//! §IV-A / §VI-A ablations, measured for real on this host:
//!
//! 1. **FFT planning modes** — estimate vs measure vs patient (§IV-A:
//!    patient gave ~2× execution improvement over estimate on their
//!    tiles, with minutes of planning cost amortized over thousands of
//!    transforms);
//! 2. **Tile padding** — §VI-A future work: "padding image tiles (or
//!    trimming them) to have smaller prime factors ... is known to
//!    enhance the performance of FFTW and cuFFT";
//! 3. **Real-to-complex transforms** — §VI-A future work: "will further
//!    improve performance by doing less work";
//! 4. **Traversal orders** — §IV-A: chained-diagonal frees memory
//!    earliest (peak-live-transform comparison).
//!
//! ```text
//! cargo run --release -p stitch-bench --bin ablation [-- --full]
//! ```

use std::time::Instant;

use stitch_bench::{full_scale, ResultTable};
use stitch_core::grid::{GridShape, Traversal};
use stitch_fft::{c64, factor, Fft2d, PlanMode, Planner, RealFft2d, C64};

fn time_fft2d(planner: &Planner, w: usize, h: usize, reps: usize) -> (f64, u128) {
    let mut data: Vec<C64> = (0..w * h).map(|k| c64((k % 251) as f64, 0.0)).collect();
    let mut scratch = vec![C64::ZERO; w * h];
    let fft = Fft2d::new(planner, w, h, stitch_fft::Direction::Forward);
    let t0 = Instant::now();
    for _ in 0..reps {
        fft.process(&mut data, &mut scratch);
    }
    (
        t0.elapsed().as_secs_f64() / reps as f64 * 1e3,
        planner.planning_nanos(),
    )
}

fn main() {
    let (w, h, reps) = if full_scale() {
        (1392, 1040, 3)
    } else {
        (348, 260, 10)
    };

    // 1. planning modes
    let mut t = ResultTable::new(
        "ablation_planning",
        &format!("FFT planning modes, {w}x{h} transforms"),
        &["mode", "exec ms/transform", "planning cost"],
    );
    for (name, mode) in [
        ("estimate", PlanMode::Estimate),
        ("measure", PlanMode::Measure),
        ("patient", PlanMode::Patient),
    ] {
        let planner = Planner::new(mode);
        let (ms, plan_ns) = time_fft2d(&planner, w, h, reps);
        t.row(
            name,
            &[format!("{ms:.2}"), format!("{:.1}ms", plan_ns as f64 / 1e6)],
        );
    }
    t.note("paper: patient mode ~2x faster execution than estimate for their tiles,");
    t.note("plan cost amortized over thousands of transforms");
    t.emit();

    // 2. padding to 7-smooth sizes
    let planner = Planner::new(PlanMode::Estimate);
    let (pw, ph) = (factor::next_smooth(w), factor::next_smooth(h));
    let (p2w, p2h) = (w.next_power_of_two(), h.next_power_of_two());
    let mut p = ResultTable::new(
        "ablation_padding",
        "tile padding ablation (§VI-A future work)",
        &["size", "factors", "exec ms/transform", "px overhead"],
    );
    for (label, cw, ch) in [
        ("native", w, h),
        ("7-smooth pad", pw, ph),
        ("pow2 pad", p2w, p2h),
    ] {
        let (ms, _) = time_fft2d(&planner, cw, ch, reps);
        let overhead = (cw * ch) as f64 / (w * h) as f64 - 1.0;
        p.row(
            format!("{label} {cw}x{ch}"),
            &[
                format!("{:?}x{:?}", factor::factorize(cw), factor::factorize(ch)),
                format!("{ms:.2}"),
                format!("{:+.1}%", overhead * 100.0),
            ],
        );
    }
    p.note("padding trades a few % more pixels for friendlier radix schedules");
    p.emit();

    // 3. real-to-complex vs complex
    let mut r = ResultTable::new(
        "ablation_r2c",
        "real-to-complex vs complex transforms (§VI-A future work)",
        &["path", "exec ms/transform", "spectrum bytes"],
    );
    {
        let (ms, _) = time_fft2d(&planner, w, h, reps);
        r.row(
            "complex-to-complex",
            &[format!("{ms:.2}"), format!("{}", w * h * 16)],
        );
        let real = RealFft2d::new(&planner, w, h);
        let input: Vec<f64> = (0..w * h).map(|k| (k % 251) as f64).collect();
        let mut spec = vec![C64::ZERO; real.spectrum_len()];
        let t0 = Instant::now();
        for _ in 0..reps {
            real.forward(&input, &mut spec);
        }
        let ms = t0.elapsed().as_secs_f64() / reps as f64 * 1e3;
        r.row(
            "real-to-complex",
            &[format!("{ms:.2}"), format!("{}", real.spectrum_len() * 16)],
        );
    }
    r.note("r2c halves the spectrum memory footprint (the paper's stated second win)");
    r.emit();

    // 3b. end-to-end: complex vs real transform path in a full stitch
    {
        use stitch_bench::{scaled_scan, synthetic_source};
        use stitch_core::pciam_real::TransformKind;
        use stitch_core::prelude::*;
        let src = synthetic_source(scaled_scan(6, 8, 96, 72));
        let mut e = ResultTable::new(
            "ablation_r2c_stitch",
            "end-to-end Simple-CPU stitch: complex vs real vs padded transform path",
            &["path", "time", "per-tile spectrum bytes"],
        );
        let (tw2, th2) = (96usize, 72usize);
        for (label, kind, bytes) in [
            ("complex", TransformKind::Complex, tw2 * th2 * 16),
            (
                "real-to-complex",
                TransformKind::Real,
                (tw2 / 2 + 1) * th2 * 16,
            ),
            (
                "padded complex",
                TransformKind::PaddedComplex,
                tw2 * th2 * 16,
            ),
        ] {
            let t0 = Instant::now();
            let r = SimpleCpuStitcher::default()
                .with_transform(kind)
                .compute_displacements(&src);
            assert!(r.is_complete());
            e.row(label, &[format!("{:.2?}", t0.elapsed()), bytes.to_string()]);
        }
        e.note("identical displacements, less transform work and memory on the real path");
        e.emit();
    }

    // 4. traversal orders: peak live transforms
    let shape = GridShape::new(42, 59);
    let mut o = ResultTable::new(
        "ablation_traversal",
        "traversal orders: peak live transforms on a 42x59 grid (§IV-A)",
        &["order", "peak live tiles", "RAM at 23MB/transform"],
    );
    for tr in Traversal::ALL {
        let peak = tr.peak_live(shape);
        o.row(
            format!("{tr:?}"),
            &[
                peak.to_string(),
                format!("{:.1} GB", peak as f64 * 23.2e6 / 1e9),
            ],
        );
    }
    o.note("chained-diagonal frees memory earliest — the paper's default");
    o.emit();
}
