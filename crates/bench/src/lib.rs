//! # stitch-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md`'s experiment
//! index), plus criterion microbenches for the substrates. This library
//! holds the shared plumbing: standard workloads, results tables, and
//! machine-readable output for `EXPERIMENTS.md`.

use std::fmt::Display;
use std::path::PathBuf;

use stitch_core::prelude::*;
use stitch_image::{ScanConfig, SyntheticPlate};

/// The standard scaled-down experiment workload: the paper's 42×59 grid
/// shape with smaller tiles, 25 % overlap (small tiles need a larger
/// overlap *fraction* for the same overlap statistics — see DESIGN.md).
pub fn scaled_scan(rows: usize, cols: usize, tile_w: usize, tile_h: usize) -> ScanConfig {
    ScanConfig {
        grid_rows: rows,
        grid_cols: cols,
        tile_width: tile_w,
        tile_height: tile_h,
        overlap: 0.25,
        stage_jitter: 3.0,
        backlash_x: 1.5,
        noise_sigma: 50.0,
        vignette: 0.03,
        seed: 2014,
    }
}

/// Builds an in-memory synthetic source for a scan config.
pub fn synthetic_source(config: ScanConfig) -> SyntheticSource {
    SyntheticSource::new(SyntheticPlate::generate(config))
}

/// One row of an experiment result table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (implementation, parameter value, …).
    pub label: String,
    /// Column values, aligned with the table's header.
    pub values: Vec<String>,
}

/// A printable, JSON-dumpable experiment result table.
#[derive(Clone, Debug)]
pub struct ResultTable {
    /// Experiment id ("table2", "fig11", …).
    pub experiment: String,
    /// Human title.
    pub title: String,
    /// Column headers (first column is the row label).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form notes (workload, substitutions, caveats).
    pub notes: Vec<String>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(experiment: &str, title: &str, columns: &[&str]) -> ResultTable {
        ResultTable {
            experiment: experiment.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, label: impl Display, values: &[String]) {
        self.rows.push(Row {
            label: label.to_string(),
            values: values.to_vec(),
        });
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Display) {
        self.notes.push(note.to_string());
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for r in &self.rows {
            widths[0] = widths[0].max(r.label.len());
            for (i, v) in r.values.iter().enumerate() {
                if i + 1 < widths.len() {
                    widths[i + 1] = widths[i + 1].max(v.len());
                }
            }
        }
        let mut out = format!("== {} — {} ==\n", self.experiment, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            let mut cells = vec![format!("{:>w$}", r.label, w = widths[0])];
            for (i, v) in r.values.iter().enumerate() {
                cells.push(format!(
                    "{v:>w$}",
                    w = widths.get(i + 1).copied().unwrap_or(0)
                ));
            }
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Renders the table as JSON (hand-rolled: the offline build has no
    /// serde, and the schema is four string fields deep).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn str_array(items: &[String], indent: &str) -> String {
            let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
            format!("[{}]", quoted.join(&format!(",\n{indent} ")))
        }
        let mut rows = Vec::new();
        for r in &self.rows {
            rows.push(format!(
                "    {{\"label\": \"{}\", \"values\": {}}}",
                esc(&r.label),
                str_array(&r.values, "      ")
            ));
        }
        format!(
            "{{\n  \"experiment\": \"{}\",\n  \"title\": \"{}\",\n  \"columns\": {},\n  \"rows\": [\n{}\n  ],\n  \"notes\": {}\n}}\n",
            esc(&self.experiment),
            esc(&self.title),
            str_array(&self.columns, "   "),
            rows.join(",\n"),
            str_array(&self.notes, "  ")
        )
    }

    /// Prints the table and, when `--json <dir>` was passed on the command
    /// line, also writes `<dir>/<experiment>.json`.
    pub fn emit(&self) {
        println!("{}", self.render());
        if let Some(dir) = json_dir() {
            std::fs::create_dir_all(&dir).expect("create json dir");
            let path = dir.join(format!("{}.json", self.experiment));
            std::fs::write(&path, self.to_json()).expect("write json results");
            eprintln!("(wrote {})", path.display());
        }
    }
}

/// The `--json <dir>` command-line option.
pub fn json_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// True when `--full` was passed (paper-scale workloads).
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Formats a nanosecond duration human-readably.
pub fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 90.0 {
        format!("{:.1}min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = ResultTable::new("t", "demo", &["impl", "time", "speedup"]);
        t.row("Simple-CPU", &["10.6min".into(), "1.0".into()]);
        t.row("Pipelined-GPU", &["49.7s".into(), "12.8".into()]);
        t.note("virtual time");
        let s = t.render();
        assert!(s.contains("Simple-CPU"));
        assert!(s.contains("note: virtual time"));
    }

    #[test]
    fn fmt_ns_ranges() {
        assert_eq!(fmt_ns(500_000_000), "500ms");
        assert_eq!(fmt_ns(49_700_000_000), "49.7s");
        assert_eq!(fmt_ns(636_000_000_000), "10.6min");
    }
}
