//! # stitch-fft — FFT substrate for the stitching system
//!
//! A from-scratch double-precision FFT library standing in for FFTW3 (CPU
//! path) and cuFFT (simulated-GPU path) in the ICPP 2014 stitching paper's
//! software stack. It provides:
//!
//! * arbitrary-length 1-D complex transforms — mixed-radix Cooley-Tukey for
//!   smooth sizes ([`MixedRadixPlan`]), Bluestein/chirp-z for sizes with
//!   large prime factors ([`BluesteinPlan`]);
//! * an FFTW-style [`Planner`] with Estimate / Measure / Patient search
//!   modes and a plan cache (§IV-A of the paper);
//! * 2-D transforms via row-column decomposition with a blocked transpose
//!   ([`Fft2d`]);
//! * real-to-complex / complex-to-real transforms ([`RealFft`],
//!   [`RealFft2d`]) — the paper's §VI-A future-work optimization;
//! * explicitly vector-shaped element-wise kernels ([`vectorops`]) — the
//!   NCC multiply and max reduction the paper hand-coded with SSE
//!   intrinsics (§IV-A);
//! * runtime-selected compute backends ([`backend`]) — scalar reference,
//!   lane-unrolled portable, and explicit AVX2 implementations of the
//!   phase-1 hot loops behind one [`ComputeBackend`] trait, chosen per
//!   process via `--backend` / `STITCH_BACKEND` / CPU feature detection;
//! * size utilities for the padding ablation ([`factor::next_smooth`]).
//!
//! Conventions: forward kernel `e^{-2πi jk/n}`, unscaled in both directions
//! (`inverse(forward(x)) = n·x`), matching FFTW. The convenience wrappers
//! [`fft_forward`] / [`fft_inverse`] hide the scaling.
//!
//! ```
//! use stitch_fft::{fft_forward, fft_inverse, C64, c64};
//! let x: Vec<C64> = (0..12).map(|k| c64(k as f64, 0.0)).collect();
//! let back = fft_inverse(&fft_forward(&x));
//! assert!(back.iter().zip(&x).all(|(a, b)| (*a - *b).abs() < 1e-9));
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod bluestein;
pub mod complex;
pub mod factor;
pub mod fft2d;
pub mod plan;
pub mod radix;
pub mod real;
pub mod scratch;
pub mod vectorops;

pub use backend::{BackendChoice, ComputeBackend};
pub use bluestein::BluesteinPlan;
pub use complex::{c64, C64};
pub use fft2d::{transpose, Fft2d, Fft2dPair};
pub use plan::{fft_forward, fft_inverse, global_planner, FftPlan, PlanMode, Planner};
pub use radix::{dft_naive, Direction, MixedRadixPlan};
pub use real::{RealFft, RealFft2d};
