//! Real-to-complex and complex-to-real transforms.
//!
//! Microscopy tiles are real-valued, so their spectra are Hermitian and only
//! `n/2 + 1` of the `n` frequency bins are independent. The paper lists
//! real-to-complex transforms as a planned optimization (§VI-A: "using real
//! to complex transforms ... will further improve performance by doing less
//! work; it will also reduce the computation's memory footprint"). This
//! module implements that extension; the `fft_padding`/`ablation` benches
//! measure it against the complex path.
//!
//! Even lengths use the classic pack-two-reals-into-one-complex trick
//! (one length-`n/2` complex FFT); odd lengths fall back to a full complex
//! transform internally but expose the same half-spectrum API.

use std::sync::Arc;

use crate::complex::{c64, C64};
use crate::plan::{FftPlan, Planner};
use crate::radix::Direction;
use crate::scratch;

/// Number of independent spectrum bins for a length-`n` real signal.
#[inline]
pub fn spectrum_len(n: usize) -> usize {
    n / 2 + 1
}

/// A planned 1-D real-input FFT (forward: `n` reals → `n/2+1` complex;
/// inverse: back to `n` reals, scaled so the round trip is the identity).
pub struct RealFft {
    n: usize,
    /// Even-length fast path: length n/2 complex plans.
    half_fwd: Option<Arc<FftPlan>>,
    half_inv: Option<Arc<FftPlan>>,
    /// Odd-length fallback: full-length complex plans.
    full_fwd: Option<Arc<FftPlan>>,
    full_inv: Option<Arc<FftPlan>>,
    /// Twiddles `e^{-2πi j/n}` for the even-length recombination.
    twiddle: Vec<C64>,
}

impl RealFft {
    /// Plans a length-`n` real transform (`n ≥ 1`).
    pub fn new(planner: &Planner, n: usize) -> RealFft {
        assert!(n > 0, "transform length must be positive");
        if n.is_multiple_of(2) && n >= 2 {
            let half = n / 2;
            let step = -2.0 * std::f64::consts::PI / n as f64;
            RealFft {
                n,
                half_fwd: Some(planner.plan(half, Direction::Forward)),
                half_inv: Some(planner.plan(half, Direction::Inverse)),
                full_fwd: None,
                full_inv: None,
                twiddle: (0..=half).map(|j| C64::cis(step * j as f64)).collect(),
            }
        } else {
            RealFft {
                n,
                half_fwd: None,
                half_inv: None,
                full_fwd: Some(planner.plan(n, Direction::Forward)),
                full_inv: Some(planner.plan(n, Direction::Inverse)),
                twiddle: Vec::new(),
            }
        }
    }

    /// Signal length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate length-0 case (never constructed).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Spectrum length `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        spectrum_len(self.n)
    }

    /// Forward transform: `input.len() == n`, `output.len() == n/2+1`.
    /// Matches the first `n/2+1` bins of the full complex DFT exactly
    /// (unscaled).
    pub fn forward(&self, input: &[f64], output: &mut [C64]) {
        assert_eq!(input.len(), self.n);
        assert_eq!(output.len(), self.spectrum_len());
        if let Some(fwd) = &self.half_fwd {
            let half = self.n / 2;
            scratch::with_scratch(2 * half, |buf| {
                let (packed, z) = buf.split_at_mut(half);
                // Pack x[2k] + i·x[2k+1] and transform at half length.
                for (k, p) in packed.iter_mut().enumerate() {
                    *p = c64(input[2 * k], input[2 * k + 1]);
                }
                fwd.process(packed, z);
                // Recombine: X[j] = E_j + W^j·O_j with
                // E_j = (Z_j + conj(Z_{half−j}))/2, O_j = −i(Z_j − conj(Z_{half−j}))/2.
                for (j, out) in output.iter_mut().enumerate() {
                    let zj = z[j % half];
                    let zc = z[(half - j % half) % half].conj();
                    let e = (zj + zc).scale(0.5);
                    let o = (zj - zc).scale(0.5).mul_neg_i();
                    *out = e + self.twiddle[j] * o;
                }
            })
        } else {
            scratch::with_scratch(2 * self.n, |buf| {
                let (full, spec) = buf.split_at_mut(self.n);
                for (f, &r) in full.iter_mut().zip(input) {
                    *f = c64(r, 0.0);
                }
                self.full_fwd.as_ref().unwrap().process(full, spec);
                output.copy_from_slice(&spec[..self.spectrum_len()]);
            })
        }
    }

    /// Inverse transform: `input.len() == n/2+1` Hermitian half-spectrum,
    /// `output.len() == n` reals. *Scaled*: `inverse(forward(x)) == x`.
    pub fn inverse(&self, input: &[C64], output: &mut [f64]) {
        assert_eq!(input.len(), self.spectrum_len());
        assert_eq!(output.len(), self.n);
        if let Some(inv) = &self.half_inv {
            let half = self.n / 2;
            scratch::with_scratch(2 * half, |buf| {
                let (z, packed) = buf.split_at_mut(half);
                // Rebuild Z_j from the half-spectrum, then one half-length
                // inverse FFT recovers the packed signal.
                for (j, zj) in z.iter_mut().enumerate() {
                    let xj = input[j];
                    let xc = input[half - j].conj();
                    let e = (xj + xc).scale(0.5);
                    let o = (xj - xc).scale(0.5) * self.twiddle[j].conj();
                    *zj = e + o.mul_i();
                }
                inv.process(z, packed);
                let s = 1.0 / half as f64;
                for (k, p) in packed.iter().enumerate() {
                    output[2 * k] = p.re * s;
                    output[2 * k + 1] = p.im * s;
                }
            })
        } else {
            scratch::with_scratch(2 * self.n, |buf| {
                let (spec, full) = buf.split_at_mut(self.n);
                // Mirror the half-spectrum into a full Hermitian spectrum.
                spec[..self.spectrum_len()].copy_from_slice(input);
                for j in self.spectrum_len()..self.n {
                    spec[j] = input[self.n - j].conj();
                }
                self.full_inv.as_ref().unwrap().process(spec, full);
                let s = 1.0 / self.n as f64;
                for (o, f) in output.iter_mut().zip(full.iter()) {
                    *o = f.re * s;
                }
            })
        }
    }
}

/// A planned 2-D real-input FFT: `w × h` reals → `(w/2+1) × h` complex
/// (row-major, the reduced axis is the fast one).
pub struct RealFft2d {
    width: usize,
    height: usize,
    row: RealFft,
    col_fwd: Arc<FftPlan>,
    col_inv: Arc<FftPlan>,
}

impl RealFft2d {
    /// Plans a `width × height` real transform.
    pub fn new(planner: &Planner, width: usize, height: usize) -> RealFft2d {
        assert!(width > 0 && height > 0);
        RealFft2d {
            width,
            height,
            row: RealFft::new(planner, width),
            col_fwd: planner.plan(height, Direction::Forward),
            col_inv: planner.plan(height, Direction::Inverse),
        }
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spectrum width `w/2 + 1`.
    pub fn spectrum_width(&self) -> usize {
        spectrum_len(self.width)
    }

    /// Total spectrum element count `(w/2+1) × h`.
    pub fn spectrum_len(&self) -> usize {
        self.spectrum_width() * self.height
    }

    /// Forward: `input.len() == w·h` (row-major reals) →
    /// `output.len() == (w/2+1)·h`. Unscaled.
    pub fn forward(&self, input: &[f64], output: &mut [C64]) {
        assert_eq!(input.len(), self.width * self.height);
        assert_eq!(output.len(), self.spectrum_len());
        let sw = self.spectrum_width();
        // r2c along rows.
        for (y, row) in input.chunks_exact(self.width).enumerate() {
            self.row.forward(row, &mut output[y * sw..(y + 1) * sw]);
        }
        // c2c along columns of the reduced spectrum.
        scratch::with_scratch(2 * self.height, |buf| {
            let (col_in, col_out) = buf.split_at_mut(self.height);
            for x in 0..sw {
                for y in 0..self.height {
                    col_in[y] = output[y * sw + x];
                }
                self.col_fwd.process(col_in, col_out);
                for y in 0..self.height {
                    output[y * sw + x] = col_out[y];
                }
            }
        })
    }

    /// Inverse: half-spectrum back to `w·h` reals. *Scaled* so the round
    /// trip is the identity.
    pub fn inverse(&self, input: &[C64], output: &mut [f64]) {
        assert_eq!(input.len(), self.spectrum_len());
        assert_eq!(output.len(), self.width * self.height);
        let sw = self.spectrum_width();
        scratch::with_scratch(self.spectrum_len() + 2 * self.height, |buf| {
            let (spec, cols) = buf.split_at_mut(self.spectrum_len());
            let (col_in, col_out) = cols.split_at_mut(self.height);
            spec.copy_from_slice(input);
            // inverse c2c along columns (unscaled), then scale by 1/h.
            let s = 1.0 / self.height as f64;
            for x in 0..sw {
                for y in 0..self.height {
                    col_in[y] = spec[y * sw + x];
                }
                self.col_inv.process(col_in, col_out);
                for y in 0..self.height {
                    spec[y * sw + x] = col_out[y].scale(s);
                }
            }
            // c2r along rows (RealFft::inverse is already scaled).
            for (y, row) in output.chunks_exact_mut(self.width).enumerate() {
                self.row.inverse(&spec[y * sw..(y + 1) * sw], row);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::fft_forward;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| ((k * 7) % 13) as f64 - 6.0 + 0.5 * ((k % 5) as f64))
            .collect()
    }

    #[test]
    fn forward_matches_complex_fft_even() {
        for n in [2usize, 8, 16, 30, 64, 348] {
            let x = signal(n);
            let r = RealFft::new(&Planner::default(), n);
            let mut half = vec![C64::ZERO; r.spectrum_len()];
            r.forward(&x, &mut half);
            let full = fft_forward(&x.iter().map(|&v| c64(v, 0.0)).collect::<Vec<_>>());
            for j in 0..r.spectrum_len() {
                assert!((half[j] - full[j]).abs() < 1e-8 * n as f64, "n={n} j={j}");
            }
        }
    }

    #[test]
    fn forward_matches_complex_fft_odd() {
        for n in [1usize, 3, 7, 15, 29] {
            let x = signal(n);
            let r = RealFft::new(&Planner::default(), n);
            let mut half = vec![C64::ZERO; r.spectrum_len()];
            r.forward(&x, &mut half);
            let full = fft_forward(&x.iter().map(|&v| c64(v, 0.0)).collect::<Vec<_>>());
            for j in 0..r.spectrum_len() {
                assert!(
                    (half[j] - full[j]).abs() < 1e-9 * n.max(4) as f64,
                    "n={n} j={j}"
                );
            }
        }
    }

    #[test]
    fn round_trip_1d() {
        for n in [2usize, 9, 16, 31, 100, 1040] {
            let x = signal(n);
            let r = RealFft::new(&Planner::default(), n);
            let mut spec = vec![C64::ZERO; r.spectrum_len()];
            let mut back = vec![0.0; n];
            r.forward(&x, &mut spec);
            r.inverse(&spec, &mut back);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn round_trip_2d() {
        for (w, h) in [(8usize, 6usize), (13, 9), (16, 16), (30, 22)] {
            let x = signal(w * h);
            let r = RealFft2d::new(&Planner::default(), w, h);
            let mut spec = vec![C64::ZERO; r.spectrum_len()];
            let mut back = vec![0.0; w * h];
            r.forward(&x, &mut spec);
            r.inverse(&spec, &mut back);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-7, "{w}x{h}");
            }
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let x = signal(24);
        let r = RealFft::new(&Planner::default(), 24);
        let mut spec = vec![C64::ZERO; r.spectrum_len()];
        r.forward(&x, &mut spec);
        let sum: f64 = x.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-9);
        assert!(spec[0].im.abs() < 1e-9);
    }

    #[test]
    fn spectrum_width_reduction() {
        let r = RealFft2d::new(&Planner::default(), 1040, 16);
        assert_eq!(r.spectrum_width(), 521);
        assert_eq!(r.spectrum_len(), 521 * 16);
    }
}
