//! Mixed-radix Cooley-Tukey FFT engine.
//!
//! A recursive decimation-in-time transform over an arbitrary radix
//! schedule (see [`crate::factor::radix_schedule`]): hard-coded butterflies
//! for radices 2, 3, 4 and 5, and a table-driven small-prime DFT for the
//! rest (up to [`crate::factor::MAX_NAIVE_PRIME`]). Lengths with larger
//! prime factors are handled by [`crate::bluestein`] instead.
//!
//! Plans are immutable after construction and safe to share across threads,
//! mirroring FFTW's `fftw_plan` reuse model that the paper relies on
//! (plan once during setup, execute thousands of times in the pipeline).

use crate::backend::{self, ComputeBackend, RADIX_DISPATCH_MIN_M};
use crate::complex::{c64, C64};
use crate::factor::{radix_schedule, MAX_NAIVE_PRIME};

/// Transform direction. Forward uses the kernel `e^{-2πi jk/n}`; inverse
/// uses `e^{+2πi jk/n}`. Neither direction scales the output — like FFTW,
/// `inverse(forward(x)) = n·x` and callers normalize when they need to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Signal domain → frequency domain.
    Forward,
    /// Frequency domain → signal domain (unscaled).
    Inverse,
}

impl Direction {
    /// Sign of the exponent: -1 for forward, +1 for inverse.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

/// Builds the length-`n` twiddle table `t[k] = e^{sign·2πi·k/n}`.
pub fn twiddle_table(n: usize, dir: Direction) -> Vec<C64> {
    let sign = dir.sign();
    let step = sign * 2.0 * std::f64::consts::PI / n as f64;
    (0..n).map(|k| C64::cis(step * k as f64)).collect()
}

/// Reference O(n²) DFT. The ground truth every fast path is tested against,
/// and the execution fallback for tiny sizes.
pub fn dft_naive(input: &[C64], output: &mut [C64], dir: Direction) {
    let n = input.len();
    assert_eq!(output.len(), n);
    if n == 0 {
        return;
    }
    let tw = twiddle_table(n, dir);
    for (j, out) in output.iter_mut().enumerate() {
        let mut acc = C64::ZERO;
        for (k, &x) in input.iter().enumerate() {
            acc += x * tw[(j * k) % n];
        }
        *out = acc;
    }
}

/// A mixed-radix FFT plan for a fixed length, direction and radix schedule.
pub struct MixedRadixPlan {
    n: usize,
    direction: Direction,
    /// Radix per recursion level, product == n.
    schedule: Vec<usize>,
    /// Full-length twiddle table for the plan's direction.
    twiddles: Vec<C64>,
    /// Per-radix DFT matrices (row-major r×r) for radices without a
    /// hard-coded butterfly. Indexed by radix value.
    small_dft: Vec<Option<Vec<C64>>>,
}

impl MixedRadixPlan {
    /// Plans a transform of length `n` with the default (descending-radix)
    /// schedule. Panics if `n` has a prime factor larger than
    /// [`MAX_NAIVE_PRIME`] — the planner routes those to Bluestein.
    pub fn new(n: usize, direction: Direction) -> MixedRadixPlan {
        Self::with_schedule(n, direction, radix_schedule(n))
    }

    /// Plans with an explicit radix schedule (used by Measure/Patient
    /// planning modes to compare schedule orderings).
    pub fn with_schedule(n: usize, direction: Direction, schedule: Vec<usize>) -> MixedRadixPlan {
        assert!(n > 0, "transform length must be positive");
        assert_eq!(
            schedule.iter().product::<usize>(),
            n,
            "schedule must multiply to n"
        );
        let max_radix = schedule.iter().copied().max().unwrap_or(1);
        assert!(
            max_radix <= MAX_NAIVE_PRIME.max(4),
            "radix {max_radix} too large for mixed-radix plan (use Bluestein)"
        );
        let mut small_dft: Vec<Option<Vec<C64>>> = vec![None; max_radix + 1];
        for &r in &schedule {
            if !matches!(r, 1..=5) && small_dft[r].is_none() {
                let tw = twiddle_table(r, direction);
                let mut m = vec![C64::ZERO; r * r];
                for q in 0..r {
                    for k in 0..r {
                        m[q * r + k] = tw[(q * k) % r];
                    }
                }
                small_dft[r] = Some(m);
            }
        }
        MixedRadixPlan {
            n,
            direction,
            schedule,
            twiddles: twiddle_table(n, direction),
            small_dft,
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate length-0 case (never constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Plan direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The radix schedule this plan executes.
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// Executes the transform out-of-place. `input` is left untouched.
    ///
    /// Panics if the slice lengths differ from the plan length.
    pub fn process(&self, input: &[C64], output: &mut [C64]) {
        assert_eq!(input.len(), self.n);
        assert_eq!(output.len(), self.n);
        // Resolve the backend once per transform, not per plan — the
        // active backend can change between calls (testkit sweeps it).
        let backend = backend::active();
        self.rec(backend, input, 1, output, self.n, 0);
    }

    /// Recursive DIT step: `inp` is a strided view (stride `is`) of length
    /// `n`, results land contiguously in `out[..n]`.
    fn rec(
        &self,
        backend: &dyn ComputeBackend,
        inp: &[C64],
        is: usize,
        out: &mut [C64],
        n: usize,
        level: usize,
    ) {
        if n == 1 {
            out[0] = inp[0];
            return;
        }
        let r = self.schedule[level];
        let m = n / r;
        for k in 0..r {
            self.rec(
                backend,
                &inp[k * is..],
                is * r,
                &mut out[k * m..(k + 1) * m],
                m,
                level + 1,
            );
        }
        // Combine: X[j + q·m] = Σ_k (sub_k[j]·W_n^{kj})·W_r^{kq}.
        // For fixed j the reads {out[k·m+j]} and writes {out[q·m+j]} cover
        // the same index set, so gather-then-scatter through `t` is safe.
        let tw_step = self.n / n;
        let mut t = [C64::ZERO; MAX_NAIVE_PRIME + 1];
        match r {
            2 => {
                // Dispatch through the trait only when the butterfly is
                // wide enough to amortize the indirect call; the small-m
                // inline path reuses the scalar backend's definition so
                // both paths share one expression DAG.
                if m >= RADIX_DISPATCH_MIN_M {
                    backend.radix2_pass(&mut out[..2 * m], m, &self.twiddles, tw_step);
                } else {
                    backend::scalar::radix2_scalar(&mut out[..2 * m], m, &self.twiddles, tw_step);
                }
            }
            3 => {
                // W_3 = cis(sign·2π/3)
                let w1 = self.twiddles[self.n / 3];
                let w2 = self.twiddles[2 * (self.n / 3)];
                for j in 0..m {
                    let a = out[j];
                    let b = out[m + j] * self.twiddles[j * tw_step];
                    let c = out[2 * m + j] * self.twiddles[(2 * j * tw_step) % self.n];
                    out[j] = a + b + c;
                    out[m + j] = a + b * w1 + c * w2;
                    out[2 * m + j] = a + b * w2 + c * w1;
                }
            }
            4 => {
                let fwd = self.direction == Direction::Forward;
                if m >= RADIX_DISPATCH_MIN_M {
                    backend.radix4_pass(&mut out[..4 * m], m, &self.twiddles, tw_step, fwd);
                } else {
                    backend::scalar::radix4_scalar(
                        &mut out[..4 * m],
                        m,
                        &self.twiddles,
                        tw_step,
                        fwd,
                    );
                }
            }
            5 => {
                let w = [
                    C64::ONE,
                    self.twiddles[self.n / 5],
                    self.twiddles[2 * (self.n / 5)],
                    self.twiddles[3 * (self.n / 5)],
                    self.twiddles[4 * (self.n / 5)],
                ];
                for j in 0..m {
                    for (k, tk) in t.iter_mut().take(5).enumerate() {
                        *tk = out[k * m + j] * self.twiddles[(k * j * tw_step) % self.n];
                    }
                    for q in 0..5 {
                        let mut acc = t[0];
                        for k in 1..5 {
                            acc += t[k] * w[(q * k) % 5];
                        }
                        out[q * m + j] = acc;
                    }
                }
            }
            _ => {
                let mat = self.small_dft[r]
                    .as_ref()
                    .expect("small DFT matrix built at plan time");
                for j in 0..m {
                    for (k, tk) in t.iter_mut().take(r).enumerate() {
                        *tk = out[k * m + j] * self.twiddles[(k * j * tw_step) % self.n];
                    }
                    for q in 0..r {
                        let row = &mat[q * r..(q + 1) * r];
                        let mut acc = c64(0.0, 0.0);
                        for k in 0..r {
                            acc += t[k] * row[k];
                        }
                        out[q * m + j] = acc;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    fn ramp(n: usize) -> Vec<C64> {
        (0..n)
            .map(|k| c64(k as f64 * 0.37 - 1.0, (k * k % 17) as f64 * 0.11))
            .collect()
    }

    #[test]
    fn direction_sign_and_reverse() {
        assert_eq!(Direction::Forward.sign(), -1.0);
        assert_eq!(Direction::Inverse.sign(), 1.0);
        assert_eq!(Direction::Forward.reverse(), Direction::Inverse);
    }

    #[test]
    fn dft_of_delta_is_flat() {
        let mut x = vec![C64::ZERO; 8];
        x[0] = C64::ONE;
        let mut out = vec![C64::ZERO; 8];
        dft_naive(&x, &mut out, Direction::Forward);
        for v in out {
            assert!((v - C64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_delta() {
        let x = vec![C64::ONE; 16];
        let mut out = vec![C64::ZERO; 16];
        dft_naive(&x, &mut out, Direction::Forward);
        assert!((out[0] - c64(16.0, 0.0)).abs() < 1e-10);
        for v in &out[1..] {
            assert!(v.abs() < 1e-10);
        }
    }

    #[test]
    fn matches_naive_all_small_sizes() {
        for n in 1..=64usize {
            if !crate::factor::is_smooth(n) {
                continue;
            }
            let x = ramp(n);
            let mut fast = vec![C64::ZERO; n];
            let mut slow = vec![C64::ZERO; n];
            for dir in [Direction::Forward, Direction::Inverse] {
                MixedRadixPlan::new(n, dir).process(&x, &mut fast);
                dft_naive(&x, &mut slow, dir);
                assert!(max_err(&fast, &slow) < 1e-9 * n as f64, "n={n} dir={dir:?}");
            }
        }
    }

    #[test]
    fn matches_naive_tile_like_sizes() {
        // 1392 = 2^4·3·29 and 1040 = 2^4·5·13 — the paper's tile dims.
        for n in [348usize, 1392, 1040, 520] {
            let x = ramp(n);
            let mut fast = vec![C64::ZERO; n];
            let mut slow = vec![C64::ZERO; n];
            MixedRadixPlan::new(n, Direction::Forward).process(&x, &mut fast);
            dft_naive(&x, &mut slow, Direction::Forward);
            assert!(max_err(&fast, &slow) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn round_trip_scales_by_n() {
        for n in [1usize, 2, 6, 30, 128, 360, 1024] {
            let x = ramp(n);
            let mut freq = vec![C64::ZERO; n];
            let mut back = vec![C64::ZERO; n];
            MixedRadixPlan::new(n, Direction::Forward).process(&x, &mut freq);
            MixedRadixPlan::new(n, Direction::Inverse).process(&freq, &mut back);
            let scaled: Vec<C64> = x.iter().map(|z| z.scale(n as f64)).collect();
            assert!(max_err(&back, &scaled) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn alternative_schedules_agree() {
        let n = 120; // 2^3·3·5
        let x = ramp(n);
        let mut reference = vec![C64::ZERO; n];
        MixedRadixPlan::new(n, Direction::Forward).process(&x, &mut reference);
        for sched in [
            vec![2, 2, 2, 3, 5],
            vec![5, 3, 4, 2],
            vec![3, 5, 2, 4],
            vec![2, 3, 4, 5],
        ] {
            let mut out = vec![C64::ZERO; n];
            MixedRadixPlan::with_schedule(n, Direction::Forward, sched.clone())
                .process(&x, &mut out);
            assert!(max_err(&out, &reference) < 1e-9, "schedule {sched:?}");
        }
    }

    #[test]
    fn input_is_untouched() {
        let x = ramp(60);
        let snapshot = x.clone();
        let mut out = vec![C64::ZERO; 60];
        MixedRadixPlan::new(60, Direction::Forward).process(&x, &mut out);
        assert_eq!(
            x.iter().map(|z| (z.re, z.im)).collect::<Vec<_>>(),
            snapshot.iter().map(|z| (z.re, z.im)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 240;
        let x = ramp(n);
        let mut freq = vec![C64::ZERO; n];
        MixedRadixPlan::new(n, Direction::Forward).process(&x, &mut freq);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    #[should_panic]
    fn wrong_output_len_panics() {
        let plan = MixedRadixPlan::new(8, Direction::Forward);
        let x = vec![C64::ZERO; 8];
        let mut out = vec![C64::ZERO; 4];
        plan.process(&x, &mut out);
    }
}
