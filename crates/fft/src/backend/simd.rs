//! The explicit-AVX2 backend (x86_64 only).
//!
//! Hand-written `core::arch` intrinsics for every phase-1 hot loop —
//! the modern form of the paper's §IV-A SSE kernels. Each kernel
//! evaluates exactly the expression DAG of its scalar/portable twin:
//!
//! * no FMA — products and sums stay separately rounded
//!   (`_mm256_mul_pd` + `_mm256_add_pd`, never `_mm256_fmadd_pd`);
//! * `_mm256_div_pd` and `_mm256_sqrt_pd` are correctly rounded, so
//!   `re/mag` and `√(re²+im²)` match their scalar counterparts bit for
//!   bit;
//! * the ±i rotations in the radix-4 butterfly are component
//!   swaps + sign flips (an XOR), which are exact;
//! * the max reduction funnels its four lanes through the same merge
//!   epilogue as the portable version, so tie-breaks are identical by
//!   construction.
//!
//! Only the co-moment kernels are *not* bit-identical to the scalar
//! backend: they re-associate the sum into four lanes — but they share
//! the portable backend's exact summation order, so `portable` and
//! `simd` co-moments are bit-identical to each other (pinned by test).
//!
//! Every public entry point re-checks [`super::simd_supported`] and
//! falls back to the portable implementation, so constructing
//! [`SimdBackend`] on a non-AVX2 host is safe, merely pointless.

use core::arch::x86_64::*;

use crate::complex::C64;
use crate::vectorops::{self, merge_lanes_and_tail, LANES};

use super::ComputeBackend;

/// Explicit AVX2 intrinsics (`--backend simd`), selected by `auto` when
/// the host supports them.
pub struct SimdBackend;

impl ComputeBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn ncc(&self, a: &[C64], b: &[C64], out: &mut [C64]) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), out.len());
        if super::simd_supported() {
            // SAFETY: AVX2 confirmed on this host; lengths checked above.
            unsafe { ncc_avx2(a, b, out) }
        } else {
            vectorops::ncc_vectorized(a, b, out);
        }
    }

    fn max_norm_sqr(&self, data: &[C64]) -> Option<(usize, f64)> {
        if super::simd_supported() {
            // SAFETY: AVX2 confirmed on this host.
            unsafe { max_norm_sqr_avx2(data) }
        } else {
            vectorops::max_norm_sqr_vectorized(data)
        }
    }

    fn comoment(&self, a: &[f64], b: &[f64]) -> [f64; 5] {
        assert_eq!(a.len(), b.len());
        if super::simd_supported() {
            // SAFETY: AVX2 confirmed on this host; lengths checked above.
            unsafe { comoment_avx2(a, b) }
        } else {
            vectorops::comoment_vectorized(a, b)
        }
    }

    fn comoment_u16(&self, a: &[u16], b: &[u16], ca: f64, cb: f64) -> [f64; 5] {
        assert_eq!(a.len(), b.len());
        if super::simd_supported() {
            // SAFETY: AVX2 confirmed on this host; lengths checked above.
            unsafe { comoment_u16_avx2(a, b, ca, cb) }
        } else {
            vectorops::comoment_u16_vectorized(a, b, ca, cb)
        }
    }

    fn radix2_pass(&self, out: &mut [C64], m: usize, twiddles: &[C64], tw_step: usize) {
        if super::simd_supported() {
            // SAFETY: AVX2 confirmed on this host.
            unsafe { radix2_avx2(out, m, twiddles, tw_step) }
        } else {
            super::portable::radix2_portable(out, m, twiddles, tw_step);
        }
    }

    fn radix4_pass(
        &self,
        out: &mut [C64],
        m: usize,
        twiddles: &[C64],
        tw_step: usize,
        forward: bool,
    ) {
        if super::simd_supported() {
            // SAFETY: AVX2 confirmed on this host.
            unsafe { radix4_avx2(out, m, twiddles, tw_step, forward) }
        } else {
            super::portable::radix4_portable(out, m, twiddles, tw_step, forward);
        }
    }
}

/// Loads one complex (two contiguous `f64`) into a 128-bit lane.
///
/// # Safety
/// Caller guarantees `z` points at a valid `C64` and SSE2 is available
/// (baseline on x86_64).
#[inline(always)]
unsafe fn load_c64(z: *const C64) -> __m128d {
    _mm_loadu_pd(z as *const f64)
}

/// Deinterleaves four packed complex (`r0 i0 r1 i1 | r2 i2 r3 i3`) into
/// `(re, im)` vectors.
///
/// # Safety
/// AVX required.
#[inline(always)]
unsafe fn deinterleave4(lo: __m256d, hi: __m256d) -> (__m256d, __m256d) {
    let t0 = _mm256_permute2f128_pd(lo, hi, 0x20); // r0 i0 r2 i2
    let t1 = _mm256_permute2f128_pd(lo, hi, 0x31); // r1 i1 r3 i3
    let re = _mm256_unpacklo_pd(t0, t1); // r0 r1 r2 r3
    let im = _mm256_unpackhi_pd(t0, t1); // i0 i1 i2 i3
    (re, im)
}

/// Inverse of [`deinterleave4`].
///
/// # Safety
/// AVX required.
#[inline(always)]
unsafe fn interleave4(re: __m256d, im: __m256d) -> (__m256d, __m256d) {
    let t0 = _mm256_unpacklo_pd(re, im); // r0 i0 r2 i2
    let t1 = _mm256_unpackhi_pd(re, im); // r1 i1 r3 i3
    let lo = _mm256_permute2f128_pd(t0, t1, 0x20); // r0 i0 r1 i1
    let hi = _mm256_permute2f128_pd(t0, t1, 0x31); // r2 i2 r3 i3
    (lo, hi)
}

/// Two interleaved complex multiplies `x·y` per vector, the exact
/// [`C64: Mul`] DAG: `re = x.re·y.re − x.im·y.im`,
/// `im = x.re·y.im + x.im·y.re` (one `addsub`, separately rounded).
///
/// # Safety
/// AVX required.
#[inline(always)]
unsafe fn cmul2(x: __m256d, y: __m256d) -> __m256d {
    let xre = _mm256_movedup_pd(x); // x0.re x0.re x1.re x1.re
    let xim = _mm256_permute_pd(x, 0xF); // x0.im x0.im x1.im x1.im
    let yswap = _mm256_permute_pd(y, 0x5); // y0.im y0.re y1.im y1.re
    _mm256_addsub_pd(_mm256_mul_pd(xre, y), _mm256_mul_pd(xim, yswap))
}

/// NCC over four complex per iteration. Bit-identical to
/// [`vectorops::ncc_scalar`].
///
/// # Safety
/// AVX2 must be available; all three slices must share one length.
#[target_feature(enable = "avx2")]
unsafe fn ncc_avx2(a: &[C64], b: &[C64], out: &mut [C64]) {
    let n = a.len();
    let chunks = n / LANES;
    let floor = _mm256_set1_pd(1e-300);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    for c in 0..chunks {
        let i = c * LANES;
        let (are, aim) = deinterleave4(
            _mm256_loadu_pd(ap.add(i) as *const f64),
            _mm256_loadu_pd(ap.add(i + 2) as *const f64),
        );
        let (bre, bim) = deinterleave4(
            _mm256_loadu_pd(bp.add(i) as *const f64),
            _mm256_loadu_pd(bp.add(i + 2) as *const f64),
        );
        // re = a.re·b.re + a.im·b.im ; im = a.im·b.re − a.re·b.im
        let re = _mm256_add_pd(_mm256_mul_pd(are, bre), _mm256_mul_pd(aim, bim));
        let im = _mm256_sub_pd(_mm256_mul_pd(aim, bre), _mm256_mul_pd(are, bim));
        // mag = √(re² + im²); underflowed lanes blend to +0.0
        let mag = _mm256_sqrt_pd(_mm256_add_pd(_mm256_mul_pd(re, re), _mm256_mul_pd(im, im)));
        let keep = _mm256_cmp_pd::<_CMP_GT_OQ>(mag, floor);
        let ore = _mm256_and_pd(_mm256_div_pd(re, mag), keep);
        let oim = _mm256_and_pd(_mm256_div_pd(im, mag), keep);
        let (lo, hi) = interleave4(ore, oim);
        _mm256_storeu_pd(op.add(i) as *mut f64, lo);
        _mm256_storeu_pd(op.add(i + 2) as *mut f64, hi);
    }
    let done = chunks * LANES;
    vectorops::ncc_scalar(&a[done..], &b[done..], &mut out[done..]);
}

/// Four-lane max reduction over squared magnitudes; funnels into the
/// shared lane-merge epilogue so tie-breaks match the portable version
/// exactly.
///
/// # Safety
/// AVX2 must be available.
#[target_feature(enable = "avx2")]
unsafe fn max_norm_sqr_avx2(data: &[C64]) -> Option<(usize, f64)> {
    let chunks = data.len() / LANES;
    let p = data.as_ptr();
    let mut best = _mm256_set1_pd(f64::MIN);
    let mut best_idx = _mm256_setzero_si256();
    let mut idx = _mm256_setr_epi64x(0, 1, 2, 3);
    let four = _mm256_set1_epi64x(LANES as i64);
    for c in 0..chunks {
        let i = c * LANES;
        let (re, im) = deinterleave4(
            _mm256_loadu_pd(p.add(i) as *const f64),
            _mm256_loadu_pd(p.add(i + 2) as *const f64),
        );
        let m = _mm256_add_pd(_mm256_mul_pd(re, re), _mm256_mul_pd(im, im));
        // strict > skips NaN (ordered compare) and keeps earlier
        // indices on ties, exactly like the portable lanes
        let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(m, best);
        best = _mm256_blendv_pd(best, m, gt);
        best_idx = _mm256_blendv_epi8(best_idx, idx, _mm256_castpd_si256(gt));
        idx = _mm256_add_epi64(idx, four);
    }
    let mut lane_best = [0.0f64; LANES];
    let mut lane_idx64 = [0i64; LANES];
    _mm256_storeu_pd(lane_best.as_mut_ptr(), best);
    _mm256_storeu_si256(lane_idx64.as_mut_ptr() as *mut __m256i, best_idx);
    let mut lane_idx = [0usize; LANES];
    for l in 0..LANES {
        lane_idx[l] = lane_idx64[l] as usize;
    }
    merge_lanes_and_tail(data, chunks * LANES, &lane_best, &lane_idx)
}

/// Horizontal merge of the five accumulator vectors plus the scalar
/// tail, in exactly the portable backend's summation order
/// (`acc = ((0 + lane0) + lane1) + lane2) + lane3`, then `+ tail`).
///
/// # Safety
/// AVX required; `tail` must be the co-moments of `a[done..]`.
#[inline(always)]
unsafe fn comoment_merge(acc: [__m256d; 5], tail: [f64; 5]) -> [f64; 5] {
    let mut out = [0.0f64; 5];
    let mut lanes = [0.0f64; 4];
    for (k, o) in out.iter_mut().enumerate() {
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc[k]);
        let mut v = 0.0f64;
        for lane in lanes {
            v += lane;
        }
        *o = v + tail[k];
    }
    out
}

/// Co-moments over pre-centered `f64` values, four lanes wide.
/// Bit-identical to [`vectorops::comoment_vectorized`].
///
/// # Safety
/// AVX2 must be available; slices must share one length.
#[target_feature(enable = "avx2")]
unsafe fn comoment_avx2(a: &[f64], b: &[f64]) -> [f64; 5] {
    let chunks = a.len() / LANES;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = [_mm256_setzero_pd(); 5];
    for c in 0..chunks {
        let va = _mm256_loadu_pd(ap.add(c * LANES));
        let vb = _mm256_loadu_pd(bp.add(c * LANES));
        accumulate(&mut acc, va, vb);
    }
    let done = chunks * LANES;
    comoment_merge(acc, vectorops::comoment_scalar(&a[done..], &b[done..]))
}

/// One accumulation step shared by the `f64` and `u16` co-moment loops.
///
/// # Safety
/// AVX required.
#[inline(always)]
unsafe fn accumulate(acc: &mut [__m256d; 5], va: __m256d, vb: __m256d) {
    acc[0] = _mm256_add_pd(acc[0], va);
    acc[1] = _mm256_add_pd(acc[1], vb);
    acc[2] = _mm256_add_pd(acc[2], _mm256_mul_pd(va, vb));
    acc[3] = _mm256_add_pd(acc[3], _mm256_mul_pd(va, va));
    acc[4] = _mm256_add_pd(acc[4], _mm256_mul_pd(vb, vb));
}

/// The CCF inner loop: widen four `u16` pixels to `f64` (exact), center
/// on the tile means, accumulate five co-moments. Bit-identical to
/// [`vectorops::comoment_u16_vectorized`].
///
/// # Safety
/// AVX2 must be available; slices must share one length.
#[target_feature(enable = "avx2")]
unsafe fn comoment_u16_avx2(a: &[u16], b: &[u16], ca: f64, cb: f64) -> [f64; 5] {
    let chunks = a.len() / LANES;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let vca = _mm256_set1_pd(ca);
    let vcb = _mm256_set1_pd(cb);
    let mut acc = [_mm256_setzero_pd(); 5];
    for c in 0..chunks {
        let i = c * LANES;
        // 4×u16 → 4×i32 → 4×f64: every step exact
        let ra = _mm256_cvtepi32_pd(_mm_cvtepu16_epi32(_mm_loadl_epi64(
            ap.add(i) as *const __m128i
        )));
        let rb = _mm256_cvtepi32_pd(_mm_cvtepu16_epi32(_mm_loadl_epi64(
            bp.add(i) as *const __m128i
        )));
        let va = _mm256_sub_pd(ra, vca);
        let vb = _mm256_sub_pd(rb, vcb);
        accumulate(&mut acc, va, vb);
    }
    let done = chunks * LANES;
    comoment_merge(
        acc,
        vectorops::comoment_u16_scalar(&a[done..], &b[done..], ca, cb),
    )
}

/// Loads twiddles `tw[i0]` and `tw[i1]` as one interleaved vector.
///
/// # Safety
/// AVX required; indices in bounds.
#[inline(always)]
unsafe fn load_twiddles2(tw: *const C64, i0: usize, i1: usize) -> __m256d {
    _mm256_set_m128d(load_c64(tw.add(i1)), load_c64(tw.add(i0)))
}

/// Radix-2 combine, two butterflies per iteration. Bit-identical to the
/// scalar pass.
///
/// # Safety
/// AVX2 must be available; `out` must cover `2m` elements and
/// `twiddles[(m−1)·tw_step]` must be in bounds.
#[target_feature(enable = "avx2")]
unsafe fn radix2_avx2(out: &mut [C64], m: usize, twiddles: &[C64], tw_step: usize) {
    let pairs = m / 2;
    let lo = out.as_mut_ptr();
    let hi = lo.add(m);
    let tp = twiddles.as_ptr();
    for c in 0..pairs {
        let j = c * 2;
        let t = load_twiddles2(tp, j * tw_step, (j + 1) * tw_step);
        let a = _mm256_loadu_pd(lo.add(j) as *const f64);
        let b = cmul2(_mm256_loadu_pd(hi.add(j) as *const f64), t);
        _mm256_storeu_pd(lo.add(j) as *mut f64, _mm256_add_pd(a, b));
        _mm256_storeu_pd(hi.add(j) as *mut f64, _mm256_sub_pd(a, b));
    }
    for j in pairs * 2..m {
        let a = out[j];
        let b = out[m + j] * twiddles[j * tw_step];
        out[j] = a + b;
        out[m + j] = a - b;
    }
}

/// Multiplies two interleaved complex by `−i` (`(re, im) → (im, −re)`):
/// a swap plus a sign flip on the imaginary lanes — exact.
///
/// # Safety
/// AVX required.
#[inline(always)]
unsafe fn cmul_neg_i2(x: __m256d) -> __m256d {
    let swapped = _mm256_permute_pd(x, 0x5); // im re im re
    let sign = _mm256_castsi256_pd(_mm256_setr_epi64x(0, i64::MIN, 0, i64::MIN));
    _mm256_xor_pd(swapped, sign)
}

/// Multiplies two interleaved complex by `+i` (`(re, im) → (−im, re)`).
///
/// # Safety
/// AVX required.
#[inline(always)]
unsafe fn cmul_i2(x: __m256d) -> __m256d {
    let swapped = _mm256_permute_pd(x, 0x5); // im re im re
    let sign = _mm256_castsi256_pd(_mm256_setr_epi64x(i64::MIN, 0, i64::MIN, 0));
    _mm256_xor_pd(swapped, sign)
}

/// Radix-4 combine, two butterflies per iteration. Bit-identical to the
/// scalar pass.
///
/// # Safety
/// AVX2 must be available; `out` must cover `4m` elements; twiddle
/// indices are taken modulo `twiddles.len()`.
#[target_feature(enable = "avx2")]
unsafe fn radix4_avx2(out: &mut [C64], m: usize, twiddles: &[C64], tw_step: usize, forward: bool) {
    let n_total = twiddles.len();
    let pairs = m / 2;
    let q0 = out.as_mut_ptr();
    let q1 = q0.add(m);
    let q2 = q0.add(2 * m);
    let q3 = q0.add(3 * m);
    let tp = twiddles.as_ptr();
    for cidx in 0..pairs {
        let j = cidx * 2;
        let (j0, j1) = (j * tw_step, (j + 1) * tw_step);
        let a = _mm256_loadu_pd(q0.add(j) as *const f64);
        let b = cmul2(
            _mm256_loadu_pd(q1.add(j) as *const f64),
            load_twiddles2(tp, j0, j1),
        );
        let c = cmul2(
            _mm256_loadu_pd(q2.add(j) as *const f64),
            load_twiddles2(tp, (2 * j0) % n_total, (2 * j1) % n_total),
        );
        let d = cmul2(
            _mm256_loadu_pd(q3.add(j) as *const f64),
            load_twiddles2(tp, (3 * j0) % n_total, (3 * j1) % n_total),
        );
        let ac_p = _mm256_add_pd(a, c);
        let ac_m = _mm256_sub_pd(a, c);
        let bd_p = _mm256_add_pd(b, d);
        let bd = _mm256_sub_pd(b, d);
        let bd_m = if forward {
            cmul_neg_i2(bd)
        } else {
            cmul_i2(bd)
        };
        _mm256_storeu_pd(q0.add(j) as *mut f64, _mm256_add_pd(ac_p, bd_p));
        _mm256_storeu_pd(q1.add(j) as *mut f64, _mm256_add_pd(ac_m, bd_m));
        _mm256_storeu_pd(q2.add(j) as *mut f64, _mm256_sub_pd(ac_p, bd_p));
        _mm256_storeu_pd(q3.add(j) as *mut f64, _mm256_sub_pd(ac_m, bd_m));
    }
    for j in pairs * 2..m {
        let a = out[j];
        let b = out[m + j] * twiddles[j * tw_step];
        let c = out[2 * m + j] * twiddles[(2 * j * tw_step) % n_total];
        let d = out[3 * m + j] * twiddles[(3 * j * tw_step) % n_total];
        let ac_p = a + c;
        let ac_m = a - c;
        let bd_p = b + d;
        let bd_m = if forward {
            (b - d).mul_neg_i()
        } else {
            (b - d).mul_i()
        };
        out[j] = ac_p + bd_p;
        out[m + j] = ac_m + bd_m;
        out[2 * m + j] = ac_p - bd_p;
        out[3 * m + j] = ac_m - bd_m;
    }
}
