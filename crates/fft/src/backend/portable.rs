//! The lane-unrolled auto-vectorizable backend.
//!
//! Element-wise kernels and reductions come straight from
//! [`crate::vectorops`] (the PR-4-era vector-shaped loops); the radix
//! butterfly passes extend the same shape to the FFT combine loops:
//! disjoint sub-slices (so the optimizer can prove no aliasing) walked
//! in fixed-width chunks with an independent body per lane. LLVM turns
//! these into packed SIMD at whatever width the target offers without a
//! single intrinsic — the portable floor every platform gets.

use crate::complex::C64;
use crate::vectorops;

use super::ComputeBackend;

/// Lane-unrolled loops LLVM auto-vectorizes (`--backend portable`).
pub struct PortableBackend;

impl ComputeBackend for PortableBackend {
    fn name(&self) -> &'static str {
        "portable"
    }

    fn ncc(&self, a: &[C64], b: &[C64], out: &mut [C64]) {
        vectorops::ncc_vectorized(a, b, out);
    }

    fn max_norm_sqr(&self, data: &[C64]) -> Option<(usize, f64)> {
        vectorops::max_norm_sqr_vectorized(data)
    }

    fn comoment(&self, a: &[f64], b: &[f64]) -> [f64; 5] {
        vectorops::comoment_vectorized(a, b)
    }

    fn comoment_u16(&self, a: &[u16], b: &[u16], ca: f64, cb: f64) -> [f64; 5] {
        vectorops::comoment_u16_vectorized(a, b, ca, cb)
    }

    fn radix2_pass(&self, out: &mut [C64], m: usize, twiddles: &[C64], tw_step: usize) {
        radix2_portable(out, m, twiddles, tw_step);
    }

    fn radix4_pass(
        &self,
        out: &mut [C64],
        m: usize,
        twiddles: &[C64],
        tw_step: usize,
        forward: bool,
    ) {
        radix4_portable(out, m, twiddles, tw_step, forward);
    }
}

/// Butterfly lanes: two complex (four `f64`) per unrolled step — one
/// 256-bit vector, or two 128-bit ones, of independent work.
const BLANES: usize = 2;

/// Radix-2 combine in [`BLANES`]-wide chunks over provably disjoint
/// halves. Bit-identical to the scalar pass: same multiplies, same
/// adds, only evaluated side by side.
pub(crate) fn radix2_portable(out: &mut [C64], m: usize, twiddles: &[C64], tw_step: usize) {
    let (lo, hi) = out.split_at_mut(m);
    let hi = &mut hi[..m];
    let chunks = m / BLANES;
    for c in 0..chunks {
        let j0 = c * BLANES;
        for l in 0..BLANES {
            let j = j0 + l;
            let a = lo[j];
            let b = hi[j] * twiddles[j * tw_step];
            lo[j] = a + b;
            hi[j] = a - b;
        }
    }
    for j in chunks * BLANES..m {
        let a = lo[j];
        let b = hi[j] * twiddles[j * tw_step];
        lo[j] = a + b;
        hi[j] = a - b;
    }
}

/// Radix-4 combine in [`BLANES`]-wide chunks over four disjoint
/// quarters. Same expression DAG as the scalar pass (the ±i rotations
/// are exact component swaps/negations).
pub(crate) fn radix4_portable(
    out: &mut [C64],
    m: usize,
    twiddles: &[C64],
    tw_step: usize,
    forward: bool,
) {
    let n_total = twiddles.len();
    let (q0, rest) = out.split_at_mut(m);
    let (q1, rest) = rest.split_at_mut(m);
    let (q2, q3) = rest.split_at_mut(m);
    let q3 = &mut q3[..m];
    let mut body = |j: usize| {
        let a = q0[j];
        let b = q1[j] * twiddles[j * tw_step];
        let c = q2[j] * twiddles[(2 * j * tw_step) % n_total];
        let d = q3[j] * twiddles[(3 * j * tw_step) % n_total];
        let ac_p = a + c;
        let ac_m = a - c;
        let bd_p = b + d;
        let bd_m = if forward {
            (b - d).mul_neg_i()
        } else {
            (b - d).mul_i()
        };
        q0[j] = ac_p + bd_p;
        q1[j] = ac_m + bd_m;
        q2[j] = ac_p - bd_p;
        q3[j] = ac_m - bd_m;
    };
    let chunks = m / BLANES;
    for c in 0..chunks {
        for l in 0..BLANES {
            body(c * BLANES + l);
        }
    }
    for j in chunks * BLANES..m {
        body(j);
    }
}
