//! Runtime-selected compute backends for the phase-1 hot loops.
//!
//! The paper's §IV-A found that GCC would not auto-vectorize the two hot
//! element-wise loops of the stitching computation and hand-coded them
//! with SSE intrinsics. This module generalizes that observation into a
//! [`ComputeBackend`] trait covering every phase-1 hot loop — the NCC
//! normalized conjugate multiply, the max reduction, the CCF co-moment
//! accumulation, and the radix-2/4 FFT butterfly passes — with three
//! implementations selected at runtime:
//!
//! * [`scalar`] — straight sequential reference loops;
//! * [`portable`] — the lane-unrolled dependency-free shape from
//!   [`crate::vectorops`], which LLVM auto-vectorizes on any target;
//! * [`simd`] — explicit `core::arch` x86_64 AVX2 intrinsics behind
//!   `is_x86_feature_detected!`, falling back to `portable` elsewhere.
//!
//! # Selection
//!
//! [`active`] resolves the backend in precedence order: an explicit
//! [`select`] call (the CLI's `--backend` flag), the `STITCH_BACKEND`
//! environment variable (`auto`, `scalar`, `portable`, `simd`), then
//! auto-detection (AVX2 available → `simd`, otherwise `portable`).
//! Selection is process-global and cheap to read (one relaxed atomic
//! load), and it is re-read on every kernel dispatch — cached FFT plans
//! do *not* capture the backend at plan time — so tests can switch
//! backends mid-process and every subsequent operation follows.
//!
//! # Bit-exactness contract
//!
//! The element-wise kernels (`ncc`, the butterfly passes) and the max
//! reduction evaluate the *same IEEE-754 expression DAG* in every
//! backend: no FMA contraction, no re-associated sums, division and
//! square root are correctly rounded, and tie-breaks resolve to the
//! lowest index. All backends therefore produce bit-identical NCC
//! surfaces, FFT outputs, and peak indices — the testkit backend oracle
//! pins this. The co-moment accumulators (`comoment*`) are reductions;
//! the lane-split versions re-associate the sum and are only guaranteed
//! equal to ~1e-12 relative, which the CCF scoring tolerates (see
//! DESIGN.md § "Compute backends").

use std::sync::atomic::{AtomicU8, Ordering};

use crate::complex::C64;

pub mod portable;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
pub mod simd;

/// Butterfly spans shorter than this skip the backend dispatch and run
/// the inline scalar loop: at tiny `m` the virtual call and vector
/// setup cost more than the work. The inline loop evaluates the same
/// expression DAG, so the output is bit-identical either way.
pub(crate) const RADIX_DISPATCH_MIN_M: usize = 8;

/// The phase-1 hot-loop kernels every backend provides.
///
/// All slice-length preconditions are the caller's responsibility
/// (callers assert once per pair, not once per element). See the module
/// docs for the bit-exactness contract.
pub trait ComputeBackend: Send + Sync {
    /// Backend name as used by `--backend` / `STITCH_BACKEND`.
    fn name(&self) -> &'static str;

    /// Element-wise normalized conjugate multiply (paper Fig 2 step 4):
    /// `out[i] = a[i]·conj(b[i]) / |a[i]·conj(b[i])|`, zero where the
    /// product magnitude underflows (≤ 1e-300). All slices must share
    /// one length.
    fn ncc(&self, a: &[C64], b: &[C64], out: &mut [C64]);

    /// Index and squared magnitude of the largest `|·|²` (paper Fig 2
    /// step 5). `None` iff `data` is empty or every element's magnitude
    /// is NaN; NaN elements are skipped; ties resolve to the lowest
    /// index.
    fn max_norm_sqr(&self, data: &[C64]) -> Option<(usize, f64)>;

    /// CCF co-moment accumulators over pre-centered values:
    /// `[Σa, Σb, Σab, Σa², Σb²]`. Lane-split backends re-associate the
    /// sums (see module docs).
    fn comoment(&self, a: &[f64], b: &[f64]) -> [f64; 5];

    /// [`ComputeBackend::comoment`] fused with the `u16 → f64` widening
    /// and mean-centering (`va = a[i] − ca`), the exact inner loop of
    /// the CCF overlap scan — the dominant per-pair cost.
    fn comoment_u16(&self, a: &[u16], b: &[u16], ca: f64, cb: f64) -> [f64; 5];

    /// Radix-2 DIT butterfly combine over `out[..2m]`:
    /// `b = out[m+j]·tw[j·tw_step]; out[j] = a + b; out[m+j] = a − b`.
    fn radix2_pass(&self, out: &mut [C64], m: usize, twiddles: &[C64], tw_step: usize);

    /// Radix-4 DIT butterfly combine over `out[..4m]` with twiddle
    /// indices `(k·j·tw_step) mod twiddles.len()` for `k = 1..4`;
    /// `forward` selects `W₄ = −i` (vs `+i`).
    fn radix4_pass(
        &self,
        out: &mut [C64],
        m: usize,
        twiddles: &[C64],
        tw_step: usize,
        forward: bool,
    );
}

/// A backend requested by the user (CLI flag, env var, or testkit).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BackendChoice {
    /// Pick the fastest backend this host supports (AVX2 → `simd`,
    /// otherwise `portable`).
    #[default]
    Auto,
    /// Sequential reference loops.
    Scalar,
    /// Lane-unrolled auto-vectorizable loops.
    Portable,
    /// Explicit AVX2 intrinsics; falls back to `portable` when the host
    /// (or target architecture) lacks them.
    Simd,
}

impl BackendChoice {
    /// Parses a `--backend` / `STITCH_BACKEND` value.
    pub fn parse(s: &str) -> Result<BackendChoice, String> {
        match s {
            "auto" => Ok(BackendChoice::Auto),
            "scalar" => Ok(BackendChoice::Scalar),
            "portable" => Ok(BackendChoice::Portable),
            "simd" => Ok(BackendChoice::Simd),
            other => Err(format!(
                "unknown backend {other:?} (expected auto, scalar, portable, or simd)"
            )),
        }
    }

    /// Every valid `parse` input.
    pub const NAMES: [&'static str; 4] = ["auto", "scalar", "portable", "simd"];
}

const UNRESOLVED: u8 = 0;
const SCALAR: u8 = 1;
const PORTABLE: u8 = 2;
const SIMD: u8 = 3;

/// The process-global backend selection. `UNRESOLVED` until the first
/// [`active`] call or an explicit [`select`].
static ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// True when the explicit-SIMD backend can run on this host.
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves a choice to a concrete backend code, applying the SIMD →
/// portable fallback.
fn resolve(choice: BackendChoice) -> u8 {
    match choice {
        BackendChoice::Scalar => SCALAR,
        BackendChoice::Portable => PORTABLE,
        BackendChoice::Simd | BackendChoice::Auto => {
            if simd_supported() {
                SIMD
            } else {
                PORTABLE
            }
        }
    }
}

/// Explicitly selects the process-global backend (the CLI's `--backend`
/// flag and the testkit's per-backend sweeps). Overrides `STITCH_BACKEND`
/// and auto-detection; a `Simd` request without host support silently
/// falls back to `portable` (check [`active`]`().name()` to see what
/// actually runs).
pub fn select(choice: BackendChoice) {
    ACTIVE.store(resolve(choice), Ordering::Release);
}

/// First-use resolution: `STITCH_BACKEND` if set and valid, else auto.
/// Reading the environment allocates, which is why contexts touch
/// [`active`] during construction — never on the steady-state path
/// (the zero-alloc conformance test runs on every backend).
fn resolve_from_env() -> u8 {
    let choice = match std::env::var("STITCH_BACKEND") {
        Ok(v) => BackendChoice::parse(&v).unwrap_or_default(),
        Err(_) => BackendChoice::Auto,
    };
    resolve(choice)
}

fn instance(code: u8) -> &'static dyn ComputeBackend {
    match code {
        SCALAR => &scalar::ScalarBackend,
        PORTABLE => &portable::PortableBackend,
        #[cfg(target_arch = "x86_64")]
        SIMD => &simd::SimdBackend,
        _ => &portable::PortableBackend,
    }
}

/// The currently active backend: one relaxed atomic load in the steady
/// state. Every kernel dispatch (including inside cached FFT plans)
/// re-reads this, so a [`select`] call takes effect immediately.
pub fn active() -> &'static dyn ComputeBackend {
    let code = ACTIVE.load(Ordering::Acquire);
    if code != UNRESOLVED {
        return instance(code);
    }
    let code = resolve_from_env();
    ACTIVE.store(code, Ordering::Release);
    instance(code)
}

/// The backend a given choice resolves to on this host, without
/// changing the selection.
pub fn resolved_name(choice: BackendChoice) -> &'static str {
    instance(resolve(choice)).name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    /// Deterministic pseudo-random complex data.
    pub(crate) fn data(n: usize, seed: u64) -> Vec<C64> {
        (0..n)
            .map(|i| {
                let v = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed.wrapping_mul(0xD1B54A32D192ED03));
                c64(
                    ((v >> 16) % 2000) as f64 / 10.0 - 100.0,
                    ((v >> 40) % 2000) as f64 / 10.0 - 100.0,
                )
            })
            .collect()
    }

    fn backends() -> Vec<&'static dyn ComputeBackend> {
        let mut v: Vec<&'static dyn ComputeBackend> =
            vec![&scalar::ScalarBackend, &portable::PortableBackend];
        #[cfg(target_arch = "x86_64")]
        if simd_supported() {
            v.push(&simd::SimdBackend);
        }
        v
    }

    #[test]
    fn parse_choices() {
        assert_eq!(BackendChoice::parse("auto"), Ok(BackendChoice::Auto));
        assert_eq!(BackendChoice::parse("scalar"), Ok(BackendChoice::Scalar));
        assert_eq!(
            BackendChoice::parse("portable"),
            Ok(BackendChoice::Portable)
        );
        assert_eq!(BackendChoice::parse("simd"), Ok(BackendChoice::Simd));
        assert!(BackendChoice::parse("cuda").is_err());
    }

    #[test]
    fn ncc_bit_identical_across_backends() {
        for n in [0usize, 1, 3, 4, 7, 16, 64, 1001] {
            let a = data(n, 1);
            let b = data(n, 2);
            let mut reference = vec![C64::ZERO; n];
            scalar::ScalarBackend.ncc(&a, &b, &mut reference);
            for be in backends() {
                let mut out = vec![c64(9.0, 9.0); n];
                be.ncc(&a, &b, &mut out);
                for i in 0..n {
                    assert!(
                        reference[i].re.to_bits() == out[i].re.to_bits()
                            && reference[i].im.to_bits() == out[i].im.to_bits(),
                        "{} n={n} i={i}: {:?} vs {:?}",
                        be.name(),
                        reference[i],
                        out[i]
                    );
                }
            }
        }
    }

    #[test]
    fn ncc_underflow_lanes_zero_in_every_backend() {
        // lane 1 of each 4-wide chunk underflows; the masked blend must
        // zero exactly those lanes
        let mut a = data(12, 3);
        for i in (1..12).step_by(4) {
            a[i] = C64::ZERO;
        }
        let b = data(12, 4);
        for be in backends() {
            let mut out = vec![c64(5.0, 5.0); 12];
            be.ncc(&a, &b, &mut out);
            for (i, v) in out.iter().enumerate() {
                if i % 4 == 1 {
                    assert_eq!(*v, C64::ZERO, "{} i={i}", be.name());
                } else {
                    assert!((v.abs() - 1.0).abs() < 1e-12, "{} i={i}", be.name());
                }
            }
        }
    }

    #[test]
    fn max_bit_identical_across_backends() {
        for n in [1usize, 2, 4, 5, 63, 64, 65, 999] {
            for seed in 0..6 {
                let d = data(n, seed);
                let reference = scalar::ScalarBackend.max_norm_sqr(&d);
                for be in backends() {
                    let got = be.max_norm_sqr(&d);
                    assert_eq!(
                        reference.map(|(i, m)| (i, m.to_bits())),
                        got.map(|(i, m)| (i, m.to_bits())),
                        "{} n={n} seed={seed}",
                        be.name()
                    );
                }
            }
        }
    }

    #[test]
    fn max_empty_and_all_nan_are_none() {
        let nan = c64(f64::NAN, 0.0);
        for be in backends() {
            assert_eq!(be.max_norm_sqr(&[]), None, "{} empty", be.name());
            assert_eq!(be.max_norm_sqr(&[nan; 7]), None, "{} all-NaN", be.name());
            assert_eq!(be.max_norm_sqr(&[nan; 16]), None, "{} all-NaN", be.name());
        }
    }

    #[test]
    fn max_skips_nan_elements() {
        let mut d = data(33, 9);
        let truth = scalar::ScalarBackend.max_norm_sqr(&d).unwrap();
        // poison everything except the true peak's chunk neighbors
        for i in [0usize, 5, 6, 13, 31] {
            if i != truth.0 {
                d[i] = c64(f64::NAN, 3.0);
            }
        }
        let reference = scalar::ScalarBackend.max_norm_sqr(&d).unwrap();
        for be in backends() {
            assert_eq!(be.max_norm_sqr(&d), Some(reference), "{}", be.name());
        }
    }

    #[test]
    fn max_cross_lane_and_cross_chunk_ties_take_lowest_index() {
        // equal peaks in different lanes of one chunk, and across chunks
        for (i, j) in [(1usize, 3usize), (2, 9), (5, 21), (0, 63)] {
            let mut d = data(64, 11);
            let peak = c64(4000.0, 3000.0);
            d[i] = peak;
            d[j] = peak;
            for be in backends() {
                let (idx, m) = be.max_norm_sqr(&d).unwrap();
                assert_eq!(idx, i, "{} tie ({i},{j})", be.name());
                assert_eq!(m.to_bits(), peak.norm_sqr().to_bits());
            }
        }
    }

    #[test]
    fn comoments_agree_to_reassociation_tolerance() {
        for n in [0usize, 1, 5, 16, 100, 1003] {
            let a: Vec<f64> = data(n, 4).iter().map(|z| z.re).collect();
            let b: Vec<f64> = data(n, 5).iter().map(|z| z.im).collect();
            let reference = scalar::ScalarBackend.comoment(&a, &b);
            for be in backends() {
                let got = be.comoment(&a, &b);
                for k in 0..5 {
                    let denom = reference[k].abs().max(1.0);
                    assert!(
                        ((reference[k] - got[k]) / denom).abs() < 1e-9,
                        "{} n={n} k={k}: {} vs {}",
                        be.name(),
                        reference[k],
                        got[k]
                    );
                }
            }
        }
    }

    #[test]
    fn comoment_u16_matches_f64_comoment() {
        let n = 103;
        let a: Vec<u16> = (0..n).map(|i| ((i * 37 + 11) % 4096) as u16).collect();
        let b: Vec<u16> = (0..n).map(|i| ((i * 53 + 7) % 4096) as u16).collect();
        let (ca, cb) = (1000.25, 999.75);
        let af: Vec<f64> = a.iter().map(|&p| p as f64 - ca).collect();
        let bf: Vec<f64> = b.iter().map(|&p| p as f64 - cb).collect();
        for be in backends() {
            let direct = be.comoment_u16(&a, &b, ca, cb);
            let via_f64 = be.comoment(&af, &bf);
            for k in 0..5 {
                assert_eq!(
                    direct[k].to_bits(),
                    via_f64[k].to_bits(),
                    "{} k={k}",
                    be.name()
                );
            }
        }
    }

    #[test]
    fn portable_and_simd_comoments_bit_identical() {
        // scalar may re-associate differently, but the two lane-split
        // backends share one summation order exactly
        #[cfg(target_arch = "x86_64")]
        if simd_supported() {
            for n in [0usize, 3, 4, 64, 257, 1000] {
                let a: Vec<f64> = data(n, 6).iter().map(|z| z.re).collect();
                let b: Vec<f64> = data(n, 7).iter().map(|z| z.im).collect();
                let p = portable::PortableBackend.comoment(&a, &b);
                let s = simd::SimdBackend.comoment(&a, &b);
                for k in 0..5 {
                    assert_eq!(p[k].to_bits(), s[k].to_bits(), "n={n} k={k}");
                }
                let au: Vec<u16> = (0..n).map(|i| ((i * 97) % 65536) as u16).collect();
                let bu: Vec<u16> = (0..n).map(|i| ((i * 31 + 5) % 65536) as u16).collect();
                let p = portable::PortableBackend.comoment_u16(&au, &bu, 32000.5, 31999.5);
                let s = simd::SimdBackend.comoment_u16(&au, &bu, 32000.5, 31999.5);
                for k in 0..5 {
                    assert_eq!(p[k].to_bits(), s[k].to_bits(), "u16 n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn radix_passes_bit_identical_across_backends() {
        use crate::radix::{twiddle_table, Direction};
        for dir in [Direction::Forward, Direction::Inverse] {
            for (r, m, n_total) in [
                (2usize, 8usize, 64usize),
                (2, 32, 64),
                (2, 13, 52),
                (4, 8, 32),
                (4, 16, 256),
                (4, 9, 36),
            ] {
                let n = r * m;
                let tw = twiddle_table(n_total, dir);
                let tw_step = n_total / n;
                let src = data(n, 20 + r as u64);
                let mut reference = src.clone();
                match r {
                    2 => scalar::ScalarBackend.radix2_pass(&mut reference, m, &tw, tw_step),
                    _ => scalar::ScalarBackend.radix4_pass(
                        &mut reference,
                        m,
                        &tw,
                        tw_step,
                        dir == Direction::Forward,
                    ),
                }
                for be in backends() {
                    let mut out = src.clone();
                    match r {
                        2 => be.radix2_pass(&mut out, m, &tw, tw_step),
                        _ => be.radix4_pass(&mut out, m, &tw, tw_step, dir == Direction::Forward),
                    }
                    for j in 0..n {
                        assert!(
                            reference[j].re.to_bits() == out[j].re.to_bits()
                                && reference[j].im.to_bits() == out[j].im.to_bits(),
                            "{} r={r} m={m} dir={dir:?} j={j}",
                            be.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn selection_resolves_and_switches() {
        // exercised in one test to avoid racing the process-global
        // selection across the parallel test harness
        let initial = active().name();
        assert!(!initial.is_empty());
        select(BackendChoice::Scalar);
        assert_eq!(active().name(), "scalar");
        select(BackendChoice::Portable);
        assert_eq!(active().name(), "portable");
        select(BackendChoice::Simd);
        if simd_supported() {
            assert_eq!(active().name(), "simd");
        } else {
            assert_eq!(active().name(), "portable");
        }
        assert_eq!(resolved_name(BackendChoice::Scalar), "scalar");
        select(BackendChoice::Auto);
        assert_eq!(active().name(), resolved_name(BackendChoice::Auto));
    }
}
