//! The sequential reference backend.
//!
//! Every kernel is a plain scalar loop — the ground truth the other
//! backends are measured (perfgate per-backend columns) and verified
//! (testkit backend oracle) against. The element-wise kernels and the
//! max reduction share their expression DAGs with the vectorized
//! backends and are bit-identical to them; the co-moment reductions
//! accumulate in strict left-to-right order, which the lane-split
//! backends re-associate.

use crate::complex::C64;
use crate::vectorops;

use super::ComputeBackend;

/// Sequential reference loops (`--backend scalar`).
pub struct ScalarBackend;

impl ComputeBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn ncc(&self, a: &[C64], b: &[C64], out: &mut [C64]) {
        vectorops::ncc_scalar(a, b, out);
    }

    fn max_norm_sqr(&self, data: &[C64]) -> Option<(usize, f64)> {
        vectorops::max_norm_sqr_scalar(data)
    }

    fn comoment(&self, a: &[f64], b: &[f64]) -> [f64; 5] {
        vectorops::comoment_scalar(a, b)
    }

    fn comoment_u16(&self, a: &[u16], b: &[u16], ca: f64, cb: f64) -> [f64; 5] {
        vectorops::comoment_u16_scalar(a, b, ca, cb)
    }

    fn radix2_pass(&self, out: &mut [C64], m: usize, twiddles: &[C64], tw_step: usize) {
        radix2_scalar(out, m, twiddles, tw_step);
    }

    fn radix4_pass(
        &self,
        out: &mut [C64],
        m: usize,
        twiddles: &[C64],
        tw_step: usize,
        forward: bool,
    ) {
        radix4_scalar(out, m, twiddles, tw_step, forward);
    }
}

/// The radix-2 combine loop, verbatim from the mixed-radix engine. Also
/// the inline small-`m` path in `radix.rs` — one definition keeps the
/// DAGs provably identical.
#[inline]
pub(crate) fn radix2_scalar(out: &mut [C64], m: usize, twiddles: &[C64], tw_step: usize) {
    for j in 0..m {
        let a = out[j];
        let b = out[m + j] * twiddles[j * tw_step];
        out[j] = a + b;
        out[m + j] = a - b;
    }
}

/// The radix-4 combine loop, verbatim from the mixed-radix engine.
#[inline]
pub(crate) fn radix4_scalar(
    out: &mut [C64],
    m: usize,
    twiddles: &[C64],
    tw_step: usize,
    forward: bool,
) {
    let n_total = twiddles.len();
    for j in 0..m {
        let a = out[j];
        let b = out[m + j] * twiddles[j * tw_step];
        let c = out[2 * m + j] * twiddles[(2 * j * tw_step) % n_total];
        let d = out[3 * m + j] * twiddles[(3 * j * tw_step) % n_total];
        let ac_p = a + c;
        let ac_m = a - c;
        let bd_p = b + d;
        // forward: W_4 = -i ; inverse: W_4 = +i
        let bd_m = if forward {
            (b - d).mul_neg_i()
        } else {
            (b - d).mul_i()
        };
        out[j] = ac_p + bd_p;
        out[m + j] = ac_m + bd_m;
        out[2 * m + j] = ac_p - bd_p;
        out[3 * m + j] = ac_m - bd_m;
    }
}
