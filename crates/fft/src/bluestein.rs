//! Bluestein (chirp-z) transform for lengths with large prime factors.
//!
//! Rewrites an arbitrary-length DFT as a linear convolution, which is then
//! evaluated with a power-of-two FFT of size ≥ 2n−1. This is what lets the
//! library accept *any* tile dimension, just as FFTW does — the paper's
//! microscopy tiles (1392×1040) are not guaranteed to have friendly sizes
//! (§III: "there is no guarantee that the partial images will have such
//! nice dimensions").

use crate::complex::C64;
use crate::factor::next_pow2;
use crate::radix::{Direction, MixedRadixPlan};

/// A Bluestein FFT plan for one fixed length and direction.
pub struct BluesteinPlan {
    n: usize,
    direction: Direction,
    /// Convolution FFT size: power of two ≥ 2n−1.
    m: usize,
    /// Chirp `w[k] = e^{sign·πi·k²/n}` for k in 0..n.
    chirp: Vec<C64>,
    /// Pre-transformed convolution kernel: `FFT_m(b)` where
    /// `b[k] = conj(chirp[k])` wrapped circularly.
    kernel_freq: Vec<C64>,
    fwd: MixedRadixPlan,
    inv: MixedRadixPlan,
}

impl BluesteinPlan {
    /// Plans a length-`n` transform. Works for every `n ≥ 1`.
    pub fn new(n: usize, direction: Direction) -> BluesteinPlan {
        assert!(n > 0, "transform length must be positive");
        let m = next_pow2(2 * n - 1);
        let sign = direction.sign();
        // chirp[k] = e^{sign·πi·k²/n}; compute k² mod 2n to avoid precision
        // loss from huge k² arguments.
        let step = sign * std::f64::consts::PI / n as f64;
        let chirp: Vec<C64> = (0..n)
            .map(|k| {
                let k2 = (k * k) % (2 * n);
                C64::cis(step * k2 as f64)
            })
            .collect();
        let fwd = MixedRadixPlan::new(m, Direction::Forward);
        let inv = MixedRadixPlan::new(m, Direction::Inverse);
        // b[k] = conj(chirp[|k|]) placed circularly at indices k and m−k.
        let mut b = vec![C64::ZERO; m];
        b[0] = chirp[0].conj();
        for k in 1..n {
            let v = chirp[k].conj();
            b[k] = v;
            b[m - k] = v;
        }
        let mut kernel_freq = vec![C64::ZERO; m];
        fwd.process(&b, &mut kernel_freq);
        BluesteinPlan {
            n,
            direction,
            m,
            chirp,
            kernel_freq,
            fwd,
            inv,
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate length-0 case (never constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Plan direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Inner convolution length (power of two).
    #[inline]
    pub fn conv_len(&self) -> usize {
        self.m
    }

    /// Executes the transform out-of-place; `input` is left untouched.
    /// Allocation-free at steady state: the two length-`m` convolution
    /// buffers come from the thread-local [`crate::scratch`] pool.
    pub fn process(&self, input: &[C64], output: &mut [C64]) {
        assert_eq!(input.len(), self.n);
        assert_eq!(output.len(), self.n);
        let m = self.m;
        crate::scratch::with_scratch(2 * m, |buf| {
            let (a, freq) = buf.split_at_mut(m);
            // a[k] = x[k]·chirp[k], zero-padded to m (scratch is zeroed).
            for k in 0..self.n {
                a[k] = input[k] * self.chirp[k];
            }
            self.fwd.process(a, freq);
            for (f, k) in freq.iter_mut().zip(&self.kernel_freq) {
                *f *= *k;
            }
            self.inv.process(freq, a);
            let scale = 1.0 / m as f64;
            for j in 0..self.n {
                output[j] = a[j].scale(scale) * self.chirp[j];
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::radix::dft_naive;

    fn ramp(n: usize) -> Vec<C64> {
        (0..n)
            .map(|k| c64((k % 7) as f64 - 3.0, (k % 5) as f64 * 0.25))
            .collect()
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_for_primes() {
        for n in [2usize, 3, 5, 37, 97, 101, 211] {
            let x = ramp(n);
            let mut fast = vec![C64::ZERO; n];
            let mut slow = vec![C64::ZERO; n];
            for dir in [Direction::Forward, Direction::Inverse] {
                BluesteinPlan::new(n, dir).process(&x, &mut fast);
                dft_naive(&x, &mut slow, dir);
                assert!(max_err(&fast, &slow) < 1e-8 * n as f64, "n={n} dir={dir:?}");
            }
        }
    }

    #[test]
    fn matches_naive_for_composites() {
        // Bluestein must be correct for smooth sizes too (planner may pick it).
        for n in [1usize, 4, 12, 100, 360] {
            let x = ramp(n);
            let mut fast = vec![C64::ZERO; n];
            let mut slow = vec![C64::ZERO; n];
            BluesteinPlan::new(n, Direction::Forward).process(&x, &mut fast);
            dft_naive(&x, &mut slow, Direction::Forward);
            assert!(max_err(&fast, &slow) < 1e-8 * (n.max(2)) as f64, "n={n}");
        }
    }

    #[test]
    fn round_trip_scales_by_n() {
        for n in [53usize, 149] {
            let x = ramp(n);
            let mut freq = vec![C64::ZERO; n];
            let mut back = vec![C64::ZERO; n];
            BluesteinPlan::new(n, Direction::Forward).process(&x, &mut freq);
            BluesteinPlan::new(n, Direction::Inverse).process(&freq, &mut back);
            let scaled: Vec<C64> = x.iter().map(|z| z.scale(n as f64)).collect();
            assert!(max_err(&back, &scaled) < 1e-7 * n as f64);
        }
    }

    #[test]
    fn conv_len_is_pow2_and_big_enough() {
        for n in [7usize, 31, 97, 1000] {
            let p = BluesteinPlan::new(n, Direction::Forward);
            assert!(p.conv_len().is_power_of_two());
            assert!(p.conv_len() >= 2 * n - 1);
        }
    }

    #[test]
    fn length_one_is_identity() {
        let p = BluesteinPlan::new(1, Direction::Forward);
        let x = [c64(2.5, -1.5)];
        let mut out = [C64::ZERO];
        p.process(&x, &mut out);
        assert!((out[0] - x[0]).abs() < 1e-12);
    }
}
