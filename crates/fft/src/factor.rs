//! Integer factorization helpers used by the planner.
//!
//! FFTW-style libraries are fast when the transform length factors into
//! small primes (the paper notes tiles of 1392×1040 = 2⁴·3·29 × 2⁴·5·13 do
//! "not play well" with divide-and-conquer FFTs, §IV-A). The planner uses
//! these helpers to decide between the mixed-radix path and Bluestein.

/// Largest prime handled by the generic small-prime codelet. Primes above
/// this force a Bluestein plan. 31 comfortably covers microscopy camera
/// dimensions such as 1392 = 2⁴·3·29.
pub const MAX_NAIVE_PRIME: usize = 31;

/// Returns the prime factorization of `n` in non-decreasing order.
/// `factorize(1)` is empty; `factorize(0)` panics.
pub fn factorize(mut n: usize) -> Vec<usize> {
    assert!(n > 0, "cannot factorize 0");
    let mut out = Vec::new();
    while n.is_multiple_of(2) {
        out.push(2);
        n /= 2;
    }
    let mut p = 3;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Builds the radix schedule for a mixed-radix plan: prime factors with
/// pairs of 2s fused into radix-4 stages (radix-4 butterflies do the same
/// work with fewer twiddle loads). Larger factors are placed first so the
/// recursion's leaf transforms are the cheap power-of-two ones.
pub fn radix_schedule(n: usize) -> Vec<usize> {
    let primes = factorize(n);
    let twos = primes.iter().filter(|&&p| p == 2).count();
    let mut sched: Vec<usize> = primes.into_iter().filter(|&p| p != 2).collect();
    // fuse 2·2 → 4
    #[allow(clippy::same_item_push)] // one radix-4 stage per fused pair
    for _ in 0..twos / 2 {
        sched.push(4);
    }
    if twos % 2 == 1 {
        sched.push(2);
    }
    sched.sort_unstable_by(|a, b| b.cmp(a));
    sched
}

/// True if every prime factor of `n` is ≤ [`MAX_NAIVE_PRIME`], i.e. the
/// mixed-radix path can handle it without Bluestein.
pub fn is_smooth(n: usize) -> bool {
    n > 0 && factorize(n).iter().all(|&p| p <= MAX_NAIVE_PRIME)
}

/// Smallest power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Smallest integer ≥ `n` whose prime factors are all in {2, 3, 5, 7}
/// (a "7-smooth" size). Used by the padding ablation (§VI-A: padding tiles
/// to small-prime sizes speeds up FFTW/cuFFT).
pub fn next_smooth(n: usize) -> usize {
    let mut m = n;
    loop {
        let mut k = m;
        for p in [2usize, 3, 5, 7] {
            while k.is_multiple_of(p) {
                k /= p;
            }
        }
        if k == 1 {
            return m;
        }
        m += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorize_basic() {
        assert_eq!(factorize(1), Vec::<usize>::new());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(12), vec![2, 2, 3]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(1392), vec![2, 2, 2, 2, 3, 29]);
        assert_eq!(factorize(1040), vec![2, 2, 2, 2, 5, 13]);
    }

    #[test]
    fn factorize_product_reconstructs() {
        for n in 1..2000 {
            let p: usize = factorize(n).iter().product();
            assert_eq!(p, n);
        }
    }

    #[test]
    #[should_panic]
    fn factorize_zero_panics() {
        factorize(0);
    }

    #[test]
    fn schedule_fuses_radix4() {
        // 16 = 4 * 4
        assert_eq!(radix_schedule(16), vec![4, 4]);
        // 8 = 4 * 2
        assert_eq!(radix_schedule(8), vec![4, 2]);
        // 1392 = 29 * 4 * 4 * 3
        assert_eq!(radix_schedule(1392), vec![29, 4, 4, 3]);
    }

    #[test]
    fn schedule_product_is_n() {
        for n in 1..500 {
            let p: usize = radix_schedule(n).iter().product();
            assert_eq!(p, n, "schedule for {n}");
        }
    }

    #[test]
    fn smoothness() {
        assert!(is_smooth(1392)); // 29 ≤ 31
        assert!(is_smooth(1040));
        assert!(!is_smooth(97)); // prime > 31
        assert!(is_smooth(1));
    }

    #[test]
    fn next_smooth_values() {
        assert_eq!(next_smooth(1), 1);
        assert_eq!(next_smooth(11), 12);
        assert_eq!(next_smooth(1392), 1400); // 2^3 · 5^2 · 7
        assert_eq!(next_smooth(1040), 1050); // 2 · 3 · 5^2 · 7
                                             // result is always 7-smooth and >= input
        for n in 1..3000 {
            let m = next_smooth(n);
            assert!(m >= n);
            let mut k = m;
            for p in [2usize, 3, 5, 7] {
                while k.is_multiple_of(p) {
                    k /= p;
                }
            }
            assert_eq!(k, 1);
        }
    }

    #[test]
    fn pow2() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }
}
