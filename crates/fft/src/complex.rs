//! Minimal double-precision complex number type.
//!
//! The stitching computation works exclusively on `f64` complex values
//! (the paper's transforms are "2-D Fourier transforms on double complex
//! numbers", §III Table I), so a single concrete type keeps the hot loops
//! monomorphic and lets the compiler vectorize them.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`C64`].
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> C64 {
    C64 { re, im }
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = c64(0.0, 0.0);
    /// One (multiplicative identity).
    pub const ONE: C64 = c64(1.0, 0.0);
    /// The imaginary unit.
    pub const I: C64 = c64(0.0, 1.0);

    /// Builds a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> C64 {
        let (s, c) = theta.sin_cos();
        c64(r * c, r * s)
    }

    /// `e^{i theta}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> C64 {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> C64 {
        c64(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaN components for zero input.
    #[inline]
    pub fn inv(self) -> C64 {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Multiplies by `i` (90° rotation) without a full complex multiply.
    #[inline(always)]
    pub fn mul_i(self) -> C64 {
        c64(-self.im, self.re)
    }

    /// Multiplies by `-i` (-90° rotation).
    #[inline(always)]
    pub fn mul_neg_i(self) -> C64 {
        c64(self.im, -self.re)
    }

    /// Scales both components by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> C64 {
        c64(self.re * s, self.im * s)
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, o: C64) -> C64 {
        c64(self.re + o.re, self.im + o.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, o: C64) -> C64 {
        c64(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, o: C64) -> C64 {
        c64(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z·w⁻¹
    fn div(self, o: C64) -> C64 {
        self * o.inv()
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, s: f64) -> C64 {
        self.scale(s)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline(always)]
    fn div(self, s: f64) -> C64 {
        self.scale(1.0 / s)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        c64(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, o: C64) {
        *self = *self + o;
    }
}

impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: C64) {
        *self = *self - o;
    }
}

impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, o: C64) {
        *self = *self / o;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> C64 {
        c64(re, 0.0)
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(3.0, -4.0);
        assert!(close(z + C64::ZERO, z));
        assert!(close(z * C64::ONE, z));
        assert!(close(z - z, C64::ZERO));
        assert!(close(z * z.inv(), C64::ONE));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = c64(3.0, -4.0);
        assert_eq!(z.conj(), c64(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        // z * conj(z) is real and equals |z|^2
        let p = z * z.conj();
        assert!(close(p, c64(25.0, 0.0)));
    }

    #[test]
    fn mul_i_matches_full_multiply() {
        let z = c64(1.5, -2.5);
        assert!(close(z.mul_i(), z * C64::I));
        assert!(close(z.mul_neg_i(), z * c64(0.0, -1.0)));
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_unit_circle() {
        for k in 0..8 {
            let t = k as f64 * std::f64::consts::FRAC_PI_4;
            assert!((C64::cis(t).abs() - 1.0).abs() < 1e-12);
        }
        assert!(close(C64::cis(0.0), C64::ONE));
        assert!(close(C64::cis(std::f64::consts::FRAC_PI_2), C64::I));
    }

    #[test]
    fn division() {
        let a = c64(1.0, 2.0);
        let b = c64(-3.0, 0.5);
        assert!(close(a / b * b, a));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![c64(1.0, 1.0); 10];
        let s: C64 = v.into_iter().sum();
        assert!(close(s, c64(10.0, 10.0)));
    }
}
