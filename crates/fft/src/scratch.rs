//! Thread-local scratch buffers for allocation-free transform execution.
//!
//! The paper's §IV-A memory discipline allocates working buffers once and
//! recycles them; the Bluestein and real-transform paths used to allocate
//! fresh vectors on every call. This module gives them a per-thread pool
//! of reusable `Vec<C64>` scratch: after a warmup call at each size the
//! steady state performs zero heap allocations (asserted by the counting
//! allocator in the conformance suite).
//!
//! Buffers are keyed by nothing — a plain stack of vecs — because the FFT
//! call tree on one thread uses at most a handful of scratch buffers at a
//! time and their capacities converge to the maximum requested length
//! after the first pass. Nested [`with_scratch`] calls simply pop distinct
//! vectors, so reentrancy (e.g. `RealFft2d::forward` → `RealFft::forward`
//! → Bluestein rows) is safe.

use std::cell::RefCell;

use crate::complex::C64;

thread_local! {
    static SCRATCH: RefCell<Vec<Vec<C64>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a zeroed scratch buffer of exactly `len` elements,
/// recycled from (and returned to) a thread-local pool.
///
/// The buffer is zero-filled on entry; at steady state (after the pool
/// has seen this `len` once) the call performs no heap allocation.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [C64]) -> R) -> R {
    let mut buf = SCRATCH
        .try_with(|s| s.borrow_mut().pop())
        .ok()
        .flatten()
        .unwrap_or_default();
    buf.clear();
    buf.resize(len, C64::ZERO);
    let out = f(&mut buf);
    let _ = SCRATCH.try_with(|s| {
        let mut pool = s.borrow_mut();
        // Bound the pool: the FFT call tree never nests deeper than this,
        // so anything beyond is a leak guard, not a cache.
        if pool.len() < 8 {
            pool.push(buf);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn scratch_is_zeroed_and_reused() {
        let ptr1 = with_scratch(64, |b| {
            assert!(b.iter().all(|z| z.re == 0.0 && z.im == 0.0));
            b[0] = c64(1.0, 2.0);
            b.as_ptr() as usize
        });
        // Same thread, same size: the pool hands back the same storage,
        // zeroed again.
        let ptr2 = with_scratch(64, |b| {
            assert!(b.iter().all(|z| z.re == 0.0 && z.im == 0.0));
            b.as_ptr() as usize
        });
        assert_eq!(ptr1, ptr2);
    }

    #[test]
    fn nested_calls_get_distinct_buffers() {
        with_scratch(16, |outer| {
            outer[0] = c64(3.0, 0.0);
            with_scratch(16, |inner| {
                inner[0] = c64(4.0, 0.0);
                assert_eq!(outer[0].re, 3.0);
            });
            assert_eq!(outer[0].re, 3.0);
        });
    }

    #[test]
    fn grows_to_larger_requests() {
        with_scratch(8, |b| assert_eq!(b.len(), 8));
        with_scratch(1024, |b| assert_eq!(b.len(), 1024));
        with_scratch(8, |b| assert_eq!(b.len(), 8));
    }
}
