//! 2-D FFT via row-column decomposition with a cache-blocked transpose.
//!
//! This is the operation at the heart of the stitching computation: every
//! tile gets one forward 2-D transform and every adjacent pair one inverse
//! 2-D transform (paper Fig 1, Table I — `(3nm − n − m)` transforms total
//! for an n×m grid).

use std::sync::Arc;

use crate::backend::ComputeBackend;
use crate::complex::C64;
use crate::plan::{FftPlan, Planner};
use crate::radix::Direction;

/// Transpose block edge. 32×32 complex doubles = 16 KiB, comfortably
/// resident in L1 while both the source row and destination column streams
/// stay hot.
const BLOCK: usize = 32;

/// Out-of-place transpose of a `rows × cols` row-major matrix into a
/// `cols × rows` row-major matrix, processed in cache-sized blocks.
pub fn transpose(src: &[C64], dst: &mut [C64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    for rb in (0..rows).step_by(BLOCK) {
        for cb in (0..cols).step_by(BLOCK) {
            let r_end = (rb + BLOCK).min(rows);
            let c_end = (cb + BLOCK).min(cols);
            for r in rb..r_end {
                for c in cb..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// A planned 2-D FFT for a fixed `width × height` and direction.
///
/// Data is row-major: element `(x, y)` lives at index `y * width + x`.
/// Like the 1-D plans, execution is unscaled; `inverse(forward(X)) =
/// (width·height)·X`. Use [`Fft2d::normalize`] after an inverse transform.
pub struct Fft2d {
    width: usize,
    height: usize,
    direction: Direction,
    row_plan: Arc<FftPlan>,
    col_plan: Arc<FftPlan>,
}

impl Fft2d {
    /// Plans a `width × height` transform using `planner`'s cache.
    pub fn new(planner: &Planner, width: usize, height: usize, direction: Direction) -> Fft2d {
        assert!(width > 0 && height > 0, "degenerate transform size");
        Fft2d {
            width,
            height,
            direction,
            row_plan: planner.plan(width, direction),
            col_plan: planner.plan(height, direction),
        }
    }

    /// Image width (fast axis).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height (slow axis).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total element count `width × height`.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// True only for the degenerate empty case (never constructed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plan direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Executes the transform in place. `scratch` must be the same length
    /// as `data`; its contents on entry are ignored and clobbered.
    pub fn process(&self, data: &mut [C64], scratch: &mut [C64]) {
        let (w, h) = (self.width, self.height);
        assert_eq!(data.len(), w * h, "data length != width*height");
        assert_eq!(scratch.len(), w * h, "scratch length != width*height");
        // 1. Transform rows: data → scratch (same layout).
        for (src, dst) in data.chunks_exact(w).zip(scratch.chunks_exact_mut(w)) {
            self.row_plan.process(src, dst);
        }
        // 2. Transpose w×h → h×w: scratch → data.
        transpose(scratch, data, h, w);
        // 3. Transform columns (now rows of length h): data → scratch.
        for (src, dst) in data.chunks_exact(h).zip(scratch.chunks_exact_mut(h)) {
            self.col_plan.process(src, dst);
        }
        // 4. Transpose back: scratch → data.
        transpose(scratch, data, w, h);
    }

    /// Fused NCC-normalize → 2-D transform: computes the normalized
    /// cross-power spectrum of `fa` and `fb` row by row into `data` and
    /// immediately row-transforms each row while it is still cache-hot,
    /// then finishes with the usual transpose / column / transpose steps.
    ///
    /// Bit-identical to `backend.ncc(fa, fb, data)` followed by
    /// [`Fft2d::process`] — only the traversal order changes, never the
    /// arithmetic. This is the phase-1 inverse-transform entry point for
    /// the PCIAM hot loop; the fusion removes one full `width × height`
    /// pass over memory per tile pair.
    pub fn process_ncc_fused(
        &self,
        backend: &dyn ComputeBackend,
        fa: &[C64],
        fb: &[C64],
        data: &mut [C64],
        scratch: &mut [C64],
    ) {
        let (w, h) = (self.width, self.height);
        assert_eq!(fa.len(), w * h, "fa length != width*height");
        assert_eq!(fb.len(), w * h, "fb length != width*height");
        assert_eq!(data.len(), w * h, "data length != width*height");
        assert_eq!(scratch.len(), w * h, "scratch length != width*height");
        // 1. Per row: NCC into data, then row transform data → scratch.
        for ((ra, rb), (dst, tmp)) in fa
            .chunks_exact(w)
            .zip(fb.chunks_exact(w))
            .zip(data.chunks_exact_mut(w).zip(scratch.chunks_exact_mut(w)))
        {
            backend.ncc(ra, rb, dst);
            self.row_plan.process(dst, tmp);
        }
        // 2-4. Identical to `process`.
        transpose(scratch, data, h, w);
        for (src, dst) in data.chunks_exact(h).zip(scratch.chunks_exact_mut(h)) {
            self.col_plan.process(src, dst);
        }
        transpose(scratch, data, w, h);
    }

    /// Divides every element by `width × height` — the normalization an
    /// inverse transform needs for a true round trip.
    pub fn normalize(&self, data: &mut [C64]) {
        let s = 1.0 / (self.width * self.height) as f64;
        for v in data.iter_mut() {
            *v = v.scale(s);
        }
    }
}

/// A forward/inverse pair for one transform size, as the stitching kernels
/// need both directions over the same geometry.
pub struct Fft2dPair {
    /// Forward transform.
    pub forward: Fft2d,
    /// Inverse (unscaled) transform.
    pub inverse: Fft2d,
}

impl Fft2dPair {
    /// Plans both directions for `width × height`.
    pub fn new(planner: &Planner, width: usize, height: usize) -> Fft2dPair {
        Fft2dPair {
            forward: Fft2d::new(planner, width, height, Direction::Forward),
            inverse: Fft2d::new(planner, width, height, Direction::Inverse),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True only for the degenerate empty case (never constructed).
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::radix::dft_naive;

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    fn ramp(n: usize) -> Vec<C64> {
        (0..n)
            .map(|k| c64((k % 9) as f64 - 4.0, (k % 4) as f64))
            .collect()
    }

    /// Naive 2-D DFT for verification.
    fn dft2d_naive(data: &[C64], w: usize, h: usize, dir: Direction) -> Vec<C64> {
        let mut rows = vec![C64::ZERO; w * h];
        for y in 0..h {
            dft_naive(
                &data[y * w..(y + 1) * w],
                &mut rows[y * w..(y + 1) * w],
                dir,
            );
        }
        let mut out = vec![C64::ZERO; w * h];
        let mut col_in = vec![C64::ZERO; h];
        let mut col_out = vec![C64::ZERO; h];
        for x in 0..w {
            for y in 0..h {
                col_in[y] = rows[y * w + x];
            }
            dft_naive(&col_in, &mut col_out, dir);
            for y in 0..h {
                out[y * w + x] = col_out[y];
            }
        }
        out
    }

    #[test]
    fn transpose_round_trip() {
        let (r, c) = (37, 53);
        let m = ramp(r * c);
        let mut t = vec![C64::ZERO; r * c];
        let mut back = vec![C64::ZERO; r * c];
        transpose(&m, &mut t, r, c);
        transpose(&t, &mut back, c, r);
        assert_eq!(
            m.iter().map(|z| (z.re, z.im)).collect::<Vec<_>>(),
            back.iter().map(|z| (z.re, z.im)).collect::<Vec<_>>()
        );
        // spot-check a few elements
        assert_eq!(t[5 * r + 7].re, m[7 * c + 5].re);
    }

    #[test]
    fn matches_naive_2d() {
        let planner = Planner::default();
        for (w, h) in [(4usize, 4usize), (8, 6), (12, 10), (29, 16), (13, 20)] {
            let mut data = ramp(w * h);
            let reference = dft2d_naive(&data, w, h, Direction::Forward);
            let mut scratch = vec![C64::ZERO; w * h];
            Fft2d::new(&planner, w, h, Direction::Forward).process(&mut data, &mut scratch);
            assert!(
                max_err(&data, &reference) < 1e-8 * (w * h) as f64,
                "{w}x{h}"
            );
        }
    }

    #[test]
    fn round_trip_with_normalize() {
        let planner = Planner::default();
        let (w, h) = (24, 18);
        let original = ramp(w * h);
        let mut data = original.clone();
        let mut scratch = vec![C64::ZERO; w * h];
        let pair = Fft2dPair::new(&planner, w, h);
        pair.forward.process(&mut data, &mut scratch);
        pair.inverse.process(&mut data, &mut scratch);
        pair.inverse.normalize(&mut data);
        assert!(max_err(&data, &original) < 1e-9 * (w * h) as f64);
    }

    #[test]
    fn delta_gives_flat_spectrum() {
        let planner = Planner::default();
        let (w, h) = (16, 12);
        let mut data = vec![C64::ZERO; w * h];
        data[0] = C64::ONE;
        let mut scratch = vec![C64::ZERO; w * h];
        Fft2d::new(&planner, w, h, Direction::Forward).process(&mut data, &mut scratch);
        for v in &data {
            assert!((*v - C64::ONE).abs() < 1e-10);
        }
    }

    #[test]
    fn non_square_prime_dims() {
        // exercise Bluestein inside the 2-D path
        let planner = Planner::default();
        let (w, h) = (37, 41);
        let mut data = ramp(w * h);
        let reference = dft2d_naive(&data, w, h, Direction::Forward);
        let mut scratch = vec![C64::ZERO; w * h];
        Fft2d::new(&planner, w, h, Direction::Forward).process(&mut data, &mut scratch);
        assert!(max_err(&data, &reference) < 1e-7 * (w * h) as f64);
    }

    #[test]
    fn fused_ncc_pass_is_bit_identical_to_unfused() {
        let planner = Planner::default();
        for (w, h) in [(16usize, 12usize), (13, 20), (37, 9)] {
            let n = w * h;
            let fa = ramp(n);
            let fb: Vec<C64> = ramp(n).iter().map(|z| z.conj() + c64(0.25, -0.5)).collect();
            let plan = Fft2d::new(&planner, w, h, Direction::Inverse);
            let backend = crate::backend::active();
            let mut fused = vec![C64::ZERO; n];
            let mut scratch = vec![C64::ZERO; n];
            plan.process_ncc_fused(backend, &fa, &fb, &mut fused, &mut scratch);
            let mut unfused = vec![C64::ZERO; n];
            backend.ncc(&fa, &fb, &mut unfused);
            plan.process(&mut unfused, &mut scratch);
            for (a, b) in fused.iter().zip(&unfused) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "{w}x{h}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "{w}x{h}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn bad_scratch_len_panics() {
        let planner = Planner::default();
        let f = Fft2d::new(&planner, 8, 8, Direction::Forward);
        let mut d = vec![C64::ZERO; 64];
        let mut s = vec![C64::ZERO; 32];
        f.process(&mut d, &mut s);
    }
}
