//! FFTW-style planner with Estimate / Measure / Patient modes and a
//! process-wide plan cache.
//!
//! The paper (§IV-A) reports that FFTW's *patient* planning mode yielded a
//! 2x execution improvement over *estimate* mode for its 1392×1040 tiles,
//! at a one-time planning cost that is amortized across thousands of
//! transforms. This module reproduces that trade-off: Estimate picks the
//! default radix schedule heuristically; Measure and Patient time candidate
//! schedules on scratch data and keep the fastest, with Patient exploring a
//! larger candidate set.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::bluestein::BluesteinPlan;
use crate::complex::{c64, C64};
use crate::factor::{is_smooth, radix_schedule};
use crate::radix::{Direction, MixedRadixPlan};

/// How much effort the planner spends searching for a fast plan.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PlanMode {
    /// Use the default schedule without measuring. Cheapest to plan,
    /// potentially slower to execute.
    #[default]
    Estimate,
    /// Time a small set of candidate schedules and keep the fastest.
    Measure,
    /// Time a wider set of candidate schedules (FFTW's `FFTW_PATIENT`).
    Patient,
}

impl PlanMode {
    /// Number of timing repetitions per candidate.
    fn reps(self) -> usize {
        match self {
            PlanMode::Estimate => 0,
            PlanMode::Measure => 2,
            PlanMode::Patient => 4,
        }
    }
}

/// A ready-to-execute 1-D FFT plan: mixed-radix when the length is smooth,
/// Bluestein otherwise. Immutable and shareable across threads.
pub enum FftPlan {
    /// Cooley-Tukey mixed-radix plan.
    MixedRadix(MixedRadixPlan),
    /// Chirp-z plan for lengths with large prime factors.
    Bluestein(BluesteinPlan),
}

impl FftPlan {
    /// Transform length.
    pub fn len(&self) -> usize {
        match self {
            FftPlan::MixedRadix(p) => p.len(),
            FftPlan::Bluestein(p) => p.len(),
        }
    }

    /// True only for the degenerate length-0 case (never constructed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plan direction.
    pub fn direction(&self) -> Direction {
        match self {
            FftPlan::MixedRadix(p) => p.direction(),
            FftPlan::Bluestein(p) => p.direction(),
        }
    }

    /// Executes out-of-place; `input` is left untouched. Unscaled in both
    /// directions (FFTW convention): `inverse(forward(x)) = n·x`.
    pub fn process(&self, input: &[C64], output: &mut [C64]) {
        match self {
            FftPlan::MixedRadix(p) => p.process(input, output),
            FftPlan::Bluestein(p) => p.process(input, output),
        }
    }
}

/// Plans 1-D FFTs and caches them by `(len, direction)`.
///
/// A `Planner` is cheap to clone conceptually — use one per process (or
/// [`global_planner`]) so planning cost is paid once, as the pipeline
/// implementations in `stitch-core` do.
pub struct Planner {
    mode: PlanMode,
    cache: Mutex<HashMap<(usize, Direction), Arc<FftPlan>>>,
    /// Cumulative wall time spent planning (the §IV-A "patient planning
    /// took 4min20s" cost — observable so benches can report it).
    planning_nanos: Mutex<u128>,
}

impl Planner {
    /// Creates a planner with the given search effort.
    pub fn new(mode: PlanMode) -> Planner {
        Planner {
            mode,
            cache: Mutex::new(HashMap::new()),
            planning_nanos: Mutex::new(0),
        }
    }

    /// The planner's search mode.
    pub fn mode(&self) -> PlanMode {
        self.mode
    }

    /// Total time spent planning so far, in nanoseconds.
    pub fn planning_nanos(&self) -> u128 {
        *self.planning_nanos.lock().unwrap()
    }

    /// Number of distinct plans in the cache.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Returns the plan for `(n, dir)`, planning and caching it on first use.
    pub fn plan(&self, n: usize, dir: Direction) -> Arc<FftPlan> {
        if let Some(p) = self.cache.lock().unwrap().get(&(n, dir)) {
            return Arc::clone(p);
        }
        let t0 = Instant::now();
        let plan = Arc::new(self.build(n, dir));
        *self.planning_nanos.lock().unwrap() += t0.elapsed().as_nanos();
        self.cache
            .lock()
            .unwrap()
            .entry((n, dir))
            .or_insert(plan)
            .clone()
    }

    fn build(&self, n: usize, dir: Direction) -> FftPlan {
        if !is_smooth(n) {
            return FftPlan::Bluestein(BluesteinPlan::new(n, dir));
        }
        let default = radix_schedule(n);
        let candidates = match self.mode {
            PlanMode::Estimate => vec![default],
            PlanMode::Measure | PlanMode::Patient => {
                let mut c = schedule_candidates(&default);
                if self.mode == PlanMode::Measure {
                    c.truncate(3);
                }
                c
            }
        };
        if candidates.len() == 1 {
            return FftPlan::MixedRadix(MixedRadixPlan::with_schedule(
                n,
                dir,
                candidates.into_iter().next().unwrap(),
            ));
        }
        // Time each candidate on scratch data; keep the fastest.
        let input: Vec<C64> = (0..n)
            .map(|k| c64((k % 13) as f64, (k % 7) as f64))
            .collect();
        let mut output = vec![C64::ZERO; n];
        let reps = self.mode.reps();
        let mut best: Option<(u128, MixedRadixPlan)> = None;
        for sched in candidates {
            let plan = MixedRadixPlan::with_schedule(n, dir, sched);
            plan.process(&input, &mut output); // warm-up
            let t0 = Instant::now();
            for _ in 0..reps {
                plan.process(&input, &mut output);
            }
            let cost = t0.elapsed().as_nanos();
            if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                best = Some((cost, plan));
            }
        }
        FftPlan::MixedRadix(best.expect("at least one candidate").1)
    }
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new(PlanMode::Estimate)
    }
}

/// Candidate schedule orderings derived from the default: descending,
/// ascending, and rotations placing each distinct radix first.
fn schedule_candidates(default: &[usize]) -> Vec<Vec<usize>> {
    let mut out = vec![default.to_vec()];
    let mut asc = default.to_vec();
    asc.sort_unstable();
    if asc != default {
        out.push(asc);
    }
    let mut seen_first: Vec<usize> = out.iter().map(|s| s[0]).collect();
    for (i, &r) in default.iter().enumerate() {
        if !seen_first.contains(&r) {
            let mut s = default.to_vec();
            s.rotate_left(i);
            seen_first.push(r);
            out.push(s);
        }
    }
    out
}

/// Process-wide planner in Estimate mode. The pipeline implementations use
/// per-stitcher planners; the global one serves quick one-off transforms.
pub fn global_planner() -> &'static Planner {
    static PLANNER: OnceLock<Planner> = OnceLock::new();
    PLANNER.get_or_init(Planner::default)
}

/// Convenience: forward FFT of `input` (allocating).
pub fn fft_forward(input: &[C64]) -> Vec<C64> {
    let mut out = vec![C64::ZERO; input.len()];
    if input.is_empty() {
        return out;
    }
    global_planner()
        .plan(input.len(), Direction::Forward)
        .process(input, &mut out);
    out
}

/// Convenience: *scaled* inverse FFT of `input` (allocating), so
/// `fft_inverse(fft_forward(x)) ≈ x`.
pub fn fft_inverse(input: &[C64]) -> Vec<C64> {
    let n = input.len();
    let mut out = vec![C64::ZERO; n];
    if n == 0 {
        return out;
    }
    global_planner()
        .plan(n, Direction::Inverse)
        .process(input, &mut out);
    let s = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::dft_naive;

    fn ramp(n: usize) -> Vec<C64> {
        (0..n)
            .map(|k| c64((k % 11) as f64 - 5.0, (k % 3) as f64))
            .collect()
    }

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn planner_routes_smooth_to_mixed_radix() {
        let p = Planner::default();
        assert!(matches!(
            *p.plan(1392, Direction::Forward),
            FftPlan::MixedRadix(_)
        ));
        assert!(matches!(
            *p.plan(97, Direction::Forward),
            FftPlan::Bluestein(_)
        ));
    }

    #[test]
    fn cache_returns_same_plan() {
        let p = Planner::default();
        let a = p.plan(256, Direction::Forward);
        let b = p.plan(256, Direction::Forward);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(p.cached_plans(), 1);
        p.plan(256, Direction::Inverse);
        assert_eq!(p.cached_plans(), 2);
    }

    #[test]
    fn all_modes_agree_with_naive() {
        let n = 120;
        let x = ramp(n);
        let mut slow = vec![C64::ZERO; n];
        dft_naive(&x, &mut slow, Direction::Forward);
        for mode in [PlanMode::Estimate, PlanMode::Measure, PlanMode::Patient] {
            let p = Planner::new(mode);
            let mut fast = vec![C64::ZERO; n];
            p.plan(n, Direction::Forward).process(&x, &mut fast);
            assert!(max_err(&fast, &slow) < 1e-9, "mode {mode:?}");
        }
    }

    #[test]
    fn measured_modes_record_planning_time() {
        let p = Planner::new(PlanMode::Patient);
        p.plan(360, Direction::Forward);
        assert!(p.planning_nanos() > 0);
    }

    #[test]
    fn convenience_round_trip() {
        let x = ramp(90);
        let back = fft_inverse(&fft_forward(&x));
        assert!(max_err(&back, &x) < 1e-9);
    }

    #[test]
    fn empty_input_ok() {
        assert!(fft_forward(&[]).is_empty());
        assert!(fft_inverse(&[]).is_empty());
    }

    #[test]
    fn candidates_all_valid() {
        let d = radix_schedule(720);
        for c in schedule_candidates(&d) {
            assert_eq!(c.iter().product::<usize>(), 720);
        }
    }
}
