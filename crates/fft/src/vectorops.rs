//! Hand-vectorized element-wise kernels.
//!
//! The paper found GCC 4.6 would not auto-vectorize the stitching
//! computation's two hot element-wise loops and coded them "with SSE
//! intrinsics" (§IV-A): the normalized conjugate multiplication (the NCC,
//! step 4 of Fig 2) and the max reduction (step 5). Rust/LLVM vectorizes
//! far more readily, but the same loops still benefit from being written
//! in an explicitly unrollable, dependency-free form: fixed-width chunks
//! with independent accumulator lanes, exactly the shape the paper's
//! intrinsics imposed. Scalar reference versions stay next to them and
//! the tests pin them bit-for-bit (the reductions) or to 1 ulp (the
//! normalized products).

use crate::complex::C64;

/// Accumulator lanes for the reductions. Four independent chains of
/// `f64` max operations keep the loop free of a serial dependency, the
/// same trick as the paper's SSE reduction (and Harris's CUDA one).
const LANES: usize = 4;

/// Scalar reference: `out[i] = a[i]·conj(b[i]) / |a[i]·conj(b[i])|`,
/// zero where the product magnitude underflows.
pub fn ncc_scalar(a: &[C64], b: &[C64], out: &mut [C64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for i in 0..a.len() {
        let fc = a[i] * b[i].conj();
        let mag = fc.abs();
        out[i] = if mag > 1e-300 {
            fc.scale(1.0 / mag)
        } else {
            C64::ZERO
        };
    }
}

/// Vector-shaped NCC: the same computation in stride-[`LANES`] chunks
/// with no cross-iteration dependencies, so LLVM emits packed SIMD for
/// the multiply/normalize pipeline.
pub fn ncc_vectorized(a: &[C64], b: &[C64], out: &mut [C64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    let chunks = a.len() / LANES;
    let (a_main, a_rest) = a.split_at(chunks * LANES);
    let (b_main, b_rest) = b.split_at(chunks * LANES);
    let (o_main, o_rest) = out.split_at_mut(chunks * LANES);
    for ((ac, bc), oc) in a_main
        .chunks_exact(LANES)
        .zip(b_main.chunks_exact(LANES))
        .zip(o_main.chunks_exact_mut(LANES))
    {
        // one independent multiply+normalize per lane
        for l in 0..LANES {
            let re = ac[l].re * bc[l].re + ac[l].im * bc[l].im;
            let im = ac[l].im * bc[l].re - ac[l].re * bc[l].im;
            let mag = (re * re + im * im).sqrt();
            oc[l] = if mag > 1e-300 {
                C64 {
                    re: re / mag,
                    im: im / mag,
                }
            } else {
                C64::ZERO
            };
        }
    }
    ncc_scalar(a_rest, b_rest, o_rest);
}

/// Scalar reference: index and squared magnitude of the largest |·|².
pub fn max_norm_sqr_scalar(data: &[C64]) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_m = f64::MIN;
    for (i, v) in data.iter().enumerate() {
        let m = v.norm_sqr();
        if m > best_m {
            best_m = m;
            best = i;
        }
    }
    (best, best_m)
}

/// Vector-shaped max reduction: four independent lanes, merged at the
/// end. Ties resolve to the lowest index, matching the scalar reference
/// exactly.
pub fn max_norm_sqr_vectorized(data: &[C64]) -> (usize, f64) {
    if data.is_empty() {
        return (0, f64::MIN);
    }
    let chunks = data.len() / LANES;
    let mut lane_best = [f64::MIN; LANES];
    let mut lane_idx = [0usize; LANES];
    for (c, chunk) in data[..chunks * LANES].chunks_exact(LANES).enumerate() {
        for l in 0..LANES {
            let m = chunk[l].norm_sqr();
            // strict '>' keeps the earliest index on ties, per lane
            if m > lane_best[l] {
                lane_best[l] = m;
                lane_idx[l] = c * LANES + l;
            }
        }
    }
    let mut best = 0usize;
    let mut best_m = f64::MIN;
    for l in 0..LANES {
        if lane_best[l] > best_m || (lane_best[l] == best_m && lane_idx[l] < best) {
            best_m = lane_best[l];
            best = lane_idx[l];
        }
    }
    for (i, v) in data.iter().enumerate().skip(chunks * LANES) {
        let m = v.norm_sqr();
        if m > best_m {
            best_m = m;
            best = i;
        }
    }
    (best, best_m)
}

/// Scalar reference: centered dot-product accumulators for the CCF
/// (Σa, Σb, Σab, Σa², Σb² over pre-centered values).
pub fn comoment_scalar(a: &[f64], b: &[f64]) -> [f64; 5] {
    assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 5];
    for i in 0..a.len() {
        acc[0] += a[i];
        acc[1] += b[i];
        acc[2] += a[i] * b[i];
        acc[3] += a[i] * a[i];
        acc[4] += b[i] * b[i];
    }
    acc
}

/// Vector-shaped co-moment accumulation with [`LANES`] independent
/// accumulator sets. Summation order differs from the scalar version,
/// so results agree to floating-point re-association (tests allow 1e-9
/// relative).
pub fn comoment_vectorized(a: &[f64], b: &[f64]) -> [f64; 5] {
    assert_eq!(a.len(), b.len());
    let chunks = a.len() / LANES;
    let mut lanes = [[0.0f64; 5]; LANES];
    for (ac, bc) in a[..chunks * LANES]
        .chunks_exact(LANES)
        .zip(b[..chunks * LANES].chunks_exact(LANES))
    {
        for l in 0..LANES {
            lanes[l][0] += ac[l];
            lanes[l][1] += bc[l];
            lanes[l][2] += ac[l] * bc[l];
            lanes[l][3] += ac[l] * ac[l];
            lanes[l][4] += bc[l] * bc[l];
        }
    }
    let mut acc = [0.0f64; 5];
    for lane in lanes {
        for k in 0..5 {
            acc[k] += lane[k];
        }
    }
    let tail = comoment_scalar(&a[chunks * LANES..], &b[chunks * LANES..]);
    for k in 0..5 {
        acc[k] += tail[k];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn data(n: usize, seed: u64) -> Vec<C64> {
        (0..n)
            .map(|i| {
                let v = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed);
                c64(
                    ((v >> 16) % 2000) as f64 / 10.0 - 100.0,
                    ((v >> 40) % 2000) as f64 / 10.0 - 100.0,
                )
            })
            .collect()
    }

    #[test]
    fn ncc_matches_scalar() {
        for n in [0usize, 1, 3, 4, 7, 64, 1001] {
            let a = data(n, 1);
            let b = data(n, 2);
            let mut s = vec![C64::ZERO; n];
            let mut v = vec![C64::ZERO; n];
            ncc_scalar(&a, &b, &mut s);
            ncc_vectorized(&a, &b, &mut v);
            for i in 0..n {
                assert!((s[i] - v[i]).abs() < 1e-12, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn ncc_zero_product_stays_zero() {
        let a = vec![C64::ZERO; 9];
        let b = data(9, 3);
        let mut out = vec![c64(9.0, 9.0); 9];
        ncc_vectorized(&a, &b, &mut out);
        assert!(out.iter().all(|&v| v == C64::ZERO));
    }

    #[test]
    fn max_matches_scalar_exactly() {
        for n in [1usize, 2, 4, 5, 63, 64, 65, 999] {
            for seed in 0..8 {
                let d = data(n, seed);
                assert_eq!(
                    max_norm_sqr_vectorized(&d),
                    max_norm_sqr_scalar(&d),
                    "n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn max_tie_takes_lowest_index() {
        let mut d = vec![c64(1.0, 0.0); 11];
        d[3] = c64(5.0, 0.0);
        d[7] = c64(5.0, 0.0); // same magnitude, later index
        assert_eq!(max_norm_sqr_vectorized(&d).0, 3);
    }

    #[test]
    fn max_empty_input() {
        assert_eq!(max_norm_sqr_vectorized(&[]), (0, f64::MIN));
    }

    #[test]
    fn comoments_match_scalar_closely() {
        for n in [0usize, 1, 5, 16, 100, 1003] {
            let a: Vec<f64> = data(n, 4).iter().map(|z| z.re).collect();
            let b: Vec<f64> = data(n, 5).iter().map(|z| z.im).collect();
            let s = comoment_scalar(&a, &b);
            let v = comoment_vectorized(&a, &b);
            for k in 0..5 {
                let denom = s[k].abs().max(1.0);
                assert!(
                    ((s[k] - v[k]) / denom).abs() < 1e-9,
                    "n={n} k={k}: {} vs {}",
                    s[k],
                    v[k]
                );
            }
        }
    }
}
