//! Hand-vectorized element-wise kernels.
//!
//! The paper found GCC 4.6 would not auto-vectorize the stitching
//! computation's two hot element-wise loops and coded them "with SSE
//! intrinsics" (§IV-A): the normalized conjugate multiplication (the NCC,
//! step 4 of Fig 2) and the max reduction (step 5). Rust/LLVM vectorizes
//! far more readily, but the same loops still benefit from being written
//! in an explicitly unrollable, dependency-free form: fixed-width chunks
//! with independent accumulator lanes, exactly the shape the paper's
//! intrinsics imposed.
//!
//! This module holds the *implementations* — sequential scalar reference
//! loops and their lane-unrolled `_vectorized` twins — which the
//! [`crate::backend`] layer wraps: the `scalar` backend runs the
//! references, the `portable` backend runs the `_vectorized` forms, and
//! the `simd` backend replaces them with explicit AVX2 intrinsics
//! evaluating the same expression DAGs. The element-wise kernels and the
//! max reduction are bit-identical between scalar and vectorized forms;
//! the co-moment reductions re-associate across lanes and agree to
//! ~1e-12 relative (tests pin both properties).

use crate::complex::C64;

/// Accumulator lanes for the reductions. Four independent chains of
/// `f64` max operations keep the loop free of a serial dependency, the
/// same trick as the paper's SSE reduction (and Harris's CUDA one).
pub(crate) const LANES: usize = 4;

/// Magnitudes at or below this are treated as underflow: the NCC output
/// is zeroed instead of dividing by a denormal.
const NCC_MAG_FLOOR: f64 = 1e-300;

/// Scalar reference: `out[i] = a[i]·conj(b[i]) / |a[i]·conj(b[i])|`,
/// zero where the product magnitude underflows.
///
/// The normalization divides each component by the magnitude (`re/mag`,
/// `im/mag`) rather than multiplying by its reciprocal — the same
/// expression DAG as the vectorized and AVX2 forms, so all three are
/// bit-identical (IEEE division is correctly rounded; a reciprocal
/// multiply is not the same operation).
pub fn ncc_scalar(a: &[C64], b: &[C64], out: &mut [C64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for i in 0..a.len() {
        let re = a[i].re * b[i].re + a[i].im * b[i].im;
        let im = a[i].im * b[i].re - a[i].re * b[i].im;
        let mag = (re * re + im * im).sqrt();
        out[i] = if mag > NCC_MAG_FLOOR {
            C64 {
                re: re / mag,
                im: im / mag,
            }
        } else {
            C64::ZERO
        };
    }
}

/// Vector-shaped NCC: the same computation in stride-[`LANES`] chunks
/// with no cross-iteration dependencies, so LLVM emits packed SIMD for
/// the multiply/normalize pipeline. Bit-identical to [`ncc_scalar`].
pub fn ncc_vectorized(a: &[C64], b: &[C64], out: &mut [C64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    let chunks = a.len() / LANES;
    let (a_main, a_rest) = a.split_at(chunks * LANES);
    let (b_main, b_rest) = b.split_at(chunks * LANES);
    let (o_main, o_rest) = out.split_at_mut(chunks * LANES);
    for ((ac, bc), oc) in a_main
        .chunks_exact(LANES)
        .zip(b_main.chunks_exact(LANES))
        .zip(o_main.chunks_exact_mut(LANES))
    {
        // one independent multiply+normalize per lane
        for l in 0..LANES {
            let re = ac[l].re * bc[l].re + ac[l].im * bc[l].im;
            let im = ac[l].im * bc[l].re - ac[l].re * bc[l].im;
            let mag = (re * re + im * im).sqrt();
            oc[l] = if mag > NCC_MAG_FLOOR {
                C64 {
                    re: re / mag,
                    im: im / mag,
                }
            } else {
                C64::ZERO
            };
        }
    }
    ncc_scalar(a_rest, b_rest, o_rest);
}

/// Scalar reference: index and squared magnitude of the largest |·|².
///
/// Contract (shared by [`max_norm_sqr_vectorized`] and every
/// [`crate::backend`] implementation, bit-identical): `None` iff the
/// input is empty or every element's squared magnitude is NaN; NaN
/// elements are skipped; ties resolve to the lowest index.
pub fn max_norm_sqr_scalar(data: &[C64]) -> Option<(usize, f64)> {
    let mut best = 0usize;
    let mut best_m = f64::MIN;
    let mut found = false;
    for (i, v) in data.iter().enumerate() {
        let m = v.norm_sqr();
        // NaN compares false and is skipped; strict '>' keeps the
        // earliest index on ties. Squared magnitudes are ≥ 0, so every
        // non-NaN element beats the f64::MIN sentinel — `found` flips
        // on the first usable element.
        if m > best_m {
            best_m = m;
            best = i;
            found = true;
        }
    }
    found.then_some((best, best_m))
}

/// Vector-shaped max reduction: four independent lanes, merged at the
/// end. Same contract as [`max_norm_sqr_scalar`], bit-identical
/// including tie-breaks across lanes and chunks.
pub fn max_norm_sqr_vectorized(data: &[C64]) -> Option<(usize, f64)> {
    let chunks = data.len() / LANES;
    let mut lane_best = [f64::MIN; LANES];
    let mut lane_idx = [0usize; LANES];
    for (c, chunk) in data[..chunks * LANES].chunks_exact(LANES).enumerate() {
        for l in 0..LANES {
            let m = chunk[l].norm_sqr();
            // strict '>' keeps the earliest index on ties, per lane;
            // NaN compares false and is skipped
            if m > lane_best[l] {
                lane_best[l] = m;
                lane_idx[l] = c * LANES + l;
            }
        }
    }
    merge_lanes_and_tail(data, chunks * LANES, &lane_best, &lane_idx)
}

/// Shared lane-merge + scalar-tail epilogue for the lane-split max
/// reductions (the AVX2 backend funnels through this too, so the merge
/// order — and therefore every tie-break — is identical by
/// construction). `done` is the number of elements the lanes covered.
pub(crate) fn merge_lanes_and_tail(
    data: &[C64],
    done: usize,
    lane_best: &[f64; LANES],
    lane_idx: &[usize; LANES],
) -> Option<(usize, f64)> {
    let mut best = 0usize;
    let mut best_m = f64::MIN;
    let mut found = false;
    for l in 0..LANES {
        // a lane that saw only NaNs still holds the f64::MIN sentinel,
        // which no real squared magnitude (≥ 0) can equal — so a lane
        // counts as found exactly when it beats the sentinel
        if lane_best[l] > best_m || (lane_best[l] == best_m && found && lane_idx[l] < best) {
            best_m = lane_best[l];
            best = lane_idx[l];
            found = true;
        }
    }
    for (i, v) in data.iter().enumerate().skip(done) {
        let m = v.norm_sqr();
        if m > best_m {
            best_m = m;
            best = i;
            found = true;
        }
    }
    found.then_some((best, best_m))
}

/// Scalar reference: centered dot-product accumulators for the CCF
/// (Σa, Σb, Σab, Σa², Σb² over pre-centered values).
pub fn comoment_scalar(a: &[f64], b: &[f64]) -> [f64; 5] {
    assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 5];
    for i in 0..a.len() {
        acc[0] += a[i];
        acc[1] += b[i];
        acc[2] += a[i] * b[i];
        acc[3] += a[i] * a[i];
        acc[4] += b[i] * b[i];
    }
    acc
}

/// Vector-shaped co-moment accumulation with [`LANES`] independent
/// accumulator sets. Summation order differs from the scalar version,
/// so results agree to floating-point re-association (tests allow 1e-9
/// relative).
pub fn comoment_vectorized(a: &[f64], b: &[f64]) -> [f64; 5] {
    assert_eq!(a.len(), b.len());
    let chunks = a.len() / LANES;
    let mut lanes = [[0.0f64; 5]; LANES];
    for (ac, bc) in a[..chunks * LANES]
        .chunks_exact(LANES)
        .zip(b[..chunks * LANES].chunks_exact(LANES))
    {
        for l in 0..LANES {
            lanes[l][0] += ac[l];
            lanes[l][1] += bc[l];
            lanes[l][2] += ac[l] * bc[l];
            lanes[l][3] += ac[l] * ac[l];
            lanes[l][4] += bc[l] * bc[l];
        }
    }
    let mut acc = [0.0f64; 5];
    for lane in lanes {
        for k in 0..5 {
            acc[k] += lane[k];
        }
    }
    let tail = comoment_scalar(&a[chunks * LANES..], &b[chunks * LANES..]);
    for k in 0..5 {
        acc[k] += tail[k];
    }
    acc
}

/// Scalar reference for the CCF inner loop: co-moments of `u16` pixel
/// rows widened and centered on the fly (`va = a[i] − ca`). One
/// sequential pass — the exact loop `ccf_at_centered` used to inline.
pub fn comoment_u16_scalar(a: &[u16], b: &[u16], ca: f64, cb: f64) -> [f64; 5] {
    assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 5];
    for i in 0..a.len() {
        let va = a[i] as f64 - ca;
        let vb = b[i] as f64 - cb;
        acc[0] += va;
        acc[1] += vb;
        acc[2] += va * vb;
        acc[3] += va * va;
        acc[4] += vb * vb;
    }
    acc
}

/// Lane-split twin of [`comoment_u16_scalar`]: [`LANES`] independent
/// accumulator sets broken out of the serial reduction chain, the same
/// shape as [`comoment_vectorized`] (and the same re-association
/// caveat). This is the dominant per-pair loop — the CCF evaluates it
/// over every candidate overlap — so it is the biggest single lever the
/// backends have.
pub fn comoment_u16_vectorized(a: &[u16], b: &[u16], ca: f64, cb: f64) -> [f64; 5] {
    assert_eq!(a.len(), b.len());
    let chunks = a.len() / LANES;
    let mut lanes = [[0.0f64; 5]; LANES];
    for (ac, bc) in a[..chunks * LANES]
        .chunks_exact(LANES)
        .zip(b[..chunks * LANES].chunks_exact(LANES))
    {
        for l in 0..LANES {
            let va = ac[l] as f64 - ca;
            let vb = bc[l] as f64 - cb;
            lanes[l][0] += va;
            lanes[l][1] += vb;
            lanes[l][2] += va * vb;
            lanes[l][3] += va * va;
            lanes[l][4] += vb * vb;
        }
    }
    let mut acc = [0.0f64; 5];
    for lane in lanes {
        for k in 0..5 {
            acc[k] += lane[k];
        }
    }
    let tail = comoment_u16_scalar(&a[chunks * LANES..], &b[chunks * LANES..], ca, cb);
    for k in 0..5 {
        acc[k] += tail[k];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn data(n: usize, seed: u64) -> Vec<C64> {
        (0..n)
            .map(|i| {
                let v = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed);
                c64(
                    ((v >> 16) % 2000) as f64 / 10.0 - 100.0,
                    ((v >> 40) % 2000) as f64 / 10.0 - 100.0,
                )
            })
            .collect()
    }

    #[test]
    fn ncc_matches_scalar_bitwise() {
        for n in [0usize, 1, 3, 4, 7, 64, 1001] {
            let a = data(n, 1);
            let b = data(n, 2);
            let mut s = vec![C64::ZERO; n];
            let mut v = vec![C64::ZERO; n];
            ncc_scalar(&a, &b, &mut s);
            ncc_vectorized(&a, &b, &mut v);
            for i in 0..n {
                assert!(
                    s[i].re.to_bits() == v[i].re.to_bits()
                        && s[i].im.to_bits() == v[i].im.to_bits(),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn ncc_zero_product_stays_zero() {
        let a = vec![C64::ZERO; 9];
        let b = data(9, 3);
        let mut out = vec![c64(9.0, 9.0); 9];
        ncc_vectorized(&a, &b, &mut out);
        assert!(out.iter().all(|&v| v == C64::ZERO));
    }

    #[test]
    fn max_matches_scalar_exactly() {
        for n in [1usize, 2, 4, 5, 63, 64, 65, 999] {
            for seed in 0..8 {
                let d = data(n, seed);
                assert_eq!(
                    max_norm_sqr_vectorized(&d),
                    max_norm_sqr_scalar(&d),
                    "n={n} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn max_tie_takes_lowest_index() {
        let mut d = vec![c64(1.0, 0.0); 11];
        d[3] = c64(5.0, 0.0);
        d[7] = c64(5.0, 0.0); // same magnitude, later index
        assert_eq!(max_norm_sqr_vectorized(&d).unwrap().0, 3);
    }

    #[test]
    fn max_cross_lane_ties_match_scalar() {
        // equal peaks in every pairing of lanes within and across chunks
        for i in 0..8usize {
            for j in (i + 1)..16 {
                let mut d = vec![c64(1.0, 1.0); 19];
                d[i] = c64(7.0, -24.0);
                d[j] = c64(-7.0, 24.0); // same |·|², different lane/chunk
                let s = max_norm_sqr_scalar(&d);
                let v = max_norm_sqr_vectorized(&d);
                assert_eq!(s, v, "tie at ({i},{j})");
                assert_eq!(s.unwrap().0, i);
            }
        }
    }

    #[test]
    fn max_empty_input_is_none() {
        assert_eq!(max_norm_sqr_vectorized(&[]), None);
        assert_eq!(max_norm_sqr_scalar(&[]), None);
    }

    #[test]
    fn max_all_nan_is_none() {
        for n in [1usize, 3, 4, 9, 64] {
            let d = vec![c64(f64::NAN, 1.0); n];
            assert_eq!(max_norm_sqr_scalar(&d), None, "scalar n={n}");
            assert_eq!(max_norm_sqr_vectorized(&d), None, "vectorized n={n}");
        }
    }

    #[test]
    fn max_nan_laden_input_matches_scalar() {
        for seed in 0..4 {
            let mut d = data(77, seed);
            // poison a stripe of every lane alignment
            for i in (seed as usize..77).step_by(3) {
                d[i] = c64(f64::NAN, d[i].im);
            }
            let s = max_norm_sqr_scalar(&d);
            assert_eq!(max_norm_sqr_vectorized(&d), s, "seed={seed}");
            assert!(s.is_some());
            assert!(s.unwrap().1 >= 0.0);
        }
    }

    #[test]
    fn comoments_match_scalar_closely() {
        for n in [0usize, 1, 5, 16, 100, 1003] {
            let a: Vec<f64> = data(n, 4).iter().map(|z| z.re).collect();
            let b: Vec<f64> = data(n, 5).iter().map(|z| z.im).collect();
            let s = comoment_scalar(&a, &b);
            let v = comoment_vectorized(&a, &b);
            for k in 0..5 {
                let denom = s[k].abs().max(1.0);
                assert!(
                    ((s[k] - v[k]) / denom).abs() < 1e-9,
                    "n={n} k={k}: {} vs {}",
                    s[k],
                    v[k]
                );
            }
        }
    }

    #[test]
    fn comoment_u16_matches_scalar_closely() {
        for n in [0usize, 1, 7, 64, 333] {
            let a: Vec<u16> = (0..n).map(|i| ((i * 41 + 3) % 4096) as u16).collect();
            let b: Vec<u16> = (0..n).map(|i| ((i * 59 + 17) % 4096) as u16).collect();
            let (ca, cb) = (2048.5, 2047.25);
            let s = comoment_u16_scalar(&a, &b, ca, cb);
            let v = comoment_u16_vectorized(&a, &b, ca, cb);
            for k in 0..5 {
                let denom = s[k].abs().max(1.0);
                assert!(((s[k] - v[k]) / denom).abs() < 1e-9, "n={n} k={k}");
            }
        }
    }
}
