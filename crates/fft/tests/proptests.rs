//! Property-based tests for the FFT substrate: round-trip identity,
//! Parseval energy conservation, linearity, shift theorem, and agreement
//! between all plan kinds — over arbitrary lengths including primes.

use proptest::prelude::*;
use stitch_fft::{
    c64, dft_naive, fft_forward, fft_inverse, BluesteinPlan, Direction, Fft2d, MixedRadixPlan,
    Planner, RealFft, C64,
};

fn max_err(a: &[C64], b: &[C64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<C64>> {
    proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), len..=len)
        .prop_map(|v| v.into_iter().map(|(r, i)| c64(r, i)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// inverse(forward(x)) == x for any length in 1..=96, any data.
    #[test]
    fn round_trip_any_length(n in 1usize..=96, seed in 0u64..1000) {
        let x: Vec<C64> = (0..n)
            .map(|k| {
                let v = (k as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                c64(((v >> 16) % 1000) as f64 / 10.0 - 50.0, ((v >> 40) % 1000) as f64 / 10.0 - 50.0)
            })
            .collect();
        let back = fft_inverse(&fft_forward(&x));
        prop_assert!(max_err(&back, &x) < 1e-7);
    }

    /// Parseval: Σ|x|² == Σ|X|²/n.
    #[test]
    fn parseval(x in complex_vec(64)) {
        let spec = fft_forward(&x);
        let t: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let f: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((t - f).abs() <= 1e-6 * t.max(1.0));
    }

    /// FFT(a·x + b·y) == a·FFT(x) + b·FFT(y).
    #[test]
    fn linearity(x in complex_vec(48), y in complex_vec(48), a in -5.0..5.0f64, b in -5.0..5.0f64) {
        let combo: Vec<C64> = x.iter().zip(&y).map(|(p, q)| p.scale(a) + q.scale(b)).collect();
        let lhs = fft_forward(&combo);
        let fx = fft_forward(&x);
        let fy = fft_forward(&y);
        let rhs: Vec<C64> = fx.iter().zip(&fy).map(|(p, q)| p.scale(a) + q.scale(b)).collect();
        prop_assert!(max_err(&lhs, &rhs) < 1e-6);
    }

    /// Circular shift theorem: FFT(shift(x, s))[j] == FFT(x)[j]·e^{-2πi js/n}.
    #[test]
    fn shift_theorem(x in complex_vec(60), s in 0usize..60) {
        let n = 60;
        let shifted: Vec<C64> = (0..n).map(|k| x[(k + n - s) % n]).collect();
        let lhs = fft_forward(&shifted);
        let fx = fft_forward(&x);
        let rhs: Vec<C64> = (0..n)
            .map(|j| fx[j] * C64::cis(-2.0 * std::f64::consts::PI * (j * s) as f64 / n as f64))
            .collect();
        prop_assert!(max_err(&lhs, &rhs) < 1e-6);
    }

    /// Mixed-radix, Bluestein, and naive DFT all agree on smooth sizes.
    #[test]
    fn plan_kinds_agree(x in complex_vec(40)) {
        let n = 40;
        let mut mr = vec![C64::ZERO; n];
        let mut bl = vec![C64::ZERO; n];
        let mut nv = vec![C64::ZERO; n];
        MixedRadixPlan::new(n, Direction::Forward).process(&x, &mut mr);
        BluesteinPlan::new(n, Direction::Forward).process(&x, &mut bl);
        dft_naive(&x, &mut nv, Direction::Forward);
        prop_assert!(max_err(&mr, &nv) < 1e-7);
        prop_assert!(max_err(&bl, &nv) < 1e-7);
    }

    /// Real FFT forward matches the complex FFT on real inputs, any length.
    #[test]
    fn real_matches_complex(n in 1usize..=80, seed in 0u64..500) {
        let x: Vec<f64> = (0..n)
            .map(|k| (((k as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed) >> 20) % 2000) as f64 / 100.0 - 10.0)
            .collect();
        let planner = Planner::default();
        let r = RealFft::new(&planner, n);
        let mut half = vec![C64::ZERO; r.spectrum_len()];
        r.forward(&x, &mut half);
        let full = fft_forward(&x.iter().map(|&v| c64(v, 0.0)).collect::<Vec<_>>());
        prop_assert!(max_err(&half, &full[..r.spectrum_len()]) < 1e-7 * n.max(4) as f64);
    }

    /// 2-D round trip for arbitrary small rectangles.
    #[test]
    fn fft2d_round_trip(w in 1usize..=24, h in 1usize..=24, seed in 0u64..100) {
        let planner = Planner::default();
        let original: Vec<C64> = (0..w * h)
            .map(|k| {
                let v = (k as u64).wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(seed);
                c64(((v >> 12) % 512) as f64 - 256.0, ((v >> 36) % 512) as f64 - 256.0)
            })
            .collect();
        let mut data = original.clone();
        let mut scratch = vec![C64::ZERO; w * h];
        let fwd = Fft2d::new(&planner, w, h, Direction::Forward);
        let inv = Fft2d::new(&planner, w, h, Direction::Inverse);
        fwd.process(&mut data, &mut scratch);
        inv.process(&mut data, &mut scratch);
        inv.normalize(&mut data);
        prop_assert!(max_err(&data, &original) < 1e-6 * (w * h) as f64);
    }

    /// Forward/inverse round trip through the *explicit* plan kinds at
    /// representative mixed-radix (2^a·3^b·5^c) and prime sizes:
    /// `inverse(forward(x)) == n·x` per the unscaled FFTW convention.
    /// The planner-level round trip above can mask a broken plan kind by
    /// routing around it; this pins each kernel directly.
    #[test]
    fn explicit_plan_round_trip_mixed_and_prime(size_idx in 0usize..10, seed in 0u64..500) {
        const MIXED: [usize; 5] = [8, 12, 30, 60, 72];
        const PRIME: [usize; 5] = [7, 17, 31, 61, 101];
        let (n, prime) = if size_idx < 5 {
            (MIXED[size_idx], false)
        } else {
            (PRIME[size_idx - 5], true)
        };
        let x: Vec<C64> = (0..n)
            .map(|k| {
                let v = (k as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed * 7919);
                c64(((v >> 16) % 1000) as f64 / 10.0 - 50.0, ((v >> 40) % 1000) as f64 / 10.0 - 50.0)
            })
            .collect();
        let mut spec = vec![C64::ZERO; n];
        let mut back = vec![C64::ZERO; n];
        if prime {
            BluesteinPlan::new(n, Direction::Forward).process(&x, &mut spec);
            BluesteinPlan::new(n, Direction::Inverse).process(&spec, &mut back);
        } else {
            MixedRadixPlan::new(n, Direction::Forward).process(&x, &mut spec);
            MixedRadixPlan::new(n, Direction::Inverse).process(&spec, &mut back);
        }
        let scaled: Vec<C64> = back.iter().map(|z| z.scale(1.0 / n as f64)).collect();
        prop_assert!(max_err(&scaled, &x) < 1e-7 * n as f64, "n={n} prime={prime}");
    }

    /// Parseval at prime sizes specifically — the Bluestein path embeds
    /// the transform in a longer convolution, so its energy bookkeeping
    /// deserves its own check (the fixed-size test above only covers the
    /// mixed-radix kernel).
    #[test]
    fn parseval_prime_sizes(size_idx in 0usize..4, x in complex_vec(61)) {
        const PRIMES: [usize; 4] = [13, 29, 47, 61];
        let n = PRIMES[size_idx];
        let x = &x[..n];
        let spec = fft_forward(x);
        let t: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let f: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((t - f).abs() <= 1e-6 * t.max(1.0), "n={n}");
    }

    /// Real-FFT round trip at mixed-radix and prime sizes:
    /// `RealFft::inverse(RealFft::forward(x)) == x` (the real path is
    /// scaled, unlike the complex convention).
    #[test]
    fn real_fft_round_trip_mixed_and_prime(size_idx in 0usize..8, seed in 0u64..500) {
        const SIZES: [usize; 8] = [8, 12, 48, 60, 7, 17, 41, 61];
        let n = SIZES[size_idx];
        let x: Vec<f64> = (0..n)
            .map(|k| (((k as u64).wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(seed) >> 18) % 4000) as f64 / 100.0 - 20.0)
            .collect();
        let planner = Planner::default();
        let r = RealFft::new(&planner, n);
        let mut half = vec![C64::ZERO; r.spectrum_len()];
        let mut back = vec![0.0f64; n];
        r.forward(&x, &mut half);
        r.inverse(&half, &mut back);
        let err = x.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-8 * n.max(4) as f64, "n={n} err={err}");
    }

    /// Differential: the half-spectrum real FFT (`real.rs`) against the
    /// full complex kernels driven directly — `radix.rs` at mixed-radix
    /// sizes and `bluestein.rs` at primes.
    #[test]
    fn real_fft_differential_against_explicit_kernels(size_idx in 0usize..8, seed in 0u64..500) {
        const SIZES: [(usize, bool); 8] = [
            (8, false), (24, false), (40, false), (64, false),
            (11, true), (23, true), (43, true), (67, true),
        ];
        let (n, prime) = SIZES[size_idx];
        let x: Vec<f64> = (0..n)
            .map(|k| (((k as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed * 31) >> 22) % 2000) as f64 / 50.0 - 20.0)
            .collect();
        let planner = Planner::default();
        let r = RealFft::new(&planner, n);
        let mut half = vec![C64::ZERO; r.spectrum_len()];
        r.forward(&x, &mut half);
        let full_in: Vec<C64> = x.iter().map(|&v| c64(v, 0.0)).collect();
        let mut full = vec![C64::ZERO; n];
        if prime {
            BluesteinPlan::new(n, Direction::Forward).process(&full_in, &mut full);
        } else {
            MixedRadixPlan::new(n, Direction::Forward).process(&full_in, &mut full);
        }
        prop_assert!(
            max_err(&half, &full[..r.spectrum_len()]) < 1e-7 * n.max(4) as f64,
            "n={n} prime={prime}"
        );
    }

    /// Hermitian symmetry of real-input spectra: X[n−j] == conj(X[j]).
    #[test]
    fn hermitian_symmetry(seed in 0u64..2000) {
        let n = 50;
        let x: Vec<C64> = (0..n)
            .map(|k| c64((((k as u64 + seed) * 2654435761) % 997) as f64 - 498.0, 0.0))
            .collect();
        let spec = fft_forward(&x);
        for j in 1..n {
            prop_assert!((spec[n - j] - spec[j].conj()).abs() < 1e-6);
        }
    }
}
