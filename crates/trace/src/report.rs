//! `RunReport`: a machine-readable summary derived from the merged
//! timeline — the same numbers the paper reads off its profile figures.

use std::collections::BTreeMap;

use crate::{intersection_len, json, union_len, TraceHandle};

/// Per-stage busy/wait attribution pushed by the pipeline layer.
#[derive(Clone, Debug)]
pub struct StageStat {
    /// Stage name (e.g. `"read"`, `"fft"`).
    pub name: String,
    /// Worker threads the stage ran with.
    pub threads: usize,
    /// Items the stage processed.
    pub items: u64,
    /// Total time workers spent in stage bodies, summed across threads.
    pub busy_ns: u64,
    /// Total time workers spent blocked on their input queue.
    pub wait_ns: u64,
}

impl StageStat {
    /// busy / (busy + wait); 0 when the stage never ran.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.wait_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// Per-queue traffic/depth/block-time snapshot.
#[derive(Clone, Debug)]
pub struct QueueStat {
    /// Queue name (conventionally `"<consumer stage>.in"`).
    pub name: String,
    /// Capacity bound.
    pub capacity: usize,
    /// Items successfully pushed (blocking or non-blocking path).
    pub pushed: u64,
    /// Items successfully popped (blocking or non-blocking path).
    pub popped: u64,
    /// Maximum depth observed.
    pub high_water: usize,
    /// Time producers spent inside successful blocking pushes.
    pub producer_block_ns: u64,
    /// Time consumers spent inside successful blocking pops.
    pub consumer_block_ns: u64,
}

/// Device span categories — the rows the simulated GPU contributes.
const DEVICE_CATS: [&str; 4] = ["kernel", "h2d", "d2h", "sync"];
const COPY_CATS: [&str; 2] = ["h2d", "d2h"];

/// Whole-run summary computed from a [`TraceHandle`]'s merged timeline.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Span of the whole timeline: `max(end) - min(start)` over every span.
    pub wall_ns: u64,
    /// Fraction of the device observation window (first to last
    /// device-category span) covered by the union of `"kernel"` spans —
    /// the Figs 7/9 density metric, computed from the merged timeline.
    /// 0 when no device spans were recorded.
    pub kernel_density: f64,
    /// |union(copies) ∩ union(kernels)| / |union(copies)|: the fraction of
    /// copy time hidden under compute. 0 when no copies were recorded.
    pub copy_compute_overlap: f64,
    /// Per-stage busy/wait attribution.
    pub stages: Vec<StageStat>,
    /// Per-queue traffic and block time.
    pub queues: Vec<QueueStat>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges.
    pub gauges: BTreeMap<String, f64>,
}

impl RunReport {
    /// Derives the report from everything `trace` recorded so far.
    pub fn from_trace(trace: &TraceHandle) -> RunReport {
        let spans = trace.spans();

        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut dev_lo = u64::MAX;
        let mut dev_hi = 0u64;
        let mut kernels: Vec<(u64, u64)> = Vec::new();
        let mut copies: Vec<(u64, u64)> = Vec::new();
        for s in &spans {
            lo = lo.min(s.start_ns);
            hi = hi.max(s.end_ns);
            if DEVICE_CATS.contains(&s.cat.as_str()) {
                dev_lo = dev_lo.min(s.start_ns);
                dev_hi = dev_hi.max(s.end_ns);
            }
            if s.cat == "kernel" {
                kernels.push((s.start_ns, s.end_ns));
            } else if COPY_CATS.contains(&s.cat.as_str()) {
                copies.push((s.start_ns, s.end_ns));
            }
        }

        let wall_ns = hi.saturating_sub(lo);
        let dev_window = dev_hi.saturating_sub(dev_lo);
        let kernel_density = if dev_window == 0 {
            0.0
        } else {
            union_len(&kernels) as f64 / dev_window as f64
        };
        let copy_len = union_len(&copies);
        let copy_compute_overlap = if copy_len == 0 {
            0.0
        } else {
            intersection_len(&copies, &kernels) as f64 / copy_len as f64
        };

        RunReport {
            wall_ns,
            kernel_density,
            copy_compute_overlap,
            stages: trace.stages(),
            queues: trace.queues(),
            counters: trace.counters(),
            gauges: trace.gauges(),
        }
    }

    /// Serializes the report as JSON (hand-rolled; serde is unavailable
    /// offline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"wall_ns\":{}", self.wall_ns));
        out.push_str(&format!(
            ",\"kernel_density\":{}",
            json::number(self.kernel_density)
        ));
        out.push_str(&format!(
            ",\"copy_compute_overlap\":{}",
            json::number(self.copy_compute_overlap)
        ));
        out.push_str(",\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"threads\":{},\"items\":{},\"busy_ns\":{},\
                 \"wait_ns\":{},\"utilization\":{}}}",
                json::quote(&s.name),
                s.threads,
                s.items,
                s.busy_ns,
                s.wait_ns,
                json::number(s.utilization())
            ));
        }
        out.push_str("],\"queues\":[");
        for (i, q) in self.queues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"capacity\":{},\"pushed\":{},\"popped\":{},\
                 \"high_water\":{},\"producer_block_ns\":{},\
                 \"consumer_block_ns\":{}}}",
                json::quote(&q.name),
                q.capacity,
                q.pushed,
                q.popped,
                q.high_water,
                q.producer_block_ns,
                q.consumer_block_ns
            ));
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::quote(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::quote(k), json::number(*v)));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_density_and_overlap() {
        let t = TraceHandle::new();
        // device window [0, 100]; kernels cover 40 of it; copies cover 30,
        // of which 10 overlap a kernel.
        t.record("gpu0/k", "kernel", "a", 0, 20);
        t.record("gpu0/k", "kernel", "b", 50, 70);
        t.record("gpu0/h2d", "h2d", "up", 10, 30);
        t.record("gpu0/d2h", "d2h", "down", 90, 100);
        // host span outside the device window must not affect density
        t.record("cpu/main", "stage", "setup", 0, 400);
        let r = RunReport::from_trace(&t);
        assert_eq!(r.wall_ns, 400);
        assert!((r.kernel_density - 0.4).abs() < 1e-9);
        assert!((r.copy_compute_overlap - 10.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn report_empty_trace() {
        let r = RunReport::from_trace(&TraceHandle::new());
        assert_eq!(r.wall_ns, 0);
        assert_eq!(r.kernel_density, 0.0);
        assert_eq!(r.copy_compute_overlap, 0.0);
        json::validate(&r.to_json()).unwrap();
    }

    #[test]
    fn report_json_is_wellformed() {
        let t = TraceHandle::new();
        t.record("gpu0/k", "kernel", "fft \"r2c\"", 0, 10);
        t.record_stage(StageStat {
            name: "read".into(),
            threads: 2,
            items: 64,
            busy_ns: 100,
            wait_ns: 50,
        });
        t.record_queue(QueueStat {
            name: "fft.in".into(),
            capacity: 8,
            pushed: 64,
            popped: 64,
            high_water: 8,
            producer_block_ns: 5,
            consumer_block_ns: 7,
        });
        t.add_counter("tiles", 64);
        t.set_gauge("peak_live_tiles", 9.0);
        let r = RunReport::from_trace(&t);
        let js = r.to_json();
        json::validate(&js).unwrap();
        assert!(js.contains("\"utilization\""));
        assert!(js.contains("\"fft.in\""));
        assert!(js.contains("\"peak_live_tiles\""));
    }

    #[test]
    fn stage_utilization() {
        let s = StageStat {
            name: "x".into(),
            threads: 1,
            items: 0,
            busy_ns: 30,
            wait_ns: 10,
        };
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        let idle = StageStat {
            busy_ns: 0,
            wait_ns: 0,
            ..s
        };
        assert_eq!(idle.utilization(), 0.0);
    }
}
